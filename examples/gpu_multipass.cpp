// Out-of-core GPU processing demo: running a graph whose CSR does not
// fit in device memory through the unified-memory multi-pass pipeline
// (§4.2.2), showing the pass estimator, the pager statistics, and the
// thrashing cliff when the estimate is ignored.
//
// Run: ./gpu_multipass [--scale=2e-4] [--dataset=FR]
#include <cstdio>

#include "core/verify.hpp"
#include "gpusim/runner.hpp"
#include "graph/datasets.hpp"
#include "graph/reorder.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace aecnc;
  const util::CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 2e-4);
  const auto id = graph::dataset_from_name(args.get("dataset", "FR"));

  const graph::Csr g =
      graph::reorder_degree_descending(graph::make_dataset(id, scale));
  const double paged_mb =
      (static_cast<double>(g.memory_bytes()) +
       static_cast<double>(g.num_directed_edges() * sizeof(CnCount))) /
      (1024.0 * 1024.0);
  std::printf("dataset %s at scale %.0e: %.1f MB to page through a %.1f MB "
              "device budget\n\n",
              std::string(graph::dataset_name(id)).c_str(), scale, paged_mb,
              12.0 * 1024 * scale);

  util::TablePrinter table({"passes", "total", "kernel", "page faults",
                            "migrated", "thrashed", "counts ok"});
  const auto reference = core::count_reference(g);
  for (const int passes : {0, 1, 2, 4, 8}) {
    gpusim::GpuRunConfig cfg;
    cfg.algorithm = core::Algorithm::kBmp;
    cfg.range_filter = true;
    cfg.rf_range_scale = 64;
    cfg.device_mem_scale = scale;
    cfg.num_passes = passes;
    const auto r = gpusim::run_gpu(g, cfg);
    const bool ok = !core::diff_counts(g, r.counts, reference).has_value();
    table.add_row({passes == 0 ? std::to_string(r.passes_used) + " (auto)"
                               : std::to_string(passes),
                   util::format_seconds(r.total_seconds),
                   util::format_seconds(r.kernel_seconds),
                   util::format_count(r.um.faults),
                   util::format_bytes(static_cast<double>(r.um.migrated_bytes)),
                   r.thrashed ? "YES" : "no", ok ? "yes" : "NO"});
  }
  table.print();
  std::printf("\ncorrectness is pass-count independent; only locality (and "
              "therefore time) changes.\n");
  return 0;
}
