// Triangle census across the dataset replicas — the classic downstream
// statistic (§2.2.2: Σ all-edge counts / 6 = triangle count), plus the
// global clustering coefficient derived from the same array.
//
// Run: ./triangle_census [--scale=2e-4]
#include <cstdio>

#include "core/api.hpp"
#include "core/verify.hpp"
#include "graph/datasets.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace aecnc;
  const util::CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 2e-4);

  util::TablePrinter table({"Dataset", "|E|", "triangles",
                            "clustering coeff", "count time"});
  for (const auto id : graph::kAllDatasets) {
    const graph::Csr g =
        graph::reorder_degree_descending(graph::make_dataset(id, scale));

    util::WallTimer timer;
    core::Options options;
    options.mps.kind = intersect::best_merge_kind();
    const auto counts = core::count_common_neighbors(g, options);
    const double elapsed = timer.seconds();

    const auto triangles = core::triangle_count_from(counts);
    // Global clustering coefficient: 3 * triangles / #wedges, with
    // #wedges = sum over v of C(d_v, 2).
    double wedges = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const double d = g.degree(v);
      wedges += d * (d - 1) / 2;
    }
    const double coeff = wedges == 0 ? 0.0 : 3.0 * static_cast<double>(triangles) / wedges;

    table.add_row({std::string(graph::dataset_name(id)),
                   util::format_count(g.num_undirected_edges()),
                   util::format_count(triangles), util::format_fixed(coeff, 4),
                   util::format_seconds(elapsed)});
  }
  table.print();
  return 0;
}
