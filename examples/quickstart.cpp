// Quickstart: the 30-second tour of the aecnc public API.
//
//   1. Build a graph (from an edge list; loaders in graph/io.hpp).
//   2. Pick an algorithm in core::Options.
//   3. count_common_neighbors() returns cnt[e(u,v)] for every directed
//      CSR slot.
//
// Run: ./quickstart
#include <cstdio>

#include "core/api.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace aecnc;

  // A small social-style power-law graph: 2,000 users, 16,000 ties.
  const graph::Csr g = graph::Csr::from_edge_list(
      graph::chung_lu_power_law(/*num_vertices=*/2000, /*num_edges=*/16000,
                                /*exponent=*/2.3, /*seed=*/42));
  std::printf("graph: %u vertices, %llu undirected edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_undirected_edges()));

  // Default options: parallel MPS with the paper's skew threshold t = 50
  // and the widest vector kernel this CPU supports.
  core::Options options;
  options.mps.kind = intersect::best_merge_kind();
  const core::CountArray counts = core::count_common_neighbors(g, options);

  // Inspect a few edges: cnt[e] is |N(u) ∩ N(v)| for slot e = e(u, v).
  std::printf("\nfirst edges of vertex 0 (degree %u):\n", g.degree(0));
  const auto nbrs = g.neighbors(0);
  for (std::size_t k = 0; k < std::min<std::size_t>(5, nbrs.size()); ++k) {
    std::printf("  cnt[e(0,%u)] = %u common neighbors\n", nbrs[k],
                counts[g.offset_begin(0) + k]);
  }

  // The counts are symmetric and Σcnt/6 is the triangle count.
  std::printf("\nsymmetric: %s\n",
              core::counts_symmetric(g, counts) ? "yes" : "NO (bug!)");
  std::printf("triangles: %llu\n",
              static_cast<unsigned long long>(
                  core::triangle_count_from(counts)));

  // Same counts from the other two algorithm families:
  core::Options bmp = options;
  bmp.algorithm = core::Algorithm::kBmp;
  bmp.bmp_range_filter = true;
  const auto bmp_counts = core::count_with_reorder(g, bmp);
  std::printf("BMP agrees with MPS: %s\n",
              bmp_counts == counts ? "yes" : "NO (bug!)");
  return 0;
}
