// SCAN structural graph clustering on a planted-community graph — the
// paper's primary cited consumer of all-edge common neighbor counts
// (§1, §2.1: pSCAN, SCAN++, SCAN-XP all start from exactly these
// counts). Uses the scan:: library module; see src/scan/scan.hpp for
// the definitions (ε-neighborhood, cores, borders, hubs, outliers).
//
// Run: ./structural_clustering [--vertices=50000] [--eps=0.5] [--mu=3]
#include <cstdio>

#include "graph/generators.hpp"
#include "core/api.hpp"
#include "scan/scan.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace aecnc;
  const util::CliArgs args(argc, argv);
  const auto n = static_cast<VertexId>(args.get_int("vertices", 50000));
  const scan::Params params{
      .epsilon = args.get_double("eps", 0.5),
      .mu = static_cast<std::uint32_t>(args.get_int("mu", 3)),
  };

  // Planted communities: dense 32-vertex near-cliques plus sparse random
  // bridges. SCAN should recover the communities, classify the bridge
  // endpoints touching two clusters as hubs, and leave noise as outliers.
  graph::EdgeList edges(n);
  constexpr VertexId kCommunity = 32;
  for (VertexId base = 0; base + kCommunity <= n; base += kCommunity) {
    util::Xoshiro256 rng(base + 1);
    for (VertexId i = 0; i < kCommunity; ++i) {
      for (VertexId j = i + 1; j < kCommunity; ++j) {
        if (rng.uniform() < 0.8) edges.add(base + i, base + j);
      }
    }
  }
  util::Xoshiro256 rng(99);
  for (VertexId i = 0; i + kCommunity < n; i += 7) {
    edges.add(i, i + kCommunity + rng.below(kCommunity));
  }
  const graph::Csr g = graph::Csr::from_edge_list(std::move(edges));
  std::printf("graph: %u vertices, %llu edges; eps = %.2f, mu = %u\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_undirected_edges()),
              params.epsilon, params.mu);

  // Counting is the expensive step the paper accelerates; clustering on
  // top of the counts is cheap.
  util::WallTimer timer;
  core::Options count_options;
  count_options.algorithm = core::Algorithm::kBmp;  // CPU favors BMP (§5.4)
  count_options.bmp_range_filter = true;
  count_options.rf_range_scale = 64;
  const auto counts = core::count_common_neighbors(g, count_options);
  const double count_seconds = timer.seconds();

  timer.reset();
  const auto result = scan::cluster_from_counts(g, counts, params);
  const double cluster_seconds = timer.seconds();

  util::TablePrinter table({"metric", "value"});
  table.add_row({"all-edge counting", util::format_seconds(count_seconds)});
  table.add_row({"SCAN on counts", util::format_seconds(cluster_seconds)});
  table.add_row({std::string("clusters"), util::format_count(result.num_clusters)});
  table.add_row({"cores", util::format_count(result.count_role(scan::Role::kCore))});
  table.add_row({"borders", util::format_count(result.count_role(scan::Role::kBorder))});
  table.add_row({"hubs", util::format_count(result.count_role(scan::Role::kHub))});
  table.add_row({"outliers", util::format_count(result.count_role(scan::Role::kOutlier))});
  table.print();
  std::printf("\nexpected: ~%u clusters of ~%u vertices each\n",
              n / kCommunity, kCommunity);
  return 0;
}
