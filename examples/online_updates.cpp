// Online analytics demo — the paper's §1 scenario end to end: a
// co-purchasing graph receives a stream of new purchases and the
// tie-strength counts stay current via the incremental counter, orders
// of magnitude cheaper than recounting per update.
//
// Run: ./online_updates [--products=30000] [--updates=5000]
#include <cstdio>

#include "core/api.hpp"
#include "core/incremental.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace aecnc;
  const util::CliArgs args(argc, argv);
  const auto products =
      static_cast<VertexId>(args.get_int("products", 30000));
  const auto updates = static_cast<int>(args.get_int("updates", 5000));

  // Yesterday's co-purchase graph, counted once in batch mode.
  const graph::Csr base = graph::Csr::from_edge_list(
      graph::chung_lu_power_law(products, products * 8ull, 2.2, 11));
  util::WallTimer timer;
  core::IncrementalCounter live(base);
  const double bootstrap = timer.seconds();

  // Today's purchase stream: mostly popular products (low ids under the
  // Chung-Lu weighting), the regime where common-neighbor sets churn.
  util::Xoshiro256 rng(12);
  timer.reset();
  std::uint64_t applied = 0;
  for (int i = 0; i < updates; ++i) {
    const VertexId a = rng.below(products / 4);
    const VertexId b = rng.below(products);
    applied += live.add_edge(a, b) ? 1 : 0;
  }
  const double stream = timer.seconds();

  // The honest comparison: one full batch recount of the final graph.
  timer.reset();
  const graph::Csr final_graph = live.to_csr();
  const auto batch_counts = core::count_common_neighbors(final_graph);
  const double recount = timer.seconds();

  util::TablePrinter table({"metric", "value"});
  table.add_row({"products", util::format_count(products)});
  table.add_row({"base co-purchase pairs",
                 util::format_count(base.num_undirected_edges())});
  table.add_row({"bootstrap (batch count)", util::format_seconds(bootstrap)});
  table.add_row({"stream updates applied", util::format_count(applied)});
  table.add_row({"incremental total", util::format_seconds(stream)});
  table.add_row({"incremental per update",
                 util::format_seconds(stream / std::max<std::uint64_t>(1, applied))});
  table.add_row({"one full recount", util::format_seconds(recount)});
  table.add_row({"recount / per-update ratio",
                 util::format_speedup(recount / (stream / std::max<std::uint64_t>(
                                                              1, applied)))});
  table.add_row({"live triangles", util::format_count(live.triangles())});
  table.print();

  // Self-check: the maintained counts equal the batch recount.
  if (core::triangle_count_from(batch_counts) != live.triangles()) {
    std::fprintf(stderr, "MISMATCH between incremental and batch counts!\n");
    return 1;
  }
  std::printf("\nincremental state verified against the batch recount.\n");
  return 0;
}
