// Product recommendation on a co-purchasing graph — the paper's §1
// motivating application ("online platforms maintain graphs of user
// co-purchasing relations and analyze the data on the fly to recommend
// products of potential interest").
//
// The common neighbor count of a co-purchased pair (a, b) measures how
// strongly the two products travel together: many shared co-purchase
// partners = a robust association, a single noisy co-purchase = weak.
// For each product we rank its co-purchased neighbors by count and emit
// the top "customers who bought X also bought ..." list.
//
// Run: ./product_recommendation [--products=200000] [--top=3]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/api.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace aecnc;
  const util::CliArgs args(argc, argv);
  const auto num_products =
      static_cast<VertexId>(args.get_int("products", 200000));
  const auto top_k = static_cast<std::size_t>(args.get_int("top", 3));

  // Synthetic co-purchasing graph: product popularity is heavy-tailed
  // (a few bestsellers, a long tail), which is exactly the degree-skew
  // regime MPS's pivot-skip path handles.
  const graph::Csr g = graph::Csr::from_edge_list(graph::chung_lu_power_law(
      num_products, static_cast<std::uint64_t>(num_products) * 8,
      /*exponent=*/2.1, /*seed=*/7));
  std::printf("catalog: %u products, %llu co-purchase pairs\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_undirected_edges()));

  // The online-analytics step the paper accelerates: all-edge common
  // neighbor counting over the whole catalog.
  util::WallTimer timer;
  core::Options options;  // parallel MPS, t = 50
  options.mps.kind = intersect::best_merge_kind();
  const auto counts = core::count_common_neighbors(g, options);
  std::printf("all-edge counting: %s (in-memory processing time)\n\n",
              util::format_seconds(timer.seconds()).c_str());

  // Recommendations for a few mid-popularity products.
  std::printf("sample recommendations (top-%zu by association strength):\n",
              top_k);
  int shown = 0;
  for (VertexId product = 0; product < g.num_vertices() && shown < 5;
       ++product) {
    if (g.degree(product) < 8 || g.degree(product) > 24) continue;
    ++shown;

    struct Scored {
      VertexId other;
      CnCount strength;
    };
    std::vector<Scored> scored;
    const auto nbrs = g.neighbors(product);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      scored.push_back({nbrs[k], counts[g.offset_begin(product) + k]});
    }
    std::partial_sort(scored.begin(),
                      scored.begin() + std::min(top_k, scored.size()),
                      scored.end(), [](const Scored& a, const Scored& b) {
                        return a.strength > b.strength;
                      });

    std::printf("  product #%u (bought with %u others):", product,
                g.degree(product));
    for (std::size_t k = 0; k < std::min(top_k, scored.size()); ++k) {
      std::printf(" #%u(%u shared)", scored[k].other, scored[k].strength);
    }
    std::printf("\n");
  }
  return 0;
}
