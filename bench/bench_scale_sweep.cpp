// Validation: native time vs replica scale.
//
// The whole reproduction rests on per-edge behaviour being roughly
// scale-invariant (profiles are scaled linearly to the paper's regime).
// This bench measures native sequential MPS and BMP across replica
// scales: time per directed edge should stay within a small band as the
// graph grows 16x, and any super-linear drift (cache fall-off) is
// visible directly.
#include <cstdio>

#include "bench/common.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(args, {graph::DatasetId::kTwitter});
  bench::print_banner("Validation: native time vs replica scale",
                      "per-edge cost should stay near-flat across scales "
                      "(supports the linear profile scaling)",
                      options);

  for (const auto id : options.datasets) {
    std::printf("== dataset %.*s ==\n",
                static_cast<int>(graph::dataset_name(id).size()),
                graph::dataset_name(id).data());
    util::TablePrinter table({"scale", "|E|", "MPS total", "MPS ns/edge",
                              "BMP total", "BMP ns/edge"});
    for (const double scale : {5e-5, 1e-4, 2e-4, 4e-4, 8e-4}) {
      const auto g = bench::make_bench_graph(id, scale);
      const double edges = static_cast<double>(g.csr.num_undirected_edges());
      const double mps = perf::time_native(
          g.csr, bench::opt_mps_seq(intersect::best_merge_kind()), 2);
      const double bmp = perf::time_native(g.csr, bench::opt_bmp_seq(false), 2);
      table.add_row({util::format_fixed(scale * 1e4, 1) + "e-4",
                     util::format_count(g.csr.num_undirected_edges()),
                     util::format_seconds(mps),
                     util::format_fixed(mps / edges * 1e9, 0),
                     util::format_seconds(bmp),
                     util::format_fixed(bmp / edges * 1e9, 0)});
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
