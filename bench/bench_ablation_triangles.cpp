// Ablation: all-edge counting vs dedicated triangle counting (§2.2.2).
//
// Deriving the triangle count from the all-edge array costs the full
// N(u) ∩ N(v) per edge plus |E| stored counts; a dedicated counter with
// symmetric breaking intersects only the forward sets N+(u) ∩ N+(v).
// This quantifies the extra work the all-edge problem pays for producing
// the per-edge counts downstream applications need.
#include <cstdio>

#include "bench/common.hpp"
#include "core/triangle.hpp"
#include "core/verify.hpp"
#include "util/timer.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(args);
  bench::print_banner("Ablation: all-edge counting vs triangle counting",
                      "triangle counting intersects only forward sets "
                      "(§2.2.2) — strictly less work, but no edge counts",
                      options);

  util::TablePrinter table({"Dataset", "all-edge (MPS) + sum/6",
                            "tri merge-fwd", "tri hash-fwd", "triangles"});
  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);

    util::WallTimer timer;
    const auto counts = core::count_common_neighbors(
        g.csr, bench::opt_mps_seq(intersect::best_merge_kind()));
    const auto derived = core::triangle_count_from(counts);
    const double all_edge = timer.seconds();

    timer.reset();
    const auto merge_tri =
        core::count_triangles(g.csr, core::TriangleAlgorithm::kMergeForward, 1);
    const double merge_time = timer.seconds();

    timer.reset();
    const auto hash_tri =
        core::count_triangles(g.csr, core::TriangleAlgorithm::kHashForward, 1);
    const double hash_time = timer.seconds();

    if (merge_tri != derived || hash_tri != derived) {
      std::fprintf(stderr, "triangle count mismatch on %.*s!\n",
                   static_cast<int>(graph::dataset_name(id).size()),
                   graph::dataset_name(id).data());
      return 1;
    }
    table.add_row({std::string(graph::dataset_name(id)),
                   util::format_seconds(all_edge),
                   util::format_seconds(merge_time),
                   util::format_seconds(hash_time),
                   util::format_count(derived)});
  }
  table.print();
  return 0;
}
