// Figure 4 — Effect of vectorization for MPS.
//
// This host has both AVX2 and AVX-512F, so the vectorized kernels run
// NATIVELY here: the "native" column is real silicon executing the exact
// instruction sequences the paper ran (AVX2 on their Xeon, AVX-512 on
// their KNL). Modeled columns add the paper-machine projection.
// Paper: MPS-AVX2 1.9-2.0x and MPS-AVX-512 2.6x/2.5x over scalar MPS;
// BMP beats vectorized MPS on TW, loses on FR (KNL).
#include <cstdio>

#include "bench/common.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(args);
  bench::print_banner("Figure 4: effect of vectorization",
                      "AVX2 ~2x, AVX-512 ~2.5-2.6x over scalar MPS; "
                      "BMP < MPS-AVX512 on TW, > on FR(KNL)",
                      options);

  util::TablePrinter table({"Dataset", "Variant", "native (this host)",
                            "native x", "CPU model x", "KNL model x"});
  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);

    struct Variant {
      const char* name;
      core::Options opt;
    };
    const Variant variants[] = {
        {"MPS-scalar", bench::opt_mps_seq(intersect::MergeKind::kScalar)},
        {"MPS-SSE", bench::opt_mps_seq(intersect::MergeKind::kSse)},
        {"MPS-AVX2", bench::opt_mps_seq(intersect::MergeKind::kAvx2)},
        {"MPS-AVX512", bench::opt_mps_seq(intersect::MergeKind::kAvx512)},
        {"BMP", bench::opt_bmp_seq(false)},
    };

    double native_base = 0, cpu_base = 0, knl_base = 0;
    for (const Variant& v : variants) {
      if (!intersect::merge_kind_supported(v.opt.mps.kind)) {
        table.add_row({std::string(graph::dataset_name(id)), v.name,
                       "(unsupported)", "-", "-", "-"});
        continue;
      }
      const double native = perf::time_native(g.csr, v.opt, 3);
      const auto profile = bench::paper_scale_profile(g, v.opt);
      const double cpu =
          perf::model_cpu_like(perf::xeon_e5_2680_spec(), profile, 1).seconds;
      const double knl =
          perf::model_cpu_like(perf::knl_7210_spec(), profile, 1).seconds;
      if (native_base == 0) {
        native_base = native;
        cpu_base = cpu;
        knl_base = knl;
      }
      table.add_row({std::string(graph::dataset_name(id)), v.name,
                     util::format_seconds(native),
                     util::format_speedup(native_base / native),
                     util::format_speedup(cpu_base / cpu),
                     util::format_speedup(knl_base / knl)});
    }
  }
  table.print();
  std::printf(
      "\nnote: 'native x' is measured on this machine's real AVX2/AVX-512F\n"
      "units; model columns project onto the paper's Xeon and KNL.\n");
  return 0;
}
