// Table 6 — Memory consumption of data structures and estimated number
// of passes, from the paper's estimator
//   ceil(Mem_paged / (Mem_global - Mem_reserved - Mem_BA)),
// with 4 warps per block (=> 480 bitmaps for BMP on the 30-SM card).
// Device memory and reserve are scaled by the replica scale so the
// replica faces the same relative pressure as the full graphs on 12 GB.
#include <cstdio>

#include "bench/common.hpp"
#include "gpusim/runner.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(args);
  bench::print_banner("Table 6: GPU memory consumption and estimated passes",
                      "pass estimator avoids unified-memory thrashing; "
                      "BMP reserves 480 x |V|-bit bitmaps",
                      options);

  util::TablePrinter table({"Dataset", "Algo", "paged bytes (CSR+cnt)",
                            "bitmap pool", "device mem (scaled)",
                            "est. passes"});
  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);
    for (const auto algo : {core::Algorithm::kMps, core::Algorithm::kBmp}) {
      gpusim::GpuRunConfig cfg;
      cfg.algorithm = algo;
      cfg.device_mem_scale = options.scale;
      const auto r = gpusim::run_gpu(g.csr, cfg);
      const double paged =
          static_cast<double>(g.csr.memory_bytes()) +
          static_cast<double>(g.csr.num_directed_edges() * sizeof(CnCount));
      table.add_row({std::string(graph::dataset_name(id)),
                     algo == core::Algorithm::kMps ? "MPS" : "BMP",
                     util::format_bytes(paged),
                     util::format_bytes(static_cast<double>(r.bitmap_pool_bytes)),
                     util::format_bytes(cfg.spec.global_mem_bytes *
                                        options.scale),
                     std::to_string(r.estimated_passes)});
    }
  }
  table.print();
  return 0;
}
