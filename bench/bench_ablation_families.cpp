// Ablation: set-intersection families for all-edge counting (design
// decision #5 plus the §2.2.1 related-work comparators).
//
//   - M          : plain merge (baseline)
//   - MPS        : hybrid pivot-skip + vectorized block merge
//   - BMP / +RF  : dynamic dense bitmap (the paper's index choice)
//   - sparse-bmp : precomputed offset+bit-state bitmaps ([1,13,16])
//   - hash-index : dynamic per-vertex hash set ([5,12,20,23])
//
// Also quantifies the degree-descending reorder's effect on BMP (its
// O(min(d_u,d_v)) precondition).
#include <cstdio>

#include "bench/common.hpp"
#include "core/comparators.hpp"
#include "graph/reorder.hpp"
#include "util/timer.hpp"

using namespace aecnc;

namespace {

template <typename Fn>
double time_call(Fn&& fn, int reps = 2) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    util::WallTimer timer;
    const auto counts = fn();
    if (!counts.empty() && counts[0] == ~CnCount{0}) std::abort();
    best = std::min(best, timer.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(args);
  bench::print_banner("Ablation: intersection families + reorder effect",
                      "BMP's dynamic bitmap vs offline sparse bitmaps vs "
                      "hash index; reorder gives BMP O(min(du,dv))",
                      options);

  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);  // reordered
    const graph::Csr unordered = graph::make_dataset(id, options.scale);

    std::printf("== dataset %.*s ==\n",
                static_cast<int>(graph::dataset_name(id).size()),
                graph::dataset_name(id).data());
    util::TablePrinter table({"family", "native seq"});
    table.add_row({"M (merge)",
                   util::format_seconds(perf::time_native(
                       g.csr, bench::opt_m_seq(), 2))});
    table.add_row({"MPS (hybrid)",
                   util::format_seconds(perf::time_native(
                       g.csr, bench::opt_mps_seq(intersect::best_merge_kind()),
                       2))});
    table.add_row({"BMP (dyn bitmap)",
                   util::format_seconds(perf::time_native(
                       g.csr, bench::opt_bmp_seq(false), 2))});
    table.add_row({"BMP-RF",
                   util::format_seconds(perf::time_native(
                       g.csr, bench::opt_bmp_seq(true), 2))});
    table.add_row({"sparse-bitmap (offline)",
                   util::format_seconds(time_call(
                       [&] { return core::count_sparse_bitmap(g.csr); }))});
    table.add_row({"hash-index (dyn)",
                   util::format_seconds(time_call(
                       [&] { return core::count_hash_index(g.csr); }))});
    table.add_row({"BMP w/o degree reorder",
                   util::format_seconds(perf::time_native(
                       unordered, bench::opt_bmp_seq(false), 2))});
    table.print();
    std::printf("\n");
  }
  return 0;
}
