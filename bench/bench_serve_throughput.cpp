// Serve-layer throughput: queries/s for point queries cold vs cached,
// cached speedup over recomputing the pair's intersection, and bulk
// batch throughput vs the equivalent all-edge batch run.
//
// This is the first serving-shape benchmark (extension beyond the
// paper's tables): the batch kernels answer "how fast can we count
// every edge once", the serve layer answers "how fast can we keep
// answering point/batch queries against a long-lived snapshot". Emits
// BENCH_serve.json next to the human-readable table so the perf
// trajectory of the service is tracked across PRs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "serve/service.hpp"
#include "update/pipeline.hpp"
#include "util/timer.hpp"

using namespace aecnc;

namespace {

/// Deterministic xorshift stream for edge sampling.
std::uint64_t next_rand(std::uint64_t& x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

/// One arm of the sustained mixed query/mutation workload.
struct MixedResult {
  double p50_ns = 0;
  double p99_ns = 0;
  double hit_rate = 0;
  double qps = 0;
  std::uint64_t carried = 0;
};

double percentile(std::vector<std::uint64_t>& ns, double q) {
  if (ns.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(ns.size() - 1));
  std::nth_element(ns.begin(), ns.begin() + static_cast<std::ptrdiff_t>(idx),
                   ns.end());
  return static_cast<double>(ns[idx]);
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(
      args, {graph::DatasetId::kTwitter});
  // Serving benchmarks default to a larger replica than the all-edge
  // benches: at the shared default scale the adjacency lists are a
  // handful of entries, so "recompute the intersection" measures call
  // overhead rather than intersection work and the cached-speedup ratio
  // is meaningless. 20k point queries + one all-edge run stay
  // seconds-level at this size. --scale still overrides.
  if (!args.has("scale")) options.scale = 4 * bench::kDefaultScale;
  const auto queries =
      static_cast<std::size_t>(args.get_int("queries", 20000));
  const std::string json_path = args.get("json", "BENCH_serve.json");
  bench::print_banner(
      "Serve throughput: point queries cold vs cached, batch vs all-edge",
      "a result cache must make repeat point queries >= 10x cheaper than "
      "recomputing the intersection; coalesced batches should stay within "
      "1.5x of the one-shot all-edge run",
      options);

  const auto id = options.datasets.front();
  const auto g = bench::make_bench_graph(id, options.scale);

  // Sample `queries` forward edges (with repeats) as the point workload.
  std::vector<serve::EdgeQuery> workload;
  workload.reserve(queries);
  std::vector<serve::EdgeQuery> forward;
  for (VertexId u = 0; u < g.csr.num_vertices(); ++u) {
    for (const VertexId v : g.csr.neighbors(u)) {
      if (u < v) forward.push_back({u, v});
    }
  }
  std::uint64_t rng = 0x5eedULL;
  for (std::size_t i = 0; i < queries; ++i) {
    workload.push_back(forward[next_rand(rng) % forward.size()]);
  }

  serve::ServiceConfig cfg;
  cfg.engine.options.mps.kind = intersect::best_merge_kind();
  // The cached pass must not evict: the cache is set-associative, so
  // leave enough slack that no set overflows on ~`queries` distinct
  // keys.
  cfg.cache_capacity = 4 * queries;
  serve::Service svc(cfg);
  svc.publish(graph::Csr(g.csr));

  // Baseline: recompute the intersection per query, no service at all.
  util::WallTimer timer;
  std::uint64_t sink = 0;
  for (const auto& q : workload) {
    sink += core::count_edge(g.csr, q.u, q.v, cfg.engine.options);
  }
  const double recompute_s = timer.seconds();

  // Cold: every query misses (fresh epoch), count computed + cached.
  timer.reset();
  for (const auto& q : workload) sink += svc.query_edge(q.u, q.v).count;
  const double cold_s = timer.seconds();

  // Cached: identical workload again — all hits now.
  timer.reset();
  for (const auto& q : workload) sink += svc.query_edge(q.u, q.v).count;
  const double cached_s = timer.seconds();

  // Batch: every forward edge through the coalescing batch path on a
  // fresh epoch (cache invalidated), vs the one-shot all-edge kernel.
  svc.publish(graph::Csr(g.csr));
  timer.reset();
  const auto batched = svc.query_batch(forward);
  const double batch_s = timer.seconds();
  sink += batched.front().count;

  timer.reset();
  const auto all = core::count_common_neighbors(g.csr);
  const double all_edge_s = timer.seconds();
  sink += all.front();

  // Sustained mixed query/mutation traffic (docs/serving.md): rounds of
  // hot-set point queries interleaved with touched-neighborhood
  // mutations and a publish. Two arms differ only in the invalidation
  // strategy — fine-grained carry-forward vs wholesale drop-everything —
  // so the hit-rate ratio isolates exactly what the tentpole buys. Each
  // mutation batch deletes and re-adds a random edge: the staged graph
  // returns to the same shape every publish (both arms serve identical
  // counts) while the touched neighborhoods still exercise the
  // invalidation boundary.
  const std::size_t mixed_rounds = 8;
  const std::size_t mixed_queries = std::max<std::size_t>(queries / 8, 1);
  const std::size_t hot_pairs =
      std::min<std::size_t>(2048, forward.size());
  const auto run_mixed = [&](bool fine_grained) {
    serve::ServiceConfig mixed_cfg;
    mixed_cfg.engine.options.mps.kind = intersect::best_merge_kind();
    mixed_cfg.cache_capacity = 4 * queries;
    mixed_cfg.fine_grained_invalidation = fine_grained;
    serve::Service mixed_svc(mixed_cfg);
    mixed_svc.publish(graph::Csr(g.csr));

    std::uint64_t mixed_rng = 0xfeedULL;  // same stream for both arms
    std::vector<serve::EdgeQuery> hot;
    hot.reserve(hot_pairs);
    for (std::size_t i = 0; i < hot_pairs; ++i) {
      hot.push_back(forward[next_rand(mixed_rng) % forward.size()]);
    }

    MixedResult r;
    std::vector<std::uint64_t> lat;
    lat.reserve(mixed_rounds * mixed_queries);
    double query_s = 0;
    for (std::size_t round = 0; round < mixed_rounds; ++round) {
      util::WallTimer round_timer;
      for (std::size_t i = 0; i < mixed_queries; ++i) {
        const auto& q = hot[next_rand(mixed_rng) % hot.size()];
        const auto t0 = std::chrono::steady_clock::now();
        sink += mixed_svc.query_edge(q.u, q.v).count;
        lat.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
      }
      query_s += round_timer.seconds();
      for (std::size_t m = 0; m < 16; ++m) {
        const auto& e = forward[next_rand(mixed_rng) % forward.size()];
        const update::Mutation flip[] = {
            {update::kDelEdge, e.u, e.v},
            {update::kAddEdge, e.u, e.v},
        };
        (void)mixed_svc.apply_updates(flip);
      }
      (void)mixed_svc.publish();
    }

    const serve::ServiceStats stats = mixed_svc.stats();
    const double lookups =
        static_cast<double>(stats.cache.hits + stats.cache.misses);
    r.hit_rate =
        lookups > 0 ? static_cast<double>(stats.cache.hits) / lookups : 0;
    r.carried = stats.cache.carried_forward;
    r.p50_ns = percentile(lat, 0.50);
    r.p99_ns = percentile(lat, 0.99);
    r.qps = query_s > 0
                ? static_cast<double>(lat.size()) / query_s
                : 0;
    return r;
  };
  const MixedResult mixed_fine = run_mixed(true);
  const MixedResult mixed_wholesale = run_mixed(false);
  // The ratio the regression gate holds >= 1.0 (carry-forward must never
  // lose to dropping the whole cache). Clamped so a degenerate
  // zero-hit-rate baseline cannot emit inf/NaN into the JSON.
  const double hit_rate_ratio =
      mixed_wholesale.hit_rate > 0
          ? mixed_fine.hit_rate / mixed_wholesale.hit_rate
          : (mixed_fine.hit_rate > 0 ? 99.0 : 1.0);

  const double n_queries = static_cast<double>(queries);
  const double n_edges = static_cast<double>(forward.size());
  const double qps_recompute = n_queries / recompute_s;
  const double qps_cold = n_queries / cold_s;
  const double qps_cached = n_queries / cached_s;
  const double cached_speedup = recompute_s / cached_s;
  const double batch_eps = n_edges / batch_s;
  const double all_edge_eps = n_edges / all_edge_s;

  util::TablePrinter table({"path", "throughput", "note"});
  table.add_row({"point recompute (no service)",
                 util::format_count(static_cast<std::uint64_t>(qps_recompute)) +
                     " q/s",
                 "baseline"});
  table.add_row({"point cold (miss + fill)",
                 util::format_count(static_cast<std::uint64_t>(qps_cold)) +
                     " q/s",
                 "cache overhead on top of recompute"});
  table.add_row({"point cached (all hits)",
                 util::format_count(static_cast<std::uint64_t>(qps_cached)) +
                     " q/s",
                 util::format_fixed(cached_speedup, 1) + "x vs recompute"});
  table.add_row({"bulk batch (serve)",
                 util::format_count(static_cast<std::uint64_t>(batch_eps)) +
                     " edges/s",
                 util::format_fixed(all_edge_s > 0 ? batch_s / all_edge_s : 0.0,
                                    2) +
                     "x all-edge time"});
  table.add_row({"all-edge run (batch kernel)",
                 util::format_count(static_cast<std::uint64_t>(all_edge_eps)) +
                     " edges/s",
                 "one-shot reference"});
  table.add_row({"mixed fine-grained (carry-forward)",
                 util::format_count(static_cast<std::uint64_t>(mixed_fine.qps)) +
                     " q/s",
                 "p99 " + util::format_count(static_cast<std::uint64_t>(
                              mixed_fine.p99_ns)) +
                     "ns, hit rate " +
                     util::format_fixed(100 * mixed_fine.hit_rate, 1) + "%"});
  table.add_row(
      {"mixed wholesale (drop cache on publish)",
       util::format_count(static_cast<std::uint64_t>(mixed_wholesale.qps)) +
           " q/s",
       "p99 " +
           util::format_count(
               static_cast<std::uint64_t>(mixed_wholesale.p99_ns)) +
           "ns, hit rate " +
           util::format_fixed(100 * mixed_wholesale.hit_rate, 1) + "%"});
  table.print();
  std::printf("(sink %llu keeps the loops live)\n",
              static_cast<unsigned long long>(sink & 0xff));

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"experiment\": \"serve_throughput\",\n"
               "  \"dataset\": \"%.*s\",\n"
               "  \"scale\": %g,\n"
               "  \"point_queries\": %zu,\n"
               "  \"batch_edges\": %zu,\n"
               "  \"qps_recompute\": %.1f,\n"
               "  \"qps_cold\": %.1f,\n"
               "  \"qps_cached\": %.1f,\n"
               "  \"cached_speedup_vs_recompute\": %.2f,\n"
               "  \"batch_edges_per_s\": %.1f,\n"
               "  \"all_edge_edges_per_s\": %.1f,\n"
               "  \"batch_time_over_all_edge_time\": %.3f,\n"
               "  \"mixed\": {\n"
               "    \"rounds\": %zu,\n"
               "    \"queries_per_round\": %zu,\n"
               "    \"fine\": {\n"
               "      \"p50_ns\": %.1f,\n"
               "      \"p99_ns\": %.1f,\n"
               "      \"hit_rate\": %.4f,\n"
               "      \"qps\": %.1f,\n"
               "      \"carried_forward\": %llu\n"
               "    },\n"
               "    \"wholesale\": {\n"
               "      \"p50_ns\": %.1f,\n"
               "      \"p99_ns\": %.1f,\n"
               "      \"hit_rate\": %.4f,\n"
               "      \"qps\": %.1f,\n"
               "      \"carried_forward\": %llu\n"
               "    }\n"
               "  },\n"
               "  \"mixed_hit_rate_vs_wholesale\": %.3f\n"
               "}\n",
               static_cast<int>(graph::dataset_name(id).size()),
               graph::dataset_name(id).data(), options.scale, queries,
               forward.size(), qps_recompute, qps_cold, qps_cached,
               cached_speedup, batch_eps, all_edge_eps,
               all_edge_s > 0 ? batch_s / all_edge_s : 0.0, mixed_rounds,
               mixed_queries, mixed_fine.p50_ns, mixed_fine.p99_ns,
               mixed_fine.hit_rate, mixed_fine.qps,
               static_cast<unsigned long long>(mixed_fine.carried),
               mixed_wholesale.p50_ns, mixed_wholesale.p99_ns,
               mixed_wholesale.hit_rate, mixed_wholesale.qps,
               static_cast<unsigned long long>(mixed_wholesale.carried),
               hit_rate_ratio);
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
