// Serve-layer throughput: queries/s for point queries cold vs cached,
// cached speedup over recomputing the pair's intersection, and bulk
// batch throughput vs the equivalent all-edge batch run.
//
// This is the first serving-shape benchmark (extension beyond the
// paper's tables): the batch kernels answer "how fast can we count
// every edge once", the serve layer answers "how fast can we keep
// answering point/batch queries against a long-lived snapshot". Emits
// BENCH_serve.json next to the human-readable table so the perf
// trajectory of the service is tracked across PRs.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "serve/service.hpp"
#include "util/timer.hpp"

using namespace aecnc;

namespace {

/// Deterministic xorshift stream for edge sampling.
std::uint64_t next_rand(std::uint64_t& x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(
      args, {graph::DatasetId::kTwitter});
  // Serving benchmarks default to a larger replica than the all-edge
  // benches: at the shared default scale the adjacency lists are a
  // handful of entries, so "recompute the intersection" measures call
  // overhead rather than intersection work and the cached-speedup ratio
  // is meaningless. 20k point queries + one all-edge run stay
  // seconds-level at this size. --scale still overrides.
  if (!args.has("scale")) options.scale = 4 * bench::kDefaultScale;
  const auto queries =
      static_cast<std::size_t>(args.get_int("queries", 20000));
  const std::string json_path = args.get("json", "BENCH_serve.json");
  bench::print_banner(
      "Serve throughput: point queries cold vs cached, batch vs all-edge",
      "a result cache must make repeat point queries >= 10x cheaper than "
      "recomputing the intersection; coalesced batches should stay within "
      "1.5x of the one-shot all-edge run",
      options);

  const auto id = options.datasets.front();
  const auto g = bench::make_bench_graph(id, options.scale);

  // Sample `queries` forward edges (with repeats) as the point workload.
  std::vector<serve::EdgeQuery> workload;
  workload.reserve(queries);
  std::vector<serve::EdgeQuery> forward;
  for (VertexId u = 0; u < g.csr.num_vertices(); ++u) {
    for (const VertexId v : g.csr.neighbors(u)) {
      if (u < v) forward.push_back({u, v});
    }
  }
  std::uint64_t rng = 0x5eedULL;
  for (std::size_t i = 0; i < queries; ++i) {
    workload.push_back(forward[next_rand(rng) % forward.size()]);
  }

  serve::ServiceConfig cfg;
  cfg.engine.options.mps.kind = intersect::best_merge_kind();
  // The cached pass must not evict: the cache is set-associative, so
  // leave enough slack that no set overflows on ~`queries` distinct
  // keys.
  cfg.cache_capacity = 4 * queries;
  serve::Service svc(cfg);
  svc.publish(graph::Csr(g.csr));

  // Baseline: recompute the intersection per query, no service at all.
  util::WallTimer timer;
  std::uint64_t sink = 0;
  for (const auto& q : workload) {
    sink += core::count_edge(g.csr, q.u, q.v, cfg.engine.options);
  }
  const double recompute_s = timer.seconds();

  // Cold: every query misses (fresh epoch), count computed + cached.
  timer.reset();
  for (const auto& q : workload) sink += svc.query_edge(q.u, q.v).count;
  const double cold_s = timer.seconds();

  // Cached: identical workload again — all hits now.
  timer.reset();
  for (const auto& q : workload) sink += svc.query_edge(q.u, q.v).count;
  const double cached_s = timer.seconds();

  // Batch: every forward edge through the coalescing batch path on a
  // fresh epoch (cache invalidated), vs the one-shot all-edge kernel.
  svc.publish(graph::Csr(g.csr));
  timer.reset();
  const auto batched = svc.query_batch(forward);
  const double batch_s = timer.seconds();
  sink += batched.front().count;

  timer.reset();
  const auto all = core::count_common_neighbors(g.csr);
  const double all_edge_s = timer.seconds();
  sink += all.front();

  const double n_queries = static_cast<double>(queries);
  const double n_edges = static_cast<double>(forward.size());
  const double qps_recompute = n_queries / recompute_s;
  const double qps_cold = n_queries / cold_s;
  const double qps_cached = n_queries / cached_s;
  const double cached_speedup = recompute_s / cached_s;
  const double batch_eps = n_edges / batch_s;
  const double all_edge_eps = n_edges / all_edge_s;

  util::TablePrinter table({"path", "throughput", "note"});
  table.add_row({"point recompute (no service)",
                 util::format_count(static_cast<std::uint64_t>(qps_recompute)) +
                     " q/s",
                 "baseline"});
  table.add_row({"point cold (miss + fill)",
                 util::format_count(static_cast<std::uint64_t>(qps_cold)) +
                     " q/s",
                 "cache overhead on top of recompute"});
  table.add_row({"point cached (all hits)",
                 util::format_count(static_cast<std::uint64_t>(qps_cached)) +
                     " q/s",
                 util::format_fixed(cached_speedup, 1) + "x vs recompute"});
  table.add_row({"bulk batch (serve)",
                 util::format_count(static_cast<std::uint64_t>(batch_eps)) +
                     " edges/s",
                 util::format_fixed(all_edge_s > 0 ? batch_s / all_edge_s : 0.0,
                                    2) +
                     "x all-edge time"});
  table.add_row({"all-edge run (batch kernel)",
                 util::format_count(static_cast<std::uint64_t>(all_edge_eps)) +
                     " edges/s",
                 "one-shot reference"});
  table.print();
  std::printf("(sink %llu keeps the loops live)\n",
              static_cast<unsigned long long>(sink & 0xff));

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"experiment\": \"serve_throughput\",\n"
               "  \"dataset\": \"%.*s\",\n"
               "  \"scale\": %g,\n"
               "  \"point_queries\": %zu,\n"
               "  \"batch_edges\": %zu,\n"
               "  \"qps_recompute\": %.1f,\n"
               "  \"qps_cold\": %.1f,\n"
               "  \"qps_cached\": %.1f,\n"
               "  \"cached_speedup_vs_recompute\": %.2f,\n"
               "  \"batch_edges_per_s\": %.1f,\n"
               "  \"all_edge_edges_per_s\": %.1f,\n"
               "  \"batch_time_over_all_edge_time\": %.3f\n"
               "}\n",
               static_cast<int>(graph::dataset_name(id).size()),
               graph::dataset_name(id).data(), options.scale, queries,
               forward.size(), qps_recompute, qps_cold, qps_cached,
               cached_speedup, batch_eps, all_edge_eps,
               all_edge_s > 0 ? batch_s / all_edge_s : 0.0);
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
