// Ablation: MPS's degree-skew threshold t (design decision #2).
//
// The paper fixes t = 50 empirically (§5.1 footnote 1). Sweeping t shows
// the crossover: small t sends balanced pairs down the pivot-skip path
// (search overhead dominates), huge t degrades MPS to pure VB on skewed
// pairs (hub merges dominate). The sweet spot should sit near 50 on the
// skewed graphs, and the curve should be flat on FR (no skew to route).
#include <cstdio>

#include "bench/common.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(args);
  bench::print_banner("Ablation: MPS skew threshold t",
                      "paper fixes t = 50; crossover should sit nearby",
                      options);

  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);
    std::printf("== dataset %.*s ==\n",
                static_cast<int>(graph::dataset_name(id).size()),
                graph::dataset_name(id).data());
    util::TablePrinter table({"t", "native", "PS-path edges", "CPU model"});
    for (const double t : {2.0, 10.0, 25.0, 50.0, 100.0, 400.0, 1e18}) {
      core::Options o = bench::opt_mps_seq(intersect::best_merge_kind());
      o.mps.skew_threshold = t;
      const double native = perf::time_native(g.csr, o, 2);
      const auto profile = bench::paper_scale_profile(g, o);
      const double cpu =
          perf::model_cpu_like(perf::xeon_e5_2680_spec(), profile, 1).seconds;
      // PS-path edges show up as intersections with search steps.
      const auto& w = profile.work;
      const std::string ps_share =
          w.intersections == 0
              ? "-"
              : util::format_count(w.gallop_steps + w.binary_steps);
      table.add_row({t > 1e17 ? "inf" : util::format_fixed(t, 0),
                     util::format_seconds(native), ps_share,
                     util::format_seconds(cpu)});
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
