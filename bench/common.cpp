#include "bench/common.hpp"

#include <cstdio>
#include <sstream>

#include "graph/reorder.hpp"

namespace aecnc::bench {

BenchGraph make_bench_graph(graph::DatasetId id, double scale) {
  BenchGraph g{id, scale,
               graph::reorder_degree_descending(graph::make_dataset(id, scale))};
  return g;
}

BenchOptions parse_bench_options(
    const util::CliArgs& args,
    std::initializer_list<graph::DatasetId> default_datasets) {
  BenchOptions options;
  options.scale = args.get_double("scale", kDefaultScale);
  if (args.has("datasets")) {
    std::istringstream list(args.get("datasets", ""));
    std::string name;
    while (std::getline(list, name, ',')) {
      options.datasets.push_back(graph::dataset_from_name(name));
    }
  } else {
    options.datasets.assign(default_datasets);
  }
  return options;
}

void print_banner(std::string_view experiment, std::string_view paper_claim,
                  const BenchOptions& options) {
  std::printf("=== %.*s ===\n", static_cast<int>(experiment.size()),
              experiment.data());
  std::printf("paper: %.*s\n", static_cast<int>(paper_claim.size()),
              paper_claim.data());
  std::printf("setup: replica scale %.0e, datasets", options.scale);
  for (const auto id : options.datasets) {
    std::printf(" %.*s", static_cast<int>(graph::dataset_name(id).size()),
                graph::dataset_name(id).data());
  }
  std::printf("\n\n");
}

core::Options opt_m_seq() {
  core::Options o;
  o.algorithm = core::Algorithm::kMergeBaseline;
  o.parallel = false;
  return o;
}

core::Options opt_mps_seq(intersect::MergeKind kind) {
  core::Options o;
  o.algorithm = core::Algorithm::kMps;
  o.mps.kind = kind;
  o.parallel = false;
  return o;
}

core::Options opt_bmp_seq(bool range_filter) {
  core::Options o;
  o.algorithm = core::Algorithm::kBmp;
  o.bmp_range_filter = range_filter;
  o.rf_range_scale = kReplicaRfScale;
  o.parallel = false;
  return o;
}

perf::WorkProfile paper_scale_profile(const BenchGraph& g,
                                      const core::Options& o) {
  return perf::scale_profile(perf::collect_profile(g.csr, o).profile,
                             1.0 / g.scale);
}

}  // namespace aecnc::bench
