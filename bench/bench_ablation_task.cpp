// Ablation: task size |T| and task granularity (design decisions #4 and
// §4's two task types).
//
// Fine-grained tasks of |T| edges trade scheduling overhead (small |T|)
// against load balance (large |T|); coarse-grained per-vertex tasks are
// the GPU's choice, available on the CPU skeleton for comparison. On
// skewed graphs a huge |T| or per-vertex tasks strand one worker on a
// hub while others idle — invisible with 1 host core, so the native
// column mainly shows the scheduling overhead side, and the paper's load
// balance argument is noted per row.
#include <cstdio>

#include "bench/common.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(args);
  bench::print_banner("Ablation: task size |T| and granularity",
                      "fixed fine-grained |T| balances overhead vs load "
                      "balance (paper §4); coarse tasks use |T| = 1 vertex",
                      options);

  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);
    std::printf("== dataset %.*s ==\n",
                static_cast<int>(graph::dataset_name(id).size()),
                graph::dataset_name(id).data());
    util::TablePrinter table({"tasking", "native (parallel skeleton)"});
    for (const std::uint32_t task : {1u, 16u, 256u, 1024u, 16384u, 1u << 20}) {
      core::Options o;
      o.algorithm = core::Algorithm::kMps;
      o.mps.kind = intersect::best_merge_kind();
      o.task_size = task;
      const double t = perf::time_native(g.csr, o, 2);
      table.add_row({"fine |T|=" + std::to_string(task),
                     util::format_seconds(t)});
    }
    core::Options coarse;
    coarse.algorithm = core::Algorithm::kMps;
    coarse.mps.kind = intersect::best_merge_kind();
    coarse.granularity = core::TaskGranularity::kCoarseGrained;
    table.add_row({"coarse (1 vertex/task)",
                   util::format_seconds(perf::time_native(g.csr, coarse, 2))});
    core::Options pool;
    pool.algorithm = core::Algorithm::kMps;
    pool.mps.kind = intersect::best_merge_kind();
    pool.scheduler = core::Scheduler::kTaskPool;
    table.add_row({"fine |T|=1024 (task-pool)",
                   util::format_seconds(perf::time_native(g.csr, pool, 2))});
    table.print();
    std::printf("\n");
  }
  return 0;
}
