// Shared infrastructure for the per-table/figure benchmark harnesses.
//
// Every bench binary regenerates one table or figure of the paper on the
// synthetic dataset replicas: it prints the same rows/series the paper
// reports, next to the paper's own numbers where it states them, so the
// *shape* comparison (who wins, by roughly what factor, where crossovers
// fall) is immediate. Absolute values are not expected to match — the
// replicas are ~1000x smaller and two of the three processors are
// modeled (see DESIGN.md).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/api.hpp"
#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "perf/collect.hpp"
#include "perf/models.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace aecnc::bench {

/// Default replica scale for the harnesses: keeps even the unoptimized
/// baseline M in the seconds range on one core.
inline constexpr double kDefaultScale = 5e-4;

/// Scale-adjusted range-filter ratio (see DESIGN.md §5): the paper's
/// 4096 is tuned for ~10^8-vertex graphs; at replica scale the same
/// summary sparsity needs a proportionally smaller range.
inline constexpr std::uint64_t kReplicaRfScale = 64;

/// A dataset replica plus its provenance, reordered degree-descending
/// (the preprocessing the paper applies for BMP, §2.1).
struct BenchGraph {
  graph::DatasetId id;
  double scale;
  graph::Csr csr;
};

/// Build (deterministically) the replica of `id` at `scale`, reordered.
[[nodiscard]] BenchGraph make_bench_graph(graph::DatasetId id, double scale);

/// Parse --datasets=TW,FR (default both, the paper's §5.2 choice) and
/// --scale=<double>.
struct BenchOptions {
  std::vector<graph::DatasetId> datasets;
  double scale = kDefaultScale;
};
[[nodiscard]] BenchOptions parse_bench_options(
    const util::CliArgs& args,
    std::initializer_list<graph::DatasetId> default_datasets = {
        graph::DatasetId::kTwitter, graph::DatasetId::kFriendster});

/// Print the standard bench banner: experiment id, paper finding, setup.
void print_banner(std::string_view experiment, std::string_view paper_claim,
                  const BenchOptions& options);

/// Canonical option sets used across benches.
[[nodiscard]] core::Options opt_m_seq();
[[nodiscard]] core::Options opt_mps_seq(intersect::MergeKind kind);
[[nodiscard]] core::Options opt_bmp_seq(bool range_filter);

/// Instrumented profile scaled to the full dataset's regime (1/scale).
[[nodiscard]] perf::WorkProfile paper_scale_profile(const BenchGraph& g,
                                                    const core::Options& o);

}  // namespace aecnc::bench
