// Table 4 — Comparison with the baseline M: the cumulative effect of the
// techniques (DSH -> V -> P -> RF -> HBW) on TW and FR for both
// processors, reproducing the paper's technique-stack rows.
//
// Paper rows (TW/FR, seconds): T_M 20065/4529 (CPU), 108419/11200 (KNL);
// best MPS speedup over M 286x/66x (CPU), 2057x/330x (KNL); best BMP
// speedup 497x/71x (CPU), 1583x/121x (KNL).
#include <cstdio>

#include "bench/common.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(args);
  bench::print_banner("Table 4: cumulative technique speedups vs baseline M",
                      "CPU best: MPS 286x/66x, BMP 497x/71x over M; "
                      "KNL best: MPS 2057x/330x, BMP 1583x/121x",
                      options);

  const auto& cpu = perf::xeon_e5_2680_spec();
  const auto& knl = perf::knl_7210_spec();

  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);

    const auto prof_m = bench::paper_scale_profile(g, bench::opt_m_seq());
    const auto prof_mps_scalar = bench::paper_scale_profile(
        g, bench::opt_mps_seq(intersect::MergeKind::kScalar));
    const auto prof_mps_avx2 = bench::paper_scale_profile(
        g, bench::opt_mps_seq(intersect::MergeKind::kAvx2));
    const auto prof_mps_avx512 = bench::paper_scale_profile(
        g, bench::opt_mps_seq(intersect::MergeKind::kAvx512));
    const auto prof_bmp = bench::paper_scale_profile(g, bench::opt_bmp_seq(false));
    const auto prof_bmp_rf = bench::paper_scale_profile(g, bench::opt_bmp_seq(true));

    auto cpu_t = [&](const perf::WorkProfile& p, int t,
                     perf::MemMode m = perf::MemMode::kDram) {
      return perf::model_cpu_like(cpu, p, t, m).seconds;
    };
    auto knl_t = [&](const perf::WorkProfile& p, int t,
                     perf::MemMode m = perf::MemMode::kDram) {
      return perf::model_cpu_like(knl, p, t, m).seconds;
    };

    util::TablePrinter table({"Configuration", "CPU model", "KNL model"});
    const double m_cpu = cpu_t(prof_m, 1);
    const double m_knl = knl_t(prof_m, 1);
    table.add_row({"T_M (seq merge baseline)", util::format_seconds(m_cpu),
                   util::format_seconds(m_knl)});
    table.add_row({"T_MPS (+DSH)", util::format_seconds(cpu_t(prof_mps_scalar, 1)),
                   util::format_seconds(knl_t(prof_mps_scalar, 1))});
    table.add_row({"T_MPS+V (AVX2 / AVX-512)",
                   util::format_seconds(cpu_t(prof_mps_avx2, 1)),
                   util::format_seconds(knl_t(prof_mps_avx512, 1))});
    const double mps_p_cpu = cpu_t(prof_mps_avx2, 64);
    const double mps_p_knl = knl_t(prof_mps_avx512, 256);
    table.add_row({"T_MPS+V+P (64 / 256 threads)",
                   util::format_seconds(mps_p_cpu),
                   util::format_seconds(mps_p_knl)});
    const double mps_hbw_knl =
        knl_t(prof_mps_avx512, 256, perf::MemMode::kHbmFlat);
    table.add_row({"T_MPS+V+P+HBW", "N/A", util::format_seconds(mps_hbw_knl)});
    table.add_row({"T_BMP (seq)", util::format_seconds(cpu_t(prof_bmp, 1)),
                   util::format_seconds(knl_t(prof_bmp, 1))});
    const double bmp_p_cpu = cpu_t(prof_bmp, 64);
    const double bmp_p_knl = knl_t(prof_bmp, 256);
    table.add_row({"T_BMP+P", util::format_seconds(bmp_p_cpu),
                   util::format_seconds(bmp_p_knl)});
    const double bmp_rf_cpu = cpu_t(prof_bmp_rf, 64);
    const double bmp_rf_knl = knl_t(prof_bmp_rf, 256);
    table.add_row({"T_BMP+P+RF", util::format_seconds(bmp_rf_cpu),
                   util::format_seconds(bmp_rf_knl)});
    const double bmp_hbw_knl =
        knl_t(prof_bmp_rf, 256, perf::MemMode::kHbmFlat);
    table.add_row({"T_BMP+P+RF+HBW", "N/A", util::format_seconds(bmp_hbw_knl)});
    table.add_row({"Best MPS speedup over M",
                   util::format_speedup(m_cpu / mps_p_cpu),
                   util::format_speedup(m_knl / mps_hbw_knl)});
    table.add_row({"Best BMP speedup over M",
                   util::format_speedup(m_cpu / std::min(bmp_rf_cpu, bmp_p_cpu)),
                   util::format_speedup(m_knl / bmp_hbw_knl)});

    std::printf("== dataset %.*s ==\n",
                static_cast<int>(graph::dataset_name(id).size()),
                graph::dataset_name(id).data());
    table.print();
    std::printf("\n");
  }
  return 0;
}
