// Figure 9 — Effect of block size tuning (warps per thread block).
//
// Sweeps blockDim.y from 1 to 32 warps through the GPU simulator.
// Paper: MPS is flat (memory bound, insensitive to occupancy); BMP
// improves up to 4 warps (latency hiding) then flattens, and on FR very
// large blocks win another ~2x because fewer concurrent blocks need
// fewer bitmaps, freeing device memory and cutting the pass count.
#include <cstdio>

#include "bench/common.hpp"
#include "gpusim/runner.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(args);
  bench::print_banner("Figure 9: warps-per-block tuning",
                      "MPS flat; BMP improves 1->4 warps then flattens; "
                      "32 warps ~2x on FR via fewer bitmaps/passes",
                      options);

  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);
    std::printf("== dataset %.*s ==\n",
                static_cast<int>(graph::dataset_name(id).size()),
                graph::dataset_name(id).data());
    util::TablePrinter table({"warps/block", "occupancy", "MPS modeled",
                              "BMP modeled", "BMP bitmaps", "BMP passes"});
    for (const int warps : {1, 2, 4, 8, 16, 32}) {
      gpusim::GpuRunConfig mps_cfg;
      mps_cfg.algorithm = core::Algorithm::kMps;
      mps_cfg.launch.warps_per_block = warps;
      mps_cfg.device_mem_scale = options.scale;
      const auto mps = gpusim::run_gpu(g.csr, mps_cfg);

      gpusim::GpuRunConfig bmp_cfg = mps_cfg;
      bmp_cfg.algorithm = core::Algorithm::kBmp;
      const auto bmp = gpusim::run_gpu(g.csr, bmp_cfg);

      table.add_row({std::to_string(warps),
                     util::format_fixed(
                         100.0 * bmp.occupancy.occupancy_fraction, 0) + "%",
                     util::format_seconds(mps.total_seconds),
                     util::format_seconds(bmp.total_seconds),
                     std::to_string(bmp.num_bitmaps),
                     std::to_string(bmp.passes_used)});
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
