// Table 1 — Real-world graph statistics.
//
// Regenerates the dataset table for the synthetic replicas and prints the
// paper's original values next to them. The replica preserves |V|:|E|
// proportions and the average degree; the maximum degree scales with the
// replica (hubs keep their *relative* prominence).
#include <cstdio>

#include "bench/common.hpp"
#include "graph/stats.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(
      args, {graph::DatasetId::kLiveJournal, graph::DatasetId::kOrkut,
             graph::DatasetId::kWebIt, graph::DatasetId::kTwitter,
             graph::DatasetId::kFriendster});
  bench::print_banner("Table 1: dataset statistics",
                      "five real-world graphs, 34M-1.8B edges", options);

  util::TablePrinter table({"Dataset", "|V|", "|E|", "avg d", "max d",
                            "paper |V|", "paper |E|", "paper avg d",
                            "paper max d"});
  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);
    const auto s = graph::compute_stats(g.csr);
    const auto& p = graph::paper_stats(id);
    table.add_row({std::string(graph::dataset_name(id)),
                   util::format_count(s.num_vertices),
                   util::format_count(s.num_undirected_edges),
                   util::format_fixed(s.avg_degree, 1),
                   util::format_count(s.max_degree),
                   util::format_count(p.num_vertices),
                   util::format_count(p.num_undirected_edges),
                   util::format_fixed(p.avg_degree, 1),
                   util::format_count(p.max_degree)});
  }
  table.print();
  return 0;
}
