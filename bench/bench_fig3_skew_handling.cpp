// Figure 3 — Effect of degree skew handling (single threaded).
//
// Compares the baseline merge M against MPS (pivot-skip dispatch) and BMP
// (dynamic bitmap), sequentially, three ways:
//   (1) native wall-clock on this machine (real execution),
//   (2) modeled time on the paper's CPU (Xeon E5-2680 v4),
//   (3) modeled time on the paper's KNL (Xeon Phi 7210).
// Paper: on TW, MPS is 3.6x/7.1x and BMP 20.1x/29.3x faster than M on
// CPU/KNL; on FR, MPS ~ M and BMP 2.5x/1.1x. The replica's hubs are
// ~1000x smaller than twitter's, so the magnitudes compress while the
// ordering (BMP < MPS < M on skewed graphs; MPS ~ M on FR) holds.
#include <cstdio>

#include "bench/common.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(args);
  bench::print_banner("Figure 3: effect of degree skew handling",
                      "TW: M/MPS=3.6x(CPU) 7.1x(KNL), M/BMP=20.1x 29.3x; "
                      "FR: M/MPS~1x, M/BMP=2.5x 1.1x",
                      options);

  util::TablePrinter table({"Dataset", "Algo", "native (this host)",
                            "CPU model", "KNL model", "CPU M/x", "KNL M/x"});
  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);

    struct Algo {
      const char* name;
      core::Options opt;
    };
    const Algo algos[] = {
        {"M", bench::opt_m_seq()},
        {"MPS", bench::opt_mps_seq(intersect::best_merge_kind())},
        {"BMP", bench::opt_bmp_seq(false)},
    };

    double cpu_m = 0, knl_m = 0;
    for (const Algo& a : algos) {
      const double native = perf::time_native(g.csr, a.opt, 2);
      const auto profile = bench::paper_scale_profile(g, a.opt);
      const double cpu =
          perf::model_cpu_like(perf::xeon_e5_2680_spec(), profile, 1).seconds;
      const double knl =
          perf::model_cpu_like(perf::knl_7210_spec(), profile, 1).seconds;
      if (a.opt.algorithm == core::Algorithm::kMergeBaseline) {
        cpu_m = cpu;
        knl_m = knl;
      }
      table.add_row({std::string(graph::dataset_name(id)), a.name,
                     util::format_seconds(native), util::format_seconds(cpu),
                     util::format_seconds(knl), util::format_speedup(cpu_m / cpu),
                     util::format_speedup(knl_m / knl)});
    }
  }
  table.print();
  return 0;
}
