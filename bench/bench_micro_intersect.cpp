// Microbenchmark of the set-intersection kernels (google-benchmark).
//
// Measures native throughput of every kernel across set sizes and skews,
// the raw numbers behind MPS's dispatch threshold: the pivot-skip path
// must overtake the merge paths around a size ratio of ~50 (the paper's
// empirical t).
#include <benchmark/benchmark.h>

#include <set>
#include <vector>

#include "bitmap/bitmap.hpp"
#include "bitmap/range_filter.hpp"
#include "intersect/block_merge.hpp"
#include "intersect/dispatch.hpp"
#include "intersect/merge.hpp"
#include "intersect/pivot_skip.hpp"
#include "util/prng.hpp"

namespace {

using namespace aecnc;

std::vector<VertexId> random_sorted_set(std::size_t size, VertexId universe,
                                        std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::set<VertexId> s;
  while (s.size() < size) s.insert(rng.below(universe));
  return {s.begin(), s.end()};
}

/// Balanced intersection: both sets the same size from a shared universe.
template <typename Fn>
void bench_balanced(benchmark::State& state, Fn&& fn) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto universe = static_cast<VertexId>(4 * n);
  const auto a = random_sorted_set(n, universe, 1);
  const auto b = random_sorted_set(n, universe, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}

/// Skewed intersection: |b| = ratio * |a|.
template <typename Fn>
void bench_skewed(benchmark::State& state, Fn&& fn) {
  const std::size_t small = 32;
  const auto ratio = static_cast<std::size_t>(state.range(0));
  const auto universe = static_cast<VertexId>(8 * small * ratio);
  const auto a = random_sorted_set(small, universe, 3);
  const auto b = random_sorted_set(small * ratio, universe, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(small + small * ratio));
}

void BM_MergeScalar(benchmark::State& state) {
  bench_balanced(state, [](auto a, auto b) { return intersect::merge_count(a, b); });
}
void BM_MergeBranchless(benchmark::State& state) {
  bench_balanced(state, [](auto a, auto b) {
    return intersect::merge_count_branchless(a, b);
  });
}
void BM_BlockScalar8(benchmark::State& state) {
  bench_balanced(state, [](auto a, auto b) {
    return intersect::block_merge_count8(a, b);
  });
}
#if AECNC_HAVE_SIMD_KERNELS
void BM_VbAvx2(benchmark::State& state) {
  if (!intersect::cpu_has_avx2()) {
    state.SkipWithError("AVX2 unavailable");
    return;
  }
  bench_balanced(state, [](auto a, auto b) { return intersect::vb_count_avx2(a, b); });
}
void BM_VbAvx512(benchmark::State& state) {
  if (!intersect::cpu_has_avx512()) {
    state.SkipWithError("AVX-512 unavailable");
    return;
  }
  bench_balanced(state,
                 [](auto a, auto b) { return intersect::vb_count_avx512(a, b); });
}
BENCHMARK(BM_VbAvx2)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_VbAvx512)->Arg(64)->Arg(512)->Arg(4096);
#endif

void BM_MergeSkewed(benchmark::State& state) {
  bench_skewed(state, [](auto a, auto b) { return intersect::merge_count(a, b); });
}
void BM_PivotSkipSkewed(benchmark::State& state) {
  bench_skewed(state,
               [](auto a, auto b) { return intersect::pivot_skip_count(a, b); });
}
void BM_MpsDispatchSkewed(benchmark::State& state) {
  bench_skewed(state, [](auto a, auto b) {
    return intersect::mps_count(a, b, intersect::MpsConfig{});
  });
}

void BM_BitmapIntersect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const VertexId universe = 1 << 20;
  const auto nu = random_sorted_set(n, universe, 5);
  const auto nv = random_sorted_set(n, universe, 6);
  bitmap::Bitmap b(universe);
  b.set_all(nu);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitmap::bitmap_intersect_count(b, nv));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_RangeFilteredIntersect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const VertexId universe = 1 << 20;
  const auto nu = random_sorted_set(n, universe, 7);
  const auto nv = random_sorted_set(n, universe, 8);
  bitmap::RangeFilteredBitmap b(universe, 4096);
  b.set_all(nu);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitmap::rf_intersect_count(b, nv));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

BENCHMARK(BM_MergeScalar)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_MergeBranchless)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_BlockScalar8)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_MergeSkewed)->Arg(8)->Arg(50)->Arg(400);
BENCHMARK(BM_PivotSkipSkewed)->Arg(8)->Arg(50)->Arg(400);
BENCHMARK(BM_MpsDispatchSkewed)->Arg(8)->Arg(50)->Arg(400);
BENCHMARK(BM_BitmapIntersect)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_RangeFilteredIntersect)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
