// Figure 5 — Scalability to the number of threads.
//
// Thread counts 1..64 on the modeled CPU and 1..256 on the modeled KNL,
// for vectorized MPS and BMP, reported as speedup over 1 thread.
// Paper: MPS reaches 41.1x/36.1x on the CPU (hyper-threading beats the
// 28 cores) and up to 67-72x on the KNL (bandwidth saturation past 64
// threads); BMP reaches only 24x/15x on the CPU and declines at 128/256
// threads on the KNL.
#include <cstdio>

#include "bench/common.hpp"
#include "util/chart.hpp"

using namespace aecnc;

namespace {

void print_series(const char* processor, const perf::CpuLikeSpec& spec,
                  const std::vector<int>& threads,
                  const perf::WorkProfile& mps,
                  const perf::WorkProfile& bmp) {
  util::TablePrinter table({"threads", "MPS time", "MPS speedup", "BMP time",
                            "BMP speedup"});
  const double mps1 = perf::model_cpu_like(spec, mps, 1).seconds;
  const double bmp1 = perf::model_cpu_like(spec, bmp, 1).seconds;
  for (const int t : threads) {
    const double tm = perf::model_cpu_like(spec, mps, t).seconds;
    const double tb = perf::model_cpu_like(spec, bmp, t).seconds;
    table.add_row({std::to_string(t), util::format_seconds(tm),
                   util::format_speedup(mps1 / tm), util::format_seconds(tb),
                   util::format_speedup(bmp1 / tb)});
  }
  std::printf("-- %s --\n", processor);
  table.print();
  std::vector<double> mps_speedups, bmp_speedups;
  for (const int t : threads) {
    mps_speedups.push_back(mps1 / perf::model_cpu_like(spec, mps, t).seconds);
    bmp_speedups.push_back(bmp1 / perf::model_cpu_like(spec, bmp, t).seconds);
  }
  std::printf("%s\n",
              util::sparklines({{"MPS speedup", mps_speedups},
                                {"BMP speedup", bmp_speedups}})
                  .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(args);
  bench::print_banner("Figure 5: thread scalability",
                      "CPU: MPS 41.1x/36.1x vs BMP 24x/15x at 64 threads; "
                      "KNL: MPS up to 67-72x, BMP saturates and declines",
                      options);

  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);
    const auto mps = bench::paper_scale_profile(
        g, bench::opt_mps_seq(intersect::MergeKind::kAvx2));
    const auto mps512 = bench::paper_scale_profile(
        g, bench::opt_mps_seq(intersect::MergeKind::kAvx512));
    const auto bmp = bench::paper_scale_profile(g, bench::opt_bmp_seq(false));

    std::printf("== dataset %.*s ==\n",
                static_cast<int>(graph::dataset_name(id).size()),
                graph::dataset_name(id).data());
    print_series("CPU (2x14-core Xeon, AVX2)", perf::xeon_e5_2680_spec(),
                 {1, 2, 4, 8, 16, 28, 32, 56, 64}, mps, bmp);
    print_series("KNL (64-core Xeon Phi, AVX-512)", perf::knl_7210_spec(),
                 {1, 4, 16, 32, 64, 128, 256}, mps512, bmp);
  }
  return 0;
}
