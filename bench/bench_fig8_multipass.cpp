// Figure 8 — Effect of the number of passes (GPU, unified memory).
//
// Sweeps the pass count for MPS and BMP through the GPU simulator's
// unified-memory pager. Paper: on TW both curves ascend slightly with
// more passes (extra loads); on FR, BMP *fails* (thrashing page swaps,
// >1 hour) below the estimated pass count and completes at/above it.
#include <cstdio>

#include "bench/common.hpp"
#include "gpusim/runner.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(args);
  bench::print_banner("Figure 8: multi-pass processing on the GPU",
                      "TW: slight ascent with passes; FR: BMP thrashes "
                      "below the estimated pass count",
                      options);

  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);
    std::printf("== dataset %.*s ==\n",
                static_cast<int>(graph::dataset_name(id).size()),
                graph::dataset_name(id).data());
    for (const auto algo : {core::Algorithm::kMps, core::Algorithm::kBmp}) {
      util::TablePrinter table({"passes", "modeled total", "page faults",
                                "refaults", "thrashed"});
      for (const int passes : {1, 2, 3, 4, 6, 8, 0}) {
        gpusim::GpuRunConfig cfg;
        cfg.algorithm = algo;
        cfg.device_mem_scale = options.scale;
        cfg.num_passes = passes;  // 0 = estimator
        const auto r = gpusim::run_gpu(g.csr, cfg);
        table.add_row({passes == 0
                           ? std::to_string(r.passes_used) + " (estimated)"
                           : std::to_string(passes),
                       util::format_seconds(r.total_seconds),
                       util::format_count(r.um.faults),
                       util::format_count(r.um.refaults),
                       r.thrashed ? "YES" : "no"});
      }
      std::printf("-- %s --\n",
                  algo == core::Algorithm::kMps ? "MPS" : "BMP");
      table.print();
      std::printf("\n");
    }
  }
  return 0;
}
