// Sharded-engine bench: scaling of the 2D-partitioned message-passing
// engine (src/shard/) against the sequential reference and the
// shared-memory parallel driver, plus the transport's bytes-moved bill
// and a flush-size sweep — gated by tools/bench_regress.py in CI.
//
// Three questions, one table each:
//
//   scaling:   p ∈ {1, 2, 4, 8} shards vs count_common_neighbors in
//              sequential and parallel form. p=1 runs the plain row-store
//              path with no column copies and no messages, so its only
//              admissible cost over sequential is the partition copy —
//              the gate holds it within 10% (p1_vs_seq_speedup >= 0.9).
//   transport: messages and bytes through the aggregator per run at
//              p ∈ {2, 4, 8}, from engine.transport_stats() (exact and
//              deterministic, independent of the obs registry) — plus
//              the socket bill: the same engine over a loopback TCP
//              mesh (net::SocketTransport::connect_local_mesh) at
//              p ∈ {1, 2, 4}, with the p=1 socket/in-process overhead
//              ratio and the wire bytes actually framed and moved.
//              The in-process p=1 gate (p1_vs_seq_speedup >= 0.9) is
//              unchanged; the socket numbers are reported, not gated.
//   flush:     run time at p=4 across flush_messages ∈ {16..8192} —
//              the batching-vs-latency trade the aggregator exists for.
//
// Every sharded run is checked bit-identical against the sequential
// counts before its timing is reported.
//
// Emits BENCH_shard.json next to the human-readable tables.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "net/socket.hpp"
#include "shard/engine.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace aecnc;

namespace {

/// Best-of-reps wall time for one engine configuration; also verifies
/// the counts against `oracle` on the first rep. Returns milliseconds.
double time_engine(shard::ShardedEngine& engine, int reps,
                   const core::CountArray& oracle) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    util::WallTimer timer;
    const core::CountArray cnt = engine.run();
    const double ms = timer.millis();
    if (r == 0 && cnt != oracle) {
      std::fprintf(stderr, "FATAL: sharded counts diverge at p=%d\n",
                   engine.config().num_shards);
      std::exit(1);
    }
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

double time_sharded(const graph::Csr& g, const shard::ShardConfig& cfg,
                    int reps, const core::CountArray& oracle,
                    net::TransportStats* stats_out) {
  shard::ShardedEngine engine(g, cfg);
  const double best = time_engine(engine, reps, oracle);
  if (stats_out != nullptr) {
    // Transport tallies accumulate over the engine's lifetime; message
    // and byte counts are deterministic per run, so divide out the reps.
    const net::TransportStats total = engine.transport_stats();
    stats_out->messages = total.messages / static_cast<std::uint64_t>(reps);
    stats_out->batches = total.batches / static_cast<std::uint64_t>(reps);
    stats_out->bytes = total.bytes / static_cast<std::uint64_t>(reps);
  }
  return best;
}

/// Same engine, but over a loopback TCP mesh hosting all p endpoints in
/// this process — the full socket stack (framing, checksums, kernel
/// round-trips) under an unchanged counting plan. Reports the wire
/// bytes actually moved per run via `wire_bytes_out`.
double time_sharded_socket(const graph::Csr& g, const shard::ShardConfig& cfg,
                           int reps, const core::CountArray& oracle,
                           std::uint64_t* wire_bytes_out) {
  const auto mesh =
      net::SocketTransport::connect_local_mesh(cfg.num_shards, {});
  shard::ShardedEngine engine(g, cfg, *mesh);
  const double best = time_engine(engine, reps, oracle);
  if (wire_bytes_out != nullptr) {
    *wire_bytes_out = mesh->stats().bytes / static_cast<std::uint64_t>(reps);
  }
  return best;
}

double time_api(const graph::Csr& g, const core::Options& o, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    util::WallTimer timer;
    const core::CountArray cnt = core::count_common_neighbors(g, o);
    const double ms = timer.millis();
    (void)cnt;
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto options =
      bench::parse_bench_options(args, {graph::DatasetId::kTwitter});
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const std::string json_path = args.get("json", "BENCH_shard.json");
  bench::print_banner(
      "Sharded engine: 2D partition + message aggregation",
      "shards exchange aggregated messages instead of sharing memory; "
      "p=1 must stay within noise of the sequential loop, and the "
      "transport bill (messages x sizeof(Message)) is the price of the "
      "seam",
      options);

  const auto id = options.datasets.front();
  const auto g = bench::make_bench_graph(id, options.scale);

  core::Options seq_opt;
  seq_opt.algorithm = core::Algorithm::kMps;
  seq_opt.parallel = false;
  core::Options par_opt = seq_opt;
  par_opt.parallel = true;

  const core::CountArray oracle = core::count_common_neighbors(g.csr, seq_opt);
  const double seq_ms = time_api(g.csr, seq_opt, reps);
  const double par_ms = time_api(g.csr, par_opt, reps);

  // Scaling sweep with per-p transport stats.
  const std::vector<int> shard_counts{1, 2, 4, 8};
  std::vector<double> p_ms;
  std::vector<net::TransportStats> p_stats;
  for (const int p : shard_counts) {
    shard::ShardConfig cfg;
    cfg.num_shards = p;
    net::TransportStats stats{};
    p_ms.push_back(time_sharded(g.csr, cfg, reps, oracle, &stats));
    p_stats.push_back(stats);
  }

  // Socket transport bill: identical engine and plan, loopback TCP mesh.
  const std::vector<int> socket_counts{1, 2, 4};
  std::vector<double> socket_ms;
  std::vector<std::uint64_t> socket_wire_bytes;
  for (const int p : socket_counts) {
    shard::ShardConfig cfg;
    cfg.num_shards = p;
    std::uint64_t wire = 0;
    socket_ms.push_back(time_sharded_socket(g.csr, cfg, reps, oracle, &wire));
    socket_wire_bytes.push_back(wire);
  }
  const double socket_p1_overhead =
      p_ms[0] > 0 ? socket_ms[0] / p_ms[0] : 0.0;

  // Flush-size sweep at p=4.
  const std::vector<std::size_t> flush_sizes{16, 256, 1024, 8192};
  std::vector<double> flush_ms;
  for (const std::size_t f : flush_sizes) {
    shard::ShardConfig cfg;
    cfg.num_shards = 4;
    cfg.flush_messages = f;
    flush_ms.push_back(time_sharded(g.csr, cfg, reps, oracle, nullptr));
  }

  util::TablePrinter scaling({"config", "time", "vs seq", "msgs/run",
                              "bytes/run"});
  scaling.add_row({"sequential", util::format_fixed(seq_ms, 2) + " ms",
                   "1.00x", "-", "-"});
  scaling.add_row({"parallel", util::format_fixed(par_ms, 2) + " ms",
                   util::format_fixed(seq_ms / par_ms, 2) + "x", "-", "-"});
  for (std::size_t i = 0; i < shard_counts.size(); ++i) {
    scaling.add_row({"shards p=" + std::to_string(shard_counts[i]),
                     util::format_fixed(p_ms[i], 2) + " ms",
                     util::format_fixed(seq_ms / p_ms[i], 2) + "x",
                     std::to_string(p_stats[i].messages),
                     std::to_string(p_stats[i].bytes)});
  }
  scaling.print();

  util::TablePrinter transport({"transport", "time", "wire bytes/run"});
  transport.add_row({"inproc p=1", util::format_fixed(p_ms[0], 2) + " ms",
                     "-"});
  for (std::size_t i = 0; i < socket_counts.size(); ++i) {
    transport.add_row({"socket p=" + std::to_string(socket_counts[i]),
                       util::format_fixed(socket_ms[i], 2) + " ms",
                       std::to_string(socket_wire_bytes[i])});
  }
  transport.print();
  std::printf("socket p=1 overhead vs in-process: %.3fx (reported, not "
              "gated)\n",
              socket_p1_overhead);

  util::TablePrinter flush({"flush_messages", "time (p=4)"});
  for (std::size_t i = 0; i < flush_sizes.size(); ++i) {
    flush.add_row({std::to_string(flush_sizes[i]),
                   util::format_fixed(flush_ms[i], 2) + " ms"});
  }
  flush.print();

  const double p1_vs_seq = p_ms[0] > 0 ? seq_ms / p_ms[0] : 0.0;
  std::printf("p=1 vs sequential: %.3fx (gate: >= 0.9)\n", p1_vs_seq);

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"experiment\": \"shard\",\n"
               "  \"dataset\": \"%.*s\",\n"
               "  \"scale\": %g,\n"
               "  \"edges\": %llu,\n"
               "  \"reps\": %d,\n"
               "  \"seq_ms\": %.3f,\n"
               "  \"par_ms\": %.3f,\n",
               static_cast<int>(graph::dataset_name(id).size()),
               graph::dataset_name(id).data(), options.scale,
               static_cast<unsigned long long>(g.csr.num_undirected_edges()),
               reps, seq_ms, par_ms);
  for (std::size_t i = 0; i < shard_counts.size(); ++i) {
    std::fprintf(json, "  \"p%d_ms\": %.3f,\n", shard_counts[i], p_ms[i]);
  }
  std::fprintf(json, "  \"p1_vs_seq_speedup\": %.3f,\n", p1_vs_seq);
  for (std::size_t i = 1; i < shard_counts.size(); ++i) {
    std::fprintf(json,
                 "  \"p%d_transport\": {\"msgs_sent\": %llu, \"flushes\": "
                 "%llu, \"bytes_moved\": %llu},\n",
                 shard_counts[i],
                 static_cast<unsigned long long>(p_stats[i].messages),
                 static_cast<unsigned long long>(p_stats[i].batches),
                 static_cast<unsigned long long>(p_stats[i].bytes));
  }
  std::fprintf(
      json,
      "  \"transport\": {\n"
      "    \"inproc_p1_ms\": %.3f,\n"
      "    \"socket_p1_ms\": %.3f,\n"
      "    \"socket_p2_ms\": %.3f,\n"
      "    \"socket_p4_ms\": %.3f,\n"
      "    \"socket_p1_overhead\": %.3f,\n"
      "    \"socket_p2_wire_bytes\": %llu,\n"
      "    \"socket_p4_wire_bytes\": %llu\n"
      "  },\n",
      p_ms[0], socket_ms[0], socket_ms[1], socket_ms[2], socket_p1_overhead,
      static_cast<unsigned long long>(socket_wire_bytes[1]),
      static_cast<unsigned long long>(socket_wire_bytes[2]));
  std::fprintf(json, "  \"flush_sweep\": {");
  for (std::size_t i = 0; i < flush_sizes.size(); ++i) {
    std::fprintf(json, "%s\"f%zu_ms\": %.3f", i == 0 ? "" : ", ",
                 flush_sizes[i], flush_ms[i]);
  }
  std::fprintf(json, "}\n}\n");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
