// Table 3 — Memory consumption of each thread-local bitmap.
//
// |V|/8 bytes per execution context, plus the range-filter summary at
// the paper's 4096:1 ratio. Printed both for the replica (what this
// repo's runs allocate) and at the original |V| (what the paper's Table 3
// reports, e.g. ~14.9 MB for friendster).
#include <cstdio>

#include "bench/common.hpp"
#include "bitmap/range_filter.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(
      args, {graph::DatasetId::kLiveJournal, graph::DatasetId::kOrkut,
             graph::DatasetId::kWebIt, graph::DatasetId::kTwitter,
             graph::DatasetId::kFriendster});
  bench::print_banner("Table 3: per-context bitmap memory",
                      "|V|/8 bytes per bitmap; summary 1/4096 of that "
                      "(fits L1 / GPU shared memory)",
                      options);

  util::TablePrinter table({"Dataset", "replica bitmap", "replica +RF",
                            "paper-|V| bitmap", "paper-|V| RF summary"});
  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);
    const bitmap::RangeFilteredBitmap replica_rf(g.csr.num_vertices(),
                                                 bench::kReplicaRfScale);
    const auto paper_v = graph::paper_stats(id).num_vertices;
    const bitmap::RangeFilteredBitmap paper_rf(paper_v, 4096);
    table.add_row({std::string(graph::dataset_name(id)),
                   util::format_bytes(static_cast<double>(
                       bitmap::Bitmap(g.csr.num_vertices()).memory_bytes())),
                   util::format_bytes(
                       static_cast<double>(replica_rf.memory_bytes())),
                   util::format_bytes(static_cast<double>(
                       bitmap::Bitmap(paper_v).memory_bytes())),
                   util::format_bytes(
                       static_cast<double>(paper_rf.summary_bytes()))});
  }
  table.print();
  return 0;
}
