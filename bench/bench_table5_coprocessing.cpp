// Table 5 — Post-processing time on the CPU with and without
// co-processing (GPU runs).
//
// The symmetric-assignment post-processing is executed natively on this
// host both ways: without CP it must binary-search every reverse offset
// after the kernels; with CP the offsets were computed during the GPU
// phase (overlapped) and the final pass is a dependent copy.
// Paper: 5.6 -> 0.9 s on TW, 19.0 -> 3.8 s on FR (>80% reduction).
#include <cstdio>

#include "bench/common.hpp"
#include "gpusim/runner.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(args);
  bench::print_banner("Table 5: co-processing post-processing time",
                      "TW 5.6 -> 0.9 s, FR 19.0 -> 3.8 s (>80% cut)",
                      options);

  util::TablePrinter table({"Dataset", "no-CP post", "CP post", "reduction",
                            "CP offset phase (overlapped)"});
  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);

    gpusim::GpuRunConfig cfg;
    cfg.algorithm = core::Algorithm::kBmp;
    cfg.device_mem_scale = options.scale;
    cfg.co_processing = false;
    const auto no_cp = gpusim::run_gpu(g.csr, cfg);
    cfg.co_processing = true;
    const auto cp = gpusim::run_gpu(g.csr, cfg);

    table.add_row(
        {std::string(graph::dataset_name(id)),
         util::format_seconds(no_cp.post_seconds),
         util::format_seconds(cp.post_seconds),
         util::format_fixed(
             100.0 * (1.0 - cp.post_seconds / no_cp.post_seconds), 0) + "%",
         util::format_seconds(cp.overlap_seconds)});
  }
  table.print();
  return 0;
}
