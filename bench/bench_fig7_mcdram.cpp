// Figure 7 — Effectiveness of MCDRAM utilization on the KNL.
//
// Modeled elapsed time at 256 threads under the three memory
// configurations: DDR only, MCDRAM flat mode (hot arrays via memkind),
// and MCDRAM cache mode. Paper: MPS-Flat 1.6x/1.8x over MPS (bandwidth
// bound), BMP-Flat only 1.2x/1.3x (latency bound), and cache mode
// slightly slower than flat (data movement overhead).
#include <cstdio>

#include "bench/common.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(args);
  bench::print_banner("Figure 7: MCDRAM utilization (KNL, 256 threads)",
                      "MPS-Flat 1.6-1.8x over DDR; BMP-Flat 1.2-1.3x; "
                      "cache mode slightly slower than flat",
                      options);

  const auto& knl = perf::knl_7210_spec();
  util::TablePrinter table({"Dataset", "Algo", "DDR", "MCDRAM-flat",
                            "MCDRAM-cache", "flat gain"});
  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);
    struct Algo {
      const char* name;
      core::Options opt;
    };
    const Algo algos[] = {
        {"MPS", bench::opt_mps_seq(intersect::MergeKind::kAvx512)},
        {"BMP-RF", bench::opt_bmp_seq(true)},
    };
    for (const Algo& a : algos) {
      const auto profile = bench::paper_scale_profile(g, a.opt);
      const double ddr =
          perf::model_cpu_like(knl, profile, 256, perf::MemMode::kDram).seconds;
      const double flat =
          perf::model_cpu_like(knl, profile, 256, perf::MemMode::kHbmFlat)
              .seconds;
      const double cache =
          perf::model_cpu_like(knl, profile, 256, perf::MemMode::kHbmCache)
              .seconds;
      table.add_row({std::string(graph::dataset_name(id)), a.name,
                     util::format_seconds(ddr), util::format_seconds(flat),
                     util::format_seconds(cache),
                     util::format_speedup(ddr / flat)});
    }
  }
  table.print();
  return 0;
}
