// Ablation: the range-filter summary ratio (design decision #3).
//
// The paper picks 4096 big-bitmap bits per summary bit so the summary
// fits L1 / GPU shared memory. Small scales make the summary precise but
// large (cache pressure); large scales make it cheap but useless (every
// range non-empty). The filtered-probe fraction printed per scale shows
// that trade-off directly.
#include <cstdio>

#include "bench/common.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(args);
  bench::print_banner("Ablation: range-filter summary ratio",
                      "paper uses 4096 (summary fits L1); replicas need a "
                      "proportionally smaller ratio (see DESIGN.md)",
                      options);

  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);
    std::printf("== dataset %.*s ==\n",
                static_cast<int>(graph::dataset_name(id).size()),
                graph::dataset_name(id).data());
    util::TablePrinter table({"range scale", "native seq", "summary bytes",
                              "probes avoided", "KNL@256 model"});
    for (const std::uint64_t scale : {8u, 32u, 64u, 256u, 1024u, 4096u}) {
      core::Options o = bench::opt_bmp_seq(true);
      o.rf_range_scale = scale;
      const double native = perf::time_native(g.csr, o, 2);
      const auto profile = bench::paper_scale_profile(g, o);
      const auto& w = profile.work;
      const double knl =
          perf::model_cpu_like(perf::knl_7210_spec(), profile, 256).seconds;
      const std::uint64_t summary_bytes =
          ((g.csr.num_vertices() + scale - 1) / scale + 63) / 64 * 8;
      table.add_row(
          {std::to_string(scale), util::format_seconds(native),
           util::format_bytes(static_cast<double>(summary_bytes)),
           util::format_fixed(w.rf_probes == 0
                                  ? 0.0
                                  : 100.0 * static_cast<double>(w.rf_skips) /
                                        static_cast<double>(w.rf_probes),
                              1) + "%",
           util::format_seconds(knl)});
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
