// Figure 10 — Elapsed time of the optimized algorithms for each
// processor on the five real-world graphs.
//
// The headline comparison: optimized MPS and BMP on the modeled CPU
// (64 threads, AVX2), KNL (256 threads, AVX-512, MCDRAM flat) and GPU
// (4 warps/block, CP, RF for BMP, estimated passes).
// Paper findings to reproduce in shape:
//   - GPU-BMP wins on the degree-skewed WI and TW;
//   - KNL-MPS wins on FR;
//   - CPU-BMP is moderate (within ~2.5x of the best);
//   - GPU-MPS is always the slowest; KNL-BMP next.
#include <cstdio>

#include "bench/common.hpp"
#include "util/chart.hpp"
#include "gpusim/runner.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(
      args, {graph::DatasetId::kLiveJournal, graph::DatasetId::kOrkut,
             graph::DatasetId::kWebIt, graph::DatasetId::kTwitter,
             graph::DatasetId::kFriendster});
  bench::print_banner(
      "Figure 10: optimized algorithms on three processors",
      "best = GPU-BMP (WI/TW) or KNL-MPS (FR); worst = GPU-MPS", options);

  util::TablePrinter table({"Dataset", "CPU-MPS", "CPU-BMP", "KNL-MPS",
                            "KNL-BMP", "GPU-MPS", "GPU-BMP", "best"});
  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);

    const auto mps2 = bench::paper_scale_profile(
        g, bench::opt_mps_seq(intersect::MergeKind::kAvx2));
    const auto mps512 = bench::paper_scale_profile(
        g, bench::opt_mps_seq(intersect::MergeKind::kAvx512));
    const auto bmp_rf = bench::paper_scale_profile(g, bench::opt_bmp_seq(true));

    const double cpu_mps =
        perf::model_cpu_like(perf::xeon_e5_2680_spec(), mps2, 64).seconds;
    const double cpu_bmp =
        perf::model_cpu_like(perf::xeon_e5_2680_spec(), bmp_rf, 64).seconds;
    const double knl_mps =
        perf::model_cpu_like(perf::knl_7210_spec(), mps512, 256,
                             perf::MemMode::kHbmFlat).seconds;
    const double knl_bmp =
        perf::model_cpu_like(perf::knl_7210_spec(), bmp_rf, 256,
                             perf::MemMode::kHbmFlat).seconds;

    gpusim::GpuRunConfig gpu_cfg;
    gpu_cfg.device_mem_scale = options.scale;
    gpu_cfg.algorithm = core::Algorithm::kMps;
    const auto gpu_mps_run = gpusim::run_gpu(g.csr, gpu_cfg);
    gpu_cfg.algorithm = core::Algorithm::kBmp;
    gpu_cfg.range_filter = true;
    gpu_cfg.rf_range_scale = bench::kReplicaRfScale;
    // Block-size tuning (Fig 9): the optimized BMP uses large blocks so
    // fewer resident bitmaps free device memory and cut the pass count.
    gpu_cfg.launch.warps_per_block = 16;
    const auto gpu_bmp_run = gpusim::run_gpu(g.csr, gpu_cfg);
    // GPU modeled time is replica-sized; rescale to the full dataset like
    // the CPU/KNL profiles (transactions scale ~linearly with |E|).
    const double gpu_mps = gpu_mps_run.total_seconds / options.scale * 1.0;
    const double gpu_bmp = gpu_bmp_run.total_seconds / options.scale * 1.0;

    const double best = std::min({cpu_mps, cpu_bmp, knl_mps, knl_bmp,
                                  gpu_mps, gpu_bmp});
    const char* best_name = best == gpu_bmp   ? "GPU-BMP"
                            : best == knl_mps ? "KNL-MPS"
                            : best == cpu_bmp ? "CPU-BMP"
                            : best == cpu_mps ? "CPU-MPS"
                            : best == knl_bmp ? "KNL-BMP"
                                              : "GPU-MPS";
    table.add_row({std::string(graph::dataset_name(id)),
                   util::format_seconds(cpu_mps), util::format_seconds(cpu_bmp),
                   util::format_seconds(knl_mps), util::format_seconds(knl_bmp),
                   util::format_seconds(gpu_mps), util::format_seconds(gpu_bmp),
                   best_name});
    std::printf("%.*s:\n%s",
                static_cast<int>(graph::dataset_name(id).size()),
                graph::dataset_name(id).data(),
                util::bar_chart({{"CPU-MPS", cpu_mps},
                                 {"CPU-BMP", cpu_bmp},
                                 {"KNL-MPS", knl_mps},
                                 {"KNL-BMP", knl_bmp},
                                 {"GPU-MPS", gpu_mps},
                                 {"GPU-BMP", gpu_bmp}})
                    .c_str());
  }
  std::printf("\n");
  table.print();
  std::printf("\npaper anchors: GPU-BMP 21.5 s on TW; KNL-MPS 34 s on FR.\n");
  return 0;
}
