// Table 2 — Percentage of highly skewed set intersections
// (d_u/d_v > 50 assuming d_u > d_v), plus a sweep of the threshold that
// Table 2 fixes at the paper's empirical 50 (footnote 1).
#include <cstdio>

#include "bench/common.hpp"
#include "graph/stats.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(
      args, {graph::DatasetId::kLiveJournal, graph::DatasetId::kOrkut,
             graph::DatasetId::kWebIt, graph::DatasetId::kTwitter,
             graph::DatasetId::kFriendster});
  bench::print_banner(
      "Table 2: percentage of highly skewed set intersections",
      "LJ 11%, OR 2%, WI 39%, TW 31%, FR 0% at ratio threshold 50", options);

  util::TablePrinter table(
      {"Dataset", "skew% (t=50)", "paper", "t=10", "t=100", "t=1000"});
  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);
    table.add_row(
        {std::string(graph::dataset_name(id)),
         util::format_fixed(graph::skewed_intersection_percentage(g.csr, 50), 1),
         util::format_fixed(graph::paper_stats(id).skew_percentage, 0),
         util::format_fixed(graph::skewed_intersection_percentage(g.csr, 10), 1),
         util::format_fixed(graph::skewed_intersection_percentage(g.csr, 100), 1),
         util::format_fixed(graph::skewed_intersection_percentage(g.csr, 1000),
                            1)});
  }
  table.print();
  return 0;
}
