// Figure 6 — Effect of bitmap range filtering (parallel).
//
// BMP vs BMP-RF vs vectorized MPS at the best thread counts, on the
// modeled CPU (64 threads) and KNL (256 threads), plus native sequential
// wall-clock and the measured filter hit statistics that explain the
// effect. Paper: RF ~neutral on TW, 1.9x/2.1x on FR (uniform degrees ->
// sparse matches -> most big-bitmap probes avoided).
#include <cstdio>

#include "bench/common.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(args);
  bench::print_banner("Figure 6: bitmap range filtering",
                      "BMP-RF ~= BMP on TW; 1.9x (CPU) / 2.1x (KNL) on FR",
                      options);

  util::TablePrinter table({"Dataset", "Variant", "native seq",
                            "CPU@64 model", "KNL@256 model", "probes avoided"});
  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);

    struct Variant {
      const char* name;
      core::Options opt;
    };
    const Variant variants[] = {
        {"BMP", bench::opt_bmp_seq(false)},
        {"BMP-RF", bench::opt_bmp_seq(true)},
        {"MPS-vec", bench::opt_mps_seq(intersect::best_merge_kind())},
    };
    for (const Variant& v : variants) {
      const double native = perf::time_native(g.csr, v.opt, 2);
      const auto profile = bench::paper_scale_profile(g, v.opt);
      const double cpu =
          perf::model_cpu_like(perf::xeon_e5_2680_spec(), profile, 64).seconds;
      const double knl =
          perf::model_cpu_like(perf::knl_7210_spec(), profile, 256).seconds;
      std::string avoided = "-";
      if (profile.work.rf_probes > 0) {
        avoided = util::format_fixed(100.0 *
                                         static_cast<double>(profile.work.rf_skips) /
                                         static_cast<double>(profile.work.rf_probes),
                                     1) +
                  "%";
      }
      table.add_row({std::string(graph::dataset_name(id)), v.name,
                     util::format_seconds(native), util::format_seconds(cpu),
                     util::format_seconds(knl), avoided});
    }
  }
  table.print();
  return 0;
}
