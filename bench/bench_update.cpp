// Live-update bench: the delta-vs-full-recount crossover that
// src/update's policy thresholds against (docs/updates.md), gated by
// tools/bench_regress.py in CI.
//
// For each batch size B the same seeded mutation batch (60% inserts of
// random pairs, 40% deletes of existing edges) is applied two ways from
// identical counter states:
//
//   delta:   IncrementalCounter::apply_batch — one O(min(d_u, d_v))
//            intersection per op, counts exact after every op
//   recount: apply_batch_structural + recount() — adjacency-only apply,
//            then one sequential all-edge MPS pass
//
// Small batches must favor delta by orders of magnitude (the gate:
// small_batch_speedup >= 1 at B=1); as B approaches the edge count the
// one-shot recount amortizes and wins. The measured crossover is
// reported next to where the default policy config would actually flip
// routes, so a drifting cost model is visible in CI.
//
// Emits BENCH_update.json next to the human-readable table.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/incremental.hpp"
#include "update/policy.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

using namespace aecnc;

namespace {

/// Deterministic mutation batch against `state`: inserts of random
/// pairs, deletes sampled from current adjacency (so they mostly hit).
std::vector<core::EdgeOp> make_batch(const core::IncrementalCounter& state,
                                     util::Xoshiro256& rng, std::size_t ops) {
  const auto universe = static_cast<std::uint32_t>(state.num_vertices());
  std::vector<core::EdgeOp> batch;
  batch.reserve(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    if (rng.below(10) < 6) {
      batch.push_back(
          {core::EdgeOpKind::kInsert, rng.below(universe), rng.below(universe)});
    } else {
      const VertexId u = rng.below(universe);
      const auto nbrs = state.neighbors(u);
      const VertexId v =
          nbrs.empty() ? rng.below(universe)
                       : nbrs[rng.below(static_cast<std::uint32_t>(nbrs.size()))];
      batch.push_back({core::EdgeOpKind::kErase, u, v});
    }
  }
  return batch;
}

struct Point {
  std::size_t batch;
  double delta_ms;
  double recount_ms;
};

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto options =
      bench::parse_bench_options(args, {graph::DatasetId::kTwitter});
  const std::string json_path = args.get("json", "BENCH_update.json");
  bench::print_banner(
      "Live updates: delta maintenance vs full recount per batch",
      "per-op delta work is O(min(d_u, d_v)) vs the recount's "
      "sum over every edge, so small batches favor delta by orders of "
      "magnitude and the policy can threshold on estimated work",
      options);

  const auto id = options.datasets.front();
  const auto g = bench::make_bench_graph(id, options.scale);

  util::WallTimer timer;
  const core::IncrementalCounter seeded(g.csr);
  const double seed_ms = timer.millis();

  timer.reset();
  const graph::Csr snapshot = seeded.to_csr();
  const double materialize_ms = timer.millis();
  if (!snapshot.validate().empty()) {
    std::fprintf(stderr, "FATAL: materialized snapshot invalid\n");
    return 1;
  }

  core::Options recount_opt;
  recount_opt.parallel = false;  // one-core numbers, CI-stable

  // The tail sizes approach the replica's edge count, where the one-shot
  // recount must eventually win — the sweep brackets the crossover.
  const std::vector<std::size_t> sweep{1, 16, 256, 4096, 65536, 262144};
  std::vector<Point> points;
  util::Xoshiro256 rng(4242);
  for (const std::size_t b : sweep) {
    const auto batch = make_batch(seeded, rng, b);

    core::IncrementalCounter delta_state = seeded;
    timer.reset();
    (void)delta_state.apply_batch(batch);
    const double delta_ms = timer.millis();

    core::IncrementalCounter recount_state = seeded;
    timer.reset();
    (void)recount_state.apply_batch_structural(batch);
    recount_state.recount(recount_opt);
    const double recount_ms = timer.millis();

    // Both routes are contracted to bit-identical counts.
    if (delta_state.num_edges() != recount_state.num_edges() ||
        delta_state.triangles() != recount_state.triangles()) {
      std::fprintf(stderr, "FATAL: routes disagree at batch %zu\n", b);
      return 1;
    }
    points.push_back({b, delta_ms, recount_ms});
  }

  // Measured crossover: smallest swept batch where the recount route is
  // at least as fast (0 = recount never won in the sweep).
  std::size_t crossover = 0;
  for (const auto& p : points) {
    if (p.recount_ms <= p.delta_ms) {
      crossover = p.batch;
      break;
    }
  }
  // Where the default policy config would flip, on its work estimates.
  const update::UpdatePolicy policy;
  std::size_t policy_crossover = 0;
  util::Xoshiro256 policy_rng(4242);
  for (const std::size_t b : sweep) {
    const auto batch = make_batch(seeded, policy_rng, b);
    if (policy.decide(seeded, batch).mode == update::ApplyMode::kFullRecount) {
      policy_crossover = b;
      break;
    }
  }

  const double small_batch_speedup =
      points.front().delta_ms > 0
          ? points.front().recount_ms / points.front().delta_ms
          : 0.0;

  util::TablePrinter table({"batch", "delta", "recount", "winner"});
  for (const auto& p : points) {
    table.add_row({std::to_string(p.batch),
                   util::format_fixed(p.delta_ms, 3) + " ms",
                   util::format_fixed(p.recount_ms, 3) + " ms",
                   p.delta_ms <= p.recount_ms ? "delta" : "recount"});
  }
  table.print();
  std::printf("seed (one all-edge count): %s, materialize: %s\n",
              util::format_fixed(seed_ms, 2).c_str(),
              util::format_fixed(materialize_ms, 2).c_str());
  std::printf("measured crossover: %zu ops, policy flips at: %zu ops "
              "(0 = beyond sweep)\n",
              crossover, policy_crossover);

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"experiment\": \"update\",\n"
               "  \"dataset\": \"%.*s\",\n"
               "  \"scale\": %g,\n"
               "  \"edges\": %llu,\n"
               "  \"seed_ms\": %.3f,\n"
               "  \"materialize_ms\": %.3f,\n",
               static_cast<int>(graph::dataset_name(id).size()),
               graph::dataset_name(id).data(), options.scale,
               static_cast<unsigned long long>(seeded.num_edges()), seed_ms,
               materialize_ms);
  for (const auto& p : points) {
    std::fprintf(json,
                 "  \"batch_%zu\": {\"delta_ms\": %.4f, \"recount_ms\": "
                 "%.4f, \"recount_over_delta_speedup\": %.3f},\n",
                 p.batch, p.delta_ms, p.recount_ms,
                 p.delta_ms > 0 ? p.recount_ms / p.delta_ms : 0.0);
  }
  std::fprintf(json,
               "  \"small_batch_speedup\": %.3f,\n"
               "  \"crossover_batch\": %zu,\n"
               "  \"policy_crossover_batch\": %zu\n"
               "}\n",
               small_batch_speedup, crossover, policy_crossover);
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
