// Table 7 — Effect of bitmap range filtering on the GPU.
//
// BMP vs BMP-RF through the GPU simulator: the small summary bitmap
// lives in shared memory, so a filtered probe never issues a global
// transaction. Paper: RF speeds BMP up by ~1.9x on both TW and FR by
// cutting global memory loads.
#include <cstdio>

#include "bench/common.hpp"
#include "gpusim/runner.hpp"

using namespace aecnc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options = bench::parse_bench_options(args);
  bench::print_banner("Table 7: bitmap range filtering on the GPU",
                      "BMP-RF ~1.9x over BMP via fewer global loads",
                      options);

  util::TablePrinter table({"Dataset", "Variant", "global load txns",
                            "modeled kernel", "speedup"});
  for (const auto id : options.datasets) {
    const auto g = bench::make_bench_graph(id, options.scale);
    double base = 0;
    for (const bool rf : {false, true}) {
      gpusim::GpuRunConfig cfg;
      cfg.algorithm = core::Algorithm::kBmp;
      cfg.range_filter = rf;
      cfg.rf_range_scale = bench::kReplicaRfScale;
      cfg.device_mem_scale = options.scale;
      const auto r = gpusim::run_gpu(g.csr, cfg);
      if (!rf) base = r.kernel_seconds;
      table.add_row({std::string(graph::dataset_name(id)),
                     rf ? "BMP-RF" : "BMP",
                     util::format_count(r.kernel.load_transactions),
                     util::format_seconds(r.kernel_seconds),
                     util::format_speedup(base / r.kernel_seconds)});
    }
  }
  table.print();
  return 0;
}
