// Hot-path ablation bench: quantifies the two PR-3 optimizations and
// guards them against regressions (tools/bench_regress.py consumes the
// JSON in CI).
//
//   A. Symmetric assignment: storing cnt[e(v,u)] through the O(|E|)
//      reverse-edge index (Csr::reverse_offsets) vs the paper's per-edge
//      binary search find_edge(v, u). Target: >= 5x on a skewed replica
//      (hub adjacency lists make the binary search log(d_max) deep).
//   B. End-to-end: the sequential MPS driver (reverse-index symmetric
//      stores) vs a bench-local legacy driver that still calls find_edge
//      per forward edge. Same kernels, same schedule — the delta is the
//      mirror-store path only.
//   C. Software prefetching (AECNC_PREFETCH): per-kernel on/off for the
//      galloping pivot-skip, the VB block kernel and the BMP bitmap
//      probe loop, plus the end-to-end Options::prefetch toggle.
//   D. Observability overhead (src/obs): the MPS dispatch and the e2e
//      sequential driver with instrumentation runtime-off (the shipping
//      default: one relaxed atomic-bool load per site, budgeted <= 2%
//      vs the pre-obs baseline via bench_regress --baseline) and
//      runtime-on (counting enabled; reported, not gated).
//   E. Degree relabel + word-packed hub index (docs/perf.md): pack build
//      cost and footprint, skewed-pair micro (packed popcounts vs BMP
//      bitmap probes vs the merge family), and the packed vs plain BMP
//      sequential end-to-end on the relabeled replica. Counts are
//      cross-checked slot for slot before any ratio is reported;
//      bench_regress gates packed_e2e_vs_bmp >= 1.0.
//
// Emits BENCH_hotpath.json next to the human-readable table.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bitmap/bitmap.hpp"
#include "core/sequential.hpp"
#include "graph/reorder.hpp"
#include "intersect/dispatch.hpp"
#include "intersect/packed_index.hpp"
#include "intersect/pivot_skip.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

using namespace aecnc;

namespace {

struct ForwardEdge {
  EdgeId e;
  VertexId u, v;
};

/// The legacy driver section B compares against: identical kernel and
/// schedule to count_sequential_mps, but every mirror store goes through
/// the per-edge binary search the paper describes (what the core loops
/// did before the reverse index existed).
core::CountArray legacy_find_edge_mps(const graph::Csr& g,
                                      const intersect::MpsConfig& cfg) {
  core::CountArray cnt(g.num_directed_edges(), 0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const EdgeId base = g.offset_begin(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId v = nbrs[k];
      if (u >= v) continue;
      const CnCount c = intersect::mps_count(nbrs, g.neighbors(v), cfg);
      cnt[base + static_cast<EdgeId>(k)] = c;
      cnt[g.find_edge(v, u)] = c;
    }
  }
  return cnt;
}

/// Legacy sequential BMP (Algorithm 2) with find_edge mirror stores. BMP
/// intersections are cheap bit probes, so the per-edge binary search is a
/// far larger fraction of the runtime than under MPS — this is where the
/// reverse index moves the end-to-end number most.
core::CountArray legacy_find_edge_bmp(const graph::Csr& g) {
  core::CountArray cnt(g.num_directed_edges(), 0);
  bitmap::Bitmap bm(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    bm.set_all(nbrs);
    const EdgeId base = g.offset_begin(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId v = nbrs[k];
      if (u >= v) continue;
      const CnCount c = bitmap::bitmap_intersect_count(bm, g.neighbors(v));
      cnt[base + static_cast<EdgeId>(k)] = c;
      cnt[g.find_edge(v, u)] = c;
    }
    bm.clear_all(nbrs);
  }
  return cnt;
}

double ratio(double num, double den) { return den > 0 ? num / den : 0.0; }

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  auto options =
      bench::parse_bench_options(args, {graph::DatasetId::kTwitter});
  // Like the serve bench, default to a larger replica than the shared
  // bench scale: the symmetric-store delta is a per-edge cost, so tiny
  // graphs measure loop overhead instead. --scale still overrides.
  if (!args.has("scale")) options.scale = 4 * bench::kDefaultScale;
  const int reps = static_cast<int>(args.get_int("reps", 11));
  const std::string json_path = args.get("json", "BENCH_hotpath.json");
  bench::print_banner(
      "Hot-path ablation: reverse-edge index + software prefetch",
      "the O(|E|) reverse index makes the symmetric copy >= 5x cheaper "
      "than the per-edge binary search on skewed graphs; prefetch hints "
      "trim the memory-bound kernels without changing any count",
      options);

  const auto id = options.datasets.front();
  const auto g = bench::make_bench_graph(id, options.scale);
  const graph::Csr& csr = g.csr;
  const EdgeId m2 = csr.num_directed_edges();

  std::vector<ForwardEdge> forward;
  for (VertexId u = 0; u < csr.num_vertices(); ++u) {
    for (EdgeId e = csr.offset_begin(u); e < csr.offset_end(u); ++e) {
      const VertexId v = csr.dst_of(e);
      if (u < v) forward.push_back({e, u, v});
    }
  }

  // ---- A. reverse-index build + symmetric-copy microbench -------------
  util::WallTimer timer;
  const EdgeId* rev = csr.reverse_offsets().data();  // first touch builds
  const double build_ms = timer.millis();

  core::CountArray cnt(m2, 1);
  std::uint64_t sink = 0;

  timer.reset();
  for (int r = 0; r < reps; ++r) {
    for (const auto& fe : forward) cnt[rev[fe.e]] = cnt[fe.e] + r;
    sink += cnt[m2 / 2];
  }
  const double symcopy_rev_ms = timer.millis() / reps;

  timer.reset();
  for (int r = 0; r < reps; ++r) {
    for (const auto& fe : forward) {
      cnt[csr.find_edge(fe.v, fe.u)] = cnt[fe.e] + r;
    }
    sink += cnt[m2 / 2];
  }
  const double symcopy_find_ms = timer.millis() / reps;
  const double symcopy_speedup = ratio(symcopy_find_ms, symcopy_rev_ms);

  // ---- B. end-to-end sequential MPS: reverse index vs find_edge -------
  intersect::MpsConfig mps_cfg;
  mps_cfg.kind = intersect::best_merge_kind();

  timer.reset();
  const auto counts_rev = core::count_sequential_mps(csr, mps_cfg);
  const double e2e_rev_ms = timer.millis();

  timer.reset();
  const auto counts_legacy = legacy_find_edge_mps(csr, mps_cfg);
  const double e2e_find_ms = timer.millis();
  const double e2e_speedup = ratio(e2e_find_ms, e2e_rev_ms);

  if (counts_rev != counts_legacy) {
    std::fprintf(stderr,
                 "FATAL: reverse-index driver disagrees with the legacy "
                 "find_edge driver\n");
    return 1;
  }

  timer.reset();
  const auto bmp_rev = core::count_sequential_bmp(csr, /*range_filter=*/false);
  const double e2e_bmp_rev_ms = timer.millis();

  timer.reset();
  const auto bmp_legacy = legacy_find_edge_bmp(csr);
  const double e2e_bmp_find_ms = timer.millis();
  const double e2e_bmp_speedup = ratio(e2e_bmp_find_ms, e2e_bmp_rev_ms);

  if (bmp_rev != bmp_legacy) {
    std::fprintf(stderr,
                 "FATAL: BMP reverse-index driver disagrees with the legacy "
                 "find_edge driver\n");
    return 1;
  }

  // ---- C. prefetch on/off, per kernel and end-to-end ------------------
  // Pivot-skip: the galloping probe is the prefetch target, so pair the
  // biggest hub's list against each of its neighbors' (max skew).
  VertexId hub = 0;
  for (VertexId u = 1; u < csr.num_vertices(); ++u) {
    if (csr.degree(u) > csr.degree(hub)) hub = u;
  }
  const auto hub_nbrs = csr.neighbors(hub);
  const auto time_pivot_skip = [&](bool pf) {
    util::WallTimer t;
    for (int r = 0; r < reps; ++r) {
      for (const VertexId u : hub_nbrs) {
        sink += intersect::pivot_skip_count(csr.neighbors(u), hub_nbrs, pf);
      }
    }
    return t.millis() / reps;
  };
  const double ps_on_ms = time_pivot_skip(true);
  const double ps_off_ms = time_pivot_skip(false);

  // VB kernel: every forward pair through the host's best block kernel.
  const intersect::MergeKind kind = intersect::best_merge_kind();
  const auto time_vb = [&](bool pf) {
    util::WallTimer t;
    for (const auto& fe : forward) {
      sink += intersect::vb_count(csr.neighbors(fe.u), csr.neighbors(fe.v),
                                  kind, pf);
    }
    return t.millis();
  };
  const double vb_on_ms = time_vb(true);
  const double vb_off_ms = time_vb(false);

  // Bitmap probes: the replica's bitmap is cache-resident (where the
  // kIndexPrefetchMinBytes gate keeps hints off by design), so measure
  // the gated path on a paper-regime universe instead: a 2^31-bit bitmap
  // (256 MiB, beyond any LLC) probed at random — probes go to DRAM.
  constexpr std::uint64_t kBigUniverse = 1ULL << 31;
  bitmap::Bitmap bm(kBigUniverse);
  std::vector<VertexId> probes(1 << 20);
  std::uint64_t rng = 0x5eedULL;
  for (auto& p : probes) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    p = static_cast<VertexId>(rng & (kBigUniverse - 1));
    if ((rng & 3) == 0) bm.set(p);
  }
  const auto time_bitmap = [&](bool pf) {
    util::WallTimer t;
    for (int r = 0; r < reps; ++r) {
      sink += bitmap::bitmap_intersect_count(bm, probes, pf);
    }
    return t.millis() / reps;
  };
  const double bm_on_ms = time_bitmap(true);
  const double bm_off_ms = time_bitmap(false);

  // End-to-end Options::prefetch toggle on both algorithm families.
  const auto time_e2e = [&](core::Algorithm algo, bool pf) {
    core::Options o;
    o.algorithm = algo;
    o.parallel = false;
    o.prefetch = pf;
    o.mps.kind = kind;
    util::WallTimer t;
    const auto c = core::count_common_neighbors(csr, o);
    sink += c.empty() ? 0 : c.front();
    return t.millis();
  };
  const double e2e_mps_on_ms = time_e2e(core::Algorithm::kMps, true);
  const double e2e_mps_off_ms = time_e2e(core::Algorithm::kMps, false);
  const double e2e_bmp_on_ms = time_e2e(core::Algorithm::kBmp, true);
  const double e2e_bmp_off_ms = time_e2e(core::Algorithm::kBmp, false);

  // ---- D. observability overhead: runtime-off guard vs counting on ----
  // The obs chokepoint for intersections sits in the MPS dispatch, so
  // the microbench is mps_count over every forward pair. Runtime-off is
  // what production pays (and what the regression baseline gates);
  // runtime-on additionally buys the route/probe counters — and pins the
  // skewed path to the scalar pivot-skip for machine-independent counts,
  // so its delta is the price of observation, not a regression.
  const auto time_mps_dispatch = [&] {
    util::WallTimer t;
    for (const auto& fe : forward) {
      sink += intersect::mps_count(csr.neighbors(fe.u), csr.neighbors(fe.v),
                                   mps_cfg);
    }
    return t.millis();
  };
  obs::set_enabled(false);
  const double obs_dispatch_off_ms = time_mps_dispatch();
  obs::set_enabled(true);
  const double obs_dispatch_on_ms = time_mps_dispatch();
  const double obs_e2e_mps_on_ms = time_e2e(core::Algorithm::kMps, true);
  obs::set_enabled(false);
  const double obs_e2e_mps_off_ms = time_e2e(core::Algorithm::kMps, true);
  const double obs_on_overhead_pct =
      100.0 * ratio(obs_dispatch_on_ms - obs_dispatch_off_ms,
                    obs_dispatch_off_ms);

  // ---- E. degree relabel + word-packed hub index ----------------------
  // Internal IDs descend by degree, so vertex 0 is the biggest hub and
  // the packed range [0, threshold) concentrates the skew.
  graph::IdMap id_map;
  const graph::Csr relabeled = graph::reorder_degree_descending(csr, &id_map);

  timer.reset();
  const auto pack = intersect::PackedHubIndex::build(relabeled);
  const double pack_build_ms = timer.millis();
  const double pack_bytes = static_cast<double>(pack.memory_bytes());
  const auto pack_hubs = static_cast<double>(
      std::min<VertexId>(pack.threshold(), relabeled.num_vertices()));
  const double pack_bytes_per_hub = ratio(pack_bytes, pack_hubs);

  // Skewed-pair micro: the hub against each of its neighbors, the same
  // shape section C probes — one backend at a time, counts cross-checked.
  const auto rl_hub_nbrs = relabeled.neighbors(0);
  intersect::PackedCounter packed_ctx;
  packed_ctx.reshape(relabeled, pack);
  packed_ctx.set_source(relabeled, pack, 0);
  bitmap::Bitmap rl_bm(relabeled.num_vertices());
  rl_bm.set_all(rl_hub_nbrs);
  for (const VertexId u : rl_hub_nbrs) {
    const CnCount via_packed = packed_ctx.count(relabeled, pack, u, true);
    const CnCount via_bmp =
        bitmap::bitmap_intersect_count(rl_bm, relabeled.neighbors(u));
    const CnCount via_merge =
        intersect::vb_count(rl_hub_nbrs, relabeled.neighbors(u), kind, false);
    if (via_packed != via_bmp || via_packed != via_merge) {
      std::fprintf(stderr,
                   "FATAL: packed/BMP/merge disagree on pair (0, %u): "
                   "%u / %u / %u\n",
                   u, via_packed, via_bmp, via_merge);
      return 1;
    }
  }
  const auto time_micro = [&](auto&& count_pair) {
    util::WallTimer t;
    for (int r = 0; r < reps; ++r) {
      for (const VertexId u : rl_hub_nbrs) sink += count_pair(u);
    }
    return t.millis() / reps;
  };
  const double micro_packed_ms = time_micro([&](VertexId u) {
    return packed_ctx.count(relabeled, pack, u, true);
  });
  const double micro_bmp_ms = time_micro([&](VertexId u) {
    return bitmap::bitmap_intersect_count(rl_bm, relabeled.neighbors(u));
  });
  const double micro_merge_ms = time_micro([&](VertexId u) {
    return intersect::vb_count(rl_hub_nbrs, relabeled.neighbors(u), kind,
                               false);
  });
  rl_bm.clear_all(rl_hub_nbrs);
  packed_ctx.clear_source(relabeled, pack);

  // End-to-end: packed sequential BMP vs the plain |V|-bit BMP on the
  // same relabeled graph — the delta is the backend, nothing else. The
  // index build is reported on its own row above, so the packed run
  // reuses the prebuilt index; both paths take the best of `reps`
  // interleaved runs so a single scheduler hiccup cannot decide the
  // ratio either way.
  double e2e_bmp_rl_ms = 1e300;
  double e2e_packed_ms = 1e300;
  core::CountArray bmp_rl;
  core::CountArray packed_rl;
  for (int r = 0; r < reps; ++r) {
    timer.reset();
    bmp_rl = core::count_sequential_bmp(relabeled, /*range_filter=*/false);
    e2e_bmp_rl_ms = std::min(e2e_bmp_rl_ms, timer.millis());
    timer.reset();
    packed_rl = core::count_sequential_bmp_packed(relabeled, pack);
    e2e_packed_ms = std::min(e2e_packed_ms, timer.millis());
  }
  if (packed_rl != bmp_rl) {
    std::fprintf(stderr,
                 "FATAL: packed sequential BMP disagrees with the plain "
                 "BMP driver on the relabeled replica\n");
    return 1;
  }
  const double packed_e2e_vs_bmp = ratio(e2e_bmp_rl_ms, e2e_packed_ms);

  // ---- report ---------------------------------------------------------
  util::TablePrinter table({"path", "time", "note"});
  table.add_row({"reverse index build (once)",
                 util::format_fixed(build_ms, 2) + " ms",
                 "O(|E|) counting sweep, amortized over all drivers"});
  table.add_row({"symcopy via reverse index",
                 util::format_fixed(symcopy_rev_ms, 2) + " ms/rep",
                 "cnt[rev[e]] = cnt[e]"});
  table.add_row({"symcopy via find_edge",
                 util::format_fixed(symcopy_find_ms, 2) + " ms/rep",
                 util::format_fixed(symcopy_speedup, 1) +
                     "x slower (target >= 5x)"});
  table.add_row({"e2e MPS, reverse index",
                 util::format_fixed(e2e_rev_ms, 2) + " ms", "sequential"});
  table.add_row({"e2e MPS, legacy find_edge",
                 util::format_fixed(e2e_find_ms, 2) + " ms",
                 util::format_fixed(e2e_speedup, 2) + "x vs reverse index"});
  table.add_row({"e2e BMP, reverse index",
                 util::format_fixed(e2e_bmp_rev_ms, 2) + " ms", "sequential"});
  table.add_row({"e2e BMP, legacy find_edge",
                 util::format_fixed(e2e_bmp_find_ms, 2) + " ms",
                 util::format_fixed(e2e_bmp_speedup, 2) + "x vs reverse index"});
  table.add_row({"pivot-skip prefetch on/off",
                 util::format_fixed(ps_on_ms, 2) + " / " +
                     util::format_fixed(ps_off_ms, 2) + " ms/rep",
                 "hub vs its neighbors"});
  table.add_row({"VB kernel prefetch on/off",
                 util::format_fixed(vb_on_ms, 2) + " / " +
                     util::format_fixed(vb_off_ms, 2) + " ms",
                 std::string(intersect::merge_kind_name(kind))});
  table.add_row({"bitmap probe prefetch on/off",
                 util::format_fixed(bm_on_ms, 2) + " / " +
                     util::format_fixed(bm_off_ms, 2) + " ms/rep",
                 "2^31-bit bitmap, 2^20 random probes"});
  table.add_row({"e2e MPS prefetch on/off",
                 util::format_fixed(e2e_mps_on_ms, 2) + " / " +
                     util::format_fixed(e2e_mps_off_ms, 2) + " ms",
                 "Options::prefetch"});
  table.add_row({"e2e BMP prefetch on/off",
                 util::format_fixed(e2e_bmp_on_ms, 2) + " / " +
                     util::format_fixed(e2e_bmp_off_ms, 2) + " ms",
                 "Options::prefetch"});
  std::string obs_note = "compiled out (AECNC_OBS=OFF)";
  if (obs::kCompiledIn) {
    obs_note = obs_on_overhead_pct >= 0 ? "+" : "";
    obs_note += util::format_fixed(obs_on_overhead_pct, 1);
    obs_note += "% when counting";
  }
  table.add_row({"MPS dispatch obs off/on",
                 util::format_fixed(obs_dispatch_off_ms, 2) + " / " +
                     util::format_fixed(obs_dispatch_on_ms, 2) + " ms",
                 obs_note});
  table.add_row({"e2e MPS obs off/on",
                 util::format_fixed(obs_e2e_mps_off_ms, 2) + " / " +
                     util::format_fixed(obs_e2e_mps_on_ms, 2) + " ms",
                 "runtime toggle, docs/observability.md"});
  table.add_row({"packed index build (once)",
                 util::format_fixed(pack_build_ms, 2) + " ms",
                 util::format_bytes(pack_bytes) + ", " +
                     util::format_fixed(pack_bytes_per_hub, 1) +
                     " bytes/hub"});
  table.add_row({"skewed pair packed/BMP/merge",
                 util::format_fixed(micro_packed_ms, 2) + " / " +
                     util::format_fixed(micro_bmp_ms, 2) + " / " +
                     util::format_fixed(micro_merge_ms, 2) + " ms/rep",
                 "relabeled hub vs its neighbors"});
  table.add_row({"e2e BMP packed vs plain",
                 util::format_fixed(e2e_packed_ms, 2) + " / " +
                     util::format_fixed(e2e_bmp_rl_ms, 2) + " ms",
                 util::format_fixed(packed_e2e_vs_bmp, 2) +
                     "x (relabeled replica)"});
  table.print();
  std::printf("(sink %llu keeps the loops live)\n",
              static_cast<unsigned long long>(sink & 0xff));

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"experiment\": \"hotpath\",\n"
               "  \"dataset\": \"%.*s\",\n"
               "  \"scale\": %g,\n"
               "  \"reps\": %d,\n"
               "  \"forward_edges\": %zu,\n"
               "  \"reverse_build_ms\": %.3f,\n"
               "  \"symcopy_reverse_ms\": %.3f,\n"
               "  \"symcopy_find_edge_ms\": %.3f,\n"
               "  \"symcopy_speedup\": %.2f,\n"
               "  \"e2e_reverse_ms\": %.3f,\n"
               "  \"e2e_find_edge_ms\": %.3f,\n"
               "  \"e2e_speedup\": %.3f,\n"
               "  \"e2e_bmp_reverse_ms\": %.3f,\n"
               "  \"e2e_bmp_find_edge_ms\": %.3f,\n"
               "  \"e2e_bmp_speedup\": %.3f,\n"
               "  \"prefetch\": {\n"
               "    \"pivot_skip_on_ms\": %.3f,\n"
               "    \"pivot_skip_off_ms\": %.3f,\n"
               "    \"vb_on_ms\": %.3f,\n"
               "    \"vb_off_ms\": %.3f,\n"
               "    \"bitmap_on_ms\": %.3f,\n"
               "    \"bitmap_off_ms\": %.3f,\n"
               "    \"e2e_mps_on_ms\": %.3f,\n"
               "    \"e2e_mps_off_ms\": %.3f,\n"
               "    \"e2e_bmp_on_ms\": %.3f,\n"
               "    \"e2e_bmp_off_ms\": %.3f\n"
               "  },\n"
               "  \"obs\": {\n"
               "    \"compiled_in\": %d,\n"
               "    \"mps_dispatch_off_ms\": %.3f,\n"
               "    \"mps_dispatch_on_ms\": %.3f,\n"
               "    \"on_overhead_pct\": %.1f,\n"
               "    \"e2e_mps_off_ms\": %.3f,\n"
               "    \"e2e_mps_on_ms\": %.3f\n"
               "  },\n"
               "  \"packed\": {\n"
               "    \"build_ms\": %.3f,\n"
               "    \"bytes\": %.0f,\n"
               "    \"bytes_per_hub\": %.1f,\n"
               "    \"words\": %llu,\n"
               "    \"micro_packed_ms\": %.3f,\n"
               "    \"micro_bmp_ms\": %.3f,\n"
               "    \"micro_merge_ms\": %.3f,\n"
               "    \"e2e_packed_ms\": %.3f,\n"
               "    \"e2e_bmp_ms\": %.3f\n"
               "  },\n"
               "  \"packed_e2e_vs_bmp\": %.3f\n"
               "}\n",
               static_cast<int>(graph::dataset_name(id).size()),
               graph::dataset_name(id).data(), options.scale, reps,
               forward.size(), build_ms, symcopy_rev_ms, symcopy_find_ms,
               symcopy_speedup, e2e_rev_ms, e2e_find_ms, e2e_speedup,
               e2e_bmp_rev_ms, e2e_bmp_find_ms, e2e_bmp_speedup, ps_on_ms, ps_off_ms, vb_on_ms, vb_off_ms, bm_on_ms, bm_off_ms,
               e2e_mps_on_ms, e2e_mps_off_ms, e2e_bmp_on_ms, e2e_bmp_off_ms,
               obs::kCompiledIn ? 1 : 0, obs_dispatch_off_ms,
               obs_dispatch_on_ms, obs_on_overhead_pct, obs_e2e_mps_off_ms,
               obs_e2e_mps_on_ms, pack_build_ms, pack_bytes,
               pack_bytes_per_hub,
               static_cast<unsigned long long>(pack.total_words()),
               micro_packed_ms, micro_bmp_ms, micro_merge_ms, e2e_packed_ms,
               e2e_bmp_rl_ms, packed_e2e_vs_bmp);
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
