#include "obs/metrics.hpp"

#if AECNC_OBS_ENABLED

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace aecnc::obs {

namespace {

// aecnc: atomic-ok(relaxed master switch; instrumentation may lag a
// toggle by a few operations, which the policy explicitly allows)
std::atomic<bool> g_enabled{false};
// aecnc: atomic-ok(relaxed test-clock knob; set before threads observe)
std::atomic<std::uint64_t> g_fake_tick_ns{0};
// Fake-clock counter: each now_ns() call advances by the tick, so a
// ScopedTimer observes exactly one tick regardless of real elapsed time.
// aecnc: atomic-ok(relaxed monotonic fake-time counter; only uniqueness
// of ticks matters, not ordering)
std::atomic<std::uint64_t> g_fake_now_ns{0};

bool env_enabled() {
  // Read once during static init, before any thread could call setenv;
  // the result is latched into g_enabled, never re-read.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("AECNC_OBS");
  if (env == nullptr) return false;
  return env[0] != '\0' && env[0] != '0';
}

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

void append_json_escaped(std::string& out, std::string_view s) {
  // Metric names are dotted identifiers by convention, but dump output
  // must stay valid JSON for any registered name.
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

std::string prom_name(std::string_view name) {
  std::string out = "aecnc_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
  const std::uint64_t tick = g_fake_tick_ns.load(std::memory_order_relaxed);
  if (tick != 0) {
    return g_fake_now_ns.fetch_add(tick, std::memory_order_relaxed);
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_fake_clock(std::uint64_t tick_ns) noexcept {
  g_fake_now_ns.store(0, std::memory_order_relaxed);
  g_fake_tick_ns.store(tick_ns, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) total += bucket_count(i);
  return total;
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (q <= 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based: ceil(q * total), clamped.
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (static_cast<double>(rank) < q * static_cast<double>(total)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += bucket_count(i);
    if (seen >= rank) return bucket_upper(i);
  }
  return bucket_upper(kNumBuckets - 1);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* instance = [] {
    // First touch of the global registry also resolves the env switch,
    // so AECNC_OBS=1 works for any binary without code changes.
    if (env_enabled()) set_enabled(true);
    return new Registry();  // leaked: metric refs must outlive exit paths
  }();
  return *instance;
}

Registry::Entry& Registry::entry_for(std::string_view name, Kind kind) {
  util::MutexLock lock(&mutex_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error(
          "obs: metric '" + std::string(name) + "' already registered as " +
          kind_name(static_cast<int>(it->second.kind)) + ", requested " +
          kind_name(static_cast<int>(kind)));
    }
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return metrics_.emplace(std::string(name), std::move(entry)).first->second;
}

Counter& Registry::counter(std::string_view name) {
  return *entry_for(name, Kind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name) {
  return *entry_for(name, Kind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name) {
  return *entry_for(name, Kind::kHistogram).histogram;
}

void Registry::reset() {
  util::MutexLock lock(&mutex_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter: entry.counter->reset(); break;
      case Kind::kGauge: entry.gauge->reset(); break;
      case Kind::kHistogram: entry.histogram->reset(); break;
    }
  }
}

std::string Registry::dump_json() const {
  util::MutexLock lock(&mutex_);
  std::string out = "{\n  \"counters\": {";
  const char* sep = "";
  for (const auto& [name, entry] : metrics_) {
    if (entry.kind != Kind::kCounter) continue;
    out += sep;
    out += "\n    \"";
    append_json_escaped(out, name);
    out += "\": " + std::to_string(entry.counter->value());
    sep = ",";
  }
  out += *sep ? "\n  },\n" : "},\n";
  out += "  \"gauges\": {";
  sep = "";
  for (const auto& [name, entry] : metrics_) {
    if (entry.kind != Kind::kGauge) continue;
    out += sep;
    out += "\n    \"";
    append_json_escaped(out, name);
    out += "\": " + std::to_string(entry.gauge->value());
    sep = ",";
  }
  out += *sep ? "\n  },\n" : "},\n";
  out += "  \"histograms\": {";
  sep = "";
  for (const auto& [name, entry] : metrics_) {
    if (entry.kind != Kind::kHistogram) continue;
    const Histogram& h = *entry.histogram;
    out += sep;
    out += "\n    \"";
    append_json_escaped(out, name);
    out += "\": {\"count\": " + std::to_string(h.count());
    out += ", \"sum\": " + std::to_string(h.sum());
    out += ", \"p50\": " + std::to_string(h.quantile(0.50));
    out += ", \"p95\": " + std::to_string(h.quantile(0.95));
    out += ", \"p99\": " + std::to_string(h.quantile(0.99));
    // Sparse bucket map: only non-empty buckets, keyed by their
    // inclusive upper bound.
    out += ", \"buckets\": {";
    const char* bsep = "";
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      const std::uint64_t n = h.bucket_count(i);
      if (n == 0) continue;
      out += bsep;
      out += '"';
      out += std::to_string(Histogram::bucket_upper(i));
      out += "\": ";
      out += std::to_string(n);
      bsep = ", ";
    }
    out += "}}";
    sep = ",";
  }
  out += *sep ? "\n  }\n}\n" : "}\n}\n";
  return out;
}

std::string Registry::dump_prometheus() const {
  util::MutexLock lock(&mutex_);
  std::string out;
  for (const auto& [name, entry] : metrics_) {
    const std::string pname = prom_name(name);
    switch (entry.kind) {
      case Kind::kCounter:
        out += "# TYPE " + pname + " counter\n";
        out += pname + " " + std::to_string(entry.counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + pname + " gauge\n";
        out += pname + " " + std::to_string(entry.gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += "# TYPE " + pname + " histogram\n";
        std::uint64_t cumulative = 0;
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          const std::uint64_t n = h.bucket_count(i);
          if (n == 0) continue;
          cumulative += n;
          out += pname + "_bucket{le=\"" +
                 std::to_string(Histogram::bucket_upper(i)) +
                 "\"} " + std::to_string(cumulative) + "\n";
        }
        out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
               "\n";
        out += pname + "_sum " + std::to_string(h.sum()) + "\n";
        out += pname + "_count " + std::to_string(cumulative) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace aecnc::obs

#endif  // AECNC_OBS_ENABLED
