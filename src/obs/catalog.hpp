// The metric catalog: every metric the library itself registers, grouped
// by subsystem and resolved once per process from Registry::global().
//
// Instrumented code holds a `const KernelMetrics&` (etc.) — obtained via
// the static get() — so the hot path never pays a registry lookup; the
// mutex is taken only on first use. The catalog is also registered
// eagerly by register_all(), which the CLI calls before dumping so a dump
// always lists the full metric set (zeros included) regardless of which
// code paths ran — golden tests depend on that fixed shape.
//
// docs/observability.md documents each metric's meaning and unit.
#pragma once

#include <array>

#include "obs/metrics.hpp"

namespace aecnc::obs {

/// intersect/ + bitmap/: dispatch routing and kernel work counters.
struct KernelMetrics {
  // MPS dispatch (paper Algorithm 1): calls, and which side of the skew
  // test each call took.
  Counter& mps_calls;          // intersect.mps.calls
  Counter& route_pivot_skip;   // intersect.mps.route.pivot_skip
  Counter& route_vb;           // intersect.mps.route.vb
  // VB calls by MergeKind, indexed by static_cast<int>(MergeKind).
  std::array<Counter*, 6> vb_calls;  // intersect.vb.<kind>
  // Search steps (gallop + binary + linear) spent inside pivot-skip.
  Counter& gallop_probes;      // intersect.pivot_skip.probes
  // BMP/RF (paper Algorithm 2 / §4.3).
  Counter& bitmap_builds;      // bmp.bitmap.builds
  Counter& bitmap_sets;        // bmp.bitmap.set_bits
  Counter& bitmap_probes;      // bmp.bitmap.probes
  Counter& bitmap_matches;     // bmp.bitmap.matches
  Counter& rf_probes;          // bmp.rf.probes
  Counter& rf_skips;           // bmp.rf.skips
  // Packed hub index (intersect/packed_index.hpp): per-source dense
  // expansions, packed words materialized at build, word-AND popcounts,
  // and intersections that fell back to the bitmap tail path.
  Counter& pack_builds;        // pack.builds
  Counter& pack_words;         // pack.words
  Counter& pack_popcounts;     // pack.popcounts
  Counter& pack_fallbacks;     // pack.fallbacks

  [[nodiscard]] static const KernelMetrics& get();
};

/// core/ + parallel/: batch-run drivers and scheduler health.
struct CoreMetrics {
  Counter& runs;               // core.runs
  Histogram& run_ns;           // core.run_ns
  Counter& lease_shared;       // parallel.lease.shared
  Counter& lease_private;      // parallel.lease.private
  Counter& pool_runs;          // parallel.pool.runs
  Counter& pool_chunks;        // parallel.pool.chunks

  [[nodiscard]] static const CoreMetrics& get();
};

/// serve/: per-query latency, cache effectiveness, admission control.
struct ServeMetrics {
  Histogram& point_ns;         // serve.latency.point_ns
  Histogram& vertex_ns;        // serve.latency.vertex_ns
  Histogram& batch_ns;         // serve.latency.batch_ns
  Counter& cache_hits;         // serve.cache.hits
  Counter& cache_misses;       // serve.cache.misses
  Counter& cache_carried;      // serve.cache.carried_forward
  Counter& coalesce_joined;    // serve.coalesce.joined
  Counter& slo_stale;          // serve.slo.stale
  Counter& slo_shed;           // serve.slo.shed
  Counter& publishes;          // serve.publishes
  Counter& backpressure_waits; // serve.backpressure_waits
  Counter& shed;               // serve.shed
  Gauge& queue_depth;          // serve.queue_depth
  Gauge& epoch;                // serve.epoch

  [[nodiscard]] static const ServeMetrics& get();
};

/// update/: mutation-pipeline throughput, policy routing, admission log.
struct UpdateMetrics {
  Counter& batches;            // update.batches
  Counter& ops_inserted;       // update.ops.inserted
  Counter& ops_erased;         // update.ops.erased
  Counter& ops_noop;           // update.ops.noop
  Counter& ops_rejected;       // update.ops.rejected
  Counter& route_delta;        // update.route.delta
  Counter& route_recount;      // update.route.recount
  Counter& log_shed;           // update.log.shed
  Counter& log_backpressure;   // update.log.backpressure_waits
  Gauge& log_depth;            // update.log.depth
  Histogram& apply_ns;         // update.latency.apply_ns
  Histogram& publish_ns;       // update.latency.publish_ns

  [[nodiscard]] static const UpdateMetrics& get();
};

/// shard/: sharded-engine runs and aggregator transport traffic.
struct ShardMetrics {
  Counter& runs;               // shard.runs
  Counter& msgs_sent;          // shard.msgs_sent
  Counter& flushes;            // shard.flushes
  Counter& bytes_moved;        // shard.bytes_moved
  Counter& backpressure_waits; // shard.backpressure_waits
  Histogram& run_ns;           // shard.run_ns (one sample per shard worker)

  [[nodiscard]] static const ShardMetrics& get();
};

/// net/: socket/in-process transport traffic behind the shard seam.
struct NetMetrics {
  Counter& frames_sent;        // net.frames_sent
  Counter& frames_recv;        // net.frames_recv
  Counter& bytes_sent;         // net.bytes_sent
  Counter& bytes_recv;         // net.bytes_recv
  Counter& retries;            // net.retries
  Counter& timeouts;           // net.timeouts
  Counter& reconnects;         // net.reconnects
  Counter& dups_dropped;       // net.dups_dropped

  [[nodiscard]] static const NetMetrics& get();
};

/// Force-register the whole catalog into Registry::global(). Dump-side
/// callers (CLI stats, serve-session stats) use this so the dump shape
/// does not depend on which kernels happened to execute.
void register_all();

}  // namespace aecnc::obs
