#include "obs/catalog.hpp"

namespace aecnc::obs {

const KernelMetrics& KernelMetrics::get() {
  static const KernelMetrics m = [] {
    Registry& r = Registry::global();
    return KernelMetrics{
        .mps_calls = r.counter("intersect.mps.calls"),
        .route_pivot_skip = r.counter("intersect.mps.route.pivot_skip"),
        .route_vb = r.counter("intersect.mps.route.vb"),
        .vb_calls = {&r.counter("intersect.vb.scalar"),
                     &r.counter("intersect.vb.branchless"),
                     &r.counter("intersect.vb.block_scalar"),
                     &r.counter("intersect.vb.sse"),
                     &r.counter("intersect.vb.avx2"),
                     &r.counter("intersect.vb.avx512")},
        .gallop_probes = r.counter("intersect.pivot_skip.probes"),
        .bitmap_builds = r.counter("bmp.bitmap.builds"),
        .bitmap_sets = r.counter("bmp.bitmap.set_bits"),
        .bitmap_probes = r.counter("bmp.bitmap.probes"),
        .bitmap_matches = r.counter("bmp.bitmap.matches"),
        .rf_probes = r.counter("bmp.rf.probes"),
        .rf_skips = r.counter("bmp.rf.skips"),
        .pack_builds = r.counter("pack.builds"),
        .pack_words = r.counter("pack.words"),
        .pack_popcounts = r.counter("pack.popcounts"),
        .pack_fallbacks = r.counter("pack.fallbacks"),
    };
  }();
  return m;
}

const CoreMetrics& CoreMetrics::get() {
  static const CoreMetrics m = [] {
    Registry& r = Registry::global();
    return CoreMetrics{
        .runs = r.counter("core.runs"),
        .run_ns = r.histogram("core.run_ns"),
        .lease_shared = r.counter("parallel.lease.shared"),
        .lease_private = r.counter("parallel.lease.private"),
        .pool_runs = r.counter("parallel.pool.runs"),
        .pool_chunks = r.counter("parallel.pool.chunks"),
    };
  }();
  return m;
}

const ServeMetrics& ServeMetrics::get() {
  static const ServeMetrics m = [] {
    Registry& r = Registry::global();
    return ServeMetrics{
        .point_ns = r.histogram("serve.latency.point_ns"),
        .vertex_ns = r.histogram("serve.latency.vertex_ns"),
        .batch_ns = r.histogram("serve.latency.batch_ns"),
        .cache_hits = r.counter("serve.cache.hits"),
        .cache_misses = r.counter("serve.cache.misses"),
        .cache_carried = r.counter("serve.cache.carried_forward"),
        .coalesce_joined = r.counter("serve.coalesce.joined"),
        .slo_stale = r.counter("serve.slo.stale"),
        .slo_shed = r.counter("serve.slo.shed"),
        .publishes = r.counter("serve.publishes"),
        .backpressure_waits = r.counter("serve.backpressure_waits"),
        .shed = r.counter("serve.shed"),
        .queue_depth = r.gauge("serve.queue_depth"),
        .epoch = r.gauge("serve.epoch"),
    };
  }();
  return m;
}

const UpdateMetrics& UpdateMetrics::get() {
  static const UpdateMetrics m = [] {
    Registry& r = Registry::global();
    return UpdateMetrics{
        .batches = r.counter("update.batches"),
        .ops_inserted = r.counter("update.ops.inserted"),
        .ops_erased = r.counter("update.ops.erased"),
        .ops_noop = r.counter("update.ops.noop"),
        .ops_rejected = r.counter("update.ops.rejected"),
        .route_delta = r.counter("update.route.delta"),
        .route_recount = r.counter("update.route.recount"),
        .log_shed = r.counter("update.log.shed"),
        .log_backpressure = r.counter("update.log.backpressure_waits"),
        .log_depth = r.gauge("update.log.depth"),
        .apply_ns = r.histogram("update.latency.apply_ns"),
        .publish_ns = r.histogram("update.latency.publish_ns"),
    };
  }();
  return m;
}

const ShardMetrics& ShardMetrics::get() {
  static const ShardMetrics m = [] {
    Registry& r = Registry::global();
    return ShardMetrics{
        .runs = r.counter("shard.runs"),
        .msgs_sent = r.counter("shard.msgs_sent"),
        .flushes = r.counter("shard.flushes"),
        .bytes_moved = r.counter("shard.bytes_moved"),
        .backpressure_waits = r.counter("shard.backpressure_waits"),
        .run_ns = r.histogram("shard.run_ns"),
    };
  }();
  return m;
}

const NetMetrics& NetMetrics::get() {
  static const NetMetrics m = [] {
    Registry& r = Registry::global();
    return NetMetrics{
        .frames_sent = r.counter("net.frames_sent"),
        .frames_recv = r.counter("net.frames_recv"),
        .bytes_sent = r.counter("net.bytes_sent"),
        .bytes_recv = r.counter("net.bytes_recv"),
        .retries = r.counter("net.retries"),
        .timeouts = r.counter("net.timeouts"),
        .reconnects = r.counter("net.reconnects"),
        .dups_dropped = r.counter("net.dups_dropped"),
    };
  }();
  return m;
}

void register_all() {
  (void)KernelMetrics::get();
  (void)CoreMetrics::get();
  (void)ServeMetrics::get();
  (void)UpdateMetrics::get();
  (void)ShardMetrics::get();
  (void)NetMetrics::get();
}

}  // namespace aecnc::obs
