// Observability core: a process-wide registry of named metrics with a
// hot path cheap enough to leave compiled into production kernels
// (docs/observability.md).
//
// Three metric types:
//  - Counter: monotonic uint64, relaxed-atomic add.
//  - Gauge: last-written int64 level (queue depth, epoch, cache size).
//  - Histogram: log2-bucketed uint64 samples (latencies in ns) with
//    p50/p95/p99 extraction from the bucket counts.
//
// Hot-path policy, in order of cost:
//  1. Compile-time off (cmake -DAECNC_OBS=OFF): every type below is an
//     empty stub, enabled() is constexpr false, instrumented branches
//     fold away. Zero cost, no registry, dumps are empty.
//  2. Runtime off (the default): instrumented sites guard on enabled(),
//     one relaxed atomic-bool load. bench_hotpath measures this delta
//     (<= 2% on the intersect microbench).
//  3. Runtime on: plain relaxed increments. Kernels that would pay one
//     atomic per element use CounterScope — a per-thread shard that
//     accumulates with plain (non-atomic) increments and flushes into
//     the shared Counter once, on scope exit.
//
// Naming convention: dotted lower-case paths, `subsystem.metric` or
// `subsystem.group.metric` (e.g. `intersect.route.pivot_skip`,
// `serve.latency.point_ns`). Histogram names end in their unit (`_ns`).
// Registering the same name twice with the same type returns the same
// metric; with a different type it throws std::logic_error — a name
// collision is a programming error, not a runtime condition.
#pragma once

#include <cstdint>

#ifndef AECNC_OBS_ENABLED
#define AECNC_OBS_ENABLED 1
#endif

#if AECNC_OBS_ENABLED

#include <array>
#include <atomic>
#include <bit>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "util/annotations.hpp"

namespace aecnc::obs {

inline constexpr bool kCompiledIn = true;

/// Runtime master switch. Defaults to off; the environment variable
/// AECNC_OBS=1 (read once, on first Registry access) or set_enabled(true)
/// turns instrumentation on.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonic counter. add() is a relaxed fetch_add: safe from any thread,
/// no ordering implied — dumps are monotonic snapshots, not barriers.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  // aecnc: atomic-ok(relaxed monotonic counter; dumps are snapshots,
  // not barriers — see the hot-path policy above)
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (signed: depths and deltas can transiently dip
/// below zero under racy decrement ordering).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n = 1) noexcept { add(-n); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  // aecnc: atomic-ok(relaxed last-write-wins level; racy transients are
  // documented and acceptable for a gauge)
  std::atomic<std::int64_t> value_{0};
};

/// Log2-bucketed histogram of uint64 samples. Bucket i holds samples
/// whose bit width is i — bucket 0 is exactly {0}, bucket i (i >= 1) is
/// [2^(i-1), 2^i). 65 buckets cover the full uint64 range, so observe()
/// is branch-free bucket arithmetic plus two relaxed adds.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  void observe(std::uint64_t sample) noexcept {
    buckets_[bucket_of(sample)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
  }

  [[nodiscard]] static int bucket_of(std::uint64_t sample) noexcept {
    return std::bit_width(sample);
  }
  /// Inclusive upper bound of bucket i (the value quantiles report).
  [[nodiscard]] static std::uint64_t bucket_upper(int i) noexcept {
    if (i <= 0) return 0;
    if (i >= 64) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << i) - 1;
  }

  [[nodiscard]] std::uint64_t bucket_count(int i) const noexcept {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Upper bound of the bucket holding the ceil(q * count)-th smallest
  /// observation (q in (0, 1]); 0 on an empty histogram. Log2 buckets
  /// bound the overestimate to < 2x, which is what a self-monitoring
  /// latency readout needs — exact quantiles belong to external tracing.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  void reset() noexcept;

 private:
  // aecnc: atomic-ok(independently-relaxed bucket shards; quantiles read
  // a racy-but-monotonic snapshot by design)
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  // aecnc: atomic-ok(relaxed monotonic sum; same snapshot semantics)
  std::atomic<std::uint64_t> sum_{0};
};

/// Per-scope counter shard: plain non-atomic increments on the owning
/// thread, one atomic flush into the parent on scope exit. The pattern
/// for per-element counting inside parallel kernels — a driver creates
/// one per worker scope and the element loop stays atomic-free.
class CounterScope {
 public:
  explicit CounterScope(Counter& parent) noexcept : parent_(&parent) {}
  CounterScope(const CounterScope&) = delete;
  CounterScope& operator=(const CounterScope&) = delete;
  ~CounterScope() { flush(); }

  void add(std::uint64_t n = 1) noexcept { local_ += n; }
  [[nodiscard]] std::uint64_t pending() const noexcept { return local_; }

  /// Push the local tally into the shared counter (idempotent; the
  /// destructor calls it too).
  void flush() noexcept {
    if (local_ != 0) {
      parent_->add(local_);
      local_ = 0;
    }
  }

 private:
  Counter* parent_;
  std::uint64_t local_ = 0;
};

/// Nanosecond clock for ScopedTimer. A fake tick (set_fake_clock) makes
/// every timed section observe exactly that many ns — golden tests of
/// dump output need deterministic histograms.
[[nodiscard]] std::uint64_t now_ns() noexcept;
void set_fake_clock(std::uint64_t tick_ns) noexcept;  // 0 restores real time

/// RAII section timer: observes the elapsed ns into a histogram on
/// destruction. Checks enabled() once, at construction — a section that
/// starts observed finishes observed.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) noexcept
      : hist_(enabled() ? &hist : nullptr), start_(hist_ ? now_ns() : 0) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->observe(now_ns() - start_);
  }

 private:
  Histogram* hist_;
  std::uint64_t start_;
};

/// Name -> metric map. Registry::global() is the process-wide instance
/// every instrumented subsystem registers into; tests construct private
/// instances for isolation. Lookup takes a mutex — callers cache the
/// returned reference (metrics are never deleted, so references stay
/// valid for the registry's lifetime).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] static Registry& global();

  /// Get-or-create; throws std::logic_error if `name` is already
  /// registered as a different metric type.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Zero every registered metric (registrations persist).
  void reset();

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, p50, p95, p99, buckets}}}.
  /// Keys are sorted; output is deterministic given metric values.
  [[nodiscard]] std::string dump_json() const;

  /// Prometheus text exposition format. Names are prefixed with
  /// `aecnc_` and sanitized ('.', '-' -> '_'); histograms emit
  /// cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.
  [[nodiscard]] std::string dump_prometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_for(std::string_view name, Kind kind);

  // Registration/dump lock. Innermost in the global order: metric
  // resolution can run under any subsystem lock, so nothing may be
  // acquired while holding it.
  // aecnc: lock-leaf(map access only; metric hot paths are lock-free)
  mutable util::Mutex mutex_;
  std::map<std::string, Entry, std::less<>> metrics_
      AECNC_GUARDED_BY(mutex_);
};

}  // namespace aecnc::obs

#else  // !AECNC_OBS_ENABLED — stubs with identical spelling, zero state.

#include <string>
#include <string_view>

namespace aecnc::obs {

inline constexpr bool kCompiledIn = false;

[[nodiscard]] constexpr bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t = 1) noexcept {}
  void sub(std::int64_t = 1) noexcept {}
  [[nodiscard]] std::int64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Histogram {
 public:
  static constexpr int kNumBuckets = 65;
  void observe(std::uint64_t) noexcept {}
  [[nodiscard]] static int bucket_of(std::uint64_t) noexcept { return 0; }
  [[nodiscard]] static std::uint64_t bucket_upper(int) noexcept { return 0; }
  [[nodiscard]] std::uint64_t bucket_count(int) const noexcept { return 0; }
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t quantile(double) const noexcept { return 0; }
  void reset() noexcept {}
};

class CounterScope {
 public:
  explicit CounterScope(Counter&) noexcept {}
  CounterScope(const CounterScope&) = delete;
  CounterScope& operator=(const CounterScope&) = delete;
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t pending() const noexcept { return 0; }
  void flush() noexcept {}
};

[[nodiscard]] inline std::uint64_t now_ns() noexcept { return 0; }
inline void set_fake_clock(std::uint64_t) noexcept {}

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram&) noexcept {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

/// Stub registry: every name resolves to one shared no-op metric of the
/// requested type, dumps are empty documents. Keeps CLI/serve dump code
/// compiling unchanged under -DAECNC_OBS=OFF.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] static Registry& global() {
    static Registry r;
    return r;
  }
  [[nodiscard]] Counter& counter(std::string_view) {
    static Counter c;
    return c;
  }
  [[nodiscard]] Gauge& gauge(std::string_view) {
    static Gauge g;
    return g;
  }
  [[nodiscard]] Histogram& histogram(std::string_view) {
    static Histogram h;
    return h;
  }
  void reset() {}
  [[nodiscard]] std::string dump_json() const { return "{}\n"; }
  [[nodiscard]] std::string dump_prometheus() const { return ""; }
};

}  // namespace aecnc::obs

#endif  // AECNC_OBS_ENABLED
