// Umbrella header: the whole public API in one include.
//
//   #include "aecnc.hpp"
//
// For finer-grained dependencies include the per-module headers
// directly (core/api.hpp is enough for counting).
#pragma once

#include "bitmap/bitmap.hpp"          // IWYU pragma: export
#include "bitmap/range_filter.hpp"    // IWYU pragma: export
#include "core/api.hpp"               // IWYU pragma: export
#include "core/comparators.hpp"       // IWYU pragma: export
#include "core/triangle.hpp"          // IWYU pragma: export
#include "core/verify.hpp"            // IWYU pragma: export
#include "gpusim/runner.hpp"          // IWYU pragma: export
#include "graph/csr.hpp"              // IWYU pragma: export
#include "graph/datasets.hpp"         // IWYU pragma: export
#include "graph/generators.hpp"       // IWYU pragma: export
#include "graph/io.hpp"               // IWYU pragma: export
#include "graph/reorder.hpp"          // IWYU pragma: export
#include "graph/stats.hpp"            // IWYU pragma: export
#include "intersect/dispatch.hpp"     // IWYU pragma: export
#include "perf/collect.hpp"           // IWYU pragma: export
#include "perf/models.hpp"            // IWYU pragma: export
#include "scan/scan.hpp"              // IWYU pragma: export
#include "serve/service.hpp"          // IWYU pragma: export
