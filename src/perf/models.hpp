// Analytic performance models for the CPU-like processors.
//
// A run's instrumented work profile is converted into modeled elapsed
// time as
//
//     T(t) = max( T_compute / E(t),  Bytes / BW )
//
// where E(t) is the effective parallelism of t threads (cores first, SMT
// contexts at a reduced yield) and the byte total covers both streamed
// adjacency data and the cache-line traffic of random bitmap probes.
// Compute is itself a sum of per-operation-class costs:
//
//   - merge comparisons: branchy scalar compare-advance steps,
//   - VB block steps: `lanes` rotate+compare vector instructions each,
//   - gallop/binary search steps: dependent (unoverlappable) loads from
//     the searched adjacency array,
//   - bitmap probes/updates: random loads whose latency depends on
//     whether a thread's share of the LLC still holds its bitmap, divided
//     by the core's memory-level parallelism,
//   - range-filter probes: L1-resident summary lookups.
//
// The same functional form reproduces the paper's CPU and KNL findings
// with only the spec constants changing (clock, IPC, MLP, LLC, HBM): BMP
// benefits from the Xeon's deep OoO and big L3; MPS benefits from the
// KNL's 16-lane VPUs and MCDRAM bandwidth.
#pragma once

#include "perf/profile.hpp"
#include "perf/specs.hpp"

namespace aecnc::perf {

/// Where bitmaps/CSR arrays live on the KNL (Fig 7). kDram is the only
/// choice on the Xeon.
enum class MemMode {
  kDram,      // DDR4 only (flat mode, allocations on DDR)
  kHbmFlat,   // flat mode, hot arrays placed on MCDRAM via memkind
  kHbmCache,  // MCDRAM configured as a memory-side cache
};

[[nodiscard]] std::string_view mem_mode_name(MemMode mode);

/// Component breakdown of a modeled run (all in seconds unless noted).
struct ModelResult {
  double seconds = 0.0;            // modeled elapsed time
  double compute_seconds = 0.0;    // compute term at the given t
  double bandwidth_seconds = 0.0;  // bandwidth term
  // Single-thread compute cycles by class (for bench breakdowns):
  double cycles_merge = 0.0;
  double cycles_vector = 0.0;
  double cycles_search = 0.0;
  double cycles_bitmap = 0.0;
  double cycles_rf = 0.0;
  // Byte totals:
  double streamed_bytes = 0.0;
  double random_bytes = 0.0;
  // Effective parallel contexts used:
  double effective_parallelism = 1.0;
};

/// Model one run of `profile` with `threads` threads on a CPU-like chip.
[[nodiscard]] ModelResult model_cpu_like(const CpuLikeSpec& spec,
                                         const WorkProfile& profile,
                                         int threads,
                                         MemMode mode = MemMode::kDram);

/// Effective parallelism E(t): full yield up to `cores`, `smt_yield` per
/// extra hardware context, flat beyond cores*threads_per_core.
[[nodiscard]] double effective_parallelism(const CpuLikeSpec& spec,
                                           int threads);

/// Scale a replica-derived profile up to the original dataset's regime:
/// multiplies every operation count and footprint by `factor` (use
/// 1/replica_scale). Per-edge behaviour is scale-invariant, so this
/// recovers the cache-pressure and bandwidth picture of the full graphs
/// that the paper's machines actually faced.
[[nodiscard]] WorkProfile scale_profile(const WorkProfile& profile,
                                        double factor);

}  // namespace aecnc::perf
