#include "perf/specs.hpp"

namespace aecnc::perf {

std::string_view processor_name(Processor p) {
  switch (p) {
    case Processor::kCpu: return "CPU";
    case Processor::kKnl: return "KNL";
    case Processor::kGpu: return "GPU";
  }
  return "?";
}

const CpuLikeSpec& xeon_e5_2680_spec() {
  static const CpuLikeSpec spec{
      .name = "2x Intel Xeon E5-2680 v4",
      .cores = 28,
      .threads_per_core = 2,
      .smt_yield = 0.45,        // HT adds ~45% on merge-style loops
      .freq_ghz = 2.4,
      .vector_lanes = 8,        // AVX2
      .scalar_ipc = 1.1,        // branchy compare loops with mispredicts
      .vector_ipc = 0.9,
      .l1_bytes = 32.0 * 1024,
      .llc_bytes = 35.0 * 1024 * 1024,
      .dram_bw_gbs = 130.0,
      .random_bw_gbs = 17.0,      // line-granular random fills (paper's
                                  // BMP+P throughput implies ~17 GB/s)
      .core_stream_bw_gbs = 1.5,  // short-array streams: latency-limited
      .dram_latency_ns = 85.0,
      .llc_latency_ns = 18.0,
      .mlp = 8.0,               // deep OoO window overlaps misses
      .bitmap_mlp = 1.2,        // probe loops barely overlap their misses
      .smt_random_penalty = 0.3,
      .hbm_bw_gbs = 0.0,
      .hbm_random_bw_gbs = 0.0,
      .hbm_core_stream_bw_gbs = 0.0,
      .hbm_latency_ns = 0.0,
      .hbm_bytes = 0.0,
  };
  return spec;
}

const CpuLikeSpec& knl_7210_spec() {
  static const CpuLikeSpec spec{
      .name = "Intel Xeon Phi 7210 (KNL)",
      .cores = 64,
      .threads_per_core = 4,
      .smt_yield = 0.25,        // 4-way SMT on 2-wide cores yields less
      .freq_ghz = 1.3,
      .vector_lanes = 16,       // AVX-512, 2 VPUs per core
      .scalar_ipc = 0.55,       // Silvermont-class core, weak speculation
      .vector_ipc = 0.8,
      .l1_bytes = 32.0 * 1024,
      .llc_bytes = 32.0 * 1024 * 1024,  // 1 MB L2 per tile x 32 tiles
      .dram_bw_gbs = 90.0,              // DDR4-2400, 6 channels
      .random_bw_gbs = 10.0,            // random line fills over the mesh
      .core_stream_bw_gbs = 0.6,        // weak core: ~1 outstanding stream
      .dram_latency_ns = 130.0,
      .llc_latency_ns = 28.0,           // mesh hop to a remote tile
      .mlp = 3.0,                       // shallow OoO: few overlapped misses
      .bitmap_mlp = 1.0,                // in-order-ish probe loops
      .smt_random_penalty = 0.5,        // 4-way SMT floods the mesh
      .hbm_bw_gbs = 420.0,              // MCDRAM stream bandwidth
      .hbm_random_bw_gbs = 12.0,        // latency-limited: ~DDR + 20%
      .hbm_core_stream_bw_gbs = 0.8,    // MCDRAM helps per-core streams too
      .hbm_latency_ns = 150.0,          // MCDRAM is high-bw, NOT low-latency
      .hbm_bytes = 16.0 * 1024 * 1024 * 1024,
  };
  return spec;
}

const GpuSpec& titan_xp_spec() {
  static const GpuSpec spec{
      .name = "NVIDIA TITAN Xp",
      .num_sms = 30,
      .max_threads_per_sm = 2048,
      .max_blocks_per_sm = 16,
      .warp_size = 32,
      .shared_mem_per_sm = 48.0 * 1024,
      .global_mem_bytes = 12.0 * 1024 * 1024 * 1024,
      .global_bw_gbs = 480.0,
      .global_latency_ns = 400.0,
      .pcie_bw_gbs = 12.0,
      .page_fault_us = 10.0,
      .page_bytes = 4096.0,
      .freq_ghz = 1.58,
  };
  return spec;
}

}  // namespace aecnc::perf
