// Processor specifications for the analytical performance models.
//
// The paper's testbed (§5.1): a CPU server with two 14-core Xeon E5-2680
// v4 (AVX2), a KNL server with a 64-core Xeon Phi 7210 (AVX-512, 16 GB
// MCDRAM), and an NVIDIA TITAN Xp (30 SMs, 12 GB). None of these are
// present here, so instrumented single-thread work profiles (counted by
// src/intersect's StatsCounter) are converted into modeled times with
// these specs. Latency/IPC constants are calibrated so the paper's
// single-thread ratios (Fig 3/4) and scaling curves (Fig 5/7) hold; they
// are deliberately exposed so the calibration is auditable and ablatable.
#pragma once

#include <cstdint>
#include <string_view>

namespace aecnc::perf {

enum class Processor { kCpu, kKnl, kGpu };

[[nodiscard]] std::string_view processor_name(Processor p);

/// A multicore CPU-like processor (used for both the Xeon and the KNL,
/// with different constants).
struct CpuLikeSpec {
  std::string_view name;
  int cores;
  int threads_per_core;     // SMT/HT contexts
  double smt_yield;         // extra throughput a second HT context adds
  double freq_ghz;
  int vector_lanes;         // 32-bit lanes per vector ALU op
  double scalar_ipc;        // sustained scalar compare-branch ops/cycle
  double vector_ipc;        // sustained vector block-ops/cycle
  double l1_bytes;          // per-core L1 data
  double llc_bytes;         // shared last-level (L3 on CPU, L2 on KNL)
  double dram_bw_gbs;       // sustained streaming DRAM bandwidth
  double random_bw_gbs;     // chip-wide cache-line random-access throughput
  double core_stream_bw_gbs;  // streaming bandwidth one thread can pull
  double dram_latency_ns;   // random-access latency to DRAM
  double llc_latency_ns;    // random-access latency to LLC
  double mlp;               // overlapped outstanding misses (OoO depth)
  double bitmap_mlp;        // overlap achieved on bitmap-probe loops
  double smt_random_penalty;  // latency inflation per extra SMT load unit
  // High-bandwidth on-package memory (MCDRAM); bw <= 0 means absent.
  double hbm_bw_gbs;
  double hbm_random_bw_gbs;  // MCDRAM random access is latency-limited:
                             // barely better than DDR (paper: 10-20%)
  double hbm_core_stream_bw_gbs;
  double hbm_latency_ns;
  double hbm_bytes;
};

/// The paper's CPU server: 2 x 14-core Intel Xeon E5-2680 v4, 2.4 GHz,
/// 35 MB L3, AVX2.
[[nodiscard]] const CpuLikeSpec& xeon_e5_2680_spec();

/// The paper's KNL server: Intel Xeon Phi 7210, 64 cores x 4 HT, 1.3 GHz,
/// AVX-512, 16 GB MCDRAM, quadrant mode. KNL cores are 2-wide with weak
/// out-of-order resources: lower scalar IPC and shallower MLP than the
/// Xeon, which is what makes latency-bound BMP relatively worse there.
[[nodiscard]] const CpuLikeSpec& knl_7210_spec();

/// A CUDA GPU.
struct GpuSpec {
  std::string_view name;
  int num_sms;
  int max_threads_per_sm;    // 2048 on the TITAN Xp
  int max_blocks_per_sm;     // 16 simultaneously scheduled blocks
  int warp_size;             // 32
  double shared_mem_per_sm;  // 48 KB
  double global_mem_bytes;   // 12 GB
  double global_bw_gbs;      // ~480 GB/s effective
  double global_latency_ns;  // ~400 ns
  double pcie_bw_gbs;        // unified-memory page migration bandwidth
  double page_fault_us;      // fixed per-fault handling cost
  double page_bytes;         // 4 KiB driver pages (migrated in groups)
  double freq_ghz;
};

/// The paper's NVIDIA TITAN Xp (Pascal): 30 SMs, 12 GB, unified memory.
[[nodiscard]] const GpuSpec& titan_xp_spec();

}  // namespace aecnc::perf
