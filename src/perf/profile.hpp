// A work profile: the instrumented operation counts of one algorithm run
// plus the run's structural parameters. This is the input every analytic
// processor model consumes.
#pragma once

#include <cstdint>

#include "intersect/counters.hpp"

namespace aecnc::perf {

struct WorkProfile {
  intersect::StatsCounter work;

  std::uint64_t num_vertices = 0;
  std::uint64_t directed_slots = 0;

  /// Per-execution-context index footprint (BMP only).
  std::uint64_t bitmap_bytes = 0;
  std::uint64_t rf_summary_bytes = 0;

  /// Vector width the VB path is modeled at (1 = scalar merge).
  int vector_lanes = 1;

  bool is_bmp = false;
  bool range_filter = false;
};

}  // namespace aecnc::perf
