// Profile collection and native timing helpers shared by the bench
// harnesses.
#pragma once

#include "core/api.hpp"
#include "graph/csr.hpp"
#include "perf/profile.hpp"

namespace aecnc::perf {

struct CollectedRun {
  WorkProfile profile;
  core::CountArray counts;
};

/// Run `options` once, instrumented and sequential, and package the work
/// profile (operation counts + structural parameters) for the models.
/// `vector_lanes` overrides the modeled VB width (defaults from
/// options.mps.kind: scalar 1, AVX2 8, AVX-512 16).
[[nodiscard]] CollectedRun collect_profile(const graph::Csr& g,
                                           const core::Options& options);

/// Wall-clock the native (uninstrumented) run; returns the minimum of
/// `repetitions` runs — the paper's "average in-memory processing time"
/// measured the same way, minus scheduler noise.
[[nodiscard]] double time_native(const graph::Csr& g,
                                 const core::Options& options,
                                 int repetitions = 3);

}  // namespace aecnc::perf
