#include "perf/models.hpp"

#include <algorithm>
#include <cmath>

namespace aecnc::perf {
namespace {

/// Cycles one branchy compare-advance merge step costs. A data-dependent
/// branch mispredicts about half the time (~15 cycle flush) on top of the
/// compare-advance work; the calibrated averages below also reproduce the
/// paper's absolute sequential times within a small factor.
constexpr double kMergeStepCyclesXeonClass = 13.0;
/// KNL's 2-wide core retires the same loop slower.
constexpr double kMergeStepCyclesKnlClass = 19.0;

/// Cycles per gallop/binary search step: a dependent load that usually
/// lands in L2/LLC lines the gallop just crossed. Calibrated against the
/// paper's empirical skew threshold t = 50: with ~20-cycle steps the PS
/// path's crossover against the merge path sits at a size ratio of ~50,
/// which is exactly where the paper switches algorithms.
constexpr double kSearchStepCyclesXeonClass = 20.0;
constexpr double kSearchStepCyclesKnlClass = 26.0;

/// A block step performs W^2 pairwise comparisons (W = 8 for the
/// AVX2/AVX-512 schedule, 4 for SSE); a vector unit with L lanes needs
/// W^2/L rotate+compare ops, plus fixed overhead (loads, last-element
/// compare, advance).
constexpr double kBlockStepOverheadCycles = 10.0;

/// Vectorized linear-search probes are sequential and prefetchable.
constexpr double kLinearProbeCycles = 1.0;

/// Range-filter summary probes hit L1.
constexpr double kRfProbeCycles = 2.0;

/// Short scattered adjacency arrays waste part of each DRAM line and add
/// write-allocate traffic for the count array: the chip-level traffic per
/// useful byte is ~2.4x the touched bytes (calibrated so the paper's MPS
/// saturation points — ~42x on the CPU, ~76x on KNL DDR — fall out).
constexpr double kStreamLineWaste = 2.4;

double merge_step_cycles(const CpuLikeSpec& spec) {
  // Distinguish the two core classes by their scalar IPC.
  return spec.scalar_ipc >= 1.0 ? kMergeStepCyclesXeonClass
                                : kMergeStepCyclesKnlClass;
}

double search_step_cycles(const CpuLikeSpec& spec) {
  return spec.scalar_ipc >= 1.0 ? kSearchStepCyclesXeonClass
                                : kSearchStepCyclesKnlClass;
}

}  // namespace

std::string_view mem_mode_name(MemMode mode) {
  switch (mode) {
    case MemMode::kDram: return "DDR";
    case MemMode::kHbmFlat: return "MCDRAM-flat";
    case MemMode::kHbmCache: return "MCDRAM-cache";
  }
  return "?";
}

double effective_parallelism(const CpuLikeSpec& spec, int threads) {
  const double t = std::max(1, threads);
  const double cores = spec.cores;
  const double contexts = cores * spec.threads_per_core;
  if (t <= cores) return t;
  return cores + spec.smt_yield * (std::min(t, contexts) - cores);
}

WorkProfile scale_profile(const WorkProfile& profile, double factor) {
  WorkProfile scaled = profile;
  auto mul = [factor](std::uint64_t v) {
    return static_cast<std::uint64_t>(static_cast<double>(v) * factor);
  };
  auto& w = scaled.work;
  w.scalar_cmps = mul(w.scalar_cmps);
  w.block_steps = mul(w.block_steps);
  w.gallop_steps = mul(w.gallop_steps);
  w.binary_steps = mul(w.binary_steps);
  w.linear_probes = mul(w.linear_probes);
  w.matches = mul(w.matches);
  w.bitmap_sets = mul(w.bitmap_sets);
  w.bitmap_probes = mul(w.bitmap_probes);
  w.rf_probes = mul(w.rf_probes);
  w.rf_skips = mul(w.rf_skips);
  w.streamed_bytes = mul(w.streamed_bytes);
  w.intersections = mul(w.intersections);
  scaled.num_vertices = mul(scaled.num_vertices);
  scaled.directed_slots = mul(scaled.directed_slots);
  scaled.bitmap_bytes = mul(scaled.bitmap_bytes);
  scaled.rf_summary_bytes = mul(scaled.rf_summary_bytes);
  return scaled;
}

ModelResult model_cpu_like(const CpuLikeSpec& spec, const WorkProfile& profile,
                           int threads, MemMode mode) {
  const auto& w = profile.work;
  ModelResult r;

  // --- Memory system parameters under the chosen mode -------------------
  double chip_bw_gbs = spec.dram_bw_gbs;
  double random_bw_gbs = spec.random_bw_gbs;
  double core_bw_gbs = spec.core_stream_bw_gbs;
  double random_latency_ns = spec.dram_latency_ns;
  if (mode == MemMode::kHbmFlat && spec.hbm_bw_gbs > 0) {
    chip_bw_gbs = spec.hbm_bw_gbs;
    random_bw_gbs = spec.hbm_random_bw_gbs;
    core_bw_gbs = spec.hbm_core_stream_bw_gbs;
    random_latency_ns = spec.hbm_latency_ns;
  } else if (mode == MemMode::kHbmCache && spec.hbm_bw_gbs > 0) {
    // Cache mode reaches most of the MCDRAM bandwidth but pays the
    // memory-side-cache movement overhead (paper: slightly slower than
    // flat despite good locality).
    chip_bw_gbs = spec.hbm_bw_gbs * 0.85;
    random_bw_gbs = spec.hbm_random_bw_gbs * 0.9;
    core_bw_gbs = spec.hbm_core_stream_bw_gbs * 0.9;
    random_latency_ns = spec.hbm_latency_ns * 1.1;
  }

  // --- Compute cycles (single thread) ------------------------------------
  r.cycles_merge = static_cast<double>(w.scalar_cmps) * merge_step_cycles(spec);

  const double lanes = std::max(1, profile.vector_lanes);
  // Instrumented block width: 4 for SSE profiles, 8 otherwise.
  const double block_width = lanes < 8 ? lanes : 8.0;
  const double pairs_per_step = block_width * block_width;
  r.cycles_vector =
      static_cast<double>(w.block_steps) *
      (pairs_per_step / (lanes * spec.vector_ipc) +
       kBlockStepOverheadCycles);

  // Gallop/binary probes are chained dependent loads that mostly land in
  // the cache levels the gallop just crossed; calibrated per core class.
  r.cycles_search =
      static_cast<double>(w.gallop_steps + w.binary_steps) *
          search_step_cycles(spec) +
      static_cast<double>(w.linear_probes) * kLinearProbeCycles;

  // Bitmap probes/updates: random loads the probe loop barely overlaps
  // (bitmap_mlp) and that streaming N(v) keeps evicting, so they pay
  // memory latency even when the bitmap nominally fits the LLC. Beyond
  // the physical cores, extra SMT contexts inflate the observed latency
  // (mesh/queue contention) — the reason BMP slows down at 128/256
  // threads on the KNL (Fig 5).
  const double over_subscription =
      std::max(0.0, static_cast<double>(threads) / spec.cores - 1.0);
  const double contention = 1.0 + spec.smt_random_penalty * over_subscription;
  const double probe_cycles =
      random_latency_ns * spec.freq_ghz / spec.bitmap_mlp * contention;
  r.cycles_bitmap =
      static_cast<double>(w.bitmap_probes + w.bitmap_sets) * probe_cycles;

  r.cycles_rf = static_cast<double>(w.rf_probes) * kRfProbeCycles;

  const double total_cycles = r.cycles_merge + r.cycles_vector +
                              r.cycles_search + r.cycles_bitmap + r.cycles_rf;

  // A single thread streams adjacency data at its own achievable rate.
  r.streamed_bytes = static_cast<double>(w.streamed_bytes);
  const double t1_seconds = total_cycles / (spec.freq_ghz * 1e9) +
                            r.streamed_bytes / (core_bw_gbs * 1e9);

  // --- Chip-wide bandwidth floor ------------------------------------------
  // Streams run at the streaming rate; every bitmap probe pulls one
  // cache line at the (much lower) random-access rate.
  r.random_bytes =
      static_cast<double>(w.bitmap_probes + w.bitmap_sets) * 64.0;
  r.bandwidth_seconds =
      r.streamed_bytes * kStreamLineWaste / (chip_bw_gbs * 1e9) +
      r.random_bytes / (random_bw_gbs * 1e9);

  // --- Combine -------------------------------------------------------------
  r.effective_parallelism = effective_parallelism(spec, threads);
  r.compute_seconds = t1_seconds / r.effective_parallelism;
  r.seconds = std::max(r.compute_seconds, r.bandwidth_seconds);
  return r;
}

}  // namespace aecnc::perf
