#include "perf/collect.hpp"

#include <algorithm>

#include "util/timer.hpp"

namespace aecnc::perf {
namespace {

int lanes_for(const core::Options& options) {
  if (options.algorithm != core::Algorithm::kMps) return 1;
  switch (options.mps.kind) {
    case intersect::MergeKind::kScalar:
    case intersect::MergeKind::kBranchless:
      return 1;
    case intersect::MergeKind::kSse:
      return 4;
    case intersect::MergeKind::kBlockScalar:
    case intersect::MergeKind::kAvx2:
      return 8;
    case intersect::MergeKind::kAvx512:
      return 16;
  }
  return 1;
}

}  // namespace

CollectedRun collect_profile(const graph::Csr& g,
                             const core::Options& options) {
  CollectedRun run;
  run.counts = core::count_instrumented(g, options, run.profile.work);
  run.profile.num_vertices = g.num_vertices();
  run.profile.directed_slots = g.num_directed_edges();
  run.profile.vector_lanes = lanes_for(options);
  run.profile.is_bmp = options.algorithm == core::Algorithm::kBmp;
  run.profile.range_filter =
      run.profile.is_bmp && options.bmp_range_filter;
  if (run.profile.is_bmp) {
    const std::uint64_t bits = g.num_vertices();
    run.profile.bitmap_bytes = (bits + 63) / 64 * 8;
    if (run.profile.range_filter) {
      const std::uint64_t summary_bits =
          (bits + options.rf_range_scale - 1) / options.rf_range_scale;
      run.profile.rf_summary_bytes = (summary_bits + 63) / 64 * 8;
    }
  }
  return run;
}

double time_native(const graph::Csr& g, const core::Options& options,
                   int repetitions) {
  double best = 1e300;
  for (int rep = 0; rep < std::max(1, repetitions); ++rep) {
    util::WallTimer timer;
    const auto counts = core::count_common_neighbors(g, options);
    const double elapsed = timer.seconds();
    // Defeat dead-code elimination of the whole run.
    if (!counts.empty() && counts[0] == ~CnCount{0}) std::abort();
    best = std::min(best, elapsed);
  }
  return best;
}

}  // namespace aecnc::perf
