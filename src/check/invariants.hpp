// Deep structural invariant validators for the CSR graph and the count
// array it produces.
//
// Every intersection kernel assumes sorted, deduplicated, symmetric
// adjacency, and every parallel variant assumes the reverse-slot lookup
// e(v,u) round-trips exactly — violations don't crash, they silently
// produce wrong counts. These validators state the full contract in one
// place; tests run them on every generated graph and `aecnc_cli verify`
// exposes them to users.
//
// Cost is O(|E| log d) (one binary search per directed slot), so they are
// explicit calls rather than AECNC_DCHECKs inside the kernels.
#pragma once

#include <optional>
#include <string>

#include "core/options.hpp"
#include "graph/csr.hpp"

namespace aecnc::check {

/// Full CSR contract, a superset of graph::Csr::validate():
///   - offsets: non-empty, offsets[0] == 0, monotone non-decreasing,
///     offsets.back() == dst.size()
///   - adjacency: every neighbor id < |V|, strictly ascending (sorted and
///     deduplicated), no self loops
///   - symmetry: (u,v) present implies (v,u) present
///   - reverse-offset consistency: for every directed slot e = e(u,v), the
///     reverse slot r = e(v,u) lies inside v's offset range, dst[r] == u,
///     and the round trip r -> e(u,v) returns e; src_of(e) agrees with the
///     offset range containing e.
/// Returns std::nullopt when valid, else a description of the first
/// violation found.
[[nodiscard]] std::optional<std::string> validate_csr(const graph::Csr& g);

/// Count-array contract against its graph:
///   - size: exactly one count per directed slot
///   - bound: cnt[e(u,v)] <= min(d_u, d_v) - 1 (the endpoints themselves
///     are never common neighbors of an existing edge)
///   - symmetry: cnt[e(u,v)] == cnt[e(v,u)]
///   - triangle divisibility: sum(cnt) % 6 == 0
/// Returns std::nullopt when valid, else the first violation.
[[nodiscard]] std::optional<std::string> validate_counts(
    const graph::Csr& g, const core::CountArray& cnt);

/// AECNC_CHECK wrappers: abort with the violation text on failure. Call at
/// trust boundaries (after deserialization, before handing a graph to the
/// parallel skeleton in tools).
void check_csr(const graph::Csr& g);
void check_counts(const graph::Csr& g, const core::CountArray& cnt);

}  // namespace aecnc::check
