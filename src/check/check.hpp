// Invariant-checking macros for production and debug builds.
//
// AECNC_CHECK(cond) is *always on*, including -DNDEBUG Release builds: use
// it for cheap preconditions whose violation would silently corrupt results
// (a wrong task size, a malformed CSR handed to a kernel). AECNC_DCHECK is
// compiled out under NDEBUG: use it for per-element checks inside hot loops
// that would change the complexity class if left on.
//
// Both macros support message streaming:
//
//   AECNC_CHECK(task_size > 0) << "task_size=" << task_size;
//
// On failure the expression, location, and streamed message are written to
// stderr and the process aborts (so sanitizers and death tests see a real
// abort, not an exception that something upstream might swallow).
#pragma once

#include <sstream>

namespace aecnc::check {

/// Accumulates the streamed failure message; aborts in the destructor.
/// Only ever constructed on the failure path, so the common case costs one
/// predictable branch.
class FailureStream {
 public:
  FailureStream(const char* file, int line, const char* expr);
  FailureStream(const FailureStream&) = delete;
  FailureStream& operator=(const FailureStream&) = delete;
  ~FailureStream();  // prints and calls std::abort()

  template <typename T>
  FailureStream& operator<<(const T& value) {
    message_ << value;
    return *this;
  }

 private:
  std::ostringstream message_;
};

/// Gives the macro's ternary a void-typed failure arm while keeping `<<`
/// chaining: `&` binds looser than `<<`, so the whole streamed expression
/// feeds the FailureStream before Voidify discards it.
struct Voidify {
  // const& binds both the bare temporary (no message streamed) and the
  // lvalue reference operator<< returns.
  void operator&(const FailureStream&) const noexcept {}
};

}  // namespace aecnc::check

#if defined(__GNUC__) || defined(__clang__)
#define AECNC_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#else
#define AECNC_PREDICT_TRUE(x) (x)
#endif

/// Always-on invariant check. Evaluates `cond` exactly once; the streamed
/// message is only evaluated on failure.
#define AECNC_CHECK(cond)                                             \
  AECNC_PREDICT_TRUE(cond)                                            \
  ? (void)0                                                           \
  : ::aecnc::check::Voidify{} &                                       \
        (::aecnc::check::FailureStream(__FILE__, __LINE__, #cond))

/// Debug-only check: compiled out under NDEBUG, but the condition stays
/// type-checked (`true || (cond)` never evaluates it).
#ifdef NDEBUG
#define AECNC_DCHECK(cond) AECNC_CHECK(true || (cond))
#else
#define AECNC_DCHECK(cond) AECNC_CHECK(cond)
#endif

/// Binary comparison helpers; both operands are re-evaluated in the failure
/// message, so only use them on side-effect-free expressions.
#define AECNC_CHECK_OP(a, op, b) \
  AECNC_CHECK((a)op(b)) << " (" << (a) << " vs " << (b) << ") "
#define AECNC_CHECK_EQ(a, b) AECNC_CHECK_OP(a, ==, b)
#define AECNC_CHECK_NE(a, b) AECNC_CHECK_OP(a, !=, b)
#define AECNC_CHECK_LT(a, b) AECNC_CHECK_OP(a, <, b)
#define AECNC_CHECK_LE(a, b) AECNC_CHECK_OP(a, <=, b)
#define AECNC_CHECK_GT(a, b) AECNC_CHECK_OP(a, >, b)
#define AECNC_CHECK_GE(a, b) AECNC_CHECK_OP(a, >=, b)
