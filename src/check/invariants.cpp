#include "check/invariants.hpp"

#include <algorithm>
#include <sstream>

#include "check/check.hpp"

namespace aecnc::check {
namespace {

std::string edge_str(VertexId u, VertexId v) {
  std::ostringstream out;
  out << "(" << u << "," << v << ")";
  return out.str();
}

}  // namespace

std::optional<std::string> validate_csr(const graph::Csr& g) {
  const auto& off = g.offsets();
  const auto& dst = g.dst();
  if (off.empty()) return "offset array is empty";
  if (off.front() != 0) return "offsets[0] != 0";
  if (off.back() != dst.size()) {
    return "offsets.back() != dst.size() (" + std::to_string(off.back()) +
           " vs " + std::to_string(dst.size()) + ")";
  }

  // Pass 1: per-vertex shape — monotone offsets, in-range neighbor ids,
  // no self loops, strictly ascending (hence deduplicated) lists. The
  // symmetry pass below binary-searches adjacency via find_edge, which is
  // only meaningful once sortedness holds, so it must come second.
  const VertexId n = g.num_vertices();
  const EdgeId slots = g.num_directed_edges();
  for (VertexId u = 0; u < n; ++u) {
    if (off[u] > off[u + 1]) {
      return "offsets not monotone at vertex " + std::to_string(u);
    }
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId v = nbrs[k];
      const EdgeId e = off[u] + k;
      if (v >= n) {
        return "neighbor id " + std::to_string(v) + " out of range at slot " +
               std::to_string(e);
      }
      if (v == u) return "self loop at vertex " + std::to_string(u);
      if (k > 0 && nbrs[k - 1] >= v) {
        return "adjacency not strictly ascending at vertex " +
               std::to_string(u) + " slot " + std::to_string(e);
      }
    }
  }

  // Pass 2: cross-vertex consistency.
  for (VertexId u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId v = nbrs[k];
      const EdgeId e = off[u] + k;
      // Symmetry + reverse-offset consistency: e(v,u) must exist, live in
      // v's offset range, point back at u, and round-trip to e.
      const EdgeId r = g.find_edge(v, u);
      if (r >= slots) return "asymmetric edge " + edge_str(u, v);
      if (r < off[v] || r >= off[v + 1]) {
        return "reverse slot of " + edge_str(u, v) +
               " outside v's offset range";
      }
      if (g.dst_of(r) != u) {
        return "reverse slot of " + edge_str(u, v) + " points at " +
               std::to_string(g.dst_of(r)) + ", not " + std::to_string(u);
      }
      if (g.find_edge(u, v) != e) {
        return "slot round trip failed for " + edge_str(u, v) + ": slot " +
               std::to_string(e) + " resolves to " +
               std::to_string(g.find_edge(u, v));
      }
      if (g.src_of(e) != u) {
        return "src_of(" + std::to_string(e) + ") = " +
               std::to_string(g.src_of(e)) + ", expected " + std::to_string(u);
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> validate_counts(const graph::Csr& g,
                                           const core::CountArray& cnt) {
  if (cnt.size() != g.num_directed_edges()) {
    return "count array has " + std::to_string(cnt.size()) + " slots, graph " +
           std::to_string(g.num_directed_edges());
  }
  std::uint64_t sum = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeId base = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId v = nbrs[k];
      const CnCount c = cnt[base + k];
      sum += c;
      const Degree bound = std::min(g.degree(u), g.degree(v));
      // An edge (u,v) guarantees both degrees >= 1, and neither endpoint
      // counts as a common neighbor of the other.
      if (c > bound - 1) {
        return "count " + std::to_string(c) + " of edge " + edge_str(u, v) +
               " exceeds min-degree bound " + std::to_string(bound - 1);
      }
      if (c != cnt[g.find_edge(v, u)]) {
        return "asymmetric counts for edge " + edge_str(u, v) + ": " +
               std::to_string(c) + " vs " +
               std::to_string(cnt[g.find_edge(v, u)]);
      }
    }
  }
  if (sum % 6 != 0) {
    return "count sum " + std::to_string(sum) +
           " not divisible by 6 (each triangle contributes 6)";
  }
  return std::nullopt;
}

void check_csr(const graph::Csr& g) {
  const auto violation = validate_csr(g);
  AECNC_CHECK(!violation.has_value()) << violation.value_or("");
}

void check_counts(const graph::Csr& g, const core::CountArray& cnt) {
  const auto violation = validate_counts(g, cnt);
  AECNC_CHECK(!violation.has_value()) << violation.value_or("");
}

}  // namespace aecnc::check
