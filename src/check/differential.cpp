#include "check/differential.hpp"

#include <algorithm>
#include <functional>
#include <span>
#include <sstream>
#include <utility>

#include "bitmap/bitmap.hpp"
#include "bitmap/range_filter.hpp"
#include "intersect/block_merge.hpp"
#include "intersect/dispatch.hpp"
#include "intersect/hash_index.hpp"
#include "intersect/merge.hpp"
#include "intersect/pivot_skip.hpp"
#include "intersect/sparse_bitmap.hpp"
#include "util/aligned.hpp"
#include "util/prng.hpp"

namespace aecnc::check {
namespace {

using intersect::MergeKind;
using Span = std::span<const VertexId>;
using Kernel = std::function<CnCount(Span, Span)>;

/// Lengths straddling every vector width the kernels use (SSE 4, AVX2 8,
/// AVX-512 16) plus the linear-probe window (16) and gallop start (2^4).
constexpr std::size_t kBoundaryLens[] = {0,  1,  3,  4,  5,  7,  8,  9,
                                         15, 16, 17, 31, 32, 33, 63, 64, 65};

/// Sorted unique list of at most `len` ids below `universe`, written into
/// `storage` at element offset `misalign` so the returned span's base
/// pointer is deliberately not vector-aligned (the kernels must not assume
/// alignment: CSR adjacency sub-ranges start at arbitrary offsets).
Span make_sorted_list(util::Xoshiro256& rng, std::size_t len,
                      std::uint32_t universe, std::size_t misalign,
                      util::AlignedVector<VertexId>& storage) {
  std::vector<VertexId> tmp;
  tmp.reserve(2 * len);
  for (std::size_t i = 0; i < 2 * len; ++i) tmp.push_back(rng.below(universe));
  std::sort(tmp.begin(), tmp.end());
  tmp.erase(std::unique(tmp.begin(), tmp.end()), tmp.end());
  if (tmp.size() > len) tmp.resize(len);

  storage.assign(misalign, 0);
  storage.insert(storage.end(), tmp.begin(), tmp.end());
  return Span{storage.data() + misalign, tmp.size()};
}

/// Re-draw `b` so roughly half its elements come from `a` — forces matches
/// at controlled positions instead of relying on birthday collisions.
Span make_overlapping_list(util::Xoshiro256& rng, Span a, std::size_t len,
                           std::uint32_t universe, std::size_t misalign,
                           util::AlignedVector<VertexId>& storage) {
  std::vector<VertexId> tmp;
  tmp.reserve(2 * len);
  for (std::size_t i = 0; i < len; ++i) {
    if (!a.empty() && (rng() & 1) != 0) {
      tmp.push_back(a[rng.below(static_cast<std::uint32_t>(a.size()))]);
    } else {
      tmp.push_back(rng.below(universe));
    }
  }
  std::sort(tmp.begin(), tmp.end());
  tmp.erase(std::unique(tmp.begin(), tmp.end()), tmp.end());
  if (tmp.size() > len) tmp.resize(len);

  storage.assign(misalign, 0);
  storage.insert(storage.end(), tmp.begin(), tmp.end());
  return Span{storage.data() + misalign, tmp.size()};
}

std::string describe_inputs(Span a, Span b) {
  std::ostringstream out;
  const auto dump = [&out](const char* name, Span s) {
    out << name << "[" << s.size() << "]={";
    const std::size_t shown = std::min<std::size_t>(s.size(), 24);
    for (std::size_t i = 0; i < shown; ++i) {
      if (i != 0) out << ",";
      out << s[i];
    }
    if (shown < s.size()) out << ",...";
    out << "}";
  };
  dump("a", a);
  out << " ";
  dump("b", b);
  return out.str();
}

/// Every comparison-based kernel the dispatcher can reach on this host,
/// plus the portable references at each width.
std::vector<std::pair<std::string, Kernel>> comparison_kernels() {
  std::vector<std::pair<std::string, Kernel>> kernels;
  kernels.emplace_back("merge_branchless", [](Span a, Span b) {
    return intersect::merge_count_branchless(a, b);
  });
  kernels.emplace_back("block_merge<4>", [](Span a, Span b) {
    intersect::NullCounter null;
    return intersect::block_merge_count<4>(a, b, null);
  });
  kernels.emplace_back("block_merge<16>", [](Span a, Span b) {
    intersect::NullCounter null;
    return intersect::block_merge_count<16>(a, b, null);
  });
  kernels.emplace_back("pivot_skip", [](Span a, Span b) {
    return intersect::pivot_skip_count(a, b);
  });
  // Prefetch-off twin: a prefetch hint must never change the count, and
  // the sanitizer jobs should walk both sides of every `if (prefetch)`.
  kernels.emplace_back("pivot_skip/nopf", [](Span a, Span b) {
    return intersect::pivot_skip_count(a, b, /*prefetch=*/false);
  });
#if AECNC_HAVE_SIMD_KERNELS
  if (intersect::cpu_has_avx2()) {
    kernels.emplace_back("pivot_skip_avx2", [](Span a, Span b) {
      return intersect::pivot_skip_count_avx2(a, b);
    });
    kernels.emplace_back("pivot_skip_avx2/nopf", [](Span a, Span b) {
      return intersect::pivot_skip_count_avx2(a, b, /*prefetch=*/false);
    });
  }
#endif

  // Every MergeKind the host supports, through the public dispatch entry,
  // with prefetching both on and off.
  for (const MergeKind kind :
       {MergeKind::kScalar, MergeKind::kBranchless, MergeKind::kBlockScalar,
        MergeKind::kSse, MergeKind::kAvx2, MergeKind::kAvx512}) {
    if (!intersect::merge_kind_supported(kind)) continue;
    const std::string base =
        "vb_count/" + std::string(intersect::merge_kind_name(kind));
    kernels.emplace_back(base, [kind](Span a, Span b) {
      return intersect::vb_count(a, b, kind);
    });
    kernels.emplace_back(base + "/nopf", [kind](Span a, Span b) {
      return intersect::vb_count(a, b, kind, /*prefetch=*/false);
    });
  }

  // MPS dispatch itself: both sides of the skew threshold, with and
  // without the vectorized search.
  const auto add_mps = [&kernels](const char* name, double threshold,
                                  MergeKind kind, bool vectorized) {
    intersect::MpsConfig cfg;
    cfg.skew_threshold = threshold;
    cfg.kind = kind;
    cfg.vectorized_search = vectorized;
    kernels.emplace_back(name, [cfg](Span a, Span b) {
      return intersect::mps_count(a, b, cfg);
    });
  };
  add_mps("mps/t=50", 50.0, intersect::best_merge_kind(), true);
  add_mps("mps/t=1.5", 1.5, intersect::best_merge_kind(), true);
  add_mps("mps/t=1.5/scalar-search", 1.5, MergeKind::kBlockScalar, false);
  return kernels;
}

}  // namespace

DifferentialReport run_kernel_differential(const DifferentialConfig& config) {
  util::Xoshiro256 rng(config.seed);
  DifferentialReport report;
  const auto kernels = comparison_kernels();

  util::AlignedVector<VertexId> storage_a;
  util::AlignedVector<VertexId> storage_b;

  const std::size_t num_boundary =
      sizeof(kBoundaryLens) / sizeof(kBoundaryLens[0]);
  for (int case_index = 0; case_index < config.cases; ++case_index) {
    const std::size_t misalign_a = static_cast<std::size_t>(case_index) % 4;
    const std::size_t misalign_b =
        (static_cast<std::size_t>(case_index) / 4) % 4;

    // Shape schedule: boundary lengths, heavy skew, aliased spans, empty
    // lists, and general random pairs, cycling with the case index.
    std::size_t na = 0, nb = 0;
    bool aliased = false;
    switch (case_index % 5) {
      case 0:  // W-boundary pair
        na = kBoundaryLens[static_cast<std::size_t>(case_index) % num_boundary];
        nb = kBoundaryLens[(static_cast<std::size_t>(case_index) / 5 + 7) %
                           num_boundary];
        break;
      case 1:  // heavy size skew (the pivot-skip trigger)
        na = 1 + rng.below(4);
        nb = config.max_len / 2 +
             rng.below(static_cast<std::uint32_t>(config.max_len / 2));
        break;
      case 2:  // aliased: b is literally a's span
        na = nb = rng.below(static_cast<std::uint32_t>(config.max_len));
        aliased = true;
        break;
      case 3:  // empty / near-empty against random
        na = static_cast<std::size_t>(case_index) % 2;
        nb = rng.below(static_cast<std::uint32_t>(config.max_len));
        break;
      default:  // general random pair with forced overlap
        na = rng.below(static_cast<std::uint32_t>(config.max_len));
        nb = rng.below(static_cast<std::uint32_t>(config.max_len));
        break;
    }

    const Span a =
        make_sorted_list(rng, na, config.universe, misalign_a, storage_a);
    const Span b = aliased ? a
                           : make_overlapping_list(rng, a, nb, config.universe,
                                                   misalign_b, storage_b);
    ++report.cases_run;

    // The reference itself is cross-checked: two independent scalar
    // implementations must agree before anything else is judged.
    const CnCount expected = intersect::reference_count(a, b);
    const CnCount scalar = intersect::merge_count(a, b);
    if (scalar != expected) {
      std::ostringstream out;
      out << "merge_count disagrees with std::set_intersection: case "
          << case_index << " expected " << expected << " got " << scalar
          << " " << describe_inputs(a, b);
      report.mismatches.push_back(out.str());
      continue;
    }

    for (const auto& [name, kernel] : kernels) {
      ++report.kernels_checked;
      const CnCount actual = kernel(a, b);
      if (actual != expected) {
        std::ostringstream out;
        out << name << ": case " << case_index << " expected " << expected
            << " got " << actual << " (misalign " << misalign_a << "/"
            << misalign_b << (aliased ? ", aliased" : "") << ") "
            << describe_inputs(a, b);
        report.mismatches.push_back(out.str());
      }
    }

    if (config.include_index_paths) {
      // The BMP side: dense bitmap, range-filtered bitmap at two summary
      // ratios, sparse bitmap, and the hash index, all built over `a` and
      // probed with `b` exactly as the core loops do.
      const auto record = [&](const char* name, CnCount actual) {
        ++report.kernels_checked;
        if (actual != expected) {
          std::ostringstream out;
          out << name << ": case " << case_index << " expected " << expected
              << " got " << actual << " " << describe_inputs(a, b);
          report.mismatches.push_back(out.str());
        }
      };

      bitmap::Bitmap bm(config.universe);
      bm.set_all(a);
      record("bitmap", bitmap::bitmap_intersect_count(bm, b));
      record("bitmap/nopf",
             bitmap::bitmap_intersect_count(bm, b, /*prefetch=*/false));

      for (const std::uint64_t scale : {std::uint64_t{64},
                                        std::uint64_t{4096}}) {
        bitmap::RangeFilteredBitmap rf(config.universe, scale);
        rf.set_all(a);
        record(scale == 64 ? "range_filter/64" : "range_filter/4096",
               bitmap::rf_intersect_count(rf, b));
        record(scale == 64 ? "range_filter/64/nopf" : "range_filter/4096/nopf",
               bitmap::rf_intersect_count(rf, b, /*prefetch=*/false));
        rf.clear_all(a);
        if (!rf.all_zero()) {
          report.mismatches.push_back(
              "range_filter clear_all left bits set at case " +
              std::to_string(case_index));
        }
      }
      bm.clear_all(a);
      if (!bm.all_zero()) {
        report.mismatches.push_back("bitmap clear_all left bits set at case " +
                                    std::to_string(case_index));
      }

      const intersect::SparseBitmap sa(a);
      const intersect::SparseBitmap sb(b);
      record("sparse_bitmap", intersect::sparse_bitmap_intersect_count(sa, sb));

      const intersect::HashIndex hi(a);
      record("hash_index", intersect::hash_intersect_count(hi, b));
    }
  }
  return report;
}

}  // namespace aecnc::check
