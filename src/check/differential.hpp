// Differential cross-checking of every intersection kernel against the
// scalar reference.
//
// The paper's claim is that MPS and BMP compute *identical* counts under
// aggressive vectorization (Algorithms 1-3); the SIMD kernels, the
// pivot-skip search stack, and the bitmap paths are exactly the code where
// an off-by-one at a block boundary or a missed tail produces counts that
// are wrong only on adversarial shapes. This harness generates those
// shapes deliberately — empty lists, aliased spans (a == b), unaligned
// base pointers, W-boundary lengths, heavy size skew, dense duplicates of
// structure across the two lists — and runs every available kernel on each
// pair, comparing against merge_count (itself cross-checked against
// std::set_intersection).
//
// Used by tests/differential_test.cpp; the config is exposed so sanitizer
// CI jobs can crank the case count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace aecnc::check {

struct DifferentialConfig {
  /// PRNG seed; every report is reproducible from (seed, cases).
  std::uint64_t seed = 0x5eed;
  /// Number of randomized input pairs (adversarial shapes cycle through
  /// the case index, so more cases = more shape x size combinations).
  int cases = 200;
  /// Maximum list length; boundary shapes also exercise W-1/W/W+1 for
  /// every vector width W in {4, 8, 16}.
  std::size_t max_len = 512;
  /// Vertex id universe. Small universes force dense overlap; the bitmap
  /// paths allocate universe bits per case.
  std::uint32_t universe = 4096;
  /// Also run the bitmap / range-filter / sparse-bitmap / hash-index
  /// paths (the BMP side of the paper) on every pair.
  bool include_index_paths = true;
};

struct DifferentialReport {
  std::uint64_t cases_run = 0;
  std::uint64_t kernels_checked = 0;
  /// One human-readable entry per divergent (kernel, input) pair; inputs
  /// are reprinted (truncated) so the failure reproduces standalone.
  std::vector<std::string> mismatches;

  [[nodiscard]] bool ok() const noexcept { return mismatches.empty(); }
};

/// Run the full differential sweep. Never aborts; the caller decides what
/// to do with the report (tests assert ok()).
[[nodiscard]] DifferentialReport run_kernel_differential(
    const DifferentialConfig& config);

}  // namespace aecnc::check
