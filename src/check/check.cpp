#include "check/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace aecnc::check {

FailureStream::FailureStream(const char* file, int line, const char* expr) {
  message_ << "AECNC_CHECK failed: " << expr << " at " << file << ":" << line
           << " ";
}

FailureStream::~FailureStream() {
  const std::string text = message_.str();
  std::fputs(text.c_str(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace aecnc::check
