#include "graph/io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace aecnc::graph {
namespace {

constexpr std::array<char, 8> kCsrMagic = {'A', 'E', 'C', 'N',
                                           'C', 'S', 'R', '1'};

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw std::runtime_error("aecnc: truncated CSR binary stream");
  return value;
}

[[noreturn]] void fail_open(const std::string& path) {
  throw std::runtime_error("aecnc: cannot open '" + path + "'");
}

}  // namespace

EdgeList read_edge_list_text(std::istream& in) {
  EdgeList out;
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream fields(line);
    std::uint64_t u = 0, v = 0;
    if (!(fields >> u >> v) || u > 0xffffffffULL || v > 0xffffffffULL) {
      throw std::runtime_error("aecnc: malformed edge at line " +
                               std::to_string(lineno));
    }
    out.add(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  out.normalize();
  return out;
}

EdgeList load_edge_list_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail_open(path);
  return read_edge_list_text(in);
}

void write_edge_list_text(const EdgeList& edges, std::ostream& out) {
  out << "# aecnc edge list: " << edges.num_vertices() << " vertices, "
      << edges.num_edges() << " edges\n";
  for (const Edge& e : edges.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
}

void save_edge_list_text(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail_open(path);
  write_edge_list_text(edges, out);
}

void write_csr_binary(const Csr& g, std::ostream& out) {
  out.write(kCsrMagic.data(), kCsrMagic.size());
  write_pod<std::uint64_t>(out, g.num_vertices());
  write_pod<std::uint64_t>(out, g.num_directed_edges());
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() * sizeof(EdgeId)));
  out.write(reinterpret_cast<const char*>(g.dst().data()),
            static_cast<std::streamsize>(g.dst().size() * sizeof(VertexId)));
  if (!out) throw std::runtime_error("aecnc: CSR binary write failed");
}

void save_csr_binary(const Csr& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail_open(path);
  write_csr_binary(g, out);
}

Csr read_csr_binary(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kCsrMagic) {
    throw std::runtime_error("aecnc: not an AECNC CSR binary (bad magic)");
  }
  const auto n = read_pod<std::uint64_t>(in);
  const auto slots = read_pod<std::uint64_t>(in);

  std::vector<EdgeId> offsets(n + 1);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(EdgeId)));
  util::AlignedVector<VertexId> dst(slots);
  in.read(reinterpret_cast<char*>(dst.data()),
          static_cast<std::streamsize>(dst.size() * sizeof(VertexId)));
  if (!in) throw std::runtime_error("aecnc: truncated CSR binary stream");
  if (offsets.back() != slots) {
    throw std::runtime_error("aecnc: corrupt CSR binary (offset mismatch)");
  }
  return Csr::from_raw(std::move(offsets), std::move(dst));
}

Csr load_csr_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail_open(path);
  return read_csr_binary(in);
}

}  // namespace aecnc::graph
