// Synthetic graph generators.
//
// The paper evaluates on five public SNAP/WebGraph datasets; this
// reproduction regenerates statistically faithful *replicas* (see
// graph/datasets.hpp) from these primitives. All generators are
// deterministic for a given seed.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace aecnc::graph {

/// G(n, m)-style Erdős–Rényi: `num_edges` distinct uniform edges.
[[nodiscard]] EdgeList erdos_renyi(VertexId num_vertices,
                                   std::uint64_t num_edges,
                                   std::uint64_t seed);

/// Chung–Lu power-law graph: endpoint of every edge sampled proportional
/// to weight w_i = (i + i0)^(-1/(exponent-1)), giving a degree distribution
/// with tail exponent `exponent` (typ. 2.0–3.0; larger = more uniform).
[[nodiscard]] EdgeList chung_lu_power_law(VertexId num_vertices,
                                          std::uint64_t num_edges,
                                          double exponent,
                                          std::uint64_t seed);

/// R-MAT recursive matrix generator (Chakrabarti et al.), the standard
/// scale-free generator in graph benchmarks (Graph500 uses a=0.57, b=c=0.19).
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
};
[[nodiscard]] EdgeList rmat(int scale, std::uint64_t num_edges,
                            const RmatParams& params, std::uint64_t seed);

/// Attach `num_hubs` additional high-degree vertices, each adjacent to a
/// uniform random `hub_degree`-subset of the existing vertices. Models the
/// celebrity/portal vertices that cause degree-skewed intersections on the
/// twitter and web-it graphs.
void add_hubs(EdgeList& edges, VertexId num_hubs, Degree hub_degree,
              std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices chosen proportional to their degree.
/// Produces a power-law tail with exponent ~3.
[[nodiscard]] EdgeList barabasi_albert(VertexId num_vertices, Degree attach,
                                       std::uint64_t seed);

/// Watts–Strogatz small world: a ring lattice of `num_vertices` vertices
/// with `k` neighbors each side, each edge rewired with probability
/// `beta`. High clustering coefficient — dense in triangles, the
/// workload the counting kernels actually chew on.
[[nodiscard]] EdgeList watts_strogatz(VertexId num_vertices, Degree k,
                                      double beta, std::uint64_t seed);

/// A small deterministic clique-plus-path graph used by unit tests.
[[nodiscard]] EdgeList clique(VertexId size);

}  // namespace aecnc::graph
