// Degree-descending graph reordering (paper §2.1).
//
// BMP requires ∀ u,v: u < v → d_u ≥ d_v so that each bitmap is built on
// the *larger* neighbor set and the loop runs over the smaller one, making
// every bitmap-array intersection O(min(d_u, d_v)). The reordering remaps
// vertex IDs so IDs ascend as degrees descend; complexity
// O(|V| log |V| + |E|) as in the paper.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/id_map.hpp"
#include "util/types.hpp"

namespace aecnc::graph {

/// Permutation mapping old vertex id -> new vertex id such that new ids
/// ascend by (degree descending, old id ascending as tie-break).
[[nodiscard]] std::vector<VertexId> degree_descending_permutation(const Csr& g);

/// Rebuild a CSR under a relabeling `new_id = perm[old_id]`. Adjacency
/// lists of the result are sorted by new ids.
[[nodiscard]] Csr apply_permutation(const Csr& g,
                                    const std::vector<VertexId>& perm);

/// Convenience: reorder by descending degree. `inverse` (optional out)
/// receives the new-id -> old-id map for translating results back.
[[nodiscard]] Csr reorder_degree_descending(
    const Csr& g, std::vector<VertexId>* inverse = nullptr);

/// Canonical relabel entry point: reorder by descending degree and hand
/// back the full IdMap (external = original ids, internal = relabeled
/// ids). Everything downstream of the kernels translates through the map
/// instead of re-deriving either direction.
[[nodiscard]] Csr reorder_degree_descending(const Csr& g, IdMap* id_map);

/// True iff u < v implies degree(u) >= degree(v) for all vertices — the
/// property BMP's complexity bound relies on.
[[nodiscard]] bool is_degree_descending(const Csr& g);

}  // namespace aecnc::graph
