#include "graph/csr.hpp"

#include <algorithm>
#include <string>

#include "check/check.hpp"

namespace aecnc::graph {

Csr Csr::from_edge_list(EdgeList edges) {
  edges.normalize();
  const VertexId n = edges.num_vertices();

  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges.edges()) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  util::AlignedVector<VertexId> dst(offsets.back());
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges.edges()) {
    dst[cursor[e.u]++] = e.v;
    dst[cursor[e.v]++] = e.u;
  }
  // Normalized edge lists are sorted by (u, v), so each u's neighbors with
  // id > u are appended in order, but neighbors with id < u arrive out of
  // order relative to them; sort each adjacency list.
  for (VertexId u = 0; u < n; ++u) {
    std::sort(dst.begin() + static_cast<std::ptrdiff_t>(offsets[u]),
              dst.begin() + static_cast<std::ptrdiff_t>(offsets[u + 1]));
  }

  return from_raw(std::move(offsets), std::move(dst));
}

Csr Csr::from_raw(std::vector<EdgeId> offsets,
                  util::AlignedVector<VertexId> dst) {
  // Always-on: a malformed offset array corrupts every downstream kernel
  // (out-of-bounds spans) rather than failing loudly.
  AECNC_CHECK(!offsets.empty());
  AECNC_CHECK_EQ(offsets.back(), dst.size());
  Csr g;
  g.offsets_ = std::move(offsets);
  g.dst_ = std::move(dst);
  g.reverse_cache_ = std::make_shared<ReverseIndexCache>();
  return g;
}

std::span<const VertexId> Csr::neighbors_in_range(VertexId u, VertexId lo,
                                                  VertexId hi) const noexcept {
  const auto nbrs = neighbors(u);
  const auto first = std::lower_bound(nbrs.begin(), nbrs.end(), lo);
  const auto last = std::lower_bound(first, nbrs.end(), hi);
  return {first, last};
}

EdgeId Csr::find_edge(VertexId u, VertexId v) const noexcept {
  const auto begin = dst_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]);
  const auto end = dst_.begin() + static_cast<std::ptrdiff_t>(offsets_[u + 1]);
  const auto it = std::lower_bound(begin, end, v);
  if (it == end || *it != v) return num_directed_edges();
  return static_cast<EdgeId>(it - dst_.begin());
}

bool Csr::has_edge(VertexId u, VertexId v) const noexcept {
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

const util::AlignedVector<EdgeId>& Csr::reverse_offsets() const {
  if (!reverse_cache_) {
    // Default-constructed (empty) Csr: no slots, no cache to build.
    static const util::AlignedVector<EdgeId> kEmpty;
    return kEmpty;
  }
  std::call_once(reverse_cache_->once, [this] { build_reverse_offsets(); });
  return reverse_cache_->rev;
}

void Csr::build_reverse_offsets() const {
  // One O(|E|) counting sweep, no binary search: walking u ascending with
  // each N(u) ascending means the incoming edges of any v are visited in
  // ascending source order — exactly the order of v's (sorted) adjacency
  // list. A per-vertex cursor starting at offsets_[v] therefore lands each
  // mirror slot e(v, u) directly.
  const VertexId n = num_vertices();
  util::AlignedVector<EdgeId>& rev = reverse_cache_->rev;
  rev.resize(dst_.size());
  std::vector<EdgeId> cursor(offsets_.begin(), offsets_.end() - 1);
  for (VertexId u = 0; u < n; ++u) {
    const EdgeId end = offsets_[u + 1];
    for (EdgeId e = offsets_[u]; e < end; ++e) {
      rev[e] = cursor[dst_[e]]++;
    }
  }
#if !defined(NDEBUG)
  // Differential check against the binary-search oracle on every slot.
  for (VertexId u = 0; u < n; ++u) {
    for (EdgeId e = offsets_[u]; e < offsets_[u + 1]; ++e) {
      AECNC_DCHECK(rev[e] == find_edge(dst_[e], u))
          << "reverse index mismatch at slot " << e;
      AECNC_DCHECK(dst_[rev[e]] == u);
    }
  }
#endif
}

VertexId Csr::src_of(EdgeId e) const noexcept {
  // First offset strictly greater than e belongs to src + 1.
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), e);
  return static_cast<VertexId>((it - offsets_.begin()) - 1);
}

Degree Csr::max_degree() const noexcept {
  Degree best = 0;
  for (VertexId u = 0; u < num_vertices(); ++u) best = std::max(best, degree(u));
  return best;
}

std::string Csr::validate() const {
  if (offsets_.empty()) return "empty offset array";
  if (offsets_.front() != 0) return "offsets[0] != 0";
  if (offsets_.back() != dst_.size()) return "offsets.back() != dst.size()";
  const VertexId n = num_vertices();
  for (VertexId u = 0; u < n; ++u) {
    if (offsets_[u] > offsets_[u + 1]) {
      return "offsets not monotone at vertex " + std::to_string(u);
    }
    const auto nbrs = neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= n) return "neighbor id out of range at " + std::to_string(u);
      if (nbrs[i] == u) return "self loop at vertex " + std::to_string(u);
      if (i > 0 && nbrs[i - 1] >= nbrs[i]) {
        return "adjacency not sorted/unique at vertex " + std::to_string(u);
      }
      if (find_edge(nbrs[i], u) == num_directed_edges()) {
        return "asymmetric edge (" + std::to_string(u) + "," +
               std::to_string(nbrs[i]) + ")";
      }
    }
  }
  return {};
}

}  // namespace aecnc::graph
