// Compressed Sparse Row (CSR) graph storage (paper §2.1).
//
// A CSR is an offset array `off` (|V|+1 entries) and a neighbor array `dst`
// (2|E| entries for an undirected graph: each edge appears in both
// endpoints' adjacency lists). Each adjacency list dst[off[u] : off[u+1])
// is sorted ascending — a precondition for every intersection kernel.
//
// The directed slot index e(u, v) — the paper's "edge offset" — is the
// position of v within u's adjacency range and doubles as the index into
// the output count array.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/aligned.hpp"
#include "util/types.hpp"

namespace aecnc::graph {

class Csr {
 public:
  Csr() = default;

  /// Build from an undirected edge list. The list does not need to be
  /// normalized; duplicates and self loops are removed.
  static Csr from_edge_list(EdgeList edges);

  /// Build directly from raw arrays (used by tests and the reorderer).
  /// Requires offsets.size() == num_vertices + 1 and sorted adjacency.
  static Csr from_raw(std::vector<EdgeId> offsets,
                      util::AlignedVector<VertexId> dst);

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of *directed* slots = 2|E| for an undirected graph. This is
  /// the size of the count array the library produces.
  [[nodiscard]] EdgeId num_directed_edges() const noexcept {
    return offsets_.empty() ? 0 : offsets_.back();
  }

  /// Number of undirected edges |E|.
  [[nodiscard]] EdgeId num_undirected_edges() const noexcept {
    return num_directed_edges() / 2;
  }

  [[nodiscard]] Degree degree(VertexId u) const noexcept {
    return static_cast<Degree>(offsets_[u + 1] - offsets_[u]);
  }

  /// Sorted neighbor list of u.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId u) const noexcept {
    return {dst_.data() + offsets_[u], dst_.data() + offsets_[u + 1]};
  }

  [[nodiscard]] EdgeId offset_begin(VertexId u) const noexcept {
    return offsets_[u];
  }
  [[nodiscard]] EdgeId offset_end(VertexId u) const noexcept {
    return offsets_[u + 1];
  }

  /// The contiguous subrange of N(u) falling in the vertex range
  /// [lo, hi): adjacency is sorted, so a column restriction — the 2D
  /// partitioner's block extraction (src/shard/partition.cpp) — is two
  /// binary searches, and the result aliases the CSR storage.
  [[nodiscard]] std::span<const VertexId> neighbors_in_range(
      VertexId u, VertexId lo, VertexId hi) const noexcept;

  /// The directed slot e(u, v), found by binary search on N(u).
  /// Returns num_directed_edges() when (u, v) is not an edge.
  [[nodiscard]] EdgeId find_edge(VertexId u, VertexId v) const noexcept;

  /// Edge-existence test that searches the *smaller* of the two adjacency
  /// lists — cheaper than find_edge(u, v) when only membership matters
  /// (e.g. the serve miss path), since skewed graphs pair hubs with
  /// low-degree vertices.
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const noexcept;

  /// Reverse-slot index: reverse_offsets()[e(u, v)] == e(v, u) for every
  /// directed slot. Built lazily on first use in one O(|E|) counting sweep
  /// (no per-edge binary search) and cached; copies of this Csr share the
  /// cache since the underlying arrays are identical. Thread-safe.
  ///
  /// This turns the paper's symmetric assignment (Algorithm 1 line 8,
  /// "cnt[e(v,u)] = cnt[e(u,v)]" via binary search) into a direct indexed
  /// store on every batch hot path.
  [[nodiscard]] const util::AlignedVector<EdgeId>& reverse_offsets() const;

  /// Convenience: the mirror slot e(v, u) of directed slot e = e(u, v).
  [[nodiscard]] EdgeId reverse_slot(EdgeId e) const {
    return reverse_offsets()[e];
  }

  /// Destination vertex of a directed slot.
  [[nodiscard]] VertexId dst_of(EdgeId e) const noexcept { return dst_[e]; }

  /// Source vertex of a directed slot, by binary search over offsets.
  /// (Algorithm 3 avoids this per-edge cost with a thread-local cache;
  /// this method is the reference implementation.)
  [[nodiscard]] VertexId src_of(EdgeId e) const noexcept;

  [[nodiscard]] const std::vector<EdgeId>& offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] const util::AlignedVector<VertexId>& dst() const noexcept {
    return dst_;
  }

  /// Maximum degree over all vertices.
  [[nodiscard]] Degree max_degree() const noexcept;

  /// Bytes consumed by the CSR arrays (offset + dst), as counted by the
  /// paper's multi-pass estimator (Table 6).
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return offsets_.size() * sizeof(EdgeId) + dst_.size() * sizeof(VertexId);
  }

  /// Invariant checks: sorted unique adjacency, symmetric edges, no self
  /// loops, consistent offsets. Returns an empty string when valid, else
  /// a description of the first violation.
  [[nodiscard]] std::string validate() const;

 private:
  /// Lazily-built transpose index, shared across copies of the Csr (the
  /// arrays a copy sees are identical, so the mapping is too). call_once
  /// makes the build race-free when several threads touch a cold index.
  struct ReverseIndexCache {
    std::once_flag once;
    util::AlignedVector<EdgeId> rev;
  };

  void build_reverse_offsets() const;

  std::vector<EdgeId> offsets_;           // |V| + 1
  util::AlignedVector<VertexId> dst_;     // 2|E|, 64-byte aligned for SIMD
  std::shared_ptr<ReverseIndexCache> reverse_cache_;
};

}  // namespace aecnc::graph
