#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "check/check.hpp"

namespace aecnc::graph {

std::vector<VertexId> degree_descending_permutation(const Csr& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> by_rank(n);
  std::iota(by_rank.begin(), by_rank.end(), VertexId{0});
  std::stable_sort(by_rank.begin(), by_rank.end(),
                   [&g](VertexId a, VertexId b) {
                     return g.degree(a) > g.degree(b);
                   });
  std::vector<VertexId> perm(n);
  for (VertexId rank = 0; rank < n; ++rank) perm[by_rank[rank]] = rank;
  return perm;
}

Csr apply_permutation(const Csr& g, const std::vector<VertexId>& perm) {
  const VertexId n = g.num_vertices();
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId u = 0; u < n; ++u) {
    offsets[perm[u] + 1] = g.degree(u);
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  util::AlignedVector<VertexId> dst(g.num_directed_edges());
  for (VertexId u = 0; u < n; ++u) {
    const VertexId nu = perm[u];
    EdgeId out = offsets[nu];
    for (const VertexId v : g.neighbors(u)) dst[out++] = perm[v];
    std::sort(dst.begin() + static_cast<std::ptrdiff_t>(offsets[nu]),
              dst.begin() + static_cast<std::ptrdiff_t>(out));
  }
  return Csr::from_raw(std::move(offsets), std::move(dst));
}

Csr reorder_degree_descending(const Csr& g, std::vector<VertexId>* inverse) {
  const auto perm = degree_descending_permutation(g);
  if (inverse != nullptr) {
    inverse->assign(g.num_vertices(), 0);
    for (VertexId old_id = 0; old_id < g.num_vertices(); ++old_id) {
      (*inverse)[perm[old_id]] = old_id;
    }
#if !defined(NDEBUG)
    // The inverse must be a true involution partner of perm: composing
    // either way lands back on the identity.
    for (VertexId old_id = 0; old_id < g.num_vertices(); ++old_id) {
      AECNC_DCHECK((*inverse)[perm[old_id]] == old_id)
          << "reorder: inverse[perm[" << old_id << "]] = "
          << (*inverse)[perm[old_id]] << ", not an involution partner";
      AECNC_DCHECK(perm[(*inverse)[old_id]] == old_id)
          << "reorder: perm[inverse[" << old_id << "]] = "
          << perm[(*inverse)[old_id]] << ", not an involution partner";
    }
#endif
  }
  return apply_permutation(g, perm);
}

Csr reorder_degree_descending(const Csr& g, IdMap* id_map) {
  auto perm = degree_descending_permutation(g);
  Csr reordered = apply_permutation(g, perm);
  if (id_map != nullptr) {
    *id_map = IdMap::from_permutation(std::move(perm));
    AECNC_DCHECK(id_map->validate().empty())
        << "reorder: " << id_map->validate();
  }
  return reordered;
}

bool is_degree_descending(const Csr& g) {
  for (VertexId u = 1; u < g.num_vertices(); ++u) {
    if (g.degree(u) > g.degree(u - 1)) return false;
  }
  return true;
}

}  // namespace aecnc::graph
