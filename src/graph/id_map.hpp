// Bidirectional vertex-ID mapping between an *external* ID space (what
// callers, serve sessions, mutation streams, and CLI output speak) and an
// *internal* ID space (what kernels, cache keys, and snapshots speak).
//
// The canonical producer is the degree-descending relabel
// (graph::reorder_degree_descending): internally, hubs occupy the low ID
// range, which is what BMP's complexity bound and the packed hub index
// (intersect/packed_index.hpp) rely on. The map owns both directions of
// the permutation so every layer can translate in O(1) without ever
// re-deriving the inverse.
//
// A default-constructed IdMap is the *identity* over any universe: both
// translations return their argument unchanged and no storage is held.
// This lets relabel-agnostic code thread one IdMap through unconditionally
// and pay nothing when relabeling is off.
//
// Out-of-range IDs pass through unchanged in both directions: the map is
// a bijection on [0, size()), so an ID >= size() stays >= size() — range
// checks downstream (e.g. the update pipeline's pinned universe) keep
// rejecting exactly the IDs they rejected without the map.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace aecnc::graph {

class IdMap {
 public:
  /// Identity map over any universe.
  IdMap() = default;

  /// Build from a forward permutation `ext_to_int[external] == internal`.
  /// The inverse is derived here once. AECNC_CHECKs (in the .cpp) that
  /// the input is a true permutation of [0, n).
  static IdMap from_permutation(std::vector<VertexId> ext_to_int);

  /// True for the default-constructed identity map.
  [[nodiscard]] bool is_identity() const noexcept {
    return ext_to_int_.empty();
  }

  /// Number of vertices the permutation covers (0 for the identity map).
  [[nodiscard]] VertexId size() const noexcept {
    return static_cast<VertexId>(ext_to_int_.size());
  }

  [[nodiscard]] VertexId to_internal(VertexId external) const noexcept {
    return external < size() ? ext_to_int_[external] : external;
  }

  [[nodiscard]] VertexId to_external(VertexId internal) const noexcept {
    return internal < size() ? int_to_ext_[internal] : internal;
  }

  [[nodiscard]] const std::vector<VertexId>& ext_to_int() const noexcept {
    return ext_to_int_;
  }
  [[nodiscard]] const std::vector<VertexId>& int_to_ext() const noexcept {
    return int_to_ext_;
  }

  /// Invariant check: the two directions must be mutual inverses (the
  /// involution contract apply ∘ invert == identity). Empty string when
  /// valid, else a description of the first violation.
  [[nodiscard]] std::string validate() const;

 private:
  std::vector<VertexId> ext_to_int_;  // external -> internal
  std::vector<VertexId> int_to_ext_;  // internal -> external
};

}  // namespace aecnc::graph
