// Graph statistics reported in the paper's Tables 1 and 2.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace aecnc::graph {

/// The columns of the paper's Table 1.
struct GraphStats {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_undirected_edges = 0;
  double avg_degree = 0.0;   // 2|E| / |V|
  Degree max_degree = 0;
};

[[nodiscard]] GraphStats compute_stats(const Csr& g);

/// Log2-bucketed degree histogram: bucket i counts vertices with degree
/// in [2^i, 2^(i+1)) (bucket 0 additionally holds degree-0 and 1).
/// The shape of this histogram is what distinguishes the five datasets
/// (and what the replica generators are tuned to).
[[nodiscard]] std::vector<std::uint64_t> degree_histogram(const Csr& g);

/// Percentage (0–100) of undirected edges (u, v) whose endpoint degrees
/// are "highly skewed": max(d_u, d_v) / min(d_u, d_v) > ratio_threshold.
/// This is the paper's Table 2 metric (threshold 50), the quantity MPS's
/// merge-selection dispatches on.
[[nodiscard]] double skewed_intersection_percentage(const Csr& g,
                                                    double ratio_threshold);

}  // namespace aecnc::graph
