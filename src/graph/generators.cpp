#include "graph/generators.hpp"

#include <cassert>
#include <cmath>
#include <unordered_set>

#include "util/alias.hpp"
#include "util/prng.hpp"

namespace aecnc::graph {
namespace {

/// Pack an edge into one 64-bit key for dedup during generation.
constexpr std::uint64_t edge_key(VertexId u, VertexId v) noexcept {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

EdgeList erdos_renyi(VertexId num_vertices, std::uint64_t num_edges,
                     std::uint64_t seed) {
  assert(num_vertices >= 2);
  util::Xoshiro256 rng(seed);
  EdgeList out(num_vertices);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  while (out.num_edges() < num_edges) {
    const VertexId u = rng.below(num_vertices);
    const VertexId v = rng.below(num_vertices);
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) out.add(u, v);
  }
  out.normalize();
  return out;
}

EdgeList chung_lu_power_law(VertexId num_vertices, std::uint64_t num_edges,
                            double exponent, std::uint64_t seed) {
  assert(num_vertices >= 2);
  assert(exponent > 1.0);
  util::Xoshiro256 rng(seed);

  // Zipf-like weights w_i = (i + i0)^(-1/(exponent-1)). The offset i0
  // bounds the maximum expected degree so tiny graphs stay connected-ish
  // rather than collapsing onto vertex 0.
  const double alpha = 1.0 / (exponent - 1.0);
  const double i0 = std::max(1.0, num_vertices * 1e-4);
  std::vector<double> weights(num_vertices);
  for (VertexId i = 0; i < num_vertices; ++i) {
    weights[i] = std::pow(static_cast<double>(i) + i0, -alpha);
  }
  const util::DiscreteSampler sampler(weights);

  EdgeList out(num_vertices);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  // Give up gracefully if the weight distribution cannot support the
  // requested edge count (dense head saturates); bail after too many
  // consecutive duplicate draws.
  std::uint64_t stall = 0;
  const std::uint64_t max_stall = 64 * num_edges + 1024;
  while (out.num_edges() < num_edges && stall < max_stall) {
    const VertexId u = sampler.sample(rng);
    const VertexId v = sampler.sample(rng);
    if (u == v || !seen.insert(edge_key(u, v)).second) {
      ++stall;
      continue;
    }
    out.add(u, v);
  }
  out.normalize();
  return out;
}

EdgeList rmat(int scale, std::uint64_t num_edges, const RmatParams& params,
              std::uint64_t seed) {
  assert(scale >= 1 && scale < 32);
  const double d = 1.0 - params.a - params.b - params.c;
  assert(d >= 0.0);
  util::Xoshiro256 rng(seed);
  const VertexId n = VertexId{1} << scale;

  EdgeList out(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  std::uint64_t stall = 0;
  const std::uint64_t max_stall = 64 * num_edges + 1024;
  while (out.num_edges() < num_edges && stall < max_stall) {
    VertexId u = 0, v = 0;
    for (int bit = scale - 1; bit >= 0; --bit) {
      // Add +-5% noise per level as recommended to avoid degree staircases.
      const double noise = 0.95 + 0.1 * rng.uniform();
      const double p = rng.uniform();
      const double a = params.a * noise;
      const double ab = a + params.b * noise;
      const double abc = ab + params.c * noise;
      const double total = abc + d * noise;
      if (p * total < a) {
        // top-left quadrant: no bits set
      } else if (p * total < ab) {
        v |= VertexId{1} << bit;
      } else if (p * total < abc) {
        u |= VertexId{1} << bit;
      } else {
        u |= VertexId{1} << bit;
        v |= VertexId{1} << bit;
      }
    }
    if (u == v || !seen.insert(edge_key(u, v)).second) {
      ++stall;
      continue;
    }
    out.add(u, v);
  }
  out.normalize();
  return out;
}

void add_hubs(EdgeList& edges, VertexId num_hubs, Degree hub_degree,
              std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const VertexId base = edges.num_vertices();
  assert(base >= 2);
  const Degree deg = std::min<Degree>(hub_degree, base);
  for (VertexId h = 0; h < num_hubs; ++h) {
    const VertexId hub = base + h;
    std::unordered_set<VertexId> targets;
    targets.reserve(deg * 2);
    while (targets.size() < deg) targets.insert(rng.below(base));
    for (const VertexId t : targets) edges.add(hub, t);
  }
  edges.ensure_vertices(base + num_hubs);
  edges.normalize();
}

EdgeList barabasi_albert(VertexId num_vertices, Degree attach,
                         std::uint64_t seed) {
  assert(num_vertices > attach && attach >= 1);
  util::Xoshiro256 rng(seed);
  EdgeList out(num_vertices);

  // `targets` holds one entry per edge endpoint, so uniform sampling
  // from it is degree-proportional sampling.
  std::vector<VertexId> endpoints;
  endpoints.reserve(2ull * num_vertices * attach);

  // Seed clique over the first attach+1 vertices.
  for (VertexId u = 0; u <= attach; ++u) {
    for (VertexId v = u + 1; v <= attach; ++v) {
      out.add(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::unordered_set<VertexId> picked;
  for (VertexId u = attach + 1; u < num_vertices; ++u) {
    picked.clear();
    while (picked.size() < attach) {
      picked.insert(
          endpoints[rng.below(static_cast<std::uint32_t>(endpoints.size()))]);
    }
    for (const VertexId v : picked) {
      out.add(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  out.normalize();
  return out;
}

EdgeList watts_strogatz(VertexId num_vertices, Degree k, double beta,
                        std::uint64_t seed) {
  assert(num_vertices > 2 * k && k >= 1);
  assert(beta >= 0.0 && beta <= 1.0);
  util::Xoshiro256 rng(seed);
  EdgeList out(num_vertices);
  std::unordered_set<std::uint64_t> seen;

  auto try_add = [&](VertexId a, VertexId b) {
    if (a == b) return false;
    if (!seen.insert(edge_key(a, b)).second) return false;
    out.add(a, b);
    return true;
  };

  for (VertexId u = 0; u < num_vertices; ++u) {
    for (Degree j = 1; j <= k; ++j) {
      const VertexId ring_target =
          static_cast<VertexId>((u + j) % num_vertices);
      if (rng.uniform() < beta) {
        // Rewire: keep u, pick a uniform random other endpoint. Retry a
        // few times on collisions, falling back to the lattice edge.
        bool placed = false;
        for (int attempt = 0; attempt < 8 && !placed; ++attempt) {
          placed = try_add(u, rng.below(num_vertices));
        }
        if (!placed) (void)try_add(u, ring_target);
      } else {
        (void)try_add(u, ring_target);
      }
    }
  }
  out.normalize();
  return out;
}

EdgeList clique(VertexId size) {
  EdgeList out(size);
  for (VertexId u = 0; u < size; ++u) {
    for (VertexId v = u + 1; v < size; ++v) out.add(u, v);
  }
  out.normalize();
  return out;
}

}  // namespace aecnc::graph
