#include "graph/stats.hpp"

namespace aecnc::graph {

GraphStats compute_stats(const Csr& g) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_undirected_edges = g.num_undirected_edges();
  s.avg_degree = s.num_vertices == 0
                     ? 0.0
                     : static_cast<double>(g.num_directed_edges()) /
                           static_cast<double>(s.num_vertices);
  s.max_degree = g.max_degree();
  return s;
}

std::vector<std::uint64_t> degree_histogram(const Csr& g) {
  std::vector<std::uint64_t> buckets;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const Degree d = g.degree(u);
    std::size_t bucket = 0;
    while ((Degree{2} << bucket) <= d) ++bucket;  // d < 2^(bucket+1)
    if (buckets.size() <= bucket) buckets.resize(bucket + 1, 0);
    ++buckets[bucket];
  }
  return buckets;
}

double skewed_intersection_percentage(const Csr& g, double ratio_threshold) {
  std::uint64_t skewed = 0;
  std::uint64_t total = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const double du = g.degree(u);
    for (const VertexId v : g.neighbors(u)) {
      if (v <= u) continue;  // each undirected edge once
      const double dv = g.degree(v);
      ++total;
      const double hi = du > dv ? du : dv;
      const double lo = du > dv ? dv : du;
      if (lo > 0 && hi / lo > ratio_threshold) ++skewed;
    }
  }
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(skewed) /
                                static_cast<double>(total);
}

}  // namespace aecnc::graph
