// Graph serialization.
//
// Two formats:
//  - Text edge list ("u v" per line, '#' comments), the format SNAP
//    distributes its datasets in, so users can run the library on the
//    paper's original graphs when available.
//  - A binary CSR dump (magic + offsets + dst) for fast reloads, mirroring
//    the paper's preprocessing step that converts edge lists to CSR once.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace aecnc::graph {

/// Parse a SNAP-style text edge list. Throws std::runtime_error on
/// malformed input or I/O failure.
[[nodiscard]] EdgeList read_edge_list_text(std::istream& in);
[[nodiscard]] EdgeList load_edge_list_text(const std::string& path);

void write_edge_list_text(const EdgeList& edges, std::ostream& out);
void save_edge_list_text(const EdgeList& edges, const std::string& path);

/// Binary CSR round-trip. The format is versioned; readers reject
/// mismatched magic/version/endianness.
void write_csr_binary(const Csr& g, std::ostream& out);
void save_csr_binary(const Csr& g, const std::string& path);
[[nodiscard]] Csr read_csr_binary(std::istream& in);
[[nodiscard]] Csr load_csr_binary(const std::string& path);

}  // namespace aecnc::graph
