// Synthetic replicas of the paper's five evaluation datasets (Table 1).
//
// The originals (SNAP livejournal/orkut/friendster, WebGraph web-it,
// twitter) total ~3 billion undirected edges and are not available
// offline, so each replica is generated to match the *signature* that
// drives the paper's findings:
//   - the average degree (Table 1),
//   - the presence/absence of very-high-degree hubs (max degree),
//   - the fraction of highly degree-skewed intersections (Table 2:
//     LJ 11%, OR 2%, WI 39%, TW 31%, FR 0%).
// A replica at scale s has roughly |E|_paper * s undirected edges; the
// default bench scale keeps each run in the seconds range on one core.
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "graph/csr.hpp"

namespace aecnc::graph {

enum class DatasetId {
  kLiveJournal,  // LJ: social, moderate skew (11%)
  kOrkut,        // OR: social, dense, low skew (2%)
  kWebIt,        // WI: web, extreme hubs, heavy skew (39%)
  kTwitter,      // TW: social, celebrity hubs, heavy skew (31%)
  kFriendster,   // FR: social, near-uniform degrees, no skew (0%)
};

inline constexpr std::array<DatasetId, 5> kAllDatasets = {
    DatasetId::kLiveJournal, DatasetId::kOrkut, DatasetId::kWebIt,
    DatasetId::kTwitter, DatasetId::kFriendster};

/// Short name as used in the paper ("LJ", "OR", "WI", "TW", "FR").
[[nodiscard]] std::string_view dataset_name(DatasetId id);

/// Parse a short name; throws std::invalid_argument on unknown names.
[[nodiscard]] DatasetId dataset_from_name(std::string_view name);

/// Paper-reported statistics of the original dataset, used by benches to
/// print the paper-vs-replica comparison.
struct PaperDatasetStats {
  std::uint64_t num_vertices;
  std::uint64_t num_undirected_edges;
  double avg_degree;
  Degree max_degree;
  double skew_percentage;  // Table 2, threshold 50
};
[[nodiscard]] const PaperDatasetStats& paper_stats(DatasetId id);

/// Generate the replica. `scale` is the fraction of the original edge
/// count (e.g. 1e-3 produces a ~35k-edge LJ replica). Deterministic in
/// (id, scale).
[[nodiscard]] Csr make_dataset(DatasetId id, double scale);

/// Default scale used by the bench harnesses (seconds-level runtimes on a
/// single core, including the unoptimized baseline M).
inline constexpr double kDefaultBenchScale = 1e-3;

}  // namespace aecnc::graph
