#include "graph/edge_list.hpp"

#include <algorithm>

namespace aecnc::graph {

void EdgeList::normalize() {
  for (auto& e : edges_) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::erase_if(edges_, [](const Edge& e) { return e.u == e.v; });
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  ensure_vertices();
}

void EdgeList::ensure_vertices(VertexId min_vertices) {
  VertexId max_plus_one = min_vertices;
  for (const auto& e : edges_) {
    max_plus_one = std::max({max_plus_one, e.u + 1, e.v + 1});
  }
  num_vertices_ = std::max(num_vertices_, max_plus_one);
}

}  // namespace aecnc::graph
