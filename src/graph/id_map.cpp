#include "graph/id_map.hpp"

#include <sstream>

#include "check/check.hpp"

namespace aecnc::graph {

IdMap IdMap::from_permutation(std::vector<VertexId> ext_to_int) {
  IdMap map;
  const auto n = static_cast<VertexId>(ext_to_int.size());
  map.int_to_ext_.assign(n, kInvalidVertex);
  for (VertexId ext = 0; ext < n; ++ext) {
    const VertexId internal = ext_to_int[ext];
    AECNC_CHECK(internal < n)
        << "IdMap: permutation value " << internal << " out of range [0, " << n
        << ")";
    AECNC_CHECK(map.int_to_ext_[internal] == kInvalidVertex)
        << "IdMap: internal id " << internal << " assigned twice";
    map.int_to_ext_[internal] = ext;
  }
  map.ext_to_int_ = std::move(ext_to_int);
  return map;
}

std::string IdMap::validate() const {
  if (ext_to_int_.size() != int_to_ext_.size()) {
    std::ostringstream oss;
    oss << "direction sizes differ: " << ext_to_int_.size() << " vs "
        << int_to_ext_.size();
    return oss.str();
  }
  const VertexId n = size();
  for (VertexId ext = 0; ext < n; ++ext) {
    const VertexId internal = ext_to_int_[ext];
    if (internal >= n) {
      std::ostringstream oss;
      oss << "ext_to_int[" << ext << "] = " << internal << " out of range";
      return oss.str();
    }
    if (int_to_ext_[internal] != ext) {
      std::ostringstream oss;
      oss << "not an involution pair at external " << ext << ": int_to_ext["
          << internal << "] = " << int_to_ext_[internal];
      return oss.str();
    }
  }
  return {};
}

}  // namespace aecnc::graph
