// Edge-list representation: the "original storage format" in the paper
// (§2.1), from which graphs are preprocessed into CSR.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace aecnc::graph {

/// An undirected edge as an (unordered) vertex pair. Stored with u, v in
/// arbitrary order; normalization canonicalizes to u < v.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  friend constexpr bool operator==(const Edge&, const Edge&) = default;
  friend constexpr auto operator<=>(const Edge&, const Edge&) = default;
};

/// A mutable list of undirected edges plus the vertex-universe size.
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(VertexId num_vertices) : num_vertices_(num_vertices) {}
  EdgeList(VertexId num_vertices, std::vector<Edge> edges)
      : num_vertices_(num_vertices), edges_(std::move(edges)) {}

  void add(VertexId u, VertexId v) { edges_.push_back({u, v}); }

  /// Canonicalize: drop self loops, order endpoints u < v, sort, dedupe.
  /// After normalization every undirected edge appears exactly once.
  void normalize();

  /// Grow the vertex universe to cover every endpoint (and at least
  /// `min_vertices`).
  void ensure_vertices(VertexId min_vertices = 0);

  [[nodiscard]] VertexId num_vertices() const noexcept { return num_vertices_; }
  [[nodiscard]] std::uint64_t num_edges() const noexcept { return edges_.size(); }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }
  [[nodiscard]] std::vector<Edge>& edges() noexcept { return edges_; }

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace aecnc::graph
