#include "graph/datasets.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "graph/generators.hpp"

namespace aecnc::graph {
namespace {

/// Recipe for a replica: a Chung-Lu (or Erdős–Rényi) body plus optional
/// hubs. Tail exponent and hub budget are tuned so the replica's Table 2
/// skew percentage lands near the paper's value.
struct Recipe {
  double vertices;          // paper |V|
  double edges;             // paper |E| (undirected)
  double exponent;          // Chung-Lu tail exponent; <= 0 means Erdős–Rényi
  double hub_edge_share;    // fraction of edges carried by added hubs
  double hub_degree_share;  // hub degree as a fraction of |V|
  std::uint64_t seed;
};

const Recipe& recipe_for(DatasetId id) {
  // Bodies: LJ/OR social power-laws; WI/TW get extreme hubs on a skewed
  // body (driving the paper's 39%/31% skewed intersections); FR is
  // near-uniform in skew terms (0% of pairs beyond ratio 50) but with a
  // realistic second moment (max degree ~180x the average).
  static const Recipe kLj{4036538, 34681189, 2.18, 0.00, 0.0, 0x17a001};
  static const Recipe kOr{3072627, 117185083, 3.50, 0.00, 0.0, 0x17a002};
  static const Recipe kWi{41291083, 583044292, 2.05, 0.38, 0.200, 0x17a003};
  static const Recipe kTw{41652230, 684500375, 2.15, 0.30, 0.150, 0x17a004};
  static const Recipe kFr{124836180, 1806067135, 2.75, 0.00, 0.0, 0x17a005};
  switch (id) {
    case DatasetId::kLiveJournal: return kLj;
    case DatasetId::kOrkut: return kOr;
    case DatasetId::kWebIt: return kWi;
    case DatasetId::kTwitter: return kTw;
    case DatasetId::kFriendster: return kFr;
  }
  throw std::invalid_argument("unknown dataset id");
}

}  // namespace

std::string_view dataset_name(DatasetId id) {
  switch (id) {
    case DatasetId::kLiveJournal: return "LJ";
    case DatasetId::kOrkut: return "OR";
    case DatasetId::kWebIt: return "WI";
    case DatasetId::kTwitter: return "TW";
    case DatasetId::kFriendster: return "FR";
  }
  return "??";
}

DatasetId dataset_from_name(std::string_view name) {
  for (const DatasetId id : kAllDatasets) {
    if (dataset_name(id) == name) return id;
  }
  throw std::invalid_argument("unknown dataset name: " + std::string(name));
}

const PaperDatasetStats& paper_stats(DatasetId id) {
  // Table 1 plus Table 2 of the paper.
  static const PaperDatasetStats kLj{4036538, 34681189, 17.2, 14815, 11.0};
  static const PaperDatasetStats kOr{3072627, 117185083, 76.3, 33312, 2.0};
  static const PaperDatasetStats kWi{41291083, 583044292, 28.2, 1243927, 39.0};
  static const PaperDatasetStats kTw{41652230, 684500375, 32.9, 1405985, 31.0};
  static const PaperDatasetStats kFr{124836180, 1806067135, 28.9, 5214, 0.0};
  switch (id) {
    case DatasetId::kLiveJournal: return kLj;
    case DatasetId::kOrkut: return kOr;
    case DatasetId::kWebIt: return kWi;
    case DatasetId::kTwitter: return kTw;
    case DatasetId::kFriendster: return kFr;
  }
  throw std::invalid_argument("unknown dataset id");
}

Csr make_dataset(DatasetId id, double scale) {
  assert(scale > 0.0 && scale <= 1.0);
  const Recipe& r = recipe_for(id);

  // Scale vertices and edges together so the average degree matches the
  // original at any scale. Keep at least a small floor so tiny scales
  // still produce meaningful graphs.
  const auto n =
      static_cast<VertexId>(std::max(256.0, std::round(r.vertices * scale)));
  const auto m =
      static_cast<std::uint64_t>(std::max(1024.0, std::round(r.edges * scale)));

  const std::uint64_t body_edges =
      static_cast<std::uint64_t>(std::round(m * (1.0 - r.hub_edge_share)));

  EdgeList edges =
      r.exponent > 0.0
          ? chung_lu_power_law(n, body_edges, r.exponent, r.seed)
          : erdos_renyi(n, body_edges, r.seed);

  if (r.hub_edge_share > 0.0) {
    const auto hub_degree = static_cast<Degree>(
        std::max(64.0, std::round(r.hub_degree_share * n)));
    const auto hub_edges = m - body_edges;
    const auto num_hubs = static_cast<VertexId>(
        std::max<std::uint64_t>(1, hub_edges / hub_degree));
    add_hubs(edges, num_hubs, hub_degree, r.seed ^ 0x40b5ULL);
  }

  return Csr::from_edge_list(std::move(edges));
}

}  // namespace aecnc::graph
