// Incremental all-edge common neighbor counting.
//
// The paper's motivating scenario is *online* analytics: platforms
// "analyze the data on the fly to recommend products ... while the user
// is shopping" (§1). Rather than recount the whole graph per update,
// IncrementalCounter maintains the count array under single-edge
// insertions and deletions:
//
//   adding (a, b) creates one new pair to count (|N(a) ∩ N(b)|, one
//   intersection) and increments cnt[(a,w)] and cnt[(b,w)] for every
//   common neighbor w — because b just became a common neighbor of a and
//   w, and symmetrically. Deletion is the exact inverse.
//
// Cost per update: one intersection O(min(d_a, d_b)) plus O(#common)
// count adjustments plus two sorted inserts — versus the full recount's
// O(Σ intersections). The running triangle count comes for free
// (every update moves it by exactly the pair's common-neighbor count).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace aecnc::core {

class IncrementalCounter {
 public:
  /// Empty graph over a growable vertex universe.
  IncrementalCounter() = default;

  /// Bootstrap from an existing graph (counts computed per edge).
  explicit IncrementalCounter(const graph::Csr& g);

  /// Insert undirected edge (u, v). No-ops on self loops and duplicates.
  /// Returns true if the edge was new.
  bool add_edge(VertexId u, VertexId v);

  /// Remove undirected edge (u, v). Returns true if it existed.
  bool remove_edge(VertexId u, VertexId v);

  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// Common neighbor count of an existing edge; nullopt for non-edges.
  [[nodiscard]] std::optional<CnCount> count(VertexId u, VertexId v) const;

  [[nodiscard]] std::uint64_t num_edges() const noexcept { return edges_; }
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(adjacency_.size());
  }
  [[nodiscard]] std::uint64_t triangles() const noexcept { return triangles_; }

  /// Sorted adjacency of u (empty for out-of-universe ids).
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId u) const;

  /// Snapshot into a CSR (e.g. to run the batch algorithms or verify).
  [[nodiscard]] graph::Csr to_csr() const;

 private:
  static constexpr std::uint64_t key(VertexId u, VertexId v) noexcept {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  void ensure_vertex(VertexId v);
  /// Common neighbors of u and v under the current adjacency.
  [[nodiscard]] std::vector<VertexId> common_neighbors(VertexId u,
                                                       VertexId v) const;
  void bump(VertexId a, VertexId b, int delta);

  std::vector<std::vector<VertexId>> adjacency_;  // sorted per vertex
  std::unordered_map<std::uint64_t, CnCount> counts_;  // per undirected edge
  std::uint64_t edges_ = 0;
  std::uint64_t triangles_ = 0;
};

}  // namespace aecnc::core
