// Incremental all-edge common neighbor counting.
//
// The paper's motivating scenario is *online* analytics: platforms
// "analyze the data on the fly to recommend products ... while the user
// is shopping" (§1). Rather than recount the whole graph per update,
// IncrementalCounter maintains the count array under single-edge
// insertions and deletions:
//
//   adding (a, b) creates one new pair to count (|N(a) ∩ N(b)|, one
//   intersection) and increments cnt[(a,w)] and cnt[(b,w)] for every
//   common neighbor w — because b just became a common neighbor of a and
//   w, and symmetrically. Deletion is the exact inverse.
//
// Cost per update: one intersection O(min(d_a, d_b)) plus O(#common)
// count adjustments plus two sorted inserts — versus the full recount's
// O(Σ intersections). The running triangle count comes for free
// (every update moves it by exactly the pair's common-neighbor count).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/options.hpp"
#include "graph/csr.hpp"
#include "util/types.hpp"

namespace aecnc::core {

/// One structural mutation of the undirected graph.
enum class EdgeOpKind : std::uint8_t { kInsert, kErase };

struct EdgeOp {
  EdgeOpKind kind = EdgeOpKind::kInsert;
  VertexId u = 0;
  VertexId v = 0;
};

/// Outcome of a batched apply: how many ops mutated the graph versus
/// no-oped (self loop, duplicate insert, erase of a non-edge).
struct BatchApplyStats {
  std::size_t inserted = 0;
  std::size_t erased = 0;
  std::size_t noops = 0;

  [[nodiscard]] std::size_t applied() const noexcept {
    return inserted + erased;
  }
};

class IncrementalCounter {
 public:
  /// Empty graph over a growable vertex universe.
  IncrementalCounter() = default;

  /// Bootstrap from an existing graph (counts computed per edge).
  explicit IncrementalCounter(const graph::Csr& g);

  /// Insert undirected edge (u, v). No-ops on self loops and duplicates.
  /// Returns true if the edge was new.
  bool add_edge(VertexId u, VertexId v);

  /// Remove undirected edge (u, v). Returns true if it existed.
  bool remove_edge(VertexId u, VertexId v);

  /// Apply a batch of mutations with per-op delta maintenance: every
  /// count stays exact after each op, at O(min(d_u, d_v)) per op. This
  /// is the cheap route for batches small relative to the graph
  /// (src/update's policy decides; see docs/updates.md).
  BatchApplyStats apply_batch(std::span<const EdgeOp> ops);

  /// Apply a batch structurally only: adjacency and the edge count are
  /// updated, but per-edge counts and the triangle total are NOT
  /// maintained — the counter is inconsistent until recount() runs.
  /// Pairing this with recount() is the full-recount route, cheaper
  /// than apply_batch once Σ min-degree work across the batch exceeds
  /// the one-shot all-edge cost.
  BatchApplyStats apply_batch_structural(std::span<const EdgeOp> ops);

  /// Rebuild every per-edge count (and the triangle total) from scratch
  /// by materializing the CSR and running the configured batch driver
  /// (sequential or parallel; counts are bit-identical either way).
  void recount(const Options& options = {});

  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// Common neighbor count of an existing edge; nullopt for non-edges.
  [[nodiscard]] std::optional<CnCount> count(VertexId u, VertexId v) const;

  [[nodiscard]] std::uint64_t num_edges() const noexcept { return edges_; }
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(adjacency_.size());
  }
  [[nodiscard]] std::uint64_t triangles() const noexcept { return triangles_; }

  /// Sorted adjacency of u (empty for out-of-universe ids).
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId u) const;

  /// Snapshot into a CSR (e.g. to run the batch algorithms or verify).
  [[nodiscard]] graph::Csr to_csr() const;

 private:
  static constexpr std::uint64_t key(VertexId u, VertexId v) noexcept {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  void ensure_vertex(VertexId v);
  /// Insert (u, v) into adjacency only (no count maintenance). Returns
  /// false on self loops and duplicates.
  bool link(VertexId u, VertexId v);
  /// Erase (u, v) from adjacency only. Returns false for non-edges.
  bool unlink(VertexId u, VertexId v);
  /// Seed counts_ and triangles_ from an all-edge run over g, which must
  /// be the CSR materialization of the current adjacency.
  void seed_counts(const graph::Csr& g, const CountArray& cnt);
  /// Common neighbors of u and v under the current adjacency.
  [[nodiscard]] std::vector<VertexId> common_neighbors(VertexId u,
                                                       VertexId v) const;
  void bump(VertexId a, VertexId b, int delta);

  std::vector<std::vector<VertexId>> adjacency_;  // sorted per vertex
  std::unordered_map<std::uint64_t, CnCount> counts_;  // per undirected edge
  std::uint64_t edges_ = 0;
  std::uint64_t triangles_ = 0;
};

}  // namespace aecnc::core
