#include "core/api.hpp"

#include "core/parallel.hpp"
#include "core/sequential.hpp"
#include "core/verify.hpp"
#include "graph/reorder.hpp"
#include "intersect/dispatch.hpp"
#include "obs/catalog.hpp"
#include "shard/engine.hpp"

namespace aecnc::core {
namespace {

/// The kernel-level MPS config for a run: Options::prefetch is the master
/// switch and overwrites the per-config flag; the VB merge kernels have
/// their own gate (see MpsConfig::vb_prefetch).
intersect::MpsConfig effective_mps(const Options& options) {
  intersect::MpsConfig cfg = options.mps;
  cfg.prefetch = options.prefetch;
  cfg.vb_prefetch = options.vb_prefetch;
  return cfg;
}

/// The run itself, in the caller's (already final) ID space.
CountArray count_in_place(const graph::Csr& g, const Options& options) {
  if (options.num_shards > 0) {
    shard::ShardConfig cfg;
    cfg.num_shards = options.num_shards;
    cfg.algorithm = options.algorithm;
    cfg.mps = options.mps;
    cfg.prefetch = options.prefetch;
    return shard::count_sharded(g, cfg);
  }
  if (options.parallel) return count_parallel(g, options);
  switch (options.algorithm) {
    case Algorithm::kMergeBaseline:
      return count_sequential_m(g);
    case Algorithm::kMps:
      return count_sequential_mps(g, effective_mps(options));
    case Algorithm::kBmp:
      if (options.bmp_packed) {
        // The packed head already skips the probes range filtering would
        // have filtered, so bmp_range_filter is superseded here.
        return count_sequential_bmp_packed(g, options.pack_threshold,
                                           options.prefetch);
      }
      return count_sequential_bmp(g, options.bmp_range_filter,
                                  options.rf_range_scale, options.prefetch);
  }
  return count_sequential_m(g);
}

/// Count on the degree-descending relabeled twin and translate the counts
/// back into g's slot order: slot e(u,v) of g corresponds to slot
/// e(map(u), map(v)) of the internal graph.
CountArray count_relabeled(const graph::Csr& g, const Options& options) {
  graph::IdMap map;
  const graph::Csr internal = graph::reorder_degree_descending(g, &map);
  Options inner = options;
  inner.relabel = false;
  const CountArray internal_cnt = count_in_place(internal, inner);

  CountArray cnt(g.num_directed_edges(), 0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeId begin = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    const VertexId iu = map.to_internal(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      cnt[begin + k] =
          internal_cnt[internal.find_edge(iu, map.to_internal(nbrs[k]))];
    }
  }
  return cnt;
}

}  // namespace

CountArray count_common_neighbors(const graph::Csr& g, const Options& options) {
  const obs::CoreMetrics& m = obs::CoreMetrics::get();
  if (obs::enabled()) m.runs.add();
  obs::ScopedTimer timer(m.run_ns);
  if (options.relabel) return count_relabeled(g, options);
  return count_in_place(g, options);
}

CountArray count_with_reorder(const graph::Csr& g, const Options& options) {
  return count_relabeled(g, options);
}

CountArray count_instrumented(const graph::Csr& g, const Options& options,
                              intersect::StatsCounter& stats) {
  switch (options.algorithm) {
    case Algorithm::kMergeBaseline:
      return count_sequential_m_instrumented(g, stats);
    case Algorithm::kMps:
      return count_sequential_mps_instrumented(g, options.mps, stats);
    case Algorithm::kBmp:
      return count_sequential_bmp_instrumented(
          g, options.bmp_range_filter, options.rf_range_scale, stats);
  }
  return count_sequential_m_instrumented(g, stats);
}

CnCount count_edge(const graph::Csr& g, VertexId u, VertexId v,
                   const Options& options) {
  if (u >= g.num_vertices() || v >= g.num_vertices() || u == v) return 0;
  return intersect::mps_count(g.neighbors(u), g.neighbors(v),
                              effective_mps(options));
}

CountArray count_vertex(const graph::Csr& g, VertexId u,
                        const Options& options) {
  if (u >= g.num_vertices()) return {};
  const intersect::MpsConfig cfg = effective_mps(options);
  const auto nbrs = g.neighbors(u);
  CountArray counts(nbrs.size(), 0);
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    counts[k] = intersect::mps_count(nbrs, g.neighbors(nbrs[k]), cfg);
  }
  return counts;
}

std::uint64_t triangle_count(const graph::Csr& g, const Options& options) {
  return triangle_count_from(count_common_neighbors(g, options));
}

}  // namespace aecnc::core
