#include "core/api.hpp"

#include "core/parallel.hpp"
#include "core/sequential.hpp"
#include "core/verify.hpp"
#include "graph/reorder.hpp"
#include "intersect/dispatch.hpp"
#include "obs/catalog.hpp"
#include "shard/engine.hpp"

namespace aecnc::core {
namespace {

/// The kernel-level MPS config for a run: Options::prefetch is the master
/// switch and overwrites the per-config flag.
intersect::MpsConfig effective_mps(const Options& options) {
  intersect::MpsConfig cfg = options.mps;
  cfg.prefetch = options.prefetch;
  return cfg;
}

}  // namespace

CountArray count_common_neighbors(const graph::Csr& g, const Options& options) {
  const obs::CoreMetrics& m = obs::CoreMetrics::get();
  if (obs::enabled()) m.runs.add();
  obs::ScopedTimer timer(m.run_ns);
  if (options.num_shards > 0) {
    shard::ShardConfig cfg;
    cfg.num_shards = options.num_shards;
    cfg.algorithm = options.algorithm;
    cfg.mps = options.mps;
    cfg.prefetch = options.prefetch;
    return shard::count_sharded(g, cfg);
  }
  if (options.parallel) return count_parallel(g, options);
  switch (options.algorithm) {
    case Algorithm::kMergeBaseline:
      return count_sequential_m(g);
    case Algorithm::kMps:
      return count_sequential_mps(g, effective_mps(options));
    case Algorithm::kBmp:
      return count_sequential_bmp(g, options.bmp_range_filter,
                                  options.rf_range_scale, options.prefetch);
  }
  return count_sequential_m(g);
}

CountArray count_with_reorder(const graph::Csr& g, const Options& options) {
  const auto perm = graph::degree_descending_permutation(g);
  const graph::Csr reordered = graph::apply_permutation(g, perm);
  const CountArray reordered_cnt = count_common_neighbors(reordered, options);

  // Translate back: slot e(u,v) of g corresponds to slot
  // e(perm[u], perm[v]) of the reordered graph.
  CountArray cnt(g.num_directed_edges(), 0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeId begin = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      cnt[begin + k] = reordered_cnt[reordered.find_edge(perm[u], perm[nbrs[k]])];
    }
  }
  return cnt;
}

CountArray count_instrumented(const graph::Csr& g, const Options& options,
                              intersect::StatsCounter& stats) {
  switch (options.algorithm) {
    case Algorithm::kMergeBaseline:
      return count_sequential_m_instrumented(g, stats);
    case Algorithm::kMps:
      return count_sequential_mps_instrumented(g, options.mps, stats);
    case Algorithm::kBmp:
      return count_sequential_bmp_instrumented(
          g, options.bmp_range_filter, options.rf_range_scale, stats);
  }
  return count_sequential_m_instrumented(g, stats);
}

CnCount count_edge(const graph::Csr& g, VertexId u, VertexId v,
                   const Options& options) {
  if (u >= g.num_vertices() || v >= g.num_vertices() || u == v) return 0;
  return intersect::mps_count(g.neighbors(u), g.neighbors(v),
                              effective_mps(options));
}

CountArray count_vertex(const graph::Csr& g, VertexId u,
                        const Options& options) {
  if (u >= g.num_vertices()) return {};
  const intersect::MpsConfig cfg = effective_mps(options);
  const auto nbrs = g.neighbors(u);
  CountArray counts(nbrs.size(), 0);
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    counts[k] = intersect::mps_count(nbrs, g.neighbors(nbrs[k]), cfg);
  }
  return counts;
}

std::uint64_t triangle_count(const graph::Csr& g, const Options& options) {
  return triangle_count_from(count_common_neighbors(g, options));
}

}  // namespace aecnc::core
