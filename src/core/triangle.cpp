#include "core/triangle.hpp"

#include <omp.h>

#include <algorithm>

#include "intersect/hash_index.hpp"
#include "intersect/merge.hpp"

namespace aecnc::core {
namespace {

/// Forward neighbors N+(u): suffix of the (sorted) adjacency list with
/// ids greater than u.
std::span<const VertexId> forward_neighbors(const graph::Csr& g, VertexId u) {
  const auto nbrs = g.neighbors(u);
  const auto it = std::upper_bound(nbrs.begin(), nbrs.end(), u);
  return nbrs.subspan(static_cast<std::size_t>(it - nbrs.begin()));
}

}  // namespace

std::uint64_t count_triangles(const graph::Csr& g,
                              TriangleAlgorithm algorithm, int num_threads) {
  const int threads =
      num_threads > 0 ? num_threads : omp_get_max_threads();
  std::uint64_t total = 0;

#pragma omp parallel num_threads(threads) reduction(+ : total)
  {
    // Thread-local reusable hash index for the kHashForward variant.
    intersect::HashIndex index;
#pragma omp for schedule(dynamic, 64)
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      const auto fwd_u = forward_neighbors(g, u);
      if (fwd_u.size() < 1) continue;
      if (algorithm == TriangleAlgorithm::kHashForward) {
        index.rebuild(fwd_u);
      }
      for (const VertexId v : fwd_u) {
        const auto fwd_v = forward_neighbors(g, v);
        if (fwd_v.empty()) continue;
        switch (algorithm) {
          case TriangleAlgorithm::kMergeForward:
            total += intersect::merge_count(fwd_u, fwd_v);
            break;
          case TriangleAlgorithm::kHashForward:
            total += intersect::hash_intersect_count(index, fwd_v);
            break;
        }
      }
    }
  }
  return total;
}

std::vector<std::uint64_t> per_vertex_triangles(const graph::Csr& g) {
  std::vector<std::uint64_t> tri(g.num_vertices(), 0);
  // Sequential accumulation: each triangle (u < v < w) found once via the
  // forward intersection, credited to all three corners.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto fwd_u = forward_neighbors(g, u);
    for (const VertexId v : fwd_u) {
      const auto fwd_v = forward_neighbors(g, v);
      // Enumerate (not just count) the common forward neighbors.
      std::size_t i = 0, j = 0;
      while (i < fwd_u.size() && j < fwd_v.size()) {
        if (fwd_u[i] < fwd_v[j]) {
          ++i;
        } else if (fwd_u[i] > fwd_v[j]) {
          ++j;
        } else {
          const VertexId w = fwd_u[i];
          ++tri[u];
          ++tri[v];
          ++tri[w];
          ++i;
          ++j;
        }
      }
    }
  }
  return tri;
}

}  // namespace aecnc::core
