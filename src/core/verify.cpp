#include "core/verify.hpp"

#include <numeric>
#include <sstream>

#include "intersect/merge.hpp"

namespace aecnc::core {

CountArray count_reference(const graph::Csr& g) {
  CountArray cnt(g.num_directed_edges(), 0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeId begin = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      cnt[begin + k] =
          intersect::reference_count(g.neighbors(u), g.neighbors(nbrs[k]));
    }
  }
  return cnt;
}

std::optional<std::string> diff_counts(const graph::Csr& g,
                                       const CountArray& actual,
                                       const CountArray& expected) {
  if (actual.size() != expected.size()) {
    return "size mismatch: " + std::to_string(actual.size()) + " vs " +
           std::to_string(expected.size());
  }
  for (EdgeId e = 0; e < actual.size(); ++e) {
    if (actual[e] != expected[e]) {
      const VertexId u = g.src_of(e);
      const VertexId v = g.dst_of(e);
      std::ostringstream msg;
      msg << "cnt[e(" << u << "," << v << ") = " << e << "] = " << actual[e]
          << ", expected " << expected[e];
      return msg.str();
    }
  }
  return std::nullopt;
}

bool counts_symmetric(const graph::Csr& g, const CountArray& cnt) {
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeId begin = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (cnt[begin + k] != cnt[g.find_edge(nbrs[k], u)]) return false;
    }
  }
  return true;
}

std::uint64_t triangle_count_from(const CountArray& cnt) {
  const std::uint64_t sum =
      std::accumulate(cnt.begin(), cnt.end(), std::uint64_t{0});
  return sum / 6;
}

}  // namespace aecnc::core
