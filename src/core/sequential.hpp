// Sequential reference implementations of M, MPS (Algorithm 1) and BMP
// (Algorithm 2), including the symmetric assignment technique (§3): only
// pairs with u < v are intersected; cnt[e(v,u)] receives a copy, with the
// reverse slot taken from Csr::reverse_offsets() (the paper's per-edge
// binary search on N(v) survives as a debug differential check).
#pragma once

#include "core/options.hpp"
#include "graph/csr.hpp"
#include "intersect/counters.hpp"

namespace aecnc::intersect {
class PackedHubIndex;  // intersect/packed_index.hpp
}

namespace aecnc::core {

/// Plain merge baseline "M": every u<v edge via two-pointer merge.
[[nodiscard]] CountArray count_sequential_m(const graph::Csr& g);

/// Algorithm 1: hybrid pivot-skip / block merge with threshold t.
[[nodiscard]] CountArray count_sequential_mps(const graph::Csr& g,
                                              const intersect::MpsConfig& cfg);

/// Algorithm 2: dynamic bitmap index, optionally range-filtered.
/// `prefetch` toggles the bitmap-word software prefetch in the inner loop.
[[nodiscard]] CountArray count_sequential_bmp(const graph::Csr& g,
                                              bool range_filter,
                                              std::uint64_t rf_scale = 4096,
                                              bool prefetch = true);

/// Algorithm 2 with the packed hub index: sub-threshold neighbors via
/// word-AND popcounts, the tail via plain bitmap probes. Bit-identical
/// to count_sequential_bmp on any graph; fastest after a degree-
/// descending relabel.
[[nodiscard]] CountArray count_sequential_bmp_packed(const graph::Csr& g,
                                                     VertexId pack_threshold,
                                                     bool prefetch = true);

/// Same, against a caller-owned index (immutable, reusable across runs
/// and threads) — skips the O(|E|) rebuild the threshold overload pays.
[[nodiscard]] CountArray count_sequential_bmp_packed(
    const graph::Csr& g, const intersect::PackedHubIndex& index,
    bool prefetch = true);

/// Instrumented sequential runs feeding the perf models: identical work
/// schedule, counting into `stats`.
CountArray count_sequential_m_instrumented(const graph::Csr& g,
                                           intersect::StatsCounter& stats);
CountArray count_sequential_mps_instrumented(const graph::Csr& g,
                                             const intersect::MpsConfig& cfg,
                                             intersect::StatsCounter& stats);
CountArray count_sequential_bmp_instrumented(const graph::Csr& g,
                                             bool range_filter,
                                             std::uint64_t rf_scale,
                                             intersect::StatsCounter& stats);

}  // namespace aecnc::core
