#include "core/comparators.hpp"

#include "check/check.hpp"
#include "intersect/hash_index.hpp"
#include "intersect/sparse_bitmap.hpp"

namespace aecnc::core {
namespace {

inline void assign_symmetric(const graph::Csr& g, const EdgeId* rev,
                             CountArray& cnt, VertexId u, VertexId v,
                             EdgeId euv) {
  AECNC_DCHECK(rev[euv] == g.find_edge(v, u));
  cnt[rev[euv]] = cnt[euv];
}

}  // namespace

CountArray count_sparse_bitmap(const graph::Csr& g) {
  const intersect::SparseBitmapIndex index(g);
  CountArray cnt(g.num_directed_edges(), 0);
  const EdgeId* rev = g.reverse_offsets().data();
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeId base = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId v = nbrs[k];
      if (u >= v) continue;
      cnt[base + k] =
          intersect::sparse_bitmap_intersect_count(index.of(u), index.of(v));
      assign_symmetric(g, rev, cnt, u, v, base + k);
    }
  }
  return cnt;
}

CountArray count_hash_index(const graph::Csr& g) {
  CountArray cnt(g.num_directed_edges(), 0);
  const EdgeId* rev = g.reverse_offsets().data();
  intersect::HashIndex index;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeId base = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    bool built = false;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId v = nbrs[k];
      if (u >= v) continue;
      if (!built) {
        index.rebuild(nbrs);
        built = true;
      }
      cnt[base + k] = intersect::hash_intersect_count(index, g.neighbors(v));
      assign_symmetric(g, rev, cnt, u, v, base + k);
    }
  }
  return cnt;
}

}  // namespace aecnc::core
