// Related-work all-edge counters used as comparators in the ablation
// benches: the sparse-bitmap family ([1,13,16], precomputed offline) and
// the hash-index family ([5,12,20,23]). Both produce the same count
// array as MPS/BMP; they differ in the index they build and when.
#pragma once

#include "core/options.hpp"
#include "graph/csr.hpp"

namespace aecnc::core {

/// All-edge counting over a precomputed per-vertex sparse-bitmap index
/// (offsets + bit-states merged per §2.2.1). Index construction time is
/// included — that is the family's offline cost the paper contrasts with
/// BMP's amortized dynamic construction.
[[nodiscard]] CountArray count_sparse_bitmap(const graph::Csr& g);

/// All-edge counting with a per-source-vertex hash index rebuilt
/// dynamically (the hash analogue of BMP).
[[nodiscard]] CountArray count_hash_index(const graph::Csr& g);

}  // namespace aecnc::core
