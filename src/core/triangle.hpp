// Dedicated exact triangle counting (§2.2.2) for comparison against
// deriving the count from the all-edge array (Σcnt/6).
//
// With the order constraint u < v < w and symmetry breaking, a triangle
// counter only intersects the *forward* neighbor sets N+(u) ∩ N+(v) per
// forward edge — strictly less work than the all-edge problem, which the
// paper contrasts with (full sets required, |E| counts stored). Both the
// merge-based and the hash-index-based multicore algorithms of Shun &
// Tangwongsan [23] are provided.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace aecnc::core {

enum class TriangleAlgorithm {
  kMergeForward,  // merge N+(u) with N+(v) per forward edge
  kHashForward,   // hash index over N+(u), probe with N+(v)
};

/// Exact triangle count via symmetric breaking; parallelized over
/// vertices with OpenMP dynamic scheduling.
[[nodiscard]] std::uint64_t count_triangles(
    const graph::Csr& g,
    TriangleAlgorithm algorithm = TriangleAlgorithm::kMergeForward,
    int num_threads = 0);

/// Per-vertex triangle participation: tri[v] = number of triangles
/// containing v (the local count clustering applications need).
[[nodiscard]] std::vector<std::uint64_t> per_vertex_triangles(
    const graph::Csr& g);

}  // namespace aecnc::core
