// Parallel MPS and BMP with the OpenMP skeleton of Algorithm 3.
//
// The |E| directed slots are split into |E|/|T| fine-grained tasks and
// dynamically scheduled. Each thread keeps:
//  - a cached source vertex (FindSrc, lines 7-15) so the per-edge source
//    lookup amortizes to O(1) within a task, and
//  - for BMP, a thread-local bitmap rebuilt only when the source vertex
//    changes (ComputeCntBMP, lines 18-25).
#pragma once

#include "core/options.hpp"
#include "graph/csr.hpp"

namespace aecnc::core {

/// Parallel all-edge counting. Honors options.algorithm, .task_size,
/// .num_threads, .mps, and .bmp_range_filter.
[[nodiscard]] CountArray count_parallel(const graph::Csr& g,
                                        const Options& options);

/// FindSrc (Algorithm 3 lines 7-15), exposed for unit testing: source
/// vertex of slot e, using `cached` as the thread-local stash.
[[nodiscard]] VertexId find_src(const graph::Csr& g, EdgeId e,
                                VertexId& cached);

}  // namespace aecnc::core
