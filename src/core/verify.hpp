// Result verification utilities: ground-truth computation via
// std::set_intersection and count-array comparison. Used by tests and by
// the examples' self-checks.
#pragma once

#include <optional>
#include <string>

#include "core/options.hpp"
#include "graph/csr.hpp"

namespace aecnc::core {

/// Brute-force ground truth: every directed slot via std::set_intersection.
[[nodiscard]] CountArray count_reference(const graph::Csr& g);

/// First differing slot between two count arrays, with a human-readable
/// description; std::nullopt when identical.
[[nodiscard]] std::optional<std::string> diff_counts(const graph::Csr& g,
                                                     const CountArray& actual,
                                                     const CountArray& expected);

/// The symmetry invariant: cnt[e(u,v)] == cnt[e(v,u)] for every edge.
[[nodiscard]] bool counts_symmetric(const graph::Csr& g, const CountArray& cnt);

/// Σ cnt / 6 = number of triangles (paper §2.2.2): each triangle
/// contributes one common neighbor to each of its 3 edges in each of the
/// 2 directions.
[[nodiscard]] std::uint64_t triangle_count_from(const CountArray& cnt);

}  // namespace aecnc::core
