#include "core/parallel.hpp"

#include <omp.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "bitmap/bitmap.hpp"
#include "bitmap/range_filter.hpp"
#include "check/check.hpp"
#include "intersect/merge.hpp"
#include "intersect/packed_index.hpp"
#include "obs/catalog.hpp"
#include "parallel/task_pool.hpp"
#include "util/annotations.hpp"
#include "util/prefetch.hpp"

namespace aecnc::core {
namespace {

/// Per-thread state, cache-line aligned to avoid false sharing between
/// adjacent threads' FindSrc caches.
struct alignas(64) ThreadState {
  VertexId cached_src = 0;
  VertexId prev_u = kInvalidVertex;  // pu_tls of Algorithm 3 line 19
  bitmap::Bitmap bitmap;
  bitmap::RangeFilteredBitmap rf;
  intersect::PackedCounter packed;
};

/// Process-wide cache of per-thread contexts, so repeated count_parallel
/// calls (as the serve dispatcher issues) reuse the |V|-bit bitmaps
/// instead of paying allocation + page-fault warmup each time — the same
/// persistent-context idea as serve's WorkerPool WorkerContexts. A lease
/// takes the shared vector when free; concurrent count_parallel calls
/// (rare — e.g. two Services) fall back to a private fresh vector rather
/// than serialize.
class ContextLease {
 public:
  // Per-site waiver (ctor + dtor): lease-lifetime conditional ownership
  // — try_lock here, unlock in the destructor, with a private-vector
  // fallback when the shared contexts are taken — is not expressible as
  // a scoped capability; the lease object itself is the ownership token.
  explicit ContextLease(std::size_t threads) AECNC_NO_THREAD_SAFETY_ANALYSIS {
    if (mutex().try_lock()) {
      owns_shared_ = true;
      states_ = &shared();
    } else {
      states_ = &local_;
    }
    if (obs::enabled()) {
      const obs::CoreMetrics& m = obs::CoreMetrics::get();
      (owns_shared_ ? m.lease_shared : m.lease_private).add();
    }
    if (states_->size() < threads) states_->resize(threads);
  }
  ~ContextLease() AECNC_NO_THREAD_SAFETY_ANALYSIS {
    if (owns_shared_) mutex().unlock();
  }
  ContextLease(const ContextLease&) = delete;
  ContextLease& operator=(const ContextLease&) = delete;

  std::vector<ThreadState>& states() { return *states_; }

  /// Reset the first `threads` contexts for a run: fresh FindSrc stash
  /// (satellite fix: a stale cached_src from a previous graph or scheduler
  /// must never leak into the next run) and bitmaps shaped for this graph.
  /// Reused bitmaps are already all-zero — the drivers restore that
  /// invariant on exit — so reshaping only happens on a graph change.
  void prepare(const graph::Csr& g, const Options& options, int threads,
               const intersect::PackedHubIndex* pack = nullptr) {
    const bool is_bmp = options.algorithm == Algorithm::kBmp;
    const bool rf = is_bmp && options.bmp_range_filter && pack == nullptr;
    const std::uint64_t n = g.num_vertices();
    for (int t = 0; t < threads; ++t) {
      ThreadState& ts = (*states_)[static_cast<std::size_t>(t)];
      ts.cached_src = 0;
      ts.prev_u = kInvalidVertex;
      if (!is_bmp) continue;
      if (pack != nullptr) {
        ts.packed.reshape(g, *pack);
        continue;
      }
      if (rf) {
        if (ts.rf.cardinality() != n ||
            ts.rf.range_scale() != options.rf_range_scale) {
          ts.rf = bitmap::RangeFilteredBitmap(n, options.rf_range_scale);
        }
        AECNC_DCHECK(ts.rf.all_zero()) << "dirty cached RF bitmap";
      } else {
        if (ts.bitmap.cardinality() != n) ts.bitmap = bitmap::Bitmap(n);
        AECNC_DCHECK(ts.bitmap.all_zero()) << "dirty cached bitmap";
      }
    }
  }

 private:
  static util::Mutex& mutex() {
    // Held for the whole leased run; obs metric resolution (the global
    // registry lock) can happen under it, nothing else.
    // aecnc: acquired-before(Registry::mutex_)
    static util::Mutex m;
    return m;
  }
  static std::vector<ThreadState>& shared() {
    static std::vector<ThreadState> s;
    return s;
  }

  std::vector<ThreadState>* states_;
  std::vector<ThreadState> local_;
  bool owns_shared_ = false;
};

/// Flip the last source vertex's bits back to zero in every context. The
/// fine-grained drivers clear lazily on source change, so after the loop
/// each thread still holds prev_u's bits — harmless for one-shot states,
/// but cached contexts must hand the all-zero invariant to the next run.
void clear_residual_bitmaps(const graph::Csr& g, bool rf,
                            const intersect::PackedHubIndex* pack,
                            std::vector<ThreadState>& states, int threads) {
  if (pack != nullptr) {
    for (int t = 0; t < threads; ++t) {
      states[static_cast<std::size_t>(t)].packed.clear_source(g, *pack);
    }
    return;
  }
  for (int t = 0; t < threads; ++t) {
    ThreadState& ts = states[static_cast<std::size_t>(t)];
    if (ts.prev_u == kInvalidVertex) continue;
    if (rf) {
      ts.rf.clear_all(g.neighbors(ts.prev_u));
    } else {
      ts.bitmap.clear_all(g.neighbors(ts.prev_u));
    }
    ts.prev_u = kInvalidVertex;
  }
}

/// Coarse-grained skeleton (§4, task = one vertex computation): each
/// dynamically scheduled task owns all of one source vertex's forward
/// intersections, so BMP's bitmap is built exactly once per vertex and
/// load balance comes from |T| = 1 vertex per task.
CountArray count_parallel_coarse(const graph::Csr& g, const Options& options,
                                 int threads, std::vector<ThreadState>& states,
                                 const intersect::PackedHubIndex* pack) {
  CountArray cnt(g.num_directed_edges(), 0);
  const bool rf = options.algorithm == Algorithm::kBmp &&
                  options.bmp_range_filter && pack == nullptr;
  intersect::MpsConfig mps_cfg = options.mps;
  mps_cfg.prefetch = options.prefetch;
  mps_cfg.vb_prefetch = options.vb_prefetch;
  const Algorithm algo = options.algorithm;
  const bool pf = options.prefetch;
  const EdgeId* rev = g.reverse_offsets().data();

#pragma omp parallel num_threads(threads)
  {
    ThreadState& ts = states[static_cast<std::size_t>(omp_get_thread_num())];

#pragma omp for schedule(dynamic, 1)
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      const auto nbrs = g.neighbors(u);
      const EdgeId base = g.offset_begin(u);
      bool built = false;
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        const VertexId v = nbrs[k];
        if (u >= v) continue;
        const EdgeId e = base + static_cast<EdgeId>(k);
        // Pull the mirror slot's line in exclusive state while the
        // intersection computes; the store below then hits cache.
        if (pf) util::prefetch_rw(&cnt[rev[e]]);

        CnCount c = 0;
        switch (algo) {
          case Algorithm::kMergeBaseline:
            c = intersect::merge_count(nbrs, g.neighbors(v));
            break;
          case Algorithm::kMps:
            c = intersect::mps_count(nbrs, g.neighbors(v), mps_cfg);
            break;
          case Algorithm::kBmp:
            if (pack != nullptr) {
              // Lazy like the fine-grained drivers: the new source evicts
              // the previous one inside set_source; residuals clear after
              // the region.
              ts.packed.set_source(g, *pack, u);
              c = ts.packed.count(g, *pack, v, pf);
              break;
            }
            if (!built) {
              if (obs::enabled()) [[unlikely]] {
                obs::KernelMetrics::get().bitmap_builds.add();
              }
              if (rf) {
                ts.rf.set_all(nbrs);
              } else {
                ts.bitmap.set_all(nbrs);
              }
              built = true;
            }
            c = rf ? bitmap::rf_intersect_count(ts.rf, g.neighbors(v), pf)
                   : bitmap::bitmap_intersect_count(ts.bitmap, g.neighbors(v),
                                                    pf);
            break;
        }
        cnt[e] = c;
        AECNC_DCHECK(rev[e] == g.find_edge(v, u));
        cnt[rev[e]] = c;
      }
      if (built) {
        if (rf) {
          ts.rf.clear_all(nbrs);
        } else {
          ts.bitmap.clear_all(nbrs);
        }
      }
    }
  }
  if (pack != nullptr) {
    clear_residual_bitmaps(g, rf, pack, states, threads);
  }
  return cnt;
}

/// Algorithm 3 on the library's own task pool: identical per-task body,
/// scheduler swapped for the atomic-cursor queue.
CountArray count_parallel_pool(const graph::Csr& g, const Options& options,
                               int threads, std::vector<ThreadState>& states,
                               const intersect::PackedHubIndex* pack) {
  CountArray cnt(g.num_directed_edges(), 0);
  const bool is_bmp = options.algorithm == Algorithm::kBmp;
  const bool rf = is_bmp && options.bmp_range_filter && pack == nullptr;
  intersect::MpsConfig mps_cfg = options.mps;
  mps_cfg.prefetch = options.prefetch;
  mps_cfg.vb_prefetch = options.vb_prefetch;
  const Algorithm algo = options.algorithm;
  const bool pf = options.prefetch;
  const EdgeId* rev = g.reverse_offsets().data();

  parallel::parallel_for_dynamic(
      g.num_directed_edges(), std::max<std::uint32_t>(1, options.task_size),
      threads,
      [&](std::uint64_t begin, std::uint64_t end, int worker) {
        ThreadState& ts = states[static_cast<std::size_t>(worker)];
        for (EdgeId e = begin; e < end; ++e) {
          const VertexId v = g.dst_of(e);
          const VertexId u = find_src(g, e, ts.cached_src);
          if (u >= v) continue;
          if (pf) util::prefetch_rw(&cnt[rev[e]]);

          CnCount c = 0;
          switch (algo) {
            case Algorithm::kMergeBaseline:
              c = intersect::merge_count(g.neighbors(u), g.neighbors(v));
              break;
            case Algorithm::kMps:
              c = intersect::mps_count(g.neighbors(u), g.neighbors(v),
                                       mps_cfg);
              break;
            case Algorithm::kBmp:
              if (pack != nullptr) {
                ts.packed.set_source(g, *pack, u);
                c = ts.packed.count(g, *pack, v, pf);
                break;
              }
              if (ts.prev_u != u) {
                if (obs::enabled()) [[unlikely]] {
                  obs::KernelMetrics::get().bitmap_builds.add();
                }
                if (rf) {
                  if (ts.prev_u != kInvalidVertex) {
                    ts.rf.clear_all(g.neighbors(ts.prev_u));
                  }
                  ts.rf.set_all(g.neighbors(u));
                } else {
                  if (ts.prev_u != kInvalidVertex) {
                    ts.bitmap.clear_all(g.neighbors(ts.prev_u));
                  }
                  ts.bitmap.set_all(g.neighbors(u));
                }
                ts.prev_u = u;
              }
              c = rf ? bitmap::rf_intersect_count(ts.rf, g.neighbors(v), pf)
                     : bitmap::bitmap_intersect_count(ts.bitmap,
                                                      g.neighbors(v), pf);
              break;
          }
          cnt[e] = c;
          AECNC_DCHECK(rev[e] == g.find_edge(v, u));
          cnt[rev[e]] = c;
        }
      });
  if (is_bmp) clear_residual_bitmaps(g, rf, pack, states, threads);
  return cnt;
}

/// Algorithm 3 on OpenMP's dynamic scheduler over directed slots.
CountArray count_parallel_openmp(const graph::Csr& g, const Options& options,
                                 int threads, std::vector<ThreadState>& states,
                                 const intersect::PackedHubIndex* pack) {
  const EdgeId slots = g.num_directed_edges();
  CountArray cnt(slots, 0);
  const int chunk = static_cast<int>(
      std::max<std::uint32_t>(1, options.task_size));
  const bool is_bmp = options.algorithm == Algorithm::kBmp;
  const bool rf = is_bmp && options.bmp_range_filter && pack == nullptr;

  intersect::MpsConfig mps_cfg = options.mps;
  mps_cfg.prefetch = options.prefetch;
  mps_cfg.vb_prefetch = options.vb_prefetch;
  const Algorithm algo = options.algorithm;
  const bool pf = options.prefetch;
  const EdgeId* rev = g.reverse_offsets().data();

#pragma omp parallel num_threads(threads)
  {
    ThreadState& ts = states[static_cast<std::size_t>(omp_get_thread_num())];

#pragma omp for schedule(dynamic, chunk)
    for (EdgeId e = 0; e < slots; ++e) {
      const VertexId v = g.dst_of(e);
      const VertexId u = find_src(g, e, ts.cached_src);
      if (u >= v) continue;
      if (pf) util::prefetch_rw(&cnt[rev[e]]);

      CnCount c = 0;
      switch (algo) {
        case Algorithm::kMergeBaseline:
          c = intersect::merge_count(g.neighbors(u), g.neighbors(v));
          break;
        case Algorithm::kMps:
          c = intersect::mps_count(g.neighbors(u), g.neighbors(v), mps_cfg);
          break;
        case Algorithm::kBmp: {
          if (pack != nullptr) {
            ts.packed.set_source(g, *pack, u);
            c = ts.packed.count(g, *pack, v, pf);
            break;
          }
          if (ts.prev_u != u) {
            // Rebuild the thread-local index for the new source vertex
            // (each thread builds an index for a vertex at most once per
            // contiguous run of its edges, amortizing the cost).
            if (obs::enabled()) [[unlikely]] {
              obs::KernelMetrics::get().bitmap_builds.add();
            }
            if (rf) {
              if (ts.prev_u != kInvalidVertex) {
                ts.rf.clear_all(g.neighbors(ts.prev_u));
              }
              ts.rf.set_all(g.neighbors(u));
            } else {
              if (ts.prev_u != kInvalidVertex) {
                ts.bitmap.clear_all(g.neighbors(ts.prev_u));
              }
              ts.bitmap.set_all(g.neighbors(u));
            }
            ts.prev_u = u;
          }
          c = rf ? bitmap::rf_intersect_count(ts.rf, g.neighbors(v), pf)
                 : bitmap::bitmap_intersect_count(ts.bitmap, g.neighbors(v),
                                                  pf);
          break;
        }
      }

      cnt[e] = c;
      // Symmetric assignment: each (u,v) with u<v is owned by exactly one
      // task, so the write to the reverse slot is race-free. The slot
      // comes straight from the reverse index (no per-edge binary search);
      // find_edge stays on as the debug-build cross-check.
      AECNC_DCHECK(rev[e] == g.find_edge(v, u));
      cnt[rev[e]] = c;
    }
  }
  if (is_bmp) clear_residual_bitmaps(g, rf, pack, states, threads);
  return cnt;
}

}  // namespace

VertexId find_src(const graph::Csr& g, EdgeId e, VertexId& cached) {
  const auto& off = g.offsets();
  // Fast path: e still inside the stashed vertex's offset range. The
  // stash may be stale in every way — including out of range for this
  // graph, when a caller reuses contexts across graphs — so bound it
  // before indexing.
  if (static_cast<std::size_t>(cached) + 1 < off.size() &&
      e >= off[cached] && e < off[cached + 1]) {
    return cached;
  }
  // Slow path: first offset greater than e belongs to src+1. Zero-degree
  // vertices share offsets; upper_bound lands past all of them, on the
  // unique u with off[u] <= e < off[u+1].
  const auto it = std::upper_bound(off.begin(), off.end(), e);
  cached = static_cast<VertexId>((it - off.begin()) - 1);
  return cached;
}

CountArray count_parallel(const graph::Csr& g, const Options& options) {
  const EdgeId slots = g.num_directed_edges();
  if (slots == 0) return CountArray(slots, 0);

  const int threads = options.num_threads > 0 ? options.num_threads
                                              : omp_get_max_threads();
  // One shared read-only packed index for the run; per-thread PackedCounter
  // scratch lives in the leased contexts.
  std::unique_ptr<intersect::PackedHubIndex> pack_storage;
  const intersect::PackedHubIndex* pack = nullptr;
  if (options.algorithm == Algorithm::kBmp && options.bmp_packed) {
    pack_storage = std::make_unique<intersect::PackedHubIndex>(
        intersect::PackedHubIndex::build(g, options.pack_threshold));
    pack = pack_storage.get();
  }
  ContextLease lease(static_cast<std::size_t>(threads));
  lease.prepare(g, options, threads, pack);
  if (options.granularity == TaskGranularity::kCoarseGrained) {
    return count_parallel_coarse(g, options, threads, lease.states(), pack);
  }
  if (options.scheduler == Scheduler::kTaskPool) {
    return count_parallel_pool(g, options, threads, lease.states(), pack);
  }
  return count_parallel_openmp(g, options, threads, lease.states(), pack);
}

}  // namespace aecnc::core
