#include "core/parallel.hpp"

#include <omp.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "bitmap/bitmap.hpp"
#include "bitmap/range_filter.hpp"
#include "intersect/merge.hpp"
#include "parallel/task_pool.hpp"

namespace aecnc::core {
namespace {

/// Per-thread state, cache-line aligned to avoid false sharing between
/// adjacent threads' FindSrc caches.
struct alignas(64) ThreadState {
  VertexId cached_src = 0;
  VertexId prev_u = kInvalidVertex;  // pu_tls of Algorithm 3 line 19
  bitmap::Bitmap bitmap;
  bitmap::RangeFilteredBitmap rf;
};

}  // namespace

namespace {

/// Coarse-grained skeleton (§4, task = one vertex computation): each
/// dynamically scheduled task owns all of one source vertex's forward
/// intersections, so BMP's bitmap is built exactly once per vertex and
/// load balance comes from |T| = 1 vertex per task.
CountArray count_parallel_coarse(const graph::Csr& g, const Options& options,
                                 int threads) {
  CountArray cnt(g.num_directed_edges(), 0);
  const bool is_bmp = options.algorithm == Algorithm::kBmp;
  const bool rf = is_bmp && options.bmp_range_filter;
  const intersect::MpsConfig mps_cfg = options.mps;
  const Algorithm algo = options.algorithm;

  std::vector<ThreadState> states(static_cast<std::size_t>(threads));
  if (is_bmp) {
    for (ThreadState& ts : states) {
      if (rf) {
        ts.rf = bitmap::RangeFilteredBitmap(g.num_vertices(),
                                            options.rf_range_scale);
      } else {
        ts.bitmap = bitmap::Bitmap(g.num_vertices());
      }
    }
  }

#pragma omp parallel num_threads(threads)
  {
    ThreadState& ts = states[static_cast<std::size_t>(omp_get_thread_num())];

#pragma omp for schedule(dynamic, 1)
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      const auto nbrs = g.neighbors(u);
      const EdgeId base = g.offset_begin(u);
      bool built = false;
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        const VertexId v = nbrs[k];
        if (u >= v) continue;

        CnCount c = 0;
        switch (algo) {
          case Algorithm::kMergeBaseline:
            c = intersect::merge_count(nbrs, g.neighbors(v));
            break;
          case Algorithm::kMps:
            c = intersect::mps_count(nbrs, g.neighbors(v), mps_cfg);
            break;
          case Algorithm::kBmp:
            if (!built) {
              if (rf) {
                ts.rf.set_all(nbrs);
              } else {
                ts.bitmap.set_all(nbrs);
              }
              built = true;
            }
            c = rf ? bitmap::rf_intersect_count(ts.rf, g.neighbors(v))
                   : bitmap::bitmap_intersect_count(ts.bitmap, g.neighbors(v));
            break;
        }
        cnt[base + k] = c;
        cnt[g.find_edge(v, u)] = c;
      }
      if (built) {
        if (rf) {
          ts.rf.clear_all(nbrs);
        } else {
          ts.bitmap.clear_all(nbrs);
        }
      }
    }
  }
  return cnt;
}

/// Algorithm 3 on the library's own task pool: identical per-task body,
/// scheduler swapped for the atomic-cursor queue.
CountArray count_parallel_pool(const graph::Csr& g, const Options& options,
                               int threads) {
  CountArray cnt(g.num_directed_edges(), 0);
  const bool is_bmp = options.algorithm == Algorithm::kBmp;
  const bool rf = is_bmp && options.bmp_range_filter;
  const intersect::MpsConfig mps_cfg = options.mps;
  const Algorithm algo = options.algorithm;

  std::vector<ThreadState> states(static_cast<std::size_t>(threads));
  if (is_bmp) {
    for (ThreadState& ts : states) {
      if (rf) {
        ts.rf = bitmap::RangeFilteredBitmap(g.num_vertices(),
                                            options.rf_range_scale);
      } else {
        ts.bitmap = bitmap::Bitmap(g.num_vertices());
      }
    }
  }

  parallel::parallel_for_dynamic(
      g.num_directed_edges(), std::max<std::uint32_t>(1, options.task_size),
      threads,
      [&](std::uint64_t begin, std::uint64_t end, int worker) {
        ThreadState& ts = states[static_cast<std::size_t>(worker)];
        for (EdgeId e = begin; e < end; ++e) {
          const VertexId v = g.dst_of(e);
          const VertexId u = find_src(g, e, ts.cached_src);
          if (u >= v) continue;

          CnCount c = 0;
          switch (algo) {
            case Algorithm::kMergeBaseline:
              c = intersect::merge_count(g.neighbors(u), g.neighbors(v));
              break;
            case Algorithm::kMps:
              c = intersect::mps_count(g.neighbors(u), g.neighbors(v),
                                       mps_cfg);
              break;
            case Algorithm::kBmp:
              if (ts.prev_u != u) {
                if (rf) {
                  if (ts.prev_u != kInvalidVertex) {
                    ts.rf.clear_all(g.neighbors(ts.prev_u));
                  }
                  ts.rf.set_all(g.neighbors(u));
                } else {
                  if (ts.prev_u != kInvalidVertex) {
                    ts.bitmap.clear_all(g.neighbors(ts.prev_u));
                  }
                  ts.bitmap.set_all(g.neighbors(u));
                }
                ts.prev_u = u;
              }
              c = rf ? bitmap::rf_intersect_count(ts.rf, g.neighbors(v))
                     : bitmap::bitmap_intersect_count(ts.bitmap,
                                                      g.neighbors(v));
              break;
          }
          cnt[e] = c;
          cnt[g.find_edge(v, u)] = c;
        }
      });
  return cnt;
}

}  // namespace

VertexId find_src(const graph::Csr& g, EdgeId e, VertexId& cached) {
  const auto& off = g.offsets();
  // Fast path: e still inside the stashed vertex's offset range.
  if (e >= off[cached] && e < off[cached + 1]) return cached;
  // Slow path: first offset greater than e belongs to src+1. Zero-degree
  // vertices share offsets; upper_bound lands past all of them, on the
  // unique u with off[u] <= e < off[u+1].
  const auto it = std::upper_bound(off.begin(), off.end(), e);
  cached = static_cast<VertexId>((it - off.begin()) - 1);
  return cached;
}

CountArray count_parallel(const graph::Csr& g, const Options& options) {
  const EdgeId slots = g.num_directed_edges();
  CountArray cnt(slots, 0);
  if (slots == 0) return cnt;

  const int threads = options.num_threads > 0 ? options.num_threads
                                              : omp_get_max_threads();
  if (options.granularity == TaskGranularity::kCoarseGrained) {
    return count_parallel_coarse(g, options, threads);
  }
  if (options.scheduler == Scheduler::kTaskPool) {
    return count_parallel_pool(g, options, threads);
  }
  const int chunk = std::max<std::uint32_t>(1, options.task_size);
  const bool is_bmp = options.algorithm == Algorithm::kBmp;
  const bool rf = is_bmp && options.bmp_range_filter;

  std::vector<ThreadState> states(static_cast<std::size_t>(threads));
  if (is_bmp) {
    // The paper allocates one |V|-bit bitmap per execution context up
    // front; lazy per-thread allocation would serialize on the first
    // touched pages instead.
    for (ThreadState& ts : states) {
      if (rf) {
        ts.rf = bitmap::RangeFilteredBitmap(g.num_vertices(),
                                            options.rf_range_scale);
      } else {
        ts.bitmap = bitmap::Bitmap(g.num_vertices());
      }
    }
  }

  const intersect::MpsConfig mps_cfg = options.mps;
  const Algorithm algo = options.algorithm;

#pragma omp parallel num_threads(threads)
  {
    ThreadState& ts = states[static_cast<std::size_t>(omp_get_thread_num())];

#pragma omp for schedule(dynamic, chunk)
    for (EdgeId e = 0; e < slots; ++e) {
      const VertexId v = g.dst_of(e);
      const VertexId u = find_src(g, e, ts.cached_src);
      if (u >= v) continue;

      CnCount c = 0;
      switch (algo) {
        case Algorithm::kMergeBaseline:
          c = intersect::merge_count(g.neighbors(u), g.neighbors(v));
          break;
        case Algorithm::kMps:
          c = intersect::mps_count(g.neighbors(u), g.neighbors(v), mps_cfg);
          break;
        case Algorithm::kBmp: {
          if (ts.prev_u != u) {
            // Rebuild the thread-local index for the new source vertex
            // (each thread builds an index for a vertex at most once per
            // contiguous run of its edges, amortizing the cost).
            if (rf) {
              if (ts.prev_u != kInvalidVertex) {
                ts.rf.clear_all(g.neighbors(ts.prev_u));
              }
              ts.rf.set_all(g.neighbors(u));
            } else {
              if (ts.prev_u != kInvalidVertex) {
                ts.bitmap.clear_all(g.neighbors(ts.prev_u));
              }
              ts.bitmap.set_all(g.neighbors(u));
            }
            ts.prev_u = u;
          }
          c = rf ? bitmap::rf_intersect_count(ts.rf, g.neighbors(v))
                 : bitmap::bitmap_intersect_count(ts.bitmap, g.neighbors(v));
          break;
        }
      }

      cnt[e] = c;
      // Symmetric assignment: each (u,v) with u<v is owned by exactly one
      // task, so the write to the reverse slot is race-free.
      cnt[g.find_edge(v, u)] = c;
    }
  }
  return cnt;
}

}  // namespace aecnc::core
