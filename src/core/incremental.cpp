#include "core/incremental.hpp"

#include <algorithm>
#include <cassert>

#include "core/api.hpp"
#include "core/sequential.hpp"

namespace aecnc::core {

IncrementalCounter::IncrementalCounter(const graph::Csr& g) {
  adjacency_.resize(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    adjacency_[u].assign(nbrs.begin(), nbrs.end());
  }
  edges_ = g.num_undirected_edges();
  // Seed the per-edge counts from the batch MPS kernel (reverse-index
  // symmetric assignment, skew-aware intersections) instead of a
  // vector-allocating set_intersection per edge — the CSR is still at
  // hand here, so the whole seed pass is one all-edge count.
  seed_counts(g, count_sequential_mps(g, {}));
}

void IncrementalCounter::seed_counts(const graph::Csr& g,
                                     const CountArray& cnt) {
  counts_.clear();
  triangles_ = 0;
  counts_.reserve(edges_);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeId base = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId v = nbrs[k];
      if (u >= v) continue;
      const CnCount c = cnt[base + static_cast<EdgeId>(k)];
      counts_.emplace(key(u, v), c);
      triangles_ += c;
    }
  }
  triangles_ /= 3;  // each triangle was seen from all 3 of its edges
}

void IncrementalCounter::recount(const Options& options) {
  const graph::Csr g = to_csr();
  seed_counts(g, count_common_neighbors(g, options));
}

BatchApplyStats IncrementalCounter::apply_batch(std::span<const EdgeOp> ops) {
  BatchApplyStats stats;
  for (const EdgeOp& op : ops) {
    const bool applied = op.kind == EdgeOpKind::kInsert
                             ? add_edge(op.u, op.v)
                             : remove_edge(op.u, op.v);
    if (!applied) {
      ++stats.noops;
    } else if (op.kind == EdgeOpKind::kInsert) {
      ++stats.inserted;
    } else {
      ++stats.erased;
    }
  }
  return stats;
}

BatchApplyStats IncrementalCounter::apply_batch_structural(
    std::span<const EdgeOp> ops) {
  BatchApplyStats stats;
  for (const EdgeOp& op : ops) {
    const bool applied = op.kind == EdgeOpKind::kInsert ? link(op.u, op.v)
                                                        : unlink(op.u, op.v);
    if (!applied) {
      ++stats.noops;
    } else if (op.kind == EdgeOpKind::kInsert) {
      ++stats.inserted;
    } else {
      ++stats.erased;
    }
  }
  return stats;
}

void IncrementalCounter::ensure_vertex(VertexId v) {
  if (v >= adjacency_.size()) adjacency_.resize(static_cast<std::size_t>(v) + 1);
}

std::span<const VertexId> IncrementalCounter::neighbors(VertexId u) const {
  if (u >= adjacency_.size()) return {};
  return adjacency_[u];
}

bool IncrementalCounter::has_edge(VertexId u, VertexId v) const {
  if (u >= adjacency_.size()) return false;
  const auto& nbrs = adjacency_[u];
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::optional<CnCount> IncrementalCounter::count(VertexId u, VertexId v) const {
  const auto it = counts_.find(key(u, v));
  if (it == counts_.end()) return std::nullopt;
  return it->second;
}

std::vector<VertexId> IncrementalCounter::common_neighbors(VertexId u,
                                                           VertexId v) const {
  std::vector<VertexId> out;
  const auto& a = adjacency_[u];
  const auto& b = adjacency_[v];
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

void IncrementalCounter::bump(VertexId a, VertexId b, int delta) {
  const auto it = counts_.find(key(a, b));
  assert(it != counts_.end() && "adjusted pair must be an edge");
  it->second = static_cast<CnCount>(static_cast<std::int64_t>(it->second) +
                                    delta);
}

bool IncrementalCounter::link(VertexId u, VertexId v) {
  if (u == v) return false;
  ensure_vertex(std::max(u, v));
  if (has_edge(u, v)) return false;

  auto insert_sorted = [](std::vector<VertexId>& nbrs, VertexId x) {
    nbrs.insert(std::lower_bound(nbrs.begin(), nbrs.end(), x), x);
  };
  insert_sorted(adjacency_[u], v);
  insert_sorted(adjacency_[v], u);
  ++edges_;
  return true;
}

bool IncrementalCounter::unlink(VertexId u, VertexId v) {
  if (u == v || !has_edge(u, v)) return false;
  auto erase_sorted = [](std::vector<VertexId>& nbrs, VertexId x) {
    nbrs.erase(std::lower_bound(nbrs.begin(), nbrs.end(), x));
  };
  erase_sorted(adjacency_[u], v);
  erase_sorted(adjacency_[v], u);
  --edges_;
  return true;
}

bool IncrementalCounter::add_edge(VertexId u, VertexId v) {
  if (!link(u, v)) return false;

  // The new pair's own count, and +1 on both incident edges of every
  // common neighbor (each common neighbor closes one new triangle).
  const auto common = common_neighbors(u, v);
  counts_.emplace(key(u, v), static_cast<CnCount>(common.size()));
  for (const VertexId w : common) {
    bump(u, w, +1);
    bump(v, w, +1);
  }
  triangles_ += common.size();
  return true;
}

bool IncrementalCounter::remove_edge(VertexId u, VertexId v) {
  if (u == v || !has_edge(u, v)) return false;

  // Inverse of add_edge: adjust the incident edges of every common
  // neighbor while (u, v) is still present, then drop it.
  const auto common = common_neighbors(u, v);
  for (const VertexId w : common) {
    bump(u, w, -1);
    bump(v, w, -1);
  }
  triangles_ -= common.size();
  counts_.erase(key(u, v));
  unlink(u, v);
  return true;
}

graph::Csr IncrementalCounter::to_csr() const {
  graph::EdgeList edges(num_vertices());
  for (VertexId u = 0; u < adjacency_.size(); ++u) {
    for (const VertexId v : adjacency_[u]) {
      if (u < v) edges.add(u, v);
    }
  }
  return graph::Csr::from_edge_list(std::move(edges));
}

}  // namespace aecnc::core
