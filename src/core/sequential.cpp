#include "core/sequential.hpp"

#include "bitmap/bitmap.hpp"
#include "bitmap/range_filter.hpp"
#include "check/check.hpp"
#include "intersect/merge.hpp"
#include "intersect/packed_index.hpp"
#include "obs/catalog.hpp"

namespace aecnc::core {
namespace {

/// Symmetric assignment: cnt[e(v,u)] <- cnt[e(u,v)]. The paper locates
/// e(v,u) by binary search of u in N(v) (§3); we use the precomputed
/// reverse-slot index instead — a single indexed store — and keep the
/// binary search as a debug-build differential check.
inline void assign_symmetric(const graph::Csr& g, const EdgeId* rev,
                             CountArray& cnt, VertexId u, VertexId v,
                             EdgeId euv) {
  const EdgeId evu = rev[euv];
  AECNC_DCHECK(evu == g.find_edge(v, u))
      << "reverse index disagrees with find_edge at e(" << u << "," << v << ")";
  cnt[evu] = cnt[euv];
}

/// Shared driver: applies `intersect(u, v)` to every u < v edge and
/// mirrors the result.
template <typename IntersectFn>
CountArray for_each_forward_edge(const graph::Csr& g, IntersectFn&& intersect) {
  CountArray cnt(g.num_directed_edges(), 0);
  const EdgeId* rev = g.reverse_offsets().data();
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeId begin = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId v = nbrs[k];
      if (u >= v) continue;
      const EdgeId euv = begin + k;
      cnt[euv] = intersect(u, v);
      assign_symmetric(g, rev, cnt, u, v, euv);
    }
  }
  return cnt;
}

template <typename Counter>
CountArray run_m(const graph::Csr& g, Counter& counter) {
  return for_each_forward_edge(g, [&](VertexId u, VertexId v) {
    counter.intersection();
    counter.bytes_streamed(
        (g.neighbors(u).size() + g.neighbors(v).size()) * sizeof(VertexId));
    return intersect::merge_count(g.neighbors(u), g.neighbors(v), counter);
  });
}

template <typename Counter>
CountArray run_bmp(const graph::Csr& g, bool range_filter, std::uint64_t scale,
                   Counter& counter, bool prefetch = true) {
  CountArray cnt(g.num_directed_edges(), 0);
  const EdgeId* rev = g.reverse_offsets().data();
  const std::uint64_t n = g.num_vertices();

  // One bitmap for the whole sequential run; constructed and cleared per
  // vertex computation (Algorithm 2 lines 2-9).
  bitmap::Bitmap plain(range_filter ? 0 : n);
  bitmap::RangeFilteredBitmap filtered(range_filter ? n : 0, scale);

  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nu = g.neighbors(u);
    bool built = false;
    const EdgeId begin = g.offset_begin(u);
    for (std::size_t k = 0; k < nu.size(); ++k) {
      const VertexId v = nu[k];
      if (u >= v) continue;
      if (!built) {
        // Lazy build: vertices with no forward edge skip construction.
        if (obs::enabled()) [[unlikely]] {
          obs::KernelMetrics::get().bitmap_builds.add();
        }
        if (range_filter) {
          filtered.set_all(nu);
        } else {
          plain.set_all(nu);
        }
        counter.bitmap_set(nu.size());
        counter.bytes_streamed(nu.size() * sizeof(VertexId));
        built = true;
      }
      counter.intersection();
      const auto nv = g.neighbors(v);
      counter.bytes_streamed(nv.size() * sizeof(VertexId));
      const EdgeId euv = begin + k;
      cnt[euv] =
          range_filter
              ? bitmap::rf_intersect_count(filtered, nv, counter, prefetch)
              : bitmap::bitmap_intersect_count(plain, nv, counter, prefetch);
      assign_symmetric(g, rev, cnt, u, v, euv);
    }
    if (built) {
      if (range_filter) {
        filtered.clear_all(nu);
      } else {
        plain.clear_all(nu);
      }
      counter.bitmap_set(nu.size());
    }
  }
  return cnt;
}

}  // namespace

CountArray count_sequential_m(const graph::Csr& g) {
  intersect::NullCounter null;
  return run_m(g, null);
}

CountArray count_sequential_mps(const graph::Csr& g,
                                const intersect::MpsConfig& cfg) {
  return for_each_forward_edge(g, [&](VertexId u, VertexId v) {
    return intersect::mps_count(g.neighbors(u), g.neighbors(v), cfg);
  });
}

CountArray count_sequential_bmp_packed(const graph::Csr& g,
                                       VertexId pack_threshold,
                                       bool prefetch) {
  const auto index = intersect::PackedHubIndex::build(g, pack_threshold);
  return count_sequential_bmp_packed(g, index, prefetch);
}

CountArray count_sequential_bmp_packed(const graph::Csr& g,
                                       const intersect::PackedHubIndex& index,
                                       bool prefetch) {
  return intersect::packed_count_all_edges(g, index, prefetch);
}

CountArray count_sequential_bmp(const graph::Csr& g, bool range_filter,
                                std::uint64_t rf_scale, bool prefetch) {
  if (obs::enabled()) [[unlikely]] {
    // The sequential driver feeds its counter straight into the kernels,
    // so route through the instrumented twin and flush the work profile
    // into the obs registry in one shot.
    intersect::StatsCounter sc;
    CountArray cnt = run_bmp(g, range_filter, rf_scale, sc, prefetch);
    const obs::KernelMetrics& m = obs::KernelMetrics::get();
    m.bitmap_sets.add(sc.bitmap_sets);
    m.bitmap_probes.add(sc.bitmap_probes);
    m.bitmap_matches.add(sc.matches);
    m.rf_probes.add(sc.rf_probes);
    m.rf_skips.add(sc.rf_skips);
    return cnt;
  }
  intersect::NullCounter null;
  return run_bmp(g, range_filter, rf_scale, null, prefetch);
}

CountArray count_sequential_m_instrumented(const graph::Csr& g,
                                           intersect::StatsCounter& stats) {
  return run_m(g, stats);
}

CountArray count_sequential_mps_instrumented(const graph::Csr& g,
                                             const intersect::MpsConfig& cfg,
                                             intersect::StatsCounter& stats) {
  return for_each_forward_edge(g, [&](VertexId u, VertexId v) {
    return intersect::mps_count_instrumented(g.neighbors(u), g.neighbors(v),
                                             cfg, stats);
  });
}

CountArray count_sequential_bmp_instrumented(const graph::Csr& g,
                                             bool range_filter,
                                             std::uint64_t rf_scale,
                                             intersect::StatsCounter& stats) {
  return run_bmp(g, range_filter, rf_scale, stats);
}

}  // namespace aecnc::core
