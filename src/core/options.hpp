// Public configuration for the all-edge common neighbor counting API.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "intersect/dispatch.hpp"
#include "util/types.hpp"

namespace aecnc::core {

/// The algorithm families studied in the paper.
enum class Algorithm {
  kMergeBaseline,  // "M": plain two-pointer merge, no skew handling (§5.2)
  kMps,            // merge-based pivot-skip hybrid (Algorithm 1)
  kBmp,            // dynamic bitmap index (Algorithm 2)
};

[[nodiscard]] constexpr std::string_view algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kMergeBaseline: return "M";
    case Algorithm::kMps: return "MPS";
    case Algorithm::kBmp: return "BMP";
  }
  return "?";
}

/// Task granularity for the parallel skeleton (§4): fine-grained tasks
/// group |T| single-edge intersections (the CPU/KNL choice); coarse-
/// grained tasks take one vertex's d_u intersections as the unit (the
/// GPU choice, also available on the CPU for the ablation bench).
enum class TaskGranularity {
  kFineGrained,
  kCoarseGrained,
};

/// Which dynamic scheduler executes the fine-grained tasks: OpenMP's
/// schedule(dynamic, |T|) or the library's own atomic-cursor pool
/// (src/parallel/task_pool.hpp). Results are identical; the ablation
/// bench compares their queue overheads.
enum class Scheduler {
  kOpenMp,
  kTaskPool,
};

struct Options {
  Algorithm algorithm = Algorithm::kMps;

  /// MPS knobs: skew threshold t (paper: 50) and the VB kernel.
  intersect::MpsConfig mps{};

  /// BMP knobs: range filtering (paper §4.3) and its summary ratio.
  bool bmp_range_filter = false;
  std::uint64_t rf_range_scale = 4096;

  /// Packed hub index (intersect/packed_index.hpp): for kBmp, intersect
  /// sub-threshold neighbors via (block-id, word) popcounts and only the
  /// tail via |V|-bit bitmap probes. Pays off after a degree-descending
  /// relabel (`relabel`), which concentrates hubs below the threshold.
  /// Supersedes bmp_range_filter when set (the packed head already skips
  /// the probes RF would have filtered).
  bool bmp_packed = false;
  std::uint32_t pack_threshold = 32768;

  /// Relabel vertices by descending degree before counting and translate
  /// the counts back to the caller's slot order afterwards (the
  /// graph::IdMap seam). Output is bit-identical either way; the relabel
  /// buys BMP its complexity bound and the packed index its hub range.
  bool relabel = false;

  /// Software prefetching in the skew-sensitive kernels (AECNC_PREFETCH):
  /// galloping probe targets in pivot-skip, upcoming block pairs in the
  /// VB kernels, and bitmap words for upcoming neighbors in the BMP inner
  /// loop. On by default; the ablation benches toggle it off to measure
  /// the contribution (see docs/perf.md).
  bool prefetch = true;

  /// Prefetch inside the VB merge kernels specifically. Default off:
  /// BENCH_hotpath showed the hints are a small regression on the
  /// already-sequential VB access pattern (docs/perf.md §2). Independent
  /// of the master `prefetch` switch above.
  bool vb_prefetch = false;

  /// Sharded execution (src/shard/): > 0 routes the run through the
  /// 2D-partitioned message-passing engine with this many shard workers,
  /// overriding `parallel`. 0 (default) keeps the single-address-space
  /// drivers.
  int num_shards = 0;

  /// Parallelization (Algorithm 3): OpenMP dynamic scheduling with
  /// |T| = task_size edges per task. num_threads == 0 uses the OpenMP
  /// default. parallel == false runs the sequential reference loops.
  bool parallel = true;
  int num_threads = 0;
  std::uint32_t task_size = 1024;
  TaskGranularity granularity = TaskGranularity::kFineGrained;
  Scheduler scheduler = Scheduler::kOpenMp;
};

/// The output: one count per directed CSR slot (cnt[e(u,v)] for all 2|E|
/// slots, symmetric in (u, v)).
using CountArray = std::vector<CnCount>;

}  // namespace aecnc::core
