// Public configuration for the all-edge common neighbor counting API.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "intersect/dispatch.hpp"
#include "util/types.hpp"

namespace aecnc::core {

/// The algorithm families studied in the paper.
enum class Algorithm {
  kMergeBaseline,  // "M": plain two-pointer merge, no skew handling (§5.2)
  kMps,            // merge-based pivot-skip hybrid (Algorithm 1)
  kBmp,            // dynamic bitmap index (Algorithm 2)
};

[[nodiscard]] constexpr std::string_view algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kMergeBaseline: return "M";
    case Algorithm::kMps: return "MPS";
    case Algorithm::kBmp: return "BMP";
  }
  return "?";
}

/// Task granularity for the parallel skeleton (§4): fine-grained tasks
/// group |T| single-edge intersections (the CPU/KNL choice); coarse-
/// grained tasks take one vertex's d_u intersections as the unit (the
/// GPU choice, also available on the CPU for the ablation bench).
enum class TaskGranularity {
  kFineGrained,
  kCoarseGrained,
};

/// Which dynamic scheduler executes the fine-grained tasks: OpenMP's
/// schedule(dynamic, |T|) or the library's own atomic-cursor pool
/// (src/parallel/task_pool.hpp). Results are identical; the ablation
/// bench compares their queue overheads.
enum class Scheduler {
  kOpenMp,
  kTaskPool,
};

struct Options {
  Algorithm algorithm = Algorithm::kMps;

  /// MPS knobs: skew threshold t (paper: 50) and the VB kernel.
  intersect::MpsConfig mps{};

  /// BMP knobs: range filtering (paper §4.3) and its summary ratio.
  bool bmp_range_filter = false;
  std::uint64_t rf_range_scale = 4096;

  /// Software prefetching in the skew-sensitive kernels (AECNC_PREFETCH):
  /// galloping probe targets in pivot-skip, upcoming block pairs in the
  /// VB kernels, and bitmap words for upcoming neighbors in the BMP inner
  /// loop. On by default; the ablation benches toggle it off to measure
  /// the contribution (see docs/perf.md).
  bool prefetch = true;

  /// Sharded execution (src/shard/): > 0 routes the run through the
  /// 2D-partitioned message-passing engine with this many shard workers,
  /// overriding `parallel`. 0 (default) keeps the single-address-space
  /// drivers.
  int num_shards = 0;

  /// Parallelization (Algorithm 3): OpenMP dynamic scheduling with
  /// |T| = task_size edges per task. num_threads == 0 uses the OpenMP
  /// default. parallel == false runs the sequential reference loops.
  bool parallel = true;
  int num_threads = 0;
  std::uint32_t task_size = 1024;
  TaskGranularity granularity = TaskGranularity::kFineGrained;
  Scheduler scheduler = Scheduler::kOpenMp;
};

/// The output: one count per directed CSR slot (cnt[e(u,v)] for all 2|E|
/// slots, symmetric in (u, v)).
using CountArray = std::vector<CnCount>;

}  // namespace aecnc::core
