// aecnc public API.
//
// Typical use:
//
//   #include "core/api.hpp"
//
//   aecnc::graph::Csr g = aecnc::graph::Csr::from_edge_list(edges);
//   aecnc::core::Options opt;             // MPS, parallel, t = 50
//   auto counts = aecnc::core::count_common_neighbors(g, opt);
//   // counts[e] == |N(u) ∩ N(v)| for the directed CSR slot e = e(u,v)
//
// For BMP at its stated O(min(d_u, d_v)) complexity, run on a
// degree-descending-reordered graph or use count_with_reorder(), which
// reorders internally and maps the counts back to the caller's CSR slots.
#pragma once

#include "core/options.hpp"
#include "graph/csr.hpp"
#include "intersect/counters.hpp"

namespace aecnc::core {

/// All-edge common neighbor counting on `g` as configured by `options`.
/// Returns one count per directed CSR slot of `g`.
[[nodiscard]] CountArray count_common_neighbors(const graph::Csr& g,
                                                const Options& options = {});

/// Reorder by descending degree, count on the reordered graph, and
/// translate the counts back into `g`'s slot order. This is the paper's
/// full BMP pipeline (reorder cost is O(|V| log |V| + |E|), §2.1).
[[nodiscard]] CountArray count_with_reorder(const graph::Csr& g,
                                            const Options& options = {});

/// Sequential instrumented run collecting the work profile used by the
/// perf models (src/perf). Counts are identical to the uninstrumented
/// run; `stats` receives the kernel-operation totals.
[[nodiscard]] CountArray count_instrumented(const graph::Csr& g,
                                            const Options& options,
                                            intersect::StatsCounter& stats);

/// Number of triangles in g (via Σ cnt / 6).
[[nodiscard]] std::uint64_t triangle_count(const graph::Csr& g,
                                           const Options& options = {});

}  // namespace aecnc::core
