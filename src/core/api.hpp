// aecnc public API.
//
// Batch flow (one-shot, all edges):
//
//   #include "core/api.hpp"
//
//   aecnc::graph::Csr g = aecnc::graph::Csr::from_edge_list(edges);
//   aecnc::core::Options opt;             // MPS, parallel, t = 50
//   auto counts = aecnc::core::count_common_neighbors(g, opt);
//   // counts[e] == |N(u) ∩ N(v)| for the directed CSR slot e = e(u,v)
//
// For BMP at its stated O(min(d_u, d_v)) complexity, run on a
// degree-descending-reordered graph or use count_with_reorder(), which
// reorders internally and maps the counts back to the caller's CSR slots.
//
// Query-service flow (long-lived, point/batch queries): when the graph
// outlives a single run and callers issue individual edge or
// neighborhood queries — link prediction, SCAN-style clustering — embed
// the serve layer instead of recounting per request:
//
//   #include "serve/service.hpp"
//
//   aecnc::serve::Service svc;
//   svc.publish(std::move(g));              // snapshot epoch 1
//   auto r = svc.query_edge(u, v);          // cached point query
//   auto b = svc.query_batch(pairs);        // coalesced bulk batch
//   svc.publish(updated);                   // epoch 2; cache invalidated
//
// count_edge/count_vertex below are the stateless single-shot
// equivalents the service builds on. Architecture, epoch semantics, and
// cache/backpressure rules: docs/serving.md.
#pragma once

#include "core/options.hpp"
#include "graph/csr.hpp"
#include "intersect/counters.hpp"

namespace aecnc::core {

/// All-edge common neighbor counting on `g` as configured by `options`.
/// Returns one count per directed CSR slot of `g`.
[[nodiscard]] CountArray count_common_neighbors(const graph::Csr& g,
                                                const Options& options = {});

/// Reorder by descending degree, count on the reordered graph, and
/// translate the counts back into `g`'s slot order. This is the paper's
/// full BMP pipeline (reorder cost is O(|V| log |V| + |E|), §2.1).
[[nodiscard]] CountArray count_with_reorder(const graph::Csr& g,
                                            const Options& options = {});

/// Sequential instrumented run collecting the work profile used by the
/// perf models (src/perf). Counts are identical to the uninstrumented
/// run; `stats` receives the kernel-operation totals.
[[nodiscard]] CountArray count_instrumented(const graph::Csr& g,
                                            const Options& options,
                                            intersect::StatsCounter& stats);

/// Point query: |N(u) ∩ N(v)| for one vertex pair, via the MPS dispatch
/// configured in `options.mps`. The pair need not be an edge (link
/// prediction queries candidate pairs). Returns 0 for u == v or
/// out-of-range ids.
[[nodiscard]] CnCount count_edge(const graph::Csr& g, VertexId u, VertexId v,
                                 const Options& options = {});

/// Neighborhood query: counts for every slot of u's adjacency, i.e. the
/// slice cnt[off[u] : off[u+1]) of the all-edge result. Empty for
/// out-of-range u. Sequential; the serve layer parallelizes this shape
/// across its worker pool.
[[nodiscard]] CountArray count_vertex(const graph::Csr& g, VertexId u,
                                      const Options& options = {});

/// Number of triangles in g (via Σ cnt / 6).
[[nodiscard]] std::uint64_t triangle_count(const graph::Csr& g,
                                           const Options& options = {});

}  // namespace aecnc::core
