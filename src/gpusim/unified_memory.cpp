#include "gpusim/unified_memory.hpp"

#include <algorithm>
#include <cassert>

namespace aecnc::gpusim {

UnifiedMemory::UnifiedMemory(std::uint64_t device_bytes,
                             std::uint64_t page_bytes)
    : page_bytes_(page_bytes),
      capacity_pages_(std::max<std::uint64_t>(1, device_bytes / page_bytes)) {}

std::uint64_t UnifiedMemory::allocate(std::string name, std::uint64_t bytes) {
  // Page-align every region so touches of one region never fault a
  // neighbor's pages.
  const std::uint64_t base = next_addr_;
  const std::uint64_t aligned =
      (bytes + page_bytes_ - 1) / page_bytes_ * page_bytes_;
  next_addr_ += aligned;
  resident_.resize(next_addr_ / page_bytes_, 0);
  last_fault_epoch_.resize(next_addr_ / page_bytes_, 0);
  regions_.push_back({std::move(name), base, bytes});
  return base;
}

void UnifiedMemory::touch(std::uint64_t addr, std::uint64_t bytes) {
  ++stats_.touches;
  if (bytes == 0) return;
  assert(addr + bytes <= next_addr_);
  const std::uint64_t first = addr / page_bytes_;
  const std::uint64_t last = (addr + bytes - 1) / page_bytes_;
  for (std::uint64_t page = first; page <= last; ++page) {
    if (resident_[page] == 0) {
      fault_in(page);
    } else {
      resident_[page] = 2;  // referenced: second chance on eviction
    }
  }
}

void UnifiedMemory::fault_in(std::uint64_t page) {
  while (resident_count_ >= capacity_pages_) {
    // Second-chance victim selection: referenced pages get requeued once,
    // so streamed-once data is evicted before the pass's working set.
    assert(!clock_.empty());
    const std::uint64_t victim = clock_.front();
    clock_.pop_front();
    if (resident_[victim] == 2) {
      resident_[victim] = 1;
      clock_.push_back(victim);
    } else if (resident_[victim] == 1) {
      resident_[victim] = 0;
      --resident_count_;
      ++stats_.evictions;
    }
    // Stale entries (already evicted) are skipped.
  }
  resident_[page] = 1;
  ++resident_count_;
  clock_.push_back(page);
  ++stats_.faults;
  stats_.migrated_bytes += page_bytes_;
  stats_.resident_peak = std::max(stats_.resident_peak, resident_count_);
  if (last_fault_epoch_[page] == epoch_) ++stats_.refaults;
  last_fault_epoch_[page] = epoch_;
}

void UnifiedMemory::evict_all() {
  std::fill(resident_.begin(), resident_.end(), std::uint8_t{0});
  clock_.clear();
  resident_count_ = 0;
}

}  // namespace aecnc::gpusim
