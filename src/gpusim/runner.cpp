#include "gpusim/runner.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/timer.hpp"

namespace aecnc::gpusim {
namespace {

/// Host side of Algorithm 4 without co-processing: locate every reverse
/// slot by binary search and copy the count. Returns elapsed seconds.
double post_process_no_cp(const graph::Csr& g, core::CountArray& cnt) {
  util::WallTimer timer;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeId base = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId v = nbrs[k];
      if (u > v) cnt[base + k] = cnt[g.find_edge(v, u)];
    }
  }
  return timer.seconds();
}

/// AssignOffsetsOnCPU (Algorithm 4 lines 5-7): store the forward slot
/// index into each reverse slot. Runs concurrently with the kernels on
/// the real hardware; here it executes between kernels and its time is
/// reported as overlap_seconds.
double assign_offsets(const graph::Csr& g, core::CountArray& cnt) {
  util::WallTimer timer;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeId base = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId v = nbrs[k];
      if (u < v) {
        const EdgeId reverse = g.find_edge(v, u);
        assert(base + k <= ~CnCount{0});
        cnt[reverse] = static_cast<CnCount>(base + k);
      }
    }
  }
  return timer.seconds();
}

/// Final symmetric assignment with co-processing (Algorithm 4 line 4):
/// cnt[e(u,v)] <- cnt[cnt[e(u,v)]] for u > v — a straight dependent copy,
/// no searches. Returns elapsed seconds.
double post_process_cp(const graph::Csr& g, core::CountArray& cnt) {
  util::WallTimer timer;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeId base = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (u > nbrs[k]) cnt[base + k] = cnt[cnt[base + k]];
    }
  }
  return timer.seconds();
}

}  // namespace

int estimate_passes(std::uint64_t csr_bytes, std::uint64_t global_bytes,
                    std::uint64_t reserved_bytes,
                    std::uint64_t bitmap_pool_bytes) {
  const std::uint64_t spent = reserved_bytes + bitmap_pool_bytes;
  if (spent >= global_bytes) {
    throw std::invalid_argument(
        "gpusim: reserved + bitmap pool exceed device memory");
  }
  const std::uint64_t usable = global_bytes - spent;
  return static_cast<int>((csr_bytes + usable - 1) / usable);
}

double model_kernel_seconds(const perf::GpuSpec& spec, const Occupancy& occ,
                            const KernelStats& stats) {
  const double bw = spec.global_bw_gbs * 1e9;

  // Bandwidth term over all global transactions.
  const double bytes =
      32.0 * static_cast<double>(stats.load_transactions +
                                 stats.store_transactions);
  double mem_seconds = bytes / bw;

  // Latency hiding: the device needs enough in-flight transactions per SM
  // to cover global latency. At full occupancy a TITAN Xp-class chip
  // sustains its bandwidth; below that, effective bandwidth degrades
  // linearly with active warps.
  const double needed_inflight_per_sm =
      (bw / spec.num_sms) * (spec.global_latency_ns * 1e-9) / 32.0;
  constexpr double kInflightPerWarp = 8.0;  // outstanding loads per warp
  const double have_inflight =
      static_cast<double>(occ.active_warps_per_sm) * kInflightPerWarp;
  const double bw_fraction =
      std::min(1.0, have_inflight / needed_inflight_per_sm);
  mem_seconds /= std::max(bw_fraction, 1e-3);

  // PS kernel's dependent gather chains: each serial step pays full
  // latency, and the irregular control flow diverges the warp, so only
  // about one lane per warp makes progress at a time (§4.2.1: "the
  // warp-level parallelism cannot be exploited").
  const double active_threads = static_cast<double>(occ.active_warps_per_sm) *
                                spec.warp_size * spec.num_sms;
  const double serial_seconds = static_cast<double>(stats.serial_steps) *
                                (spec.global_latency_ns * 1e-9) /
                                std::max(1.0, active_threads / 32.0);

  // Lockstep compute (merge steps, probes, reductions, atomics): one
  // warp instruction each, across all SMs' schedulers.
  const double issue_rate =
      spec.freq_ghz * 1e9 * spec.num_sms * 2.0;  // 2 warp instr/cycle/SM
  const double compute_seconds =
      static_cast<double>(stats.warp_steps + stats.shuffle_ops +
                          stats.atomic_ops + stats.shared_load_ops) /
      issue_rate;

  return std::max(mem_seconds + serial_seconds, compute_seconds);
}

GpuRunResult run_gpu(const graph::Csr& g, const GpuRunConfig& config) {
  GpuRunResult result;
  result.occupancy = compute_occupancy(config.spec, config.launch);

  const bool is_bmp = config.algorithm == core::Algorithm::kBmp;
  if (!is_bmp && config.algorithm != core::Algorithm::kMps) {
    throw std::invalid_argument("gpusim: algorithm must be MPS or BMP");
  }

  // Bitmap pool (BMP only): one bitmap per concurrently resident block,
  // allocated with cudaMalloc outside unified memory (§4.2).
  const std::uint64_t bitmap_bytes = (g.num_vertices() + 63) / 64 * 8;
  result.num_bitmaps = is_bmp ? result.occupancy.concurrent_blocks : 0;
  result.bitmap_pool_bytes =
      static_cast<std::uint64_t>(result.num_bitmaps) * bitmap_bytes;

  // Device memory budget, scaled to the replica.
  const auto global_bytes = static_cast<std::uint64_t>(
      config.spec.global_mem_bytes * config.device_mem_scale);
  const auto reserved_bytes = static_cast<std::uint64_t>(
      config.reserved_bytes * config.device_mem_scale);
  // Everything that pages through unified memory counts against the
  // budget: the CSR arrays and the count array (both are placed in
  // unified memory per §4.2 "Memory Allocation").
  const std::uint64_t paged_bytes =
      g.memory_bytes() + g.num_directed_edges() * sizeof(CnCount);

  result.estimated_passes = estimate_passes(paged_bytes, global_bytes,
                                            reserved_bytes,
                                            result.bitmap_pool_bytes);
  result.passes_used =
      config.num_passes > 0 ? config.num_passes : result.estimated_passes;

  // Pageable capacity for the unified-memory pager: device memory minus
  // the pinned bitmap pool (the reserve stays available to the runtime's
  // own sequential window, so the pager may still use it).
  const std::uint64_t pageable =
      global_bytes > result.bitmap_pool_bytes
          ? global_bytes - result.bitmap_pool_bytes
          : 1;
  UnifiedMemory um(pageable, static_cast<std::uint64_t>(config.spec.page_bytes));
  const DeviceArrays arrays = allocate_graph(um, g);

  result.counts.assign(g.num_directed_edges(), 0);

  BitmapPool pool(is_bmp ? config.spec.num_sms : 1,
                  is_bmp ? result.occupancy.blocks_per_sm : 1,
                  is_bmp ? g.num_vertices() : 1);

  // Host offset phase (overlapped with the kernels when CP is on).
  if (config.co_processing) {
    result.overlap_seconds = assign_offsets(g, result.counts);
  }

  // Multi-pass kernel execution over destination-vertex ranges. Ranges
  // are balanced by adjacency volume, not vertex count: under the
  // degree-descending order a uniform vertex split would put almost all
  // bytes into the first pass.
  const VertexId n = g.num_vertices();
  const int passes = std::max(1, result.passes_used);
  const auto& offsets = g.offsets();
  auto range_boundary = [&](int p) {
    const EdgeId target = g.num_directed_edges() *
                          static_cast<EdgeId>(p) /
                          static_cast<EdgeId>(passes);
    const auto it = std::lower_bound(offsets.begin(), offsets.end(), target);
    return static_cast<VertexId>(
        std::min<std::ptrdiff_t>(it - offsets.begin(), n));
  };
  for (int p = 0; p < passes; ++p) {
    const VertexId v_lo = p == 0 ? 0 : range_boundary(p);
    const VertexId v_hi = p + 1 == passes ? n : range_boundary(p + 1);
    um.begin_epoch();
    const std::uint64_t faults_before = um.stats().faults;
    const std::uint64_t refaults_before = um.stats().refaults;

    if (is_bmp) {
      run_bmp_kernel(g, result.counts, config.range_filter,
                     config.rf_range_scale, v_lo, v_hi, arrays, um, pool,
                     result.occupancy, result.kernel);
    } else {
      run_m_kernel(g, result.counts, config.skew_threshold, v_lo, v_hi,
                   arrays, um, result.kernel);
      run_ps_kernel(g, result.counts, config.skew_threshold, v_lo, v_hi,
                    arrays, um, result.kernel);
    }

    // Thrash detection: a pass is thrashing when re-migrations (pages
    // faulted twice within the pass) outnumber first-touch migrations —
    // the pass spent more bus time reloading its working set than
    // loading it.
    const std::uint64_t pass_faults = um.stats().faults - faults_before;
    const std::uint64_t pass_refaults = um.stats().refaults - refaults_before;
    if (pass_refaults > pass_faults - pass_refaults) result.thrashed = true;
  }
  result.um = um.stats();

  // Host-side symmetric assignment.
  if (config.co_processing) {
    result.post_seconds = post_process_cp(g, result.counts);
  } else {
    result.post_seconds = post_process_no_cp(g, result.counts);
  }

  // Modeled device time.
  result.kernel_seconds =
      model_kernel_seconds(config.spec, result.occupancy, result.kernel);
  result.fault_seconds =
      static_cast<double>(result.um.faults) * config.spec.page_fault_us * 1e-6 +
      static_cast<double>(result.um.migrated_bytes) /
          (config.spec.pcie_bw_gbs * 1e9);
  result.total_seconds =
      result.kernel_seconds + result.fault_seconds + result.post_seconds;
  return result;
}

}  // namespace aecnc::gpusim
