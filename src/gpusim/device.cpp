#include "gpusim/device.hpp"

#include <algorithm>

namespace aecnc::gpusim {

Occupancy compute_occupancy(const perf::GpuSpec& spec,
                            const LaunchConfig& config) {
  Occupancy occ;
  const int warps = std::clamp(config.warps_per_block, 1, 32);
  occ.threads_per_block = warps * spec.warp_size;
  occ.blocks_per_sm = std::min(spec.max_blocks_per_sm,
                               spec.max_threads_per_sm / occ.threads_per_block);
  occ.blocks_per_sm = std::max(occ.blocks_per_sm, 1);
  occ.concurrent_blocks = occ.blocks_per_sm * spec.num_sms;
  occ.active_warps_per_sm = occ.blocks_per_sm * warps;
  occ.occupancy_fraction =
      static_cast<double>(occ.active_warps_per_sm * spec.warp_size) /
      static_cast<double>(spec.max_threads_per_sm);
  return occ;
}

}  // namespace aecnc::gpusim
