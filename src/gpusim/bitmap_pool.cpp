#include "gpusim/bitmap_pool.hpp"

#include <cassert>
#include <stdexcept>

namespace aecnc::gpusim {

BitmapPool::BitmapPool(int num_sms, int blocks_per_sm,
                       std::uint64_t cardinality)
    : blocks_per_sm_(blocks_per_sm) {
  assert(num_sms > 0 && blocks_per_sm > 0);
  const std::size_t total =
      static_cast<std::size_t>(num_sms) * static_cast<std::size_t>(blocks_per_sm);
  bitmaps_.reserve(total);
  for (std::size_t i = 0; i < total; ++i) bitmaps_.emplace_back(cardinality);
  status_.assign(total, 0);
}

int BitmapPool::acquire(int sm_id) {
  const int base = sm_id * blocks_per_sm_;
  for (int i = 0; i < blocks_per_sm_; ++i) {
    ++cas_probes_;
    // atomicCAS(&BS_A[sm_id * n_C + i], 0, 1)
    if (status_[static_cast<std::size_t>(base + i)] == 0) {
      status_[static_cast<std::size_t>(base + i)] = 1;
      ++acquisitions_;
      return base + i;
    }
  }
  throw std::logic_error(
      "BitmapPool: SM segment exhausted (more concurrent blocks than n_C)");
}

void BitmapPool::release(int slot) {
  assert(status_[static_cast<std::size_t>(slot)] == 1);
  assert(bitmaps_[static_cast<std::size_t>(slot)].all_zero() &&
         "kernel must clear the bitmap before releasing it");
  status_[static_cast<std::size_t>(slot)] = 0;
}

std::uint64_t BitmapPool::memory_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : bitmaps_) total += b.memory_bytes();
  return total;
}

}  // namespace aecnc::gpusim
