// End-to-end GPU execution driver (Algorithm 4 + §4.2.2 multi-pass).
//
// A run launches the MPS kernels (MKernel + PSKernel) or the BMPKernel
// over one or more destination-vertex passes, pages the CSR/count arrays
// through the unified-memory simulator, post-processes the symmetric
// assignment on the (real) host CPU, and converts the collected
// transaction counts into modeled elapsed time with the GPU spec.
#pragma once

#include <cstdint>

#include "core/options.hpp"
#include "gpusim/device.hpp"
#include "gpusim/kernels.hpp"
#include "gpusim/unified_memory.hpp"
#include "graph/csr.hpp"
#include "perf/specs.hpp"

namespace aecnc::gpusim {

struct GpuRunConfig {
  core::Algorithm algorithm = core::Algorithm::kBmp;  // kMps or kBmp
  double skew_threshold = 50.0;
  bool range_filter = false;
  std::uint64_t rf_range_scale = 4096;
  LaunchConfig launch{};

  /// 0 = use the paper's estimator
  /// ceil(Mem_CSR / (Mem_global - Mem_reserved - Mem_BA)).
  int num_passes = 0;

  /// Overlap the reverse-offset computation with the kernels (Table 5).
  bool co_processing = true;

  perf::GpuSpec spec = perf::titan_xp_spec();

  /// Scales spec.global_mem_bytes and the reserve, so replica-scale
  /// graphs face the same relative memory pressure the full datasets put
  /// on the 12 GB card. Set this to the dataset scale.
  double device_mem_scale = 1.0;

  /// Mem_reserved of the pass estimator (paper: 500 MB), before scaling.
  double reserved_bytes = 500.0 * 1024 * 1024;
};

struct GpuRunResult {
  core::CountArray counts;       // full symmetric count array
  KernelStats kernel;            // summed across passes
  UmStats um;                    // pager statistics
  Occupancy occupancy;
  int passes_used = 0;
  int estimated_passes = 0;
  std::uint64_t bitmap_pool_bytes = 0;
  int num_bitmaps = 0;
  bool thrashed = false;         // pager refaulted within a pass

  // Modeled device-side time and measured host-side time (seconds).
  double kernel_seconds = 0.0;   // modeled from transactions/occupancy
  double fault_seconds = 0.0;    // modeled page migration cost
  double post_seconds = 0.0;     // measured host post-processing
  double overlap_seconds = 0.0;  // host offset phase (hidden if CP on)
  double total_seconds = 0.0;
};

/// The paper's pass estimator (§4.2.2):
/// ceil(Mem_CSR / (Mem_global - Mem_reserved - Mem_BA)).
[[nodiscard]] int estimate_passes(std::uint64_t csr_bytes,
                                  std::uint64_t global_bytes,
                                  std::uint64_t reserved_bytes,
                                  std::uint64_t bitmap_pool_bytes);

/// Execute one full GPU run. Counts are bit-exact (verified against the
/// CPU reference in tests); times are modeled as documented in DESIGN.md.
[[nodiscard]] GpuRunResult run_gpu(const graph::Csr& g,
                                   const GpuRunConfig& config);

/// Convert kernel statistics into modeled kernel time: the bandwidth
/// term (32 B x transactions / BW) inflated when occupancy is too low to
/// hide the global-memory latency, plus the serial gather chains of the
/// PS kernel.
[[nodiscard]] double model_kernel_seconds(const perf::GpuSpec& spec,
                                          const Occupancy& occ,
                                          const KernelStats& stats);

}  // namespace aecnc::gpusim
