// GPU execution-model parameters: launch configuration and occupancy,
// following the CUDA rules the paper tunes against (§4.2, §5.2.2):
// 2048 threads/SM, at most 16 simultaneously scheduled blocks per SM on
// the TITAN Xp, blockDim = 32 x warps_per_block.
#pragma once

#include <cstdint>

#include "perf/specs.hpp"

namespace aecnc::gpusim {

struct LaunchConfig {
  /// blockDim.y in Algorithms 5-6; the paper's default is 4 (=> 128
  /// threads per block => 16 concurrent blocks/SM => 100% occupancy).
  int warps_per_block = 4;
};

/// Derived occupancy facts for a launch on a given device.
struct Occupancy {
  int threads_per_block = 0;
  int blocks_per_sm = 0;       // n_C in Algorithm 6
  int concurrent_blocks = 0;   // across the whole device
  int active_warps_per_sm = 0;
  double occupancy_fraction = 0.0;  // active threads / max threads
};

[[nodiscard]] Occupancy compute_occupancy(const perf::GpuSpec& spec,
                                          const LaunchConfig& config);

}  // namespace aecnc::gpusim
