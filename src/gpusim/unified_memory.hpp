// Unified-memory pager simulation (paper §4.2).
//
// On Pascal, unified-memory allocations are migrated to the device on
// demand in driver pages; when the working set exceeds free device
// memory, pages are evicted and re-faulted — the thrashing that makes
// BMP "fail" below the estimated pass count on friendster (Fig 8).
//
// The simulator models a flat device address space carved into fixed
// pages. Regions are allocated contiguously; every kernel access calls
// touch(), which faults non-resident pages in (evicting second-chance
// victims when over capacity, so streamed-once pages go first and the
// pass's re-touched working set is protected) and accumulates
// fault/migration statistics.
// Regions can also be pinned (the paper allocates the bitmap pool with
// cudaMalloc, outside unified memory, so it never swaps).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace aecnc::gpusim {

struct UmStats {
  std::uint64_t faults = 0;           // pages migrated host->device
  std::uint64_t evictions = 0;        // pages dropped for capacity
  std::uint64_t migrated_bytes = 0;   // faults * page size
  std::uint64_t touches = 0;          // touch() calls
  std::uint64_t resident_peak = 0;    // max resident pages seen
  std::uint64_t refaults = 0;         // faults of pages already faulted in
                                      // the current epoch (= thrashing)
};

class UnifiedMemory {
 public:
  /// `device_bytes`: usable device memory for pageable data (global
  /// memory minus pinned allocations and reserve). `page_bytes` is the
  /// migration granularity.
  UnifiedMemory(std::uint64_t device_bytes, std::uint64_t page_bytes = 4096);

  /// Reserve a contiguous region; returns its base address.
  [[nodiscard]] std::uint64_t allocate(std::string name, std::uint64_t bytes);

  /// Record an access to [addr, addr+bytes): faults in missing pages.
  void touch(std::uint64_t addr, std::uint64_t bytes);

  /// Drop all residency (e.g. between experiments) but keep allocations.
  void evict_all();

  /// Start a new accounting epoch (one per multi-pass pass). A page that
  /// faults twice within one epoch was evicted and reloaded while still
  /// needed — the thrashing signature of Fig 8.
  void begin_epoch() { ++epoch_; }

  void reset_stats() { stats_ = {}; }

  [[nodiscard]] const UmStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t capacity_pages() const noexcept {
    return capacity_pages_;
  }
  [[nodiscard]] std::uint64_t resident_pages() const noexcept {
    return resident_count_;
  }
  [[nodiscard]] std::uint64_t page_bytes() const noexcept { return page_bytes_; }
  [[nodiscard]] std::uint64_t allocated_bytes() const noexcept {
    return next_addr_;
  }

 private:
  void fault_in(std::uint64_t page);

  std::uint64_t page_bytes_;
  std::uint64_t capacity_pages_;
  std::uint64_t next_addr_ = 0;

  // Page states: 0 = absent, 1 = resident, 2 = resident and referenced
  // since last considered for eviction (second-chance bit).
  std::vector<std::uint8_t> resident_;
  std::vector<std::uint32_t> last_fault_epoch_;  // page -> epoch of fault
  std::deque<std::uint64_t> clock_;      // second-chance queue
  std::uint64_t resident_count_ = 0;
  std::uint32_t epoch_ = 1;
  UmStats stats_;

  struct Region {
    std::string name;
    std::uint64_t base;
    std::uint64_t bytes;
  };
  std::vector<Region> regions_;
};

}  // namespace aecnc::gpusim
