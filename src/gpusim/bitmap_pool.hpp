// The GPU bitmap pool of Algorithm 6: an array of |V|-bit bitmaps (B_A)
// plus an occupation-status array (BS_A), sized
// num_SMs x max-concurrent-blocks-per-SM. A block acquires a bitmap from
// its SM's segment by an atomicCAS scan (lines 22-26) and releases it
// after clearing. The simulator executes block batches, so acquisition
// order and the per-SM segmentation are exercised exactly; the atomics
// are plain operations under the simulator's sequential execution.
#pragma once

#include <cstdint>
#include <vector>

#include "bitmap/bitmap.hpp"
#include "util/types.hpp"

namespace aecnc::gpusim {

class BitmapPool {
 public:
  /// `num_sms` segments of `blocks_per_sm` bitmaps, each over
  /// [0, cardinality) bits.
  BitmapPool(int num_sms, int blocks_per_sm, std::uint64_t cardinality);

  /// AcquireBitmap(B_A, BS_A, n_C): first free slot in this SM's segment.
  /// Returns the pool index; asserts if the segment is exhausted (cannot
  /// happen when at most n_C blocks run concurrently per SM).
  [[nodiscard]] int acquire(int sm_id);

  /// ReleaseBitmap: mark the slot free. The caller must have cleared the
  /// bitmap (checked in debug builds, mirroring the kernel's contract).
  void release(int slot);

  [[nodiscard]] bitmap::Bitmap& at(int slot) { return bitmaps_[static_cast<std::size_t>(slot)]; }

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(bitmaps_.size());
  }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept;
  [[nodiscard]] std::uint64_t acquisitions() const noexcept {
    return acquisitions_;
  }
  /// atomicCAS probes performed across all acquisitions (the scan cost).
  [[nodiscard]] std::uint64_t cas_probes() const noexcept { return cas_probes_; }

 private:
  int blocks_per_sm_;
  std::vector<bitmap::Bitmap> bitmaps_;
  std::vector<std::uint8_t> status_;  // BS_A: 0 free, 1 taken
  std::uint64_t acquisitions_ = 0;
  std::uint64_t cas_probes_ = 0;
};

}  // namespace aecnc::gpusim
