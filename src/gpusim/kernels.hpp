// Functional simulation of the paper's CUDA kernels (Algorithms 5 and 6).
//
// The kernels are executed lane-faithfully enough to account every
// memory transaction class the real kernels generate, while producing
// bit-exact counts:
//
//  - MKernel: one warp per edge, warp-wise block merge with block sizes
//    8 x 4 (their product is the warp size 32, as in §4.2.1), shared-
//    memory staging of 32-element chunks, __shfl_down reduction.
//  - PSKernel: one thread per (degree-skewed) edge, pivot-skip merge with
//    irregular gather loads.
//  - BMPKernel: one block per vertex; bitmap acquired from the per-SM
//    pool via atomicCAS, built with atomic-or, probed warp-wise, cleared
//    and released; optional range filter held in shared memory.
//
// Every kernel takes a destination-vertex range [v_lo, v_hi) so the
// multi-pass driver (§4.2.2) can restrict a pass's working set.
#pragma once

#include <cstdint>

#include "bitmap/bitmap.hpp"
#include "gpusim/bitmap_pool.hpp"
#include "gpusim/device.hpp"
#include "gpusim/unified_memory.hpp"
#include "graph/csr.hpp"
#include "util/types.hpp"

namespace aecnc::gpusim {

/// Transaction/operation accounting for one kernel execution.
struct KernelStats {
  std::uint64_t load_transactions = 0;    // 32-byte global load segments
  std::uint64_t store_transactions = 0;   // 32-byte global store segments
  std::uint64_t shared_load_ops = 0;      // shared-memory accesses
  std::uint64_t atomic_ops = 0;           // atomicOr/atomicCAS
  std::uint64_t shuffle_ops = 0;          // __shfl_down reduction steps
  std::uint64_t warp_steps = 0;           // lockstep merge/probe steps
  std::uint64_t serial_steps = 0;         // dependent per-thread steps (PS)
  std::uint64_t edges_processed = 0;      // forward edges counted

  KernelStats& operator+=(const KernelStats& o) noexcept {
    load_transactions += o.load_transactions;
    store_transactions += o.store_transactions;
    shared_load_ops += o.shared_load_ops;
    atomic_ops += o.atomic_ops;
    shuffle_ops += o.shuffle_ops;
    warp_steps += o.warp_steps;
    serial_steps += o.serial_steps;
    edges_processed += o.edges_processed;
    return *this;
  }
};

/// Simulated device pointers of the CSR + count arrays inside the
/// unified-memory address space.
struct DeviceArrays {
  std::uint64_t off_base = 0;  // (|V|+1) x 8 bytes
  std::uint64_t dst_base = 0;  // slots x 4 bytes
  std::uint64_t cnt_base = 0;  // slots x 4 bytes
};

/// Allocate the CSR and count array in unified memory (§4.2 "Memory
/// Allocation": CSR + cnt on unified memory for both MPS and BMP).
[[nodiscard]] DeviceArrays allocate_graph(UnifiedMemory& um,
                                          const graph::Csr& g);

/// MKernel(off, dst, cnt, t): warp-per-edge block merge for non-skewed
/// pairs with u < v and dst in [v_lo, v_hi).
void run_m_kernel(const graph::Csr& g, std::vector<CnCount>& cnt,
                  double skew_threshold, VertexId v_lo, VertexId v_hi,
                  const DeviceArrays& arrays, UnifiedMemory& um,
                  KernelStats& stats);

/// PSKernel(off, dst, cnt, t): thread-per-edge pivot-skip merge for
/// skewed pairs with u < v and dst in [v_lo, v_hi).
void run_ps_kernel(const graph::Csr& g, std::vector<CnCount>& cnt,
                   double skew_threshold, VertexId v_lo, VertexId v_hi,
                   const DeviceArrays& arrays, UnifiedMemory& um,
                   KernelStats& stats);

/// BMPKernel(off, dst, cnt, B_A, BS_A, n_C): block-per-vertex bitmap
/// intersections for pairs with u < v and dst in [v_lo, v_hi).
/// `range_filter` keeps the summary bitmap in shared memory; its bytes
/// are recorded in stats.shared_load_ops usage accounting.
void run_bmp_kernel(const graph::Csr& g, std::vector<CnCount>& cnt,
                    bool range_filter, std::uint64_t rf_scale, VertexId v_lo,
                    VertexId v_hi, const DeviceArrays& arrays,
                    UnifiedMemory& um, BitmapPool& pool, const Occupancy& occ,
                    KernelStats& stats);

}  // namespace aecnc::gpusim
