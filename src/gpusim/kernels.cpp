#include "gpusim/kernels.hpp"

#include <algorithm>
#include <cassert>

#include "intersect/merge.hpp"
#include "intersect/pivot_skip.hpp"

namespace aecnc::gpusim {
namespace {

constexpr std::uint64_t kTransactionBytes = 32;

std::uint64_t to_transactions(std::uint64_t bytes) {
  return (bytes + kTransactionBytes - 1) / kTransactionBytes;
}

/// Warp-wise block merge with block sizes 8 (for a) x 4 (for b): their
/// product is the warp size 32, so one warp evaluates all pairs of the
/// resident blocks in a single lockstep step. Returns the match count and
/// reports how many elements of each array were streamed in.
struct BlockMergeResult {
  CnCount count = 0;
  std::uint64_t loaded_a = 0;
  std::uint64_t loaded_b = 0;
  std::uint64_t steps = 0;
};

BlockMergeResult warp_block_merge(std::span<const VertexId> a,
                                  std::span<const VertexId> b) {
  constexpr std::size_t kWa = 8, kWb = 4;
  BlockMergeResult r;
  std::size_t i = 0, j = 0;
  std::uint64_t max_i = 0, max_j = 0;
  while (i + kWa <= a.size() && j + kWb <= b.size()) {
    ++r.steps;
    for (std::size_t x = 0; x < kWa; ++x) {
      for (std::size_t y = 0; y < kWb; ++y) {
        r.count += static_cast<CnCount>(a[i + x] == b[j + y]);
      }
    }
    const VertexId a_last = a[i + kWa - 1];
    const VertexId b_last = b[j + kWb - 1];
    if (a_last <= b_last) i += kWa;
    if (b_last <= a_last) j += kWb;
    max_i = std::max<std::uint64_t>(max_i, i);
    max_j = std::max<std::uint64_t>(max_j, j);
  }
  // Scalar tail handled by lane 0 of the warp.
  std::size_t ti = i, tj = j;
  while (ti < a.size() && tj < b.size()) {
    ++r.steps;
    if (a[ti] < b[tj]) {
      ++ti;
    } else if (a[ti] > b[tj]) {
      ++tj;
    } else {
      ++ti;
      ++tj;
      ++r.count;
    }
  }
  r.loaded_a = std::max<std::uint64_t>(max_i, ti);
  r.loaded_b = std::max<std::uint64_t>(max_j, tj);
  return r;
}

/// Neighbors of u restricted to destination range [v_lo, v_hi):
/// [begin, end) slot positions within u's adjacency.
struct SlotRange {
  std::size_t begin;
  std::size_t end;
};

SlotRange slots_in_range(std::span<const VertexId> nbrs, VertexId v_lo,
                         VertexId v_hi) {
  const auto lo =
      std::lower_bound(nbrs.begin(), nbrs.end(), v_lo) - nbrs.begin();
  const auto hi =
      std::lower_bound(nbrs.begin(), nbrs.end(), v_hi) - nbrs.begin();
  return {static_cast<std::size_t>(lo), static_cast<std::size_t>(hi)};
}

bool is_skewed(double du, double dv, double t) {
  return du > t * dv || dv > t * du;
}

}  // namespace

DeviceArrays allocate_graph(UnifiedMemory& um, const graph::Csr& g) {
  DeviceArrays arrays;
  arrays.off_base =
      um.allocate("off", (static_cast<std::uint64_t>(g.num_vertices()) + 1) *
                             sizeof(EdgeId));
  arrays.dst_base = um.allocate("dst", g.num_directed_edges() * sizeof(VertexId));
  arrays.cnt_base = um.allocate("cnt", g.num_directed_edges() * sizeof(CnCount));
  return arrays;
}

void run_m_kernel(const graph::Csr& g, std::vector<CnCount>& cnt,
                  double skew_threshold, VertexId v_lo, VertexId v_hi,
                  const DeviceArrays& arrays, UnifiedMemory& um,
                  KernelStats& stats) {
  // |V| thread blocks: blockIdx.x = u; warps stride u's edge slots.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nu = g.neighbors(u);
    if (nu.empty()) continue;
    um.touch(arrays.off_base + u * sizeof(EdgeId), 2 * sizeof(EdgeId));
    const auto range = slots_in_range(nu, std::max(v_lo, u + 1), v_hi);
    if (range.begin >= range.end) continue;

    const EdgeId base = g.offset_begin(u);
    // The warp reads dst[] coalesced across the processed slots.
    um.touch(arrays.dst_base + (base + range.begin) * sizeof(VertexId),
             (range.end - range.begin) * sizeof(VertexId));
    stats.load_transactions +=
        to_transactions((range.end - range.begin) * sizeof(VertexId));

    for (std::size_t k = range.begin; k < range.end; ++k) {
      const VertexId v = nu[k];
      const auto nv = g.neighbors(v);
      if (is_skewed(nu.size(), nv.size(), skew_threshold)) continue;

      const BlockMergeResult r = warp_block_merge(nu, nv);
      // 32-element chunks staged through the warp's shared-memory region.
      um.touch(arrays.dst_base + base * sizeof(VertexId),
               r.loaded_a * sizeof(VertexId));
      um.touch(arrays.dst_base + g.offset_begin(v) * sizeof(VertexId),
               r.loaded_b * sizeof(VertexId));
      stats.load_transactions +=
          to_transactions(r.loaded_a * sizeof(VertexId)) +
          to_transactions(r.loaded_b * sizeof(VertexId));
      stats.shared_load_ops += r.steps;
      stats.warp_steps += r.steps;
      stats.shuffle_ops += 5;  // __shfl_down over {16,8,4,2,1}

      cnt[base + k] = r.count;
      um.touch(arrays.cnt_base + (base + k) * sizeof(CnCount), sizeof(CnCount));
      ++stats.store_transactions;
      ++stats.edges_processed;
    }
  }
}

void run_ps_kernel(const graph::Csr& g, std::vector<CnCount>& cnt,
                   double skew_threshold, VertexId v_lo, VertexId v_hi,
                   const DeviceArrays& arrays, UnifiedMemory& um,
                   KernelStats& stats) {
  // |V| thread blocks, 1D threads: each thread owns one edge slot.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nu = g.neighbors(u);
    if (nu.empty()) continue;
    const auto range = slots_in_range(nu, std::max(v_lo, u + 1), v_hi);
    if (range.begin >= range.end) continue;
    const EdgeId base = g.offset_begin(u);

    for (std::size_t k = range.begin; k < range.end; ++k) {
      const VertexId v = nu[k];
      const auto nv = g.neighbors(v);
      if (!is_skewed(nu.size(), nv.size(), skew_threshold)) continue;

      // Pivot-skip merge, instrumented: each search probe is an
      // irregular gather -> one uncoalesced transaction.
      intersect::StatsCounter probes;
      const CnCount c = intersect::pivot_skip_count(nu, nv, probes);
      const std::uint64_t gathers =
          probes.gallop_steps + probes.binary_steps +
          (probes.linear_probes + 7) / 8;  // linear window is contiguous
      stats.load_transactions += gathers;
      stats.serial_steps +=
          probes.gallop_steps + probes.binary_steps + probes.linear_probes;
      // The searched spans migrate on demand; both sets are touched up to
      // their full extent in the worst case.
      um.touch(arrays.dst_base + base * sizeof(VertexId),
               nu.size() * sizeof(VertexId));
      um.touch(arrays.dst_base + g.offset_begin(v) * sizeof(VertexId),
               nv.size() * sizeof(VertexId));

      cnt[base + k] = c;
      um.touch(arrays.cnt_base + (base + k) * sizeof(CnCount), sizeof(CnCount));
      ++stats.store_transactions;
      ++stats.edges_processed;
    }
  }
}

void run_bmp_kernel(const graph::Csr& g, std::vector<CnCount>& cnt,
                    bool range_filter, std::uint64_t rf_scale, VertexId v_lo,
                    VertexId v_hi, const DeviceArrays& arrays,
                    UnifiedMemory& um, BitmapPool& pool, const Occupancy& occ,
                    KernelStats& stats) {
  const int concurrent = std::max(1, occ.concurrent_blocks);
  const std::uint64_t summary_bits =
      range_filter ? (g.num_vertices() + rf_scale - 1) / rf_scale : 0;

  // Blocks are dispatched in batches of `concurrent`; each resident block
  // acquires a bitmap from its SM's pool segment (Algorithm 6 lines 5-8).
  std::vector<int> slots(static_cast<std::size_t>(concurrent), -1);
  for (VertexId batch_start = 0; batch_start < g.num_vertices();
       batch_start += static_cast<VertexId>(concurrent)) {
    const VertexId batch_end = std::min<std::uint64_t>(
        g.num_vertices(), static_cast<std::uint64_t>(batch_start) +
                              static_cast<std::uint64_t>(concurrent));

    for (VertexId u = batch_start; u < batch_end; ++u) {
      const int block_index = static_cast<int>(u - batch_start);
      const int sm_id = block_index / occ.blocks_per_sm;

      const auto nu = g.neighbors(u);
      if (nu.empty()) continue;
      const auto range = slots_in_range(nu, std::max(v_lo, u + 1), v_hi);
      if (range.begin >= range.end) continue;

      // AcquireBitmap + atomic-or construction.
      const int slot = pool.acquire(sm_id);
      slots[static_cast<std::size_t>(block_index)] = slot;
      bitmap::Bitmap& b = pool.at(slot);
      bitmap::Bitmap summary(range_filter ? summary_bits : 0);
      const EdgeId base = g.offset_begin(u);
      um.touch(arrays.dst_base + base * sizeof(VertexId),
               nu.size() * sizeof(VertexId));
      stats.load_transactions += to_transactions(nu.size() * sizeof(VertexId));
      for (const VertexId w : nu) {
        b.set(w);
        ++stats.atomic_ops;  // atomicOr on the bitmap word
        if (range_filter) {
          summary.set(static_cast<VertexId>(w / rf_scale));
          ++stats.shared_load_ops;  // summary lives in shared memory
        }
      }

      // Warp-wise bitmap-array intersections over the pass's slots.
      for (std::size_t k = range.begin; k < range.end; ++k) {
        const VertexId v = nu[k];
        const auto nv = g.neighbors(v);
        um.touch(arrays.dst_base + g.offset_begin(v) * sizeof(VertexId),
                 nv.size() * sizeof(VertexId));
        stats.load_transactions +=
            to_transactions(nv.size() * sizeof(VertexId));

        CnCount c = 0;
        for (const VertexId w : nv) {
          if (range_filter) {
            ++stats.shared_load_ops;  // summary probe (shared memory)
            if (!summary.test(static_cast<VertexId>(w / rf_scale))) continue;
          }
          // Scattered single-word bitmap probe: one 32 B transaction.
          ++stats.load_transactions;
          if (b.test(w)) ++c;
        }
        stats.warp_steps += (nv.size() + 31) / 32;
        stats.shuffle_ops += 5;

        cnt[base + k] = c;
        um.touch(arrays.cnt_base + (base + k) * sizeof(CnCount),
                 sizeof(CnCount));
        ++stats.store_transactions;
        ++stats.edges_processed;
      }

      // ClearBitmap + ReleaseBitmap.
      for (const VertexId w : nu) {
        b.flip(w);
        ++stats.store_transactions;
      }
      pool.release(slot);
      slots[static_cast<std::size_t>(block_index)] = -1;
    }
  }
  (void)slots;
}

}  // namespace aecnc::gpusim
