// AVX-512F vectorized block-wise merge (compiled with -mavx512f).
//
// Same schedule as the AVX2 kernel with 16-lane blocks: vpermd
// (_mm512_permutexvar_epi32) rotations, mask compares, and popcount of the
// 16-bit hit masks accumulated in a scalar (cheaper than a vector
// accumulator given kmov latency).
#include <immintrin.h>

#include "intersect/block_merge.hpp"

namespace aecnc::intersect {
namespace {

/// Rotation index vectors: rotation r sends lane l to (l + r) % 16.
/// Function-local static (not namespace scope): construction executes
/// AVX-512 loads, so it must not run before cpu_has_avx512() gated the
/// first call — a namespace-scope initializer would SIGILL generic hosts
/// at program load.
struct RotationTable512 {
  __m512i rot[16];

  RotationTable512() noexcept {
    constexpr std::size_t W = 16;
    alignas(64) std::uint32_t idx[W];
    for (std::size_t r = 0; r < W; ++r) {
      for (std::size_t l = 0; l < W; ++l) {
        idx[l] = static_cast<std::uint32_t>((l + r) % W);
      }
      rot[r] = _mm512_load_si512(idx);
    }
  }
};

}  // namespace

CnCount vb_count_avx512(std::span<const VertexId> a,
                        std::span<const VertexId> b, bool prefetch) {
  constexpr std::size_t W = 16;
  std::size_t i = 0, j = 0;
  const std::size_t na = a.size(), nb = b.size();

  static const RotationTable512 table;
  const __m512i(&rotations)[W] = table.rot;

  std::uint32_t c = 0;
  while (i + W <= na && j + W <= nb) {
    if (prefetch) {
      // Next block pair, far enough ahead to hide an L2 miss.
      constexpr std::size_t D = util::kBlockPrefetchDistance;
      _mm_prefetch(reinterpret_cast<const char*>(
                       a.data() + std::min(i + D, na - 1)),
                   _MM_HINT_T1);
      _mm_prefetch(reinterpret_cast<const char*>(
                       b.data() + std::min(j + D, nb - 1)),
                   _MM_HINT_T1);
    }
    const __m512i va = _mm512_loadu_si512(a.data() + i);
    const __m512i vb = _mm512_loadu_si512(b.data() + j);
    for (const __m512i& rot : rotations) {
      const __m512i shuffled = _mm512_permutexvar_epi32(rot, vb);
      const __mmask16 hits = _mm512_cmpeq_epi32_mask(va, shuffled);
      c += static_cast<std::uint32_t>(__builtin_popcount(hits));
    }
    const VertexId a_last = a[i + W - 1];
    const VertexId b_last = b[j + W - 1];
    if (a_last <= b_last) i += W;
    if (b_last <= a_last) j += W;
  }

  c += merge_count(a.subspan(i), b.subspan(j));
  return c;
}

}  // namespace aecnc::intersect
