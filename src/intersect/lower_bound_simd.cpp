// AVX2 implementation of the composite lower bound (compiled with -mavx2).
//
// The linear stage scans 8 elements per step with a single vpcmpgtd +
// vpmovmskb; the gallop/binary stages are shared with the scalar path.
#include <immintrin.h>

#include "intersect/lower_bound.hpp"

namespace aecnc::intersect {

std::size_t gallop_lower_bound_avx2(std::span<const VertexId> a,
                                    std::size_t from, VertexId key,
                                    bool prefetch) {
  const std::size_t n = a.size();
  const VertexId* data = a.data();

  // Signed-compare trick: flip the sign bit so unsigned order maps onto
  // signed order (AVX2 has no unsigned 32-bit compare).
  const __m256i sign = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i pivot =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(key)), sign);

  std::size_t i = from;
  const std::size_t probe_end = std::min(n, from + kLinearProbeWindow);
  for (; i + 8 <= probe_end; i += 8) {
    const __m256i block = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i)), sign);
    // lane >= key  <=>  !(key > lane)
    const __m256i gt = _mm256_cmpgt_epi32(pivot, block);
    const unsigned mask = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(gt)));
    if (mask != 0xffu) {
      // First lane not less than the key.
      return i + static_cast<std::size_t>(
                     __builtin_ctz(~mask & 0xffu));
    }
  }
  for (; i < probe_end; ++i) {
    if (data[i] >= key) return i;
  }
  if (probe_end == n) return n;

  // Gallop + binary, identical to the scalar path (including the hint on
  // the next doubling target — the gallop's probes are the data-dependent
  // far jumps the hardware prefetcher cannot predict).
  std::size_t prev = probe_end;
  std::size_t step = std::size_t{1} << kGallopFirstShift;
  std::size_t next = prev + step;
  while (next < n) {
    if (prefetch) {
      _mm_prefetch(
          reinterpret_cast<const char*>(data + std::min(next + (step << 1),
                                                        n - 1)),
          _MM_HINT_T1);
    }
    if (data[next] >= key) break;
    prev = next;
    step <<= 1;
    next = prev + step;
  }
  NullCounter null;
  return binary_lower_bound(a.first(std::min(next + 1, n)), prev, key, null,
                            prefetch);
}

}  // namespace aecnc::intersect
