// Scalar merge-based set intersection counting.
//
// `merge_count` is the paper's IntersectM (Algorithm 1, lines 6-12): the
// unoptimized baseline "M" that every technique in §5.2 is measured
// against. `merge_count_branchless` is the same scan with the branches
// converted to arithmetic, which is what the compiler needs to keep the
// pipeline full on predictable data.
#pragma once

#include <cstdint>
#include <span>

#include "intersect/counters.hpp"
#include "util/types.hpp"

namespace aecnc::intersect {

/// Textbook two-pointer merge; returns |A ∩ B|. Inputs must be sorted
/// ascending with unique elements.
template <typename Counter = NullCounter>
[[nodiscard]] CnCount merge_count(std::span<const VertexId> a,
                                  std::span<const VertexId> b,
                                  Counter& counter) {
  std::size_t i = 0, j = 0;
  CnCount c = 0;
  while (i < a.size() && j < b.size()) {
    counter.scalar_cmp();
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++i;
      ++j;
      ++c;
      counter.match();
    }
  }
  return c;
}

[[nodiscard]] CnCount merge_count(std::span<const VertexId> a,
                                  std::span<const VertexId> b);

/// Branch-free variant: each step advances i and/or j by comparison
/// results instead of taking a data-dependent branch.
[[nodiscard]] CnCount merge_count_branchless(std::span<const VertexId> a,
                                             std::span<const VertexId> b);

/// Reference implementation on top of std::set_intersection; used by
/// tests as the ground truth.
[[nodiscard]] CnCount reference_count(std::span<const VertexId> a,
                                      std::span<const VertexId> b);

}  // namespace aecnc::intersect
