// AVX2 vectorized block-wise merge (compiled with -mavx2).
//
// Per step: load 8-element blocks from both arrays; compare the A block
// against all 8 rotations of the B block (vpermd + vpcmpeqd); accumulate
// the per-lane hit masks into a vector counter (a matched lane contributes
// exactly one -1 across all rotations, since elements are unique); advance
// the block(s) whose last element is smaller; finish with a scalar tail.
#include <immintrin.h>

#include "intersect/block_merge.hpp"

namespace aecnc::intersect {
namespace {

// Rotation index vectors for vpermd: rotation r sends lane l to (l + r) % 8.
const __m256i kRotations[8] = {
    _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
    _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0),
    _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1),
    _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2),
    _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3),
    _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4),
    _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5),
    _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6),
};

}  // namespace

CnCount vb_count_avx2(std::span<const VertexId> a,
                      std::span<const VertexId> b, bool prefetch) {
  constexpr std::size_t W = 8;
  std::size_t i = 0, j = 0;
  const std::size_t na = a.size(), nb = b.size();

  __m256i acc = _mm256_setzero_si256();  // per-lane match counts (negated)
  while (i + W <= na && j + W <= nb) {
    if (prefetch) {
      // Next block pair, far enough ahead to hide an L2 miss.
      constexpr std::size_t D = util::kBlockPrefetchDistance;
      _mm_prefetch(reinterpret_cast<const char*>(
                       a.data() + std::min(i + D, na - 1)),
                   _MM_HINT_T1);
      _mm_prefetch(reinterpret_cast<const char*>(
                       b.data() + std::min(j + D, nb - 1)),
                   _MM_HINT_T1);
    }
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + j));
    for (const __m256i& rot : kRotations) {
      const __m256i shuffled = _mm256_permutevar8x32_epi32(vb, rot);
      // cmpeq yields -1 per matching lane; subtracting accumulates +1.
      acc = _mm256_sub_epi32(acc, _mm256_cmpeq_epi32(va, shuffled));
    }
    const VertexId a_last = a[i + W - 1];
    const VertexId b_last = b[j + W - 1];
    if (a_last <= b_last) i += W;
    if (b_last <= a_last) j += W;
  }

  // Horizontal sum of the 8 lane counters.
  alignas(32) std::uint32_t lanes[W];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  CnCount c = 0;
  for (const std::uint32_t lane : lanes) c += lane;

  // Scalar tail.
  c += merge_count(a.subspan(i), b.subspan(j));
  return c;
}

}  // namespace aecnc::intersect
