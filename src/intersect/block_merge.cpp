#include "intersect/block_merge.hpp"

namespace aecnc::intersect {

CnCount block_merge_count8(std::span<const VertexId> a,
                           std::span<const VertexId> b, bool prefetch) {
  NullCounter null;
  return block_merge_count<8>(a, b, null, prefetch);
}

}  // namespace aecnc::intersect
