#include "intersect/dispatch.hpp"

#include "intersect/lower_bound.hpp"
#include "intersect/merge.hpp"
#include "obs/catalog.hpp"

namespace aecnc::intersect {
namespace {

/// Cold path of mps_count when observability is on: same routing
/// decision, plus routing/kernel counters. The skewed branch runs the
/// *scalar* instrumented pivot-skip regardless of vectorized_search so
/// the reported probe count is machine-independent (the count result is
/// identical; only the search implementation differs).
CnCount mps_count_observed(std::span<const VertexId> a,
                           std::span<const VertexId> b,
                           const MpsConfig& config, bool skewed) {
  const obs::KernelMetrics& m = obs::KernelMetrics::get();
  m.mps_calls.add();
  if (skewed) {
    m.route_pivot_skip.add();
    StatsCounter sc;
    const CnCount c = pivot_skip_count(a, b, sc, config.prefetch);
    m.gallop_probes.add(sc.gallop_steps + sc.binary_steps + sc.linear_probes);
    return c;
  }
  m.route_vb.add();
  m.vb_calls[static_cast<std::size_t>(config.kind)]->add();
  return vb_count(a, b, config.kind, config.vb_prefetch);
}

}  // namespace

std::string_view merge_kind_name(MergeKind kind) {
  switch (kind) {
    case MergeKind::kScalar: return "scalar";
    case MergeKind::kBranchless: return "branchless";
    case MergeKind::kBlockScalar: return "block-scalar";
    case MergeKind::kSse: return "sse";
    case MergeKind::kAvx2: return "avx2";
    case MergeKind::kAvx512: return "avx512";
  }
  return "unknown";
}

bool cpu_has_avx2() {
#if AECNC_HAVE_SIMD_KERNELS
  static const bool value = __builtin_cpu_supports("avx2");
  return value;
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if AECNC_HAVE_SIMD_KERNELS
  static const bool value = __builtin_cpu_supports("avx512f") &&
                            __builtin_cpu_supports("avx512bw");
  return value;
#else
  return false;
#endif
}

MergeKind best_merge_kind() {
  if (cpu_has_avx512()) return MergeKind::kAvx512;
  if (cpu_has_avx2()) return MergeKind::kAvx2;
  return MergeKind::kBlockScalar;
}

bool merge_kind_supported(MergeKind kind) {
  switch (kind) {
    case MergeKind::kAvx2: return cpu_has_avx2();
    case MergeKind::kAvx512: return cpu_has_avx512();
    default: return true;
  }
}

CnCount vb_count(std::span<const VertexId> a, std::span<const VertexId> b,
                 MergeKind kind, bool prefetch) {
  switch (kind) {
    case MergeKind::kScalar: return merge_count(a, b);
    case MergeKind::kBranchless: return merge_count_branchless(a, b);
    case MergeKind::kBlockScalar: return block_merge_count8(a, b, prefetch);
    case MergeKind::kSse: return vb_count_sse(a, b, prefetch);
#if AECNC_HAVE_SIMD_KERNELS
    case MergeKind::kAvx2: return vb_count_avx2(a, b, prefetch);
    case MergeKind::kAvx512: return vb_count_avx512(a, b, prefetch);
#else
    case MergeKind::kAvx2:
    case MergeKind::kAvx512: return block_merge_count8(a, b, prefetch);
#endif
  }
  return merge_count(a, b);
}

#if AECNC_HAVE_SIMD_KERNELS
CnCount pivot_skip_count_avx2(std::span<const VertexId> a,
                              std::span<const VertexId> b, bool prefetch) {
  std::size_t i = 0, j = 0;
  CnCount c = 0;
  const std::size_t na = a.size(), nb = b.size();
  if (na == 0 || nb == 0) return 0;
  while (true) {
    i = gallop_lower_bound_avx2(a, i, b[j], prefetch);
    if (i >= na) return c;
    j = gallop_lower_bound_avx2(b, j, a[i], prefetch);
    if (j >= nb) return c;
    if (a[i] == b[j]) {
      ++c;
      ++i;
      ++j;
      if (i >= na || j >= nb) return c;
    }
  }
}
#endif

CnCount mps_count(std::span<const VertexId> a, std::span<const VertexId> b,
                  const MpsConfig& config) {
  const double da = static_cast<double>(a.size());
  const double db = static_cast<double>(b.size());
  const bool skewed = da > config.skew_threshold * db ||
                      db > config.skew_threshold * da;
  if (obs::enabled()) [[unlikely]] {
    return mps_count_observed(a, b, config, skewed);
  }
  if (skewed) {
#if AECNC_HAVE_SIMD_KERNELS
    if (config.vectorized_search && cpu_has_avx2()) {
      return pivot_skip_count_avx2(a, b, config.prefetch);
    }
#endif
    return pivot_skip_count(a, b, config.prefetch);
  }
  return vb_count(a, b, config.kind, config.vb_prefetch);
}

}  // namespace aecnc::intersect
