#include "intersect/hash_index.hpp"

#include <bit>
#include <cassert>

namespace aecnc::intersect {

void HashIndex::rebuild(std::span<const VertexId> elements) {
  // Load factor <= 0.5 keeps probe chains short.
  const std::size_t capacity =
      std::bit_ceil(std::max<std::size_t>(8, elements.size() * 2));
  slots_.assign(capacity, kInvalidVertex);
  mask_ = capacity - 1;
  for (const VertexId v : elements) {
    assert(v != kInvalidVertex);
    std::size_t i = probe_start(v);
    while (slots_[i] != kInvalidVertex) i = (i + 1) & mask_;
    slots_[i] = v;
  }
}

CnCount hash_intersect_count(const HashIndex& index,
                             std::span<const VertexId> a) {
  NullCounter null;
  return hash_intersect_count(index, a, null);
}

CnCount hash_count(std::span<const VertexId> a, std::span<const VertexId> b) {
  if (a.size() > b.size()) std::swap(a, b);
  const HashIndex index(b);
  return hash_intersect_count(index, a);
}

}  // namespace aecnc::intersect
