#include "intersect/pivot_skip.hpp"

namespace aecnc::intersect {

CnCount pivot_skip_count(std::span<const VertexId> a,
                         std::span<const VertexId> b, bool prefetch) {
  NullCounter null;
  return pivot_skip_count(a, b, null, prefetch);
}

}  // namespace aecnc::intersect
