#include "intersect/lower_bound.hpp"

namespace aecnc::intersect {

std::size_t binary_lower_bound(std::span<const VertexId> a, std::size_t from,
                               VertexId key) {
  NullCounter null;
  return binary_lower_bound(a, from, key, null);
}

std::size_t gallop_lower_bound(std::span<const VertexId> a, std::size_t from,
                               VertexId key) {
  NullCounter null;
  return gallop_lower_bound(a, from, key, null);
}

}  // namespace aecnc::intersect
