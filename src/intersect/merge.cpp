#include "intersect/merge.hpp"

#include <algorithm>
#include <iterator>
#include <vector>

namespace aecnc::intersect {

CnCount merge_count(std::span<const VertexId> a, std::span<const VertexId> b) {
  NullCounter null;
  return merge_count(a, b, null);
}

CnCount merge_count_branchless(std::span<const VertexId> a,
                               std::span<const VertexId> b) {
  std::size_t i = 0, j = 0;
  CnCount c = 0;
  while (i < a.size() && j < b.size()) {
    const VertexId x = a[i];
    const VertexId y = b[j];
    c += static_cast<CnCount>(x == y);
    i += static_cast<std::size_t>(x <= y);
    j += static_cast<std::size_t>(y <= x);
  }
  return c;
}

CnCount reference_count(std::span<const VertexId> a,
                        std::span<const VertexId> b) {
  std::vector<VertexId> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return static_cast<CnCount>(out.size());
}

}  // namespace aecnc::intersect
