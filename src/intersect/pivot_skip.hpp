// Pivot-skip merge (paper Algorithm 1, IntersectPS) for degree-skewed
// pairs: iteratively fix a pivot in one array and jump the other array's
// offset to the lower bound, so a skewed intersection costs
// O(Σ log(skip) + d_small) instead of O(d_small + d_large).
#pragma once

#include <span>

#include "intersect/counters.hpp"
#include "intersect/lower_bound.hpp"
#include "util/types.hpp"

namespace aecnc::intersect {

template <typename Counter = NullCounter>
[[nodiscard]] CnCount pivot_skip_count(std::span<const VertexId> a,
                                       std::span<const VertexId> b,
                                       Counter& counter,
                                       bool prefetch = true) {
  std::size_t i = 0, j = 0;
  CnCount c = 0;
  const std::size_t na = a.size(), nb = b.size();
  if (na == 0 || nb == 0) return 0;
  while (true) {
    i = gallop_lower_bound(a, i, b[j], counter, prefetch);
    if (i >= na) return c;
    j = gallop_lower_bound(b, j, a[i], counter, prefetch);
    if (j >= nb) return c;
    if (a[i] == b[j]) {
      ++c;
      counter.match();
      ++i;
      ++j;
      if (i >= na || j >= nb) return c;
    }
  }
}

[[nodiscard]] CnCount pivot_skip_count(std::span<const VertexId> a,
                                       std::span<const VertexId> b,
                                       bool prefetch = true);

#if AECNC_HAVE_SIMD_KERNELS
/// Pivot-skip using the AVX2 lower bound for the linear stage. Same
/// skipping schedule, vectorized probes. Defined in dispatch.cpp; call
/// only when cpu_has_avx2() is true.
[[nodiscard]] CnCount pivot_skip_count_avx2(std::span<const VertexId> a,
                                            std::span<const VertexId> b,
                                            bool prefetch = true);
#endif

}  // namespace aecnc::intersect
