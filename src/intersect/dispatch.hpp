// Hybrid MPS dispatch (paper Algorithm 1, lines 1-5).
//
// MPS picks the pivot-skip merge for high cardinality skew
// (d_u/d_v > t or d_v/d_u > t) and the block-wise vectorized merge
// otherwise. The vector ISA is selected at runtime from cpuid so one
// binary runs on any x86-64 host.
#pragma once

#include <span>
#include <string_view>

#include "intersect/block_merge.hpp"
#include "intersect/counters.hpp"
#include "intersect/pivot_skip.hpp"
#include "util/types.hpp"

namespace aecnc::intersect {

/// Which merge kernel VB uses for the non-skewed case.
enum class MergeKind {
  kScalar,       // textbook two-pointer merge (the baseline "M")
  kBranchless,   // branch-free two-pointer merge
  kBlockScalar,  // portable block-wise all-pair merge (width 8)
  kSse,          // 4-lane SSE2 VB kernel (baseline x86-64)
  kAvx2,         // 8-lane AVX2 VB kernel
  kAvx512,       // 16-lane AVX-512F VB kernel
};

[[nodiscard]] std::string_view merge_kind_name(MergeKind kind);

/// Runtime ISA checks (cached cpuid).
[[nodiscard]] bool cpu_has_avx2();
[[nodiscard]] bool cpu_has_avx512();

/// The widest kernel this host supports.
[[nodiscard]] MergeKind best_merge_kind();

/// True when `kind` can execute on this host.
[[nodiscard]] bool merge_kind_supported(MergeKind kind);

/// MPS tuning knobs.
struct MpsConfig {
  /// Degree-skew ratio above which the pivot-skip path is taken. The
  /// paper uses the empirical threshold 50 (§5.1, footnote 1).
  double skew_threshold = 50.0;
  /// Kernel for the non-skewed (VB) path.
  MergeKind kind = MergeKind::kBlockScalar;
  /// Use the AVX2 lower bound inside pivot-skip when available.
  bool vectorized_search = true;
  /// Issue software prefetches for galloping probe targets
  /// (AECNC_PREFETCH; core::Options::prefetch is the driver-level master
  /// switch that overwrites this per call).
  bool prefetch = true;
  /// Prefetch upcoming block pairs inside the VB merge kernels. Gated
  /// separately from `prefetch` because the VB access pattern is already
  /// sequential enough for the hardware prefetcher: BENCH_hotpath
  /// measured the software hints as a ~1% regression there (vb_on_ms
  /// 3794 vs vb_off_ms 3744), so this defaults off while the
  /// irregular-access hints above stay on. See docs/perf.md §2.
  bool vb_prefetch = false;
};

/// One VB-path intersection with the configured kernel.
[[nodiscard]] CnCount vb_count(std::span<const VertexId> a,
                               std::span<const VertexId> b, MergeKind kind,
                               bool prefetch = true);

/// One MPS intersection: dispatches on the skew of the two set sizes.
[[nodiscard]] CnCount mps_count(std::span<const VertexId> a,
                                std::span<const VertexId> b,
                                const MpsConfig& config);

/// Instrumented MPS intersection; counts the same work the dispatched
/// kernel would do.
///
/// Byte accounting matches each path's actual traffic: the merge paths
/// stream both arrays end to end; the pivot-skip path streams the small
/// array but touches only one cache line per search step of the large
/// one — precisely the saving that makes MPS beat M on skewed graphs.
/// All vector kinds use the width-8 block schedule (as the AVX2/AVX-512
/// kernels do); the modeled per-step cost scales with the lane count.
template <typename Counter>
[[nodiscard]] CnCount mps_count_instrumented(std::span<const VertexId> a,
                                             std::span<const VertexId> b,
                                             const MpsConfig& config,
                                             Counter& counter) {
  counter.intersection();
  const double da = static_cast<double>(a.size());
  const double db = static_cast<double>(b.size());
  const bool skewed = da > config.skew_threshold * db ||
                      db > config.skew_threshold * da;
  if (skewed) {
    if constexpr (Counter::kEnabled) {
      const auto before_gallop = counter.gallop_steps;
      const auto before_binary = counter.binary_steps;
      const auto before_linear = counter.linear_probes;
      const CnCount c = pivot_skip_count(a, b, counter);
      const std::uint64_t steps = (counter.gallop_steps - before_gallop) +
                                  (counter.binary_steps - before_binary) +
                                  (counter.linear_probes - before_linear);
      counter.bytes_streamed(std::min(a.size(), b.size()) * sizeof(VertexId) +
                             steps * 64);
      return c;
    } else {
      return pivot_skip_count(a, b, counter);
    }
  }
  counter.bytes_streamed((a.size() + b.size()) * sizeof(VertexId));
  switch (config.kind) {
    case MergeKind::kScalar:
    case MergeKind::kBranchless:
      return merge_count(a, b, counter);
    case MergeKind::kSse:
      return block_merge_count<4>(a, b, counter);
    case MergeKind::kBlockScalar:
    case MergeKind::kAvx2:
    case MergeKind::kAvx512:
      return block_merge_count<8>(a, b, counter);
  }
  return merge_count(a, b, counter);
}

}  // namespace aecnc::intersect
