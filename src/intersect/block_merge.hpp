// Vectorized block-wise merge (VB) — paper §3.1, Figure 1, after Inoue et
// al. [14]. Both arrays advance a block at a time; each step performs an
// all-pair comparison between the resident blocks (one vector compare per
// rotation), accumulates match counts, then advances the block whose last
// element is smaller.
//
// Correctness relies on adjacency lists being strictly ascending (no
// duplicates): any value lives in exactly one block per array, and a given
// block pair is resident together at most once, so no match is counted
// twice.
//
// This header provides the portable reference with a compile-time block
// width (used for tests and for instrumented runs where the width models
// AVX2=8 or AVX-512=16); the intrinsics kernels live in vb_avx2.cpp /
// vb_avx512.cpp.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>

#include "intersect/counters.hpp"
#include "intersect/merge.hpp"
#include "util/prefetch.hpp"
#include "util/types.hpp"

namespace aecnc::intersect {

/// Portable block-wise merge with block width W. With `prefetch`, each
/// step requests the block pair kBlockPrefetchDistance elements ahead on
/// both streams so the loads land before the compare ladder needs them.
template <std::size_t W, typename Counter = NullCounter>
[[nodiscard]] CnCount block_merge_count(std::span<const VertexId> a,
                                        std::span<const VertexId> b,
                                        Counter& counter,
                                        bool prefetch = true) {
  static_assert(W >= 2 && (W & (W - 1)) == 0, "width must be a power of 2");
  std::size_t i = 0, j = 0;
  CnCount c = 0;
  const std::size_t na = a.size(), nb = b.size();

  while (i + W <= na && j + W <= nb) {
    counter.block_step();
    if (prefetch) {
      util::prefetch_ro(&a[std::min(i + util::kBlockPrefetchDistance, na - 1)]);
      util::prefetch_ro(&b[std::min(j + util::kBlockPrefetchDistance, nb - 1)]);
    }
    // All-pair comparison of the two resident blocks. A real vector unit
    // does this as W rotate+compare steps; the scalar loop is the exact
    // same comparison set.
    for (std::size_t x = 0; x < W; ++x) {
      const VertexId ax = a[i + x];
      for (std::size_t y = 0; y < W; ++y) {
        c += static_cast<CnCount>(ax == b[j + y]);
      }
    }
    const VertexId a_last = a[i + W - 1];
    const VertexId b_last = b[j + W - 1];
    // Advance the block(s) with the smaller last element.
    if (a_last <= b_last) i += W;
    if (b_last <= a_last) j += W;
  }

  // Scalar tail.
  c += merge_count(a.subspan(i), b.subspan(j), counter);
  return c;
}

/// Convenience: width-8 (AVX2-shaped) portable block merge.
[[nodiscard]] CnCount block_merge_count8(std::span<const VertexId> a,
                                         std::span<const VertexId> b,
                                         bool prefetch = true);

/// SSE2 kernel: 4-lane blocks, pshufd rotations + pcmpeqd. Baseline
/// x86-64 — always available, no runtime dispatch needed.
[[nodiscard]] CnCount vb_count_sse(std::span<const VertexId> a,
                                   std::span<const VertexId> b,
                                   bool prefetch = true);

#if AECNC_HAVE_SIMD_KERNELS
/// AVX2 kernel: 8-lane blocks, vpermd rotations + vpcmpeqd, counts
/// accumulated in a vector register (Figure 1's layout).
[[nodiscard]] CnCount vb_count_avx2(std::span<const VertexId> a,
                                    std::span<const VertexId> b,
                                    bool prefetch = true);

/// AVX-512F kernel: 16-lane blocks, vpermd rotations + mask compare with
/// mask popcount accumulation.
[[nodiscard]] CnCount vb_count_avx512(std::span<const VertexId> a,
                                      std::span<const VertexId> b,
                                      bool prefetch = true);
#endif

}  // namespace aecnc::intersect
