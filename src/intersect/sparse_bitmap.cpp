#include "intersect/sparse_bitmap.hpp"

#include <algorithm>

namespace aecnc::intersect {

SparseBitmap::SparseBitmap(std::span<const VertexId> sorted_elements) {
  for (const VertexId v : sorted_elements) {
    const auto word = static_cast<std::uint32_t>(v >> 6);
    const std::uint64_t bit = 1ULL << (v & 63);
    if (offsets_.empty() || offsets_.back() != word) {
      offsets_.push_back(word);
      words_.push_back(bit);
    } else {
      words_.back() |= bit;
    }
  }
}

std::uint64_t SparseBitmap::cardinality() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t w : words_) {
    total += static_cast<std::uint64_t>(std::popcount(w));
  }
  return total;
}

bool SparseBitmap::contains(VertexId v) const noexcept {
  const auto word = static_cast<std::uint32_t>(v >> 6);
  const auto it = std::lower_bound(offsets_.begin(), offsets_.end(), word);
  if (it == offsets_.end() || *it != word) return false;
  const auto idx = static_cast<std::size_t>(it - offsets_.begin());
  return (words_[idx] >> (v & 63)) & 1ULL;
}

CnCount sparse_bitmap_intersect_count(const SparseBitmap& a,
                                      const SparseBitmap& b) {
  NullCounter null;
  return sparse_bitmap_intersect_count(a, b, null);
}

SparseBitmapIndex::SparseBitmapIndex(const graph::Csr& g) {
  bitmaps_.reserve(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    bitmaps_.emplace_back(g.neighbors(u));
  }
}

std::uint64_t SparseBitmapIndex::memory_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : bitmaps_) total += b.memory_bytes();
  return total;
}

}  // namespace aecnc::intersect
