// Instrumentation policy for the intersection kernels.
//
// Every kernel is templated on a Counter. NullCounter compiles to nothing
// (native timing runs pay zero cost); StatsCounter accumulates the work
// profile that the perf models (src/perf) convert into modeled time for
// the processors this machine does not have (KNL thread counts, GPU).
#pragma once

#include <cstdint>

namespace aecnc::intersect {

/// No-op counter: the default for production runs. All methods are
/// trivially inlined away.
struct NullCounter {
  static constexpr bool kEnabled = false;

  void scalar_cmp(std::uint64_t = 1) noexcept {}
  void block_step() noexcept {}
  void gallop_step() noexcept {}
  void binary_step() noexcept {}
  void linear_probe() noexcept {}
  void match(std::uint64_t = 1) noexcept {}
  void bitmap_set(std::uint64_t = 1) noexcept {}
  void bitmap_probe(std::uint64_t = 1) noexcept {}
  void rf_probe(std::uint64_t = 1) noexcept {}
  void rf_skip(std::uint64_t = 1) noexcept {}
  void bytes_streamed(std::uint64_t) noexcept {}
  void intersection() noexcept {}
};

/// Accumulating counter: one per instrumented thread/run; merged with +=.
struct StatsCounter {
  static constexpr bool kEnabled = true;

  std::uint64_t scalar_cmps = 0;     // element comparisons in merge loops
  std::uint64_t block_steps = 0;     // VB all-pair block advances
  std::uint64_t gallop_steps = 0;    // exponential-skip probes
  std::uint64_t binary_steps = 0;    // binary-search probes
  std::uint64_t linear_probes = 0;   // vectorized-linear-search blocks
  std::uint64_t matches = 0;         // common neighbors found
  std::uint64_t bitmap_sets = 0;     // bitmap set/flip operations
  std::uint64_t bitmap_probes = 0;   // random reads of the |V|-bit bitmap
  std::uint64_t rf_probes = 0;       // summary (range-filter) bitmap reads
  std::uint64_t rf_skips = 0;        // big-bitmap reads avoided by RF
  std::uint64_t streamed_bytes = 0;  // sequential bytes through the kernels
  std::uint64_t intersections = 0;   // set intersections performed

  void scalar_cmp(std::uint64_t n = 1) noexcept { scalar_cmps += n; }
  void block_step() noexcept { ++block_steps; }
  void gallop_step() noexcept { ++gallop_steps; }
  void binary_step() noexcept { ++binary_steps; }
  void linear_probe() noexcept { ++linear_probes; }
  void match(std::uint64_t n = 1) noexcept { matches += n; }
  void bitmap_set(std::uint64_t n = 1) noexcept { bitmap_sets += n; }
  void bitmap_probe(std::uint64_t n = 1) noexcept { bitmap_probes += n; }
  void rf_probe(std::uint64_t n = 1) noexcept { rf_probes += n; }
  void rf_skip(std::uint64_t n = 1) noexcept { rf_skips += n; }
  void bytes_streamed(std::uint64_t n) noexcept { streamed_bytes += n; }
  void intersection() noexcept { ++intersections; }

  StatsCounter& operator+=(const StatsCounter& other) noexcept {
    scalar_cmps += other.scalar_cmps;
    block_steps += other.block_steps;
    gallop_steps += other.gallop_steps;
    binary_steps += other.binary_steps;
    linear_probes += other.linear_probes;
    matches += other.matches;
    bitmap_sets += other.bitmap_sets;
    bitmap_probes += other.bitmap_probes;
    rf_probes += other.rf_probes;
    rf_skips += other.rf_skips;
    streamed_bytes += other.streamed_bytes;
    intersections += other.intersections;
    return *this;
  }
};

}  // namespace aecnc::intersect
