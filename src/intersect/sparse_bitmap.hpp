// Sparse-bitmap set representation — the third related-work family the
// paper describes (§2.2.1, [1] EmptyHeaded, [13] Han et al., [16]
// Roaring): a neighbor set is stored as an `offsets` array of non-empty
// 64-bit word indexes plus the matching `words` bit-states. Intersection
// merges the offset arrays and ANDs + popcounts the word payloads on
// offset matches.
//
// As the paper notes, making the bit-states compact requires (offline)
// graph reordering; the representation is precomputed once per graph
// (SparseBitmapIndex), unlike BMP's dynamically built dense bitmap —
// this is exactly the trade-off §2.2.1 discusses, and the ablation bench
// quantifies it.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "intersect/counters.hpp"
#include "util/types.hpp"

namespace aecnc::intersect {

/// One set as (word offset, 64-bit payload) runs.
class SparseBitmap {
 public:
  SparseBitmap() = default;

  /// Build from a sorted unique element list.
  explicit SparseBitmap(std::span<const VertexId> sorted_elements);

  [[nodiscard]] std::size_t num_words() const noexcept {
    return offsets_.size();
  }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return offsets_.size() * (sizeof(std::uint32_t) + sizeof(std::uint64_t));
  }

  /// Number of stored elements (sum of payload popcounts).
  [[nodiscard]] std::uint64_t cardinality() const noexcept;

  [[nodiscard]] bool contains(VertexId v) const noexcept;

  [[nodiscard]] std::span<const std::uint32_t> offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

 private:
  std::vector<std::uint32_t> offsets_;  // sorted non-empty word indexes
  std::vector<std::uint64_t> words_;    // parallel bit-state payloads
};

/// |A ∩ B| by merging offset arrays and popcounting ANDed payloads.
template <typename Counter = NullCounter>
[[nodiscard]] CnCount sparse_bitmap_intersect_count(const SparseBitmap& a,
                                                    const SparseBitmap& b,
                                                    Counter& counter) {
  const auto ao = a.offsets();
  const auto bo = b.offsets();
  const auto aw = a.words();
  const auto bw = b.words();
  std::size_t i = 0, j = 0;
  CnCount c = 0;
  while (i < ao.size() && j < bo.size()) {
    counter.scalar_cmp();
    if (ao[i] < bo[j]) {
      ++i;
    } else if (ao[i] > bo[j]) {
      ++j;
    } else {
      const std::uint64_t hits = aw[i] & bw[j];
      const auto matched = static_cast<CnCount>(std::popcount(hits));
      c += matched;
      counter.match(matched);
      ++i;
      ++j;
    }
  }
  return c;
}

[[nodiscard]] CnCount sparse_bitmap_intersect_count(const SparseBitmap& a,
                                                    const SparseBitmap& b);

/// Precomputed sparse bitmaps for every vertex of a graph (the offline
/// auxiliary structure the related work builds).
class SparseBitmapIndex {
 public:
  explicit SparseBitmapIndex(const graph::Csr& g);

  [[nodiscard]] const SparseBitmap& of(VertexId u) const noexcept {
    return bitmaps_[u];
  }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept;

 private:
  std::vector<SparseBitmap> bitmaps_;
};

}  // namespace aecnc::intersect
