// AVX2 packed-hub popcount kernel (compiled with -mavx2).
//
// Per step: widen 4 uint16 block ids to 32-bit lanes, gather the 4 dense
// words they address (vpgatherdq, scale 8), AND with the 4 packed words,
// and popcount the result with the vpshufb nibble-LUT trick (no scalar
// popcnt round-trip). A 64-bit lane popcount is: split each byte into
// nibbles, look both up in a 16-entry bit-count table, add, then vpsadbw
// against zero to sum the 8 byte counts into the lane. Finish with a
// scalar tail of up to 3 entries.
#include <immintrin.h>

#include <cstdint>
#include <span>

#include "intersect/packed_index.hpp"

namespace aecnc::intersect {
namespace {

// Per-nibble set-bit counts for vpshufb, replicated across both 128-bit
// halves (vpshufb looks up within each half independently).
const __m256i kNibbleCounts = _mm256_setr_epi8(
    0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);

}  // namespace

CnCount packed_intersect_count_avx2(
    const PackedHubIndex::Word* dense,
    std::span<const PackedHubIndex::BlockId> blocks,
    std::span<const PackedHubIndex::Word> words) {
  constexpr std::size_t W = 4;
  const std::size_t n = blocks.size();
  std::size_t k = 0;

  const __m256i low_nibbles = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();  // per-lane popcount sums
  while (k + W <= n) {
    // 4 uint16 block ids -> 4 int32 gather indices.
    const __m128i ids16 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(blocks.data() + k));
    const __m128i idx = _mm_cvtepu16_epi32(ids16);
    const __m256i hits = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(dense), idx, 8);
    const __m256i packed = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words.data() + k));
    const __m256i both = _mm256_and_si256(hits, packed);
    // Nibble-LUT popcount of each 64-bit lane.
    const __m256i lo = _mm256_and_si256(both, low_nibbles);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi64(both, 4), low_nibbles);
    const __m256i counts =
        _mm256_add_epi8(_mm256_shuffle_epi8(kNibbleCounts, lo),
                        _mm256_shuffle_epi8(kNibbleCounts, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(counts,
                                                _mm256_setzero_si256()));
    k += W;
  }

  alignas(32) std::uint64_t lanes[W];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  CnCount c = 0;
  for (const std::uint64_t lane : lanes) c += static_cast<CnCount>(lane);

  // Scalar tail.
  for (; k < n; ++k) {
    c += static_cast<CnCount>(
        __builtin_popcountll(dense[blocks[k]] & words[k]));
  }
  return c;
}

}  // namespace aecnc::intersect
