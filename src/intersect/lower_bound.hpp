// Lower-bound search kernels for the pivot-skip merge (paper §3.1).
//
// PS fixes a pivot in one array and skips in the other to the lower bound
// of elements >= pivot. The paper composes three searches:
//   1. a short *vectorized linear search* near the current offset (the
//     common case: the lower bound is close),
//   2. a *galloping search* skipping at 2^4, 2^5, ... if the linear probe
//     fails, and
//   3. a *binary search* inside the final gallop window [2^i, 2^{i+1}).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "intersect/counters.hpp"
#include "util/prefetch.hpp"
#include "util/types.hpp"

namespace aecnc::intersect {

/// How many elements the linear-probe stage scans before falling back to
/// galloping. One AVX2 register holds 8 x u32; the paper probes a few
/// registers worth.
inline constexpr std::size_t kLinearProbeWindow = 16;

/// First exponent of the galloping schedule (the paper starts at 2^4).
inline constexpr std::uint32_t kGallopFirstShift = 4;

/// Scalar binary search: first index in [from, a.size()) with a[i] >= key.
/// With `prefetch`, both candidate midpoints of the *next* halving are
/// prefetched while the current compare resolves — the classic trick for
/// hiding DRAM latency on the first few (cache-cold) levels.
template <typename Counter = NullCounter>
[[nodiscard]] std::size_t binary_lower_bound(std::span<const VertexId> a,
                                             std::size_t from, VertexId key,
                                             Counter& counter,
                                             bool prefetch = true) {
  std::size_t lo = from, hi = a.size();
  while (lo < hi) {
    counter.binary_step();
    const std::size_t mid = lo + (hi - lo) / 2;
    if (prefetch && hi - lo > 2 * kLinearProbeWindow) {
      // Next midpoint is one of these two, depending on the compare.
      util::prefetch_ro(&a[(lo + mid) / 2]);
      util::prefetch_ro(&a[mid + (hi - mid) / 2]);
    }
    if (a[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Composite lower bound: linear probe window, then galloping + binary.
/// Returns the first index i >= from with a[i] >= key (a.size() if none).
template <typename Counter = NullCounter>
[[nodiscard]] std::size_t gallop_lower_bound(std::span<const VertexId> a,
                                             std::size_t from, VertexId key,
                                             Counter& counter,
                                             bool prefetch = true) {
  const std::size_t n = a.size();
  // Stage 1: linear probe of the next few elements.
  const std::size_t probe_end = std::min(n, from + kLinearProbeWindow);
  for (std::size_t i = from; i < probe_end; ++i) {
    counter.linear_probe();
    if (a[i] >= key) return i;
  }
  if (probe_end == n) return n;

  // Stage 2: gallop from the probe window at exponentially growing steps.
  // Each probe target a[next] is a fresh cache line once the step passes a
  // few lines, so with `prefetch` the *following* probe target (at twice
  // the step) is requested while the current compare resolves.
  std::size_t prev = probe_end;
  std::size_t step = std::size_t{1} << kGallopFirstShift;
  std::size_t next = prev + step;
  while (next < n) {
    if (prefetch) util::prefetch_ro(&a[std::min(next + (step << 1), n - 1)]);
    if (a[next] >= key) break;
    counter.gallop_step();
    prev = next;
    step <<= 1;
    next = prev + step;
  }

  // Stage 3: binary search within (prev, min(next, n)].
  const std::size_t hi = std::min(next + 1, n);
  std::span<const VertexId> window = a.first(hi);
  return binary_lower_bound(window, prev, key, counter, prefetch);
}

/// Non-template convenience wrappers.
[[nodiscard]] std::size_t binary_lower_bound(std::span<const VertexId> a,
                                             std::size_t from, VertexId key);
[[nodiscard]] std::size_t gallop_lower_bound(std::span<const VertexId> a,
                                             std::size_t from, VertexId key);

#if AECNC_HAVE_SIMD_KERNELS
/// AVX2 lower bound: 8-lane vectorized linear scan then gallop+binary.
/// Defined in lower_bound_simd.cpp (compiled with -mavx2); call only when
/// cpu_has_avx2() is true.
[[nodiscard]] std::size_t gallop_lower_bound_avx2(std::span<const VertexId> a,
                                                  std::size_t from,
                                                  VertexId key,
                                                  bool prefetch = true);
#endif

}  // namespace aecnc::intersect
