#include "intersect/packed_index.hpp"

#include <algorithm>

#include "check/check.hpp"
#include "intersect/dispatch.hpp"
#include "obs/catalog.hpp"
#include "util/prefetch.hpp"

namespace aecnc::intersect {

#if AECNC_HAVE_SIMD_KERNELS
// Defined in packed_avx2.cpp (compiled with -mavx2).
CnCount packed_intersect_count_avx2(const PackedHubIndex::Word* dense,
                                    std::span<const PackedHubIndex::BlockId> blocks,
                                    std::span<const PackedHubIndex::Word> words);
#endif

namespace {

CnCount packed_intersect_count_scalar(
    const PackedHubIndex::Word* dense,
    std::span<const PackedHubIndex::BlockId> blocks,
    std::span<const PackedHubIndex::Word> words) {
  CnCount c = 0;
  const std::size_t n = blocks.size();
  for (std::size_t k = 0; k < n; ++k) {
    c += static_cast<CnCount>(
        __builtin_popcountll(dense[blocks[k]] & words[k]));
  }
  return c;
}

// Branchless probe of the |V|-bit word array: load, shift, mask — no
// compare, no mispredicts. Four independent accumulators break the
// serial add chain, so the loop runs at ~1 probe/cycle where the branchy
// `if (test(v)) ++c` shape in bitmap_intersect_count measures ~4
// cycles/probe on the same inputs (docs/perf.md §4).
std::uint64_t probe_words(const PackedHubIndex::Word* words,
                          const VertexId* a, std::size_t n) {
  std::uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += (words[a[i + 0] >> 6] >> (a[i + 0] & 63)) & 1;
    c1 += (words[a[i + 1] >> 6] >> (a[i + 1] & 63)) & 1;
    c2 += (words[a[i + 2] >> 6] >> (a[i + 2] & 63)) & 1;
    c3 += (words[a[i + 3] >> 6] >> (a[i + 3] & 63)) & 1;
  }
  for (; i < n; ++i) {
    c0 += (words[a[i] >> 6] >> (a[i] & 63)) & 1;
  }
  return c0 + c1 + c2 + c3;
}

}  // namespace

PackedHubIndex PackedHubIndex::build(const graph::Csr& g, VertexId threshold) {
  AECNC_CHECK(threshold > 0 && threshold <= 65536)
      << "PackedHubIndex: threshold " << threshold
      << " outside (0, 65536] — block ids must fit uint16";
  PackedHubIndex index;
  index.threshold_ = threshold;
  const VertexId n = g.num_vertices();
  index.entry_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  index.head_sizes_.assign(n, 0);
  for (VertexId u = 0; u < n; ++u) {
    VertexId prev_block = kInvalidVertex;
    std::uint64_t entries = 0;
    std::uint32_t head = 0;
    for (const VertexId v : g.neighbors(u)) {
      if (v >= threshold) break;  // sorted adjacency: the head is a prefix
      ++head;
      const VertexId block = v / 64;
      if (block != prev_block) {
        ++entries;
        prev_block = block;
      }
    }
    index.head_sizes_[u] = head;
    index.entry_offsets_[u + 1] = index.entry_offsets_[u] + entries;
  }
  index.block_ids_.resize(index.entry_offsets_[n]);
  index.words_.resize(index.entry_offsets_[n]);
  for (VertexId u = 0; u < n; ++u) {
    std::uint64_t out = index.entry_offsets_[u];
    VertexId prev_block = kInvalidVertex;
    for (const VertexId v : g.neighbors(u)) {
      if (v >= threshold) break;
      const VertexId block = v / 64;
      if (block != prev_block) {
        index.block_ids_[out] = static_cast<BlockId>(block);
        index.words_[out] = 0;
        ++out;
        prev_block = block;
      }
      index.words_[out - 1] |= Word{1} << (v % 64);
    }
    AECNC_DCHECK(out == index.entry_offsets_[u + 1]);
  }
  if (obs::enabled()) [[unlikely]] {
    obs::KernelMetrics::get().pack_words.add(index.words_.size());
  }
  return index;
}

CnCount packed_intersect_count(const PackedHubIndex::Word* dense,
                               std::span<const PackedHubIndex::BlockId> blocks,
                               std::span<const PackedHubIndex::Word> words) {
#if AECNC_HAVE_SIMD_KERNELS
  if (cpu_has_avx2()) {
    return packed_intersect_count_avx2(dense, blocks, words);
  }
#endif
  return packed_intersect_count_scalar(dense, blocks, words);
}

void PackedCounter::reshape(const graph::Csr& g, const PackedHubIndex& index) {
  dense_.assign(index.num_blocks(), 0);
  full_.assign((static_cast<std::size_t>(g.num_vertices()) + 63) / 64, 0);
  dense_loaded_ = false;
  source_ = kInvalidVertex;
}

void PackedCounter::set_source(const graph::Csr& g,
                               const PackedHubIndex& index, VertexId u) {
  if (u == source_) return;
  clear_source(g, index);
  for (const VertexId w : g.neighbors(u)) {
    full_[w >> 6] |= PackedHubIndex::Word{1} << (w & 63);
  }
  source_ = u;
  if (obs::enabled()) [[unlikely]] {
    obs::KernelMetrics::get().pack_builds.add();
  }
}

void PackedCounter::clear_source(const graph::Csr& g,
                                 const PackedHubIndex& index) {
  if (source_ == kInvalidVertex) return;
  for (const VertexId w : g.neighbors(source_)) {
    full_[w >> 6] &= ~(PackedHubIndex::Word{1} << (w & 63));
  }
  if (dense_loaded_) {
    for (const PackedHubIndex::BlockId block : index.block_ids(source_)) {
      dense_[block] = 0;
    }
    dense_loaded_ = false;
  }
  source_ = kInvalidVertex;
}

void PackedCounter::ensure_dense(const PackedHubIndex& index) {
  if (dense_loaded_) return;
  const auto blocks = index.block_ids(source_);
  const auto words = index.words(source_);
  // Exactly one packed entry per block, so a direct store expands the
  // head without read-modify-write.
  for (std::size_t k = 0; k < blocks.size(); ++k) {
    dense_[blocks[k]] = words[k];
  }
  dense_loaded_ = true;
}

std::uint64_t PackedCounter::probe_count(std::span<const VertexId> ids,
                                         bool prefetch) const {
  const PackedHubIndex::Word* words = full_.data();
  if (prefetch && full_.size() * sizeof(PackedHubIndex::Word) >=
                      util::kIndexPrefetchMinBytes) {
    // Bitmap too big for cache residency: trade the unrolled shape for a
    // lookahead hint, same policy as bitmap_intersect_count.
    std::uint64_t c = 0;
    const std::size_t n = ids.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (i + util::kBitmapPrefetchDistance < n) {
        util::prefetch_ro(&words[ids[i + util::kBitmapPrefetchDistance] >> 6]);
      }
      c += (words[ids[i] >> 6] >> (ids[i] & 63)) & 1;
    }
    return c;
  }
  return probe_words(words, ids.data(), ids.size());
}

CnCount PackedCounter::count(const graph::Csr& g, const PackedHubIndex& index,
                             VertexId v, bool prefetch) {
  AECNC_DCHECK(source_ != kInvalidVertex);
  const auto nv = g.neighbors(v);
  const auto blocks = index.block_ids(v);
  const std::uint32_t head = index.head_size(v);
  if (blocks.size() * kPopcountDensity < head) {
    ensure_dense(index);
    CnCount c = packed_intersect_count(dense_.data(), blocks, index.words(v));
    c += static_cast<CnCount>(probe_count(nv.subspan(head), prefetch));
    if (obs::enabled()) [[unlikely]] {
      obs::KernelMetrics::get().pack_popcounts.add(blocks.size());
    }
    return c;
  }
  if (obs::enabled()) [[unlikely]] {
    obs::KernelMetrics::get().pack_fallbacks.add();
  }
  return static_cast<CnCount>(probe_count(nv, prefetch));
}

std::vector<CnCount> packed_count_all_edges(const graph::Csr& g,
                                            const PackedHubIndex& index,
                                            bool prefetch) {
  PackedCounter ctx;
  ctx.reshape(g, index);
  std::vector<CnCount> cnt(g.num_directed_edges(), 0);
  const EdgeId* rev = g.reverse_offsets().data();
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nu = g.neighbors(u);
    const EdgeId begin = g.offset_begin(u);
    for (std::size_t k = 0; k < nu.size(); ++k) {
      const VertexId v = nu[k];
      if (u >= v) continue;
      // Same lazy discipline as run_bmp: the source loads on the first
      // forward edge and clears before the next loaded source.
      ctx.set_source(g, index, u);
      const EdgeId euv = begin + k;
      cnt[euv] = ctx.count(g, index, v, prefetch);
      cnt[rev[euv]] = cnt[euv];
    }
  }
  ctx.clear_source(g, index);
  return cnt;
}

bool PackedCounter::all_zero() const {
  return source_ == kInvalidVertex && !dense_loaded_ &&
         std::all_of(dense_.begin(), dense_.end(),
                     [](PackedHubIndex::Word w) { return w == 0; }) &&
         std::all_of(full_.begin(), full_.end(),
                     [](PackedHubIndex::Word w) { return w == 0; });
}

}  // namespace aecnc::intersect
