// Word-packed hub bitmaps — the third intersection backend beside the
// merge family and the |V|-bit dynamic bitmap (paper Algorithm 2).
//
// After a degree-descending relabel (graph::reorder_degree_descending),
// hubs occupy internal IDs [0, threshold). Each vertex's neighbors below
// the threshold — its *head* — pack into (block-id, 64-bit word) pairs:
// block-id = id/64 (fits uint16 for threshold <= 65536), word = the set
// bits of the up-to-64 neighbors sharing that block. With the default
// threshold 32768, a source vertex's head expands into at most 512 dense
// words (4 KiB — cache-resident), and an intersection against another
// vertex's head is one AND+popcount per packed entry instead of one
// bitmap probe per neighbor. Neighbors at or above the threshold — the
// *tail*, a contiguous suffix of the sorted adjacency — fall back to the
// existing |V|-bit bitmap probes.
//
// The packed layout is correct on any graph; the relabel is what makes it
// *fast*, by concentrating the high-degree endpoints that dominate
// skewed-pair intersections inside the packed range.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace aecnc::intersect {

/// Neighbors below `threshold`, packed per vertex as parallel CSR-style
/// arrays of block ids and 64-bit words. Immutable after build; shared
/// read-only across threads.
class PackedHubIndex {
 public:
  using BlockId = std::uint16_t;
  using Word = std::uint64_t;

  /// 512 dense words = 4 KiB of scratch per execution context; also the
  /// largest threshold whose block ids fit a uint16.
  static constexpr VertexId kDefaultThreshold = 32768;

  PackedHubIndex() = default;

  /// Pack every vertex's sub-threshold neighbors. O(|E|).
  static PackedHubIndex build(const graph::Csr& g,
                              VertexId threshold = kDefaultThreshold);

  [[nodiscard]] VertexId threshold() const noexcept { return threshold_; }
  [[nodiscard]] std::uint64_t num_blocks() const noexcept {
    return (static_cast<std::uint64_t>(threshold_) + 63) / 64;
  }

  /// Packed (block-id, word) entries of v's head.
  [[nodiscard]] std::span<const BlockId> block_ids(VertexId v) const noexcept {
    return {block_ids_.data() + entry_offsets_[v],
            block_ids_.data() + entry_offsets_[v + 1]};
  }
  [[nodiscard]] std::span<const Word> words(VertexId v) const noexcept {
    return {words_.data() + entry_offsets_[v],
            words_.data() + entry_offsets_[v + 1]};
  }

  /// Number of leading neighbors of v with id < threshold; the tail
  /// N(v)[head_size(v):] is the contiguous sorted suffix of ids >=
  /// threshold (adjacency is sorted, so the split is a prefix/suffix).
  [[nodiscard]] std::uint32_t head_size(VertexId v) const noexcept {
    return head_sizes_[v];
  }

  [[nodiscard]] std::uint64_t total_words() const noexcept {
    return words_.size();
  }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return entry_offsets_.size() * sizeof(std::uint64_t) +
           head_sizes_.size() * sizeof(std::uint32_t) +
           block_ids_.size() * sizeof(BlockId) + words_.size() * sizeof(Word);
  }

 private:
  VertexId threshold_ = kDefaultThreshold;
  std::vector<std::uint64_t> entry_offsets_;  // |V| + 1
  std::vector<std::uint32_t> head_sizes_;     // |V|
  std::vector<BlockId> block_ids_;            // Σ entries
  std::vector<Word> words_;                   // Σ entries
};

/// Forward-edge sweep over the whole graph with a PackedCounter: the
/// u < v pairs are counted, mirrors filled through reverse_offsets().
/// Lives in the packed TU so the per-pair routing and the probe loop
/// inline into the sweep (the TU is pinned to -O3 — src/CMakeLists.txt);
/// core::count_sequential_bmp_packed delegates here.
[[nodiscard]] std::vector<CnCount> packed_count_all_edges(
    const graph::Csr& g, const PackedHubIndex& index, bool prefetch);

/// Count set bits of `packed ∩ dense`: for each packed entry k,
/// popcount(dense[blocks[k]] & words[k]). `dense` must hold the source
/// vertex's head expanded to num_blocks() words. Dispatches to an AVX2
/// gather+popcount kernel when the host supports it.
[[nodiscard]] CnCount packed_intersect_count(
    const PackedHubIndex::Word* dense,
    std::span<const PackedHubIndex::BlockId> blocks,
    std::span<const PackedHubIndex::Word> words);

/// Per-execution-context state for packed counting: a |V|-bit bitmap of
/// the source's whole adjacency, probed by a branchless multi-accumulator
/// loop, plus the dense head scratch (num_blocks words) feeding the
/// packed popcount path. Mirrors the lazy build/clear discipline of the
/// plain BMP contexts — set_source() is a no-op when the source is
/// unchanged, and clearing touches only the previously set entries.
///
/// Routing (docs/perf.md §4): a pair takes the AND+popcount path only
/// when v's head averages >= kPopcountDensity set bits per packed entry
/// — below that, a packed entry (10 B) streams more bytes than the
/// probes it replaces, and the branchless probe loop (~1 cycle/probe)
/// wins. The dense scratch expands lazily on the first such pair, so
/// sources whose pairs all probe never pay the expansion.
class PackedCounter {
 public:
  /// Minimum average set bits per packed entry for the popcount path.
  static constexpr std::size_t kPopcountDensity = 4;

  /// (Re)size for a graph/index pair; resets to the all-zero state.
  void reshape(const graph::Csr& g, const PackedHubIndex& index);

  /// Load u's full adjacency into the |V|-bit bitmap.
  void set_source(const graph::Csr& g, const PackedHubIndex& index,
                  VertexId u);

  /// Undo set_source (restore all-zero), if a source is loaded.
  void clear_source(const graph::Csr& g, const PackedHubIndex& index);

  /// N(u) ∩ N(v) for the currently loaded source u. Dense heads go
  /// through packed popcounts (expanding the dense scratch on first
  /// use); everything else through branchless bitmap probes.
  [[nodiscard]] CnCount count(const graph::Csr& g, const PackedHubIndex& index,
                              VertexId v, bool prefetch);

  [[nodiscard]] VertexId source() const noexcept { return source_; }
  [[nodiscard]] bool all_zero() const;

 private:
  void ensure_dense(const PackedHubIndex& index);
  [[nodiscard]] std::uint64_t probe_count(std::span<const VertexId> ids,
                                          bool prefetch) const;

  std::vector<PackedHubIndex::Word> full_;   // |V| bits: N(source)
  std::vector<PackedHubIndex::Word> dense_;  // num_blocks words
  bool dense_loaded_ = false;
  VertexId source_ = kInvalidVertex;
};

}  // namespace aecnc::intersect
