// SSE2 vectorized block-wise merge (baseline x86-64: no extra -m flags).
//
// 4-lane blocks with pshufd rotations + pcmpeqd — the original width of
// Inoue et al.'s kernel [14], completing the ISA ladder
// scalar → SSE → AVX2 → AVX-512 the vectorization bench sweeps.
#include <emmintrin.h>
#include <xmmintrin.h>

#include "intersect/block_merge.hpp"

namespace aecnc::intersect {

CnCount vb_count_sse(std::span<const VertexId> a,
                     std::span<const VertexId> b, bool prefetch) {
  constexpr std::size_t W = 4;
  std::size_t i = 0, j = 0;
  const std::size_t na = a.size(), nb = b.size();

  __m128i acc = _mm_setzero_si128();
  while (i + W <= na && j + W <= nb) {
    if (prefetch) {
      // Next block pair, far enough ahead to hide an L2 miss.
      constexpr std::size_t D = util::kBlockPrefetchDistance;
      _mm_prefetch(reinterpret_cast<const char*>(
                       a.data() + std::min(i + D, na - 1)),
                   _MM_HINT_T1);
      _mm_prefetch(reinterpret_cast<const char*>(
                       b.data() + std::min(j + D, nb - 1)),
                   _MM_HINT_T1);
    }
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.data() + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.data() + j));
    // All four rotations of vb via pshufd immediates.
    acc = _mm_sub_epi32(acc, _mm_cmpeq_epi32(va, vb));
    acc = _mm_sub_epi32(
        acc, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    acc = _mm_sub_epi32(
        acc, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    acc = _mm_sub_epi32(
        acc, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));

    const VertexId a_last = a[i + W - 1];
    const VertexId b_last = b[j + W - 1];
    if (a_last <= b_last) i += W;
    if (b_last <= a_last) j += W;
  }

  alignas(16) std::uint32_t lanes[W];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  CnCount c = 0;
  for (const std::uint32_t lane : lanes) c += lane;

  c += merge_count(a.subspan(i), b.subspan(j));
  return c;
}

}  // namespace aecnc::intersect
