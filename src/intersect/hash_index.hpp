// Hash-index set intersection — the index-based comparator from the
// related work (§2.2.1 [5,12,20] and the hash-index triangle counter of
// Shun & Tangwongsan [23]).
//
// A HashIndex is built once over one set (open addressing, linear
// probing, power-of-two capacity) and then probed per element of the
// other set. Unlike BMP's bitmap the index costs O(d) memory instead of
// O(|V|) bits, but each probe is a hash + probe chain instead of a
// single bit test — the trade-off the paper cites when motivating the
// bitmap ("put and lookup operations at the actual constant time cost
// via simple bit operations").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "intersect/counters.hpp"
#include "util/types.hpp"

namespace aecnc::intersect {

class HashIndex {
 public:
  HashIndex() = default;

  /// Build over `elements` (unique values; kInvalidVertex must not occur).
  explicit HashIndex(std::span<const VertexId> elements) { rebuild(elements); }

  void rebuild(std::span<const VertexId> elements);

  /// True iff v was in the indexed set.
  [[nodiscard]] bool contains(VertexId v) const noexcept {
    if (slots_.empty()) return false;
    std::size_t i = probe_start(v);
    while (slots_[i] != kInvalidVertex) {
      if (slots_[i] == v) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return slots_.size() * sizeof(VertexId);
  }

 private:
  [[nodiscard]] std::size_t probe_start(VertexId v) const noexcept {
    // Fibonacci hashing: multiply-shift with the golden-ratio constant.
    return static_cast<std::size_t>(
               (static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ULL) >> 33) &
           mask_;
  }

  std::vector<VertexId> slots_;
  std::size_t mask_ = 0;
};

/// |A ∩ B| by probing `index` (built over one set) with each element of
/// `a` (the other set).
template <typename Counter = NullCounter>
[[nodiscard]] CnCount hash_intersect_count(const HashIndex& index,
                                           std::span<const VertexId> a,
                                           Counter& counter) {
  CnCount c = 0;
  for (const VertexId v : a) {
    counter.bitmap_probe();  // accounted like an index probe
    if (index.contains(v)) {
      ++c;
      counter.match();
    }
  }
  return c;
}

[[nodiscard]] CnCount hash_intersect_count(const HashIndex& index,
                                           std::span<const VertexId> a);

/// One-shot convenience: builds the index over the larger set.
[[nodiscard]] CnCount hash_count(std::span<const VertexId> a,
                                 std::span<const VertexId> b);

}  // namespace aecnc::intersect
