#include "parallel/task_pool.hpp"

#include <algorithm>

#include "check/check.hpp"
#include "obs/catalog.hpp"

namespace aecnc::parallel {
namespace {

void run_workers(std::uint64_t total, std::uint64_t task_size,
                 int num_workers, ScheduleStats* stats,
                 const std::function<void(std::uint64_t, std::uint64_t, int)>&
                     body) {
  // Always-on: a zero task size makes fetch_add spin forever without
  // claiming work, which a -DNDEBUG Release build would hit silently.
  AECNC_CHECK(task_size > 0) << "task_size=" << task_size;
  const int workers = std::max(1, num_workers);
  // One shared cursor: claiming a task is one fetch_add — the cheapest
  // possible "task queue", so measured overhead is a lower bound for any
  // dynamic scheduler with this |T|.
  // aecnc: atomic-ok(per-call claim cursor; thread create/join orders
  // the initial store and final reads, claims are commutative)
  std::atomic<std::uint64_t> cursor{0};

  if (stats != nullptr) {
    stats->tasks_per_worker.assign(static_cast<std::size_t>(workers), 0);
    stats->total_tasks = 0;
  }

  const bool observed = obs::enabled();
  if (observed) obs::CoreMetrics::get().pool_runs.add();

  auto worker_loop = [&](int worker) {
    std::uint64_t claimed = 0;
    while (true) {
      const std::uint64_t begin =
          cursor.fetch_add(task_size, std::memory_order_relaxed);
      if (begin >= total) break;
      const std::uint64_t end = std::min(total, begin + task_size);
      body(begin, end, worker);
      ++claimed;
    }
    if (stats != nullptr) {
      stats->tasks_per_worker[static_cast<std::size_t>(worker)] = claimed;
    }
    // One flush per worker, not one atomic per chunk claimed.
    if (observed) obs::CoreMetrics::get().pool_chunks.add(claimed);
  };

  if (workers == 1) {
    worker_loop(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back(worker_loop, w);
    }
    for (auto& t : threads) t.join();
  }

  if (stats != nullptr) {
    for (const auto n : stats->tasks_per_worker) stats->total_tasks += n;
  }
}

}  // namespace

void parallel_for_dynamic(
    std::uint64_t total, std::uint64_t task_size, int num_workers,
    const std::function<void(std::uint64_t, std::uint64_t, int)>& body) {
  run_workers(total, task_size, num_workers, nullptr, body);
}

ScheduleStats parallel_for_dynamic_stats(
    std::uint64_t total, std::uint64_t task_size, int num_workers,
    const std::function<void(std::uint64_t, std::uint64_t, int)>& body) {
  ScheduleStats stats;
  run_workers(total, task_size, num_workers, &stats, body);
  return stats;
}

WorkerPool::WorkerPool(int num_workers) {
  const int workers = std::max(1, num_workers);
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    util::MutexLock lock(&mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run(std::uint64_t total, std::uint64_t task_size,
                     const Body& body) {
  AECNC_CHECK(task_size > 0) << "task_size=" << task_size;
  if (total == 0) return;
  if (obs::enabled()) obs::CoreMetrics::get().pool_runs.add();
  {
    util::MutexLock lock(&mutex_);
    job_total_ = total;
    job_task_size_ = task_size;
    job_body_ = &body;
    cursor_.store(0, std::memory_order_relaxed);
    active_ = num_workers();
    ++generation_;
  }
  start_cv_.notify_all();
  {
    util::MutexLock lock(&mutex_);
    while (active_ != 0) done_cv_.wait(mutex_);
    job_body_ = nullptr;
  }
}

void WorkerPool::worker_loop(int worker) {
  std::uint64_t seen_generation = 0;
  while (true) {
    std::uint64_t total;
    std::uint64_t task_size;
    const Body* body;
    {
      util::MutexLock lock(&mutex_);
      while (!(stop_ || generation_ != seen_generation)) {
        start_cv_.wait(mutex_);
      }
      if (stop_) return;
      seen_generation = generation_;
      total = job_total_;
      task_size = job_task_size_;
      body = job_body_;
    }
    {
      // Shard the chunk tally per worker per job; CounterScope flushes
      // it as one atomic add when the job's claim loop drains.
      obs::CounterScope chunks(obs::CoreMetrics::get().pool_chunks);
      const bool observed = obs::enabled();
      while (true) {
        const std::uint64_t begin =
            cursor_.fetch_add(task_size, std::memory_order_relaxed);
        if (begin >= total) break;
        (*body)(begin, std::min(total, begin + task_size), worker);
        if (observed) chunks.add();
      }
    }
    {
      util::MutexLock lock(&mutex_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

double ScheduleStats::imbalance() const {
  if (tasks_per_worker.empty() || total_tasks == 0) return 1.0;
  const double mean = static_cast<double>(total_tasks) /
                      static_cast<double>(tasks_per_worker.size());
  const auto max = *std::max_element(tasks_per_worker.begin(),
                                     tasks_per_worker.end());
  return static_cast<double>(max) / mean;
}

}  // namespace aecnc::parallel
