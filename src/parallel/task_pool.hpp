// A minimal dynamic task scheduler, independent of OpenMP.
//
// The paper's parallelization (§4) is "group |T| units into a task and
// dynamically schedule |E|/|T| tasks". OpenMP's schedule(dynamic, |T|)
// is one implementation; this pool is the other obvious one — a shared
// atomic cursor from which workers claim [begin, begin+|T|) ranges —
// and exists so the task-queue maintenance cost the paper trades
// against load balance can be measured directly
// (bench_ablation_task --scheduler=pool vs OpenMP).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace aecnc::parallel {

/// Run `body(begin, end, worker)` over dynamic chunks of [0, total) with
/// `num_workers` threads; chunk size = `task_size`. `body` must be safe
/// to call concurrently from different workers on disjoint ranges.
/// worker is the dense worker index in [0, num_workers).
void parallel_for_dynamic(
    std::uint64_t total, std::uint64_t task_size, int num_workers,
    const std::function<void(std::uint64_t begin, std::uint64_t end,
                             int worker)>& body);

/// Statistics from an instrumented run: how many tasks were claimed per
/// worker (load-balance picture) and the total queue operations.
struct ScheduleStats {
  std::vector<std::uint64_t> tasks_per_worker;
  std::uint64_t total_tasks = 0;

  [[nodiscard]] double imbalance() const;  // max/mean task share
};

/// As parallel_for_dynamic, also reporting scheduling statistics.
[[nodiscard]] ScheduleStats parallel_for_dynamic_stats(
    std::uint64_t total, std::uint64_t task_size, int num_workers,
    const std::function<void(std::uint64_t begin, std::uint64_t end,
                             int worker)>& body);

}  // namespace aecnc::parallel
