// A minimal dynamic task scheduler, independent of OpenMP.
//
// The paper's parallelization (§4) is "group |T| units into a task and
// dynamically schedule |E|/|T| tasks". OpenMP's schedule(dynamic, |T|)
// is one implementation; this pool is the other obvious one — a shared
// atomic cursor from which workers claim [begin, begin+|T|) ranges —
// and exists so the task-queue maintenance cost the paper trades
// against load balance can be measured directly
// (bench_ablation_task --scheduler=pool vs OpenMP).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace aecnc::parallel {

/// Run `body(begin, end, worker)` over dynamic chunks of [0, total) with
/// `num_workers` threads; chunk size = `task_size`. `body` must be safe
/// to call concurrently from different workers on disjoint ranges.
/// worker is the dense worker index in [0, num_workers).
void parallel_for_dynamic(
    std::uint64_t total, std::uint64_t task_size, int num_workers,
    const std::function<void(std::uint64_t begin, std::uint64_t end,
                             int worker)>& body);

/// Statistics from an instrumented run: how many tasks were claimed per
/// worker (load-balance picture) and the total queue operations.
struct ScheduleStats {
  std::vector<std::uint64_t> tasks_per_worker;
  std::uint64_t total_tasks = 0;

  [[nodiscard]] double imbalance() const;  // max/mean task share
};

/// As parallel_for_dynamic, also reporting scheduling statistics.
[[nodiscard]] ScheduleStats parallel_for_dynamic_stats(
    std::uint64_t total, std::uint64_t task_size, int num_workers,
    const std::function<void(std::uint64_t begin, std::uint64_t end,
                             int worker)>& body);

/// A persistent variant of the atomic-cursor pool: the threads outlive
/// individual run() calls, and each keeps its dense worker index for the
/// pool's lifetime. That makes per-worker state (the serve layer's
/// bitmap/hash indexes, src/serve/query_engine.hpp) reusable *across*
/// parallel regions instead of being rebuilt per call — the point of a
/// long-lived query service versus the one-shot batch skeleton.
///
/// run() is not reentrant: callers must serialize run() invocations
/// (the query engine does so with its batch mutex).
///
/// Deliberately NOT used by the sharded engine (src/shard/engine.hpp):
/// shard workers are stateful peers that block on message exchange with
/// each other, not interchangeable consumers of a shared index range, so
/// they get dedicated threads per run instead of pool slots.
class WorkerPool {
 public:
  using Body =
      std::function<void(std::uint64_t begin, std::uint64_t end, int worker)>;

  /// Spawn `num_workers` threads (clamped to >= 1) that sleep until work
  /// arrives.
  explicit WorkerPool(int num_workers);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  [[nodiscard]] int num_workers() const noexcept {
    return static_cast<int>(threads_.size());
  }

  /// Run `body(begin, end, worker)` over dynamic chunks of [0, total)
  /// with chunk size `task_size`, blocking until every chunk completed.
  /// Semantics match parallel_for_dynamic; only the thread lifetimes
  /// differ.
  void run(std::uint64_t total, std::uint64_t task_size, const Body& body);

 private:
  void worker_loop(int worker);

  std::vector<std::thread> threads_;
  // Job handoff lock. Workers only touch pool state under it; the job
  // body runs outside. First obs metric resolution inside a job can
  // register under the global registry lock.
  // aecnc: acquired-before(Registry::mutex_)
  util::Mutex mutex_;
  std::condition_variable_any start_cv_;
  std::condition_variable_any done_cv_;
  // A generation counter wakes workers exactly once per run();
  // `active_` counts workers still inside the current job.
  std::uint64_t generation_ AECNC_GUARDED_BY(mutex_) = 0;
  int active_ AECNC_GUARDED_BY(mutex_) = 0;
  bool stop_ AECNC_GUARDED_BY(mutex_) = false;
  std::uint64_t job_total_ AECNC_GUARDED_BY(mutex_) = 0;
  std::uint64_t job_task_size_ AECNC_GUARDED_BY(mutex_) = 1;
  const Body* job_body_ AECNC_GUARDED_BY(mutex_) = nullptr;
  // aecnc: atomic-ok(shared claim cursor: relaxed fetch_add is the whole
  // "task queue"; run()'s lock handoff orders the reset against workers)
  std::atomic<std::uint64_t> cursor_{0};
};

}  // namespace aecnc::parallel
