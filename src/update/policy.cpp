#include "update/policy.hpp"

#include <algorithm>

namespace aecnc::update {

std::uint64_t UpdatePolicy::full_recount_cost(
    const core::IncrementalCounter& state) {
  std::uint64_t cost = 0;
  const VertexId n = state.num_vertices();
  for (VertexId u = 0; u < n; ++u) {
    const auto nbrs = state.neighbors(u);
    const auto d_u = static_cast<std::uint64_t>(nbrs.size());
    for (const VertexId v : nbrs) {
      if (u >= v) continue;
      cost += std::min(d_u,
                       static_cast<std::uint64_t>(state.neighbors(v).size()));
    }
  }
  return cost;
}

PolicyDecision UpdatePolicy::decide(const core::IncrementalCounter& state,
                                    std::span<const Mutation> batch) const {
  PolicyDecision d;
  const VertexId n = state.num_vertices();
  for (const Mutation& m : batch) {
    // Pre-batch degrees approximate each op's intersection length; the
    // +1 charges the sorted adjacency insert/erase so inserts touching
    // fresh vertices still cost something.
    const std::uint64_t d_u =
        m.u < n ? state.neighbors(m.u).size() : 0;
    const std::uint64_t d_v =
        m.v < n ? state.neighbors(m.v).size() : 0;
    d.delta_cost += std::min(d_u, d_v) + 1;
  }
  d.full_cost = full_recount_cost(state);
  const double threshold =
      static_cast<double>(d.full_cost) / config_.recount_advantage;
  d.mode = (batch.size() >= config_.min_recount_batch &&
            static_cast<double>(d.delta_cost) > threshold)
               ? ApplyMode::kFullRecount
               : ApplyMode::kDelta;
  return d;
}

}  // namespace aecnc::update
