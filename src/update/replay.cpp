#include "update/replay.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "core/sequential.hpp"

namespace aecnc::update {

std::string verify_pipeline_counts(const UpdatePipeline& pipe,
                                   const graph::Csr& g) {
  const core::CountArray reference = core::count_sequential_mps(g, {});
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId v = nbrs[k];
      if (u >= v) continue;
      const auto maintained = pipe.state().count(u, v);
      const CnCount expected = reference[g.offset_begin(u) + k];
      if (!maintained.has_value() || *maintained != expected) {
        std::ostringstream oss;
        oss << "edge (" << u << ", " << v << "): maintained="
            << (maintained.has_value() ? std::to_string(*maintained)
                                       : std::string("none"))
            << " recount=" << expected;
        return oss.str();
      }
    }
  }
  return {};
}

bool run_replay(UpdatePipeline& pipe, serve::SnapshotStore& store,
                std::istream& in, std::ostream& out,
                const ReplayOptions& options) {
  bool ok = true;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    std::string command;
    tokens >> command;
    if (command == "add" || command == "del" || command == "remove") {
      VertexId u = 0;
      VertexId v = 0;
      if (!(tokens >> u >> v)) {
        std::fprintf(stderr, "update: bad mutation at line %llu: %s\n",
                     static_cast<unsigned long long>(line_no), line.c_str());
        out << "error: bad mutation at line " << line_no << ": " << line
            << '\n';
        ok = false;
        continue;
      }
      if (options.id_map != nullptr) {
        // External -> internal before admission; out-of-range externals
        // pass through unchanged and get rejected exactly as before.
        u = options.id_map->to_internal(u);
        v = options.id_map->to_internal(v);
      }
      const Mutation m{command == "add" ? kAddEdge : kDelEdge, u, v};
      // Stage through the bounded log; a full log sheds here, so drain
      // (apply a policy-routed batch) and resubmit — the single-threaded
      // analogue of the service's backpressure.
      if (!pipe.try_submit(m)) {
        (void)pipe.apply_pending();
        (void)pipe.try_submit(m);
      }
    } else if (command == "publish") {
      (void)pipe.apply_pending();
      graph::Csr next = pipe.materialize();
      const auto vertices = next.num_vertices();
      const auto undirected = next.num_undirected_edges();
      std::string mismatch;
      if (options.verify) mismatch = verify_pipeline_counts(pipe, next);
      const serve::Epoch epoch =
          options.id_map != nullptr
              ? store.publish(std::move(next), *options.id_map)
              : store.publish(std::move(next));
      out << "publish: epoch=" << epoch << " vertices=" << vertices
          << " edges=" << undirected;
      if (options.verify) {
        out << " verify=" << (mismatch.empty() ? "ok" : "FAIL");
      }
      out << '\n';
      if (!mismatch.empty()) {
        std::fprintf(stderr, "update: verify failed at epoch %llu: %s\n",
                     static_cast<unsigned long long>(epoch), mismatch.c_str());
        ok = false;
      }
    } else {
      std::fprintf(stderr, "update: bad mutation at line %llu: %s\n",
                   static_cast<unsigned long long>(line_no), line.c_str());
      out << "error: bad mutation at line " << line_no << ": " << line
          << '\n';
      ok = false;
    }
  }
  // Trailing mutations without a publish still reach the state (and the
  // totals line) — they are just never visible in a snapshot.
  (void)pipe.apply_pending();

  const ApplyReport totals = pipe.totals();
  const MutationLogStats log_stats = pipe.log().stats();
  out << "update: batches=" << totals.batches << " inserted="
      << totals.inserted << " erased=" << totals.erased
      << " noops=" << totals.noops << " rejected=" << totals.rejected
      << " delta=" << totals.delta_batches
      << " recount=" << totals.recount_batches << " shed=" << log_stats.shed
      << '\n';
  out.flush();
  return out.good() && ok;
}

}  // namespace aecnc::update
