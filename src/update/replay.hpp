// Mutation-file replay through the live-update pipeline.
//
// Lines are `add u v`, `del u v` (alias: remove), `publish`, with blank
// lines and `#` comments skipped. Mutations stage through the pipeline's
// bounded log; `publish` drains, materializes a CSR, and swaps it into
// the snapshot store as a fresh epoch — the offline analogue of the
// query service's update path (docs/updates.md). Replies go to `out` in
// a deterministic text format, so replays diff against golden files.
//
// Extracted from the CLI `update` command so the same parser is driven
// by tools/aecnc_cli.cpp, the golden-replay tests, and the libFuzzer
// harness (tests/fuzz/fuzz_session.cpp).
#pragma once

#include <iosfwd>

#include "graph/id_map.hpp"
#include "serve/snapshot_store.hpp"
#include "update/pipeline.hpp"

namespace aecnc::update {

struct ReplayOptions {
  /// Cross-check every published snapshot's maintained counts against a
  /// from-scratch sequential MPS recount (replies gain `verify=ok|FAIL`).
  bool verify = false;
  /// When the pipeline was seeded from a relabeled graph, the map that
  /// produced it: mutation lines arrive in external IDs and translate to
  /// the pipeline's internal space before log admission. Published
  /// snapshots carry a copy of the map. Null = identity (no relabel).
  /// Replay output is byte-identical either way.
  const graph::IdMap* id_map = nullptr;
};

/// Cross-check the pipeline's maintained per-edge counts against a
/// from-scratch sequential MPS run on the materialized CSR. Returns a
/// description of the first mismatch, empty when bit-identical.
/// Caller contract: no concurrent pipeline use (reads pipe.state()).
[[nodiscard]] std::string verify_pipeline_counts(const UpdatePipeline& pipe,
                                                 const graph::Csr& g);

/// Replay the mutation stream `in` through `pipe`, publishing epochs to
/// `store` and writing replies to `out`. Returns true when every line
/// parsed, every verification passed, and the output stream is good.
bool run_replay(UpdatePipeline& pipe, serve::SnapshotStore& store,
                std::istream& in, std::ostream& out,
                const ReplayOptions& options = {});

}  // namespace aecnc::update
