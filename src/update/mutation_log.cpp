#include "update/mutation_log.hpp"

#include <algorithm>

#include "obs/catalog.hpp"

namespace aecnc::update {

MutationLog::MutationLog(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

bool MutationLog::append(Mutation m) {
  util::MutexLock lock(&mutex_);
  if (!closed_ && staged_.size() >= capacity_) {
    ++backpressure_waits_;
    if (obs::enabled()) obs::UpdateMetrics::get().log_backpressure.add();
  }
  // Explicit wait loop: the analysis can't see through predicate lambdas
  // passed to wait(lock, pred), but tracks the capability across wait(lock).
  while (!(closed_ || staged_.size() < capacity_)) {
    not_full_.wait(mutex_);
  }
  if (closed_) return false;
  staged_.push_back(m);
  ++accepted_;
  if (obs::enabled()) {
    obs::UpdateMetrics::get().log_depth.set(
        static_cast<std::int64_t>(staged_.size()));
  }
  return true;
}

bool MutationLog::try_append(Mutation m) {
  util::MutexLock lock(&mutex_);
  if (closed_ || staged_.size() >= capacity_) {
    ++shed_;
    if (obs::enabled()) obs::UpdateMetrics::get().log_shed.add();
    return false;
  }
  staged_.push_back(m);
  ++accepted_;
  if (obs::enabled()) {
    obs::UpdateMetrics::get().log_depth.set(
        static_cast<std::int64_t>(staged_.size()));
  }
  return true;
}

std::vector<Mutation> MutationLog::drain(std::size_t max_batch) {
  std::vector<Mutation> batch;
  {
    util::MutexLock lock(&mutex_);
    const std::size_t take = std::min(max_batch, staged_.size());
    batch.assign(staged_.begin(),
                 staged_.begin() + static_cast<std::ptrdiff_t>(take));
    staged_.erase(staged_.begin(),
                  staged_.begin() + static_cast<std::ptrdiff_t>(take));
    drained_ += take;
    if (obs::enabled()) {
      obs::UpdateMetrics::get().log_depth.set(
          static_cast<std::int64_t>(staged_.size()));
    }
  }
  if (!batch.empty()) not_full_.notify_all();
  return batch;
}

void MutationLog::close() {
  {
    util::MutexLock lock(&mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
}

std::size_t MutationLog::size() const {
  util::MutexLock lock(&mutex_);
  return staged_.size();
}

MutationLogStats MutationLog::stats() const {
  util::MutexLock lock(&mutex_);
  return {.depth = staged_.size(),
          .accepted = accepted_,
          .shed = shed_,
          .backpressure_waits = backpressure_waits_,
          .drained = drained_};
}

}  // namespace aecnc::update
