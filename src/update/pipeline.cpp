#include "update/pipeline.hpp"

#include <algorithm>
#include <vector>

#include "obs/catalog.hpp"

namespace aecnc::update {

void ApplyReport::merge(const ApplyReport& other) {
  batches += other.batches;
  inserted += other.inserted;
  erased += other.erased;
  noops += other.noops;
  rejected += other.rejected;
  delta_batches += other.delta_batches;
  recount_batches += other.recount_batches;
  delta_cost += other.delta_cost;
  touched_pairs += other.touched_pairs;
  // Latest work bound, not a sum — but an empty merge keeps the old one.
  if (other.batches > 0) full_cost = other.full_cost;
}

UpdatePipeline::UpdatePipeline(PipelineConfig config)
    : config_(config), policy_(config.policy), log_(config.log_capacity) {}

UpdatePipeline::UpdatePipeline(const graph::Csr& initial, PipelineConfig config)
    : config_(config),
      policy_(config.policy),
      log_(config.log_capacity),
      state_(initial) {}

ApplyReport UpdatePipeline::apply_one_batch(std::span<const Mutation> batch) {
  ApplyReport report;
  report.batches = 1;

  // Universe enforcement happens here, not in the counter: the counter
  // grows on demand by design, but a bounded pipeline must refuse ids
  // outside the serving universe instead of silently widening it.
  std::vector<Mutation> admitted;
  std::span<const Mutation> ops = batch;
  if (config_.max_vertices > 0) {
    admitted.reserve(batch.size());
    for (const Mutation& m : batch) {
      if (m.u >= config_.max_vertices || m.v >= config_.max_vertices) {
        ++report.rejected;
      } else {
        admitted.push_back(m);
      }
    }
    ops = admitted;
  }

  const PolicyDecision decision = policy_.decide(state_, ops);
  report.delta_cost = decision.delta_cost;
  report.full_cost = decision.full_cost;

  core::BatchApplyStats stats;
  if (decision.mode == ApplyMode::kDelta) {
    ++report.delta_batches;
    const std::size_t touched_before = touched_.size();
    // Record touched pairs op-by-op against the pre-op adjacency, then
    // apply: a later op's incident set depends on the neighborhoods an
    // earlier op in the same batch already extended. The noop screen
    // (self loop, duplicate insert, non-edge erase) keeps pure no-ops
    // out of the set — they perturb nothing.
    for (const Mutation& m : ops) {
      const bool is_insert = m.kind == core::EdgeOpKind::kInsert;
      const bool applies = m.u != m.v && state_.has_edge(m.u, m.v) != is_insert;
      if (applies) record_touched(m.u, m.v);
      const core::BatchApplyStats one = state_.apply_batch({&m, 1});
      stats.inserted += one.inserted;
      stats.erased += one.erased;
      stats.noops += one.noops;
    }
    report.touched_pairs =
        touched_wholesale_ ? 0 : touched_.size() - touched_before;
  } else {
    ++report.recount_batches;
    stats = state_.apply_batch_structural(ops);
    // A batch of pure no-ops leaves the counts exact; only a real
    // structural change needs the all-edge recount.
    if (stats.applied() > 0) {
      state_.recount(config_.recount_options);
      // The recount route exists to avoid the per-op neighborhood walks
      // that an exact touched set would cost right back — a recounted
      // publish invalidates wholesale instead.
      touched_wholesale_ = true;
      touched_.clear();
    }
  }
  report.inserted = stats.inserted;
  report.erased = stats.erased;
  report.noops += stats.noops;

  if (obs::enabled()) {
    const obs::UpdateMetrics& m = obs::UpdateMetrics::get();
    m.batches.add();
    m.ops_inserted.add(report.inserted);
    m.ops_erased.add(report.erased);
    m.ops_noop.add(report.noops);
    m.ops_rejected.add(report.rejected);
    (decision.mode == ApplyMode::kDelta ? m.route_delta : m.route_recount)
        .add();
  }
  return report;
}

void UpdatePipeline::record_touched(VertexId u, VertexId v) {
  if (touched_wholesale_) return;
  // Mutating (u, v) changes cnt(u, w) exactly for w ∈ N(v) — v enters or
  // leaves N(u), so only pairs whose other side already neighbors v can
  // gain or lose the common neighbor — and symmetrically cnt(v, w) for
  // w ∈ N(u). Plus the pair itself (its count and edge flag both move).
  touched_.push_back(touched_key(u, v));
  for (const VertexId w : state_.neighbors(v)) {
    if (w != u) touched_.push_back(touched_key(u, w));
  }
  for (const VertexId w : state_.neighbors(u)) {
    if (w != v) touched_.push_back(touched_key(v, w));
  }
  if (touched_.size() > config_.max_touched) {
    touched_wholesale_ = true;
    touched_.clear();
    touched_.shrink_to_fit();
  }
}

TouchedSet UpdatePipeline::take_touched() {
  util::MutexLock lock(&state_mutex_);
  TouchedSet out;
  out.wholesale = touched_wholesale_;
  if (!touched_wholesale_) {
    out.pairs = std::move(touched_);
    std::sort(out.pairs.begin(), out.pairs.end());
    out.pairs.erase(std::unique(out.pairs.begin(), out.pairs.end()),
                    out.pairs.end());
  }
  touched_.clear();
  touched_wholesale_ = false;
  return out;
}

ApplyReport UpdatePipeline::apply(std::span<const Mutation> mutations) {
  obs::ScopedTimer timer(obs::UpdateMetrics::get().apply_ns);
  util::MutexLock lock(&state_mutex_);
  ApplyReport report;
  for (std::size_t begin = 0; begin < mutations.size();
       begin += config_.max_batch) {
    const std::size_t len =
        std::min(config_.max_batch, mutations.size() - begin);
    report.merge(apply_one_batch(mutations.subspan(begin, len)));
  }
  totals_.merge(report);
  return report;
}

ApplyReport UpdatePipeline::apply_pending() {
  obs::ScopedTimer timer(obs::UpdateMetrics::get().apply_ns);
  util::MutexLock lock(&state_mutex_);
  ApplyReport report;
  while (true) {
    const std::vector<Mutation> batch = log_.drain(config_.max_batch);
    if (batch.empty()) break;
    report.merge(apply_one_batch(batch));
  }
  totals_.merge(report);
  return report;
}

graph::Csr UpdatePipeline::materialize() const {
  util::MutexLock lock(&state_mutex_);
  return state_.to_csr();
}

ApplyReport UpdatePipeline::totals() const {
  util::MutexLock lock(&state_mutex_);
  return totals_;
}

}  // namespace aecnc::update
