// Delta-vs-full-recount decision for one mutation batch
// (docs/updates.md has the cost model's derivation).
//
// Both routes end in the same exact counts; they differ only in work:
//
//  - delta:   Σ_ops min(d_u, d_v)          (one intersection per op,
//             paper §1's online scenario, incremental.hpp)
//  - recount: Σ_{(u,v) ∈ E} min(d_u, d_v)  (one all-edge batch run,
//             the MPS work bound of Algorithm 1)
//
// so the policy compares the batch's Σ min-degree work against the full
// recount's, scaled by `recount_advantage`: the batch kernels do the
// same intersection work several times faster per element than the
// pointer-chasing incremental path (contiguous CSR, SIMD kernels,
// parallel drivers), so a recount is already worthwhile somewhat below
// the 1:1 work crossover. bench_update.cpp measures the real crossover;
// the default is deliberately conservative (delta until the batch's
// work reaches ~1/4 of a recount).
#pragma once

#include <cstdint>
#include <span>

#include "core/incremental.hpp"
#include "update/mutation_log.hpp"

namespace aecnc::update {

enum class ApplyMode : std::uint8_t {
  kDelta,        // per-op delta maintenance (IncrementalCounter::apply_batch)
  kFullRecount,  // structural apply + one all-edge batch recount
};

[[nodiscard]] constexpr const char* apply_mode_name(ApplyMode m) {
  return m == ApplyMode::kDelta ? "delta" : "recount";
}

struct PolicyConfig {
  /// Estimated per-element speed advantage of the batch kernels over
  /// per-op delta maintenance; the recount route wins once
  /// delta_cost > full_cost / recount_advantage.
  double recount_advantage = 4.0;
  /// Never recount for batches smaller than this many ops, whatever the
  /// estimates say (guards against degenerate tiny-graph estimates).
  std::size_t min_recount_batch = 16;
};

struct PolicyDecision {
  ApplyMode mode = ApplyMode::kDelta;
  /// Σ min(d_u, d_v) over the batch's ops, on the pre-batch degrees.
  std::uint64_t delta_cost = 0;
  /// Σ min(d_u, d_v) over every current edge (the recount work bound).
  std::uint64_t full_cost = 0;
};

/// Stateless cost-model policy: pick the route for one batch against one
/// counter state.
class UpdatePolicy {
 public:
  explicit UpdatePolicy(PolicyConfig config = {}) : config_(config) {}

  [[nodiscard]] PolicyDecision decide(
      const core::IncrementalCounter& state,
      std::span<const Mutation> batch) const;

  [[nodiscard]] const PolicyConfig& config() const noexcept { return config_; }

  /// The recount work bound Σ_E min(d_u, d_v) of the current state.
  [[nodiscard]] static std::uint64_t full_recount_cost(
      const core::IncrementalCounter& state);

 private:
  PolicyConfig config_;
};

}  // namespace aecnc::update
