// Bounded mutation admission log for the live-update pipeline
// (docs/updates.md).
//
// Producers stage edge inserts/deletes here; the pipeline drains them in
// batches and applies them to the maintained counter state. The log is
// the admission-control point, with the same two policies the serve
// queue offers its query producers:
//
//  - append() blocks while the log is full (backpressure): the writer
//    slows to the pipeline's apply rate instead of growing an unbounded
//    backlog.
//  - try_append() rejects instead of blocking (load shedding): the
//    caller decides what to do with the dropped mutation.
//
// Mutations drain strictly in admission order — delta maintenance is
// order-sensitive (deleting an edge before its insert drained would
// no-op and then corrupt the re-insert), so the log never reorders.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <vector>

#include "core/incremental.hpp"
#include "util/annotations.hpp"
#include "util/types.hpp"

namespace aecnc::update {

/// One edge insert or delete, in admission order. Alias of the core
/// batch-apply op so staged batches feed IncrementalCounter directly.
using Mutation = core::EdgeOp;

inline constexpr auto kAddEdge = core::EdgeOpKind::kInsert;
inline constexpr auto kDelEdge = core::EdgeOpKind::kErase;

struct MutationLogStats {
  std::size_t depth = 0;           // mutations staged right now
  std::uint64_t accepted = 0;      // appended successfully
  std::uint64_t shed = 0;          // try_append rejections
  std::uint64_t backpressure_waits = 0;  // append calls that blocked
  std::uint64_t drained = 0;       // handed to the pipeline
};

class MutationLog {
 public:
  explicit MutationLog(std::size_t capacity);
  MutationLog(const MutationLog&) = delete;
  MutationLog& operator=(const MutationLog&) = delete;

  /// Stage a mutation; blocks while the log is full (backpressure).
  /// Returns false only when the log was closed.
  bool append(Mutation m);

  /// As append but load-shedding: returns false instead of blocking
  /// when the log is full (or closed).
  bool try_append(Mutation m);

  /// Pop up to max_batch mutations in admission order; empty when the
  /// log is drained. Wakes blocked producers.
  [[nodiscard]] std::vector<Mutation> drain(std::size_t max_batch);

  /// Unblock every producer and refuse further appends. Staged
  /// mutations stay drainable.
  void close();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] MutationLogStats stats() const;

 private:
  const std::size_t capacity_;
  // Innermost lock of the update chain: UpdatePipeline::apply_pending
  // drains the log while holding its state lock, and obs registration can
  // run under this lock on first metric resolution.
  // aecnc: acquired-before(Registry::mutex_)
  mutable util::Mutex mutex_;
  std::condition_variable_any not_full_;
  std::deque<Mutation> staged_ AECNC_GUARDED_BY(mutex_);
  bool closed_ AECNC_GUARDED_BY(mutex_) = false;
  std::uint64_t accepted_ AECNC_GUARDED_BY(mutex_) = 0;
  std::uint64_t shed_ AECNC_GUARDED_BY(mutex_) = 0;
  std::uint64_t backpressure_waits_ AECNC_GUARDED_BY(mutex_) = 0;
  std::uint64_t drained_ AECNC_GUARDED_BY(mutex_) = 0;
};

}  // namespace aecnc::update
