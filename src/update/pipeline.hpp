// The live-update pipeline: mutation log → incremental delta
// maintenance → snapshot materialization (docs/updates.md).
//
// The paper's motivating scenario (§1) is counts maintained *while the
// graph changes under the user*. The repo has both halves — per-edge
// delta maintenance (core/incremental.hpp) and epoch-stamped immutable
// serving snapshots (serve/snapshot_store.hpp) — and this pipeline is
// the path between them:
//
//   submit()/try_submit() ─▶ MutationLog (bounded; backpressure/shed)
//        apply_pending() ──▶ UpdatePolicy picks per batch:
//                              kDelta        exact counts per op
//                              kFullRecount  structural apply + one
//                                            all-edge batch run
//        materialize() ────▶ fresh immutable Csr for SnapshotStore
//
// Both routes produce bit-identical counts (the kernels are exact); the
// policy only trades work. Service::apply_updates()/publish() wires the
// pipeline into the query service so ResultCache epochs invalidate
// naturally on publish.
//
// Thread safety: submit/try_submit are safe from any thread (the log is
// internally synchronized). apply/apply_pending/materialize serialize
// on an internal mutex; counts read through state() are only stable
// while no apply runs.
#pragma once

#include <cstdint>
#include <span>

#include "core/incremental.hpp"
#include "core/options.hpp"
#include "graph/csr.hpp"
#include "update/mutation_log.hpp"
#include "update/policy.hpp"
#include "util/annotations.hpp"

namespace aecnc::update {

struct PipelineConfig {
  /// Bounded admission log: staged mutations before submit() blocks /
  /// try_submit() sheds.
  std::size_t log_capacity = 4096;
  /// Max mutations applied as one policy-routed batch.
  std::size_t max_batch = 1024;
  /// Reject mutations naming a vertex id >= max_vertices. 0 lets the
  /// universe grow on demand (IncrementalCounter semantics); a serving
  /// deployment pins it to the published graph's universe.
  VertexId max_vertices = 0;
  PolicyConfig policy{};
  /// Driver options for the full-recount route (counts are identical
  /// for every algorithm/schedule; this only picks the kernels).
  core::Options recount_options{};
  /// Cap on the accumulated touched-pair set (take_touched). Past it the
  /// set degrades to `wholesale` — tracking individual pairs for a
  /// publish that perturbs most of the cache costs more than it saves.
  std::size_t max_touched = std::size_t{1} << 18;
};

/// Canonical (min, max) undirected pair key. Matches the keying of both
/// IncrementalCounter's count map and serve::ResultCache, so the serve
/// layer can compare touched keys against cached pairs directly.
[[nodiscard]] constexpr std::uint64_t touched_key(VertexId u,
                                                  VertexId v) noexcept {
  if (u > v) {
    const VertexId t = u;
    u = v;
    v = t;
  }
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// The set of vertex pairs whose CN count (or edge flag) may differ
/// between the pipeline state at the previous take and now: for every
/// applied op (u, v), the pair itself plus its 1-hop incident pairs —
/// (u, w) for w ∈ N(v) and (v, w) for w ∈ N(u), evaluated against the
/// adjacency the op mutated. Every pair NOT in the set is guaranteed
/// unchanged, which is what lets ResultCache carry unaffected entries
/// forward across a publish instead of dropping them.
struct TouchedSet {
  /// Sorted, deduplicated canonical keys (touched_key order). Only
  /// meaningful when !wholesale.
  std::vector<std::uint64_t> pairs;
  /// The set overflowed max_touched or a batch took the recount route
  /// (whose whole point is *not* paying the per-op neighborhood walks):
  /// the publish must invalidate wholesale.
  bool wholesale = false;
};

/// What a batch (or a run of batches) did. Aggregated per apply call.
struct ApplyReport {
  std::size_t batches = 0;
  std::size_t inserted = 0;   // edges added to the graph
  std::size_t erased = 0;     // edges removed
  std::size_t noops = 0;      // duplicate inserts, non-edge erases, self loops
  std::size_t rejected = 0;   // out-of-universe ops (never reached the state)
  std::size_t delta_batches = 0;
  std::size_t recount_batches = 0;
  std::uint64_t delta_cost = 0;  // Σ policy-estimated delta work
  std::uint64_t full_cost = 0;   // last batch's recount work bound
  std::size_t touched_pairs = 0;  // touched-pair keys recorded (pre-dedup)

  [[nodiscard]] std::size_t applied() const noexcept {
    return inserted + erased;
  }
  void merge(const ApplyReport& other);
};

class UpdatePipeline {
 public:
  /// Empty graph over a growable (or max_vertices-bounded) universe.
  explicit UpdatePipeline(PipelineConfig config = {});
  /// Seeded from an existing graph (one all-edge count, as the
  /// IncrementalCounter bootstrap).
  UpdatePipeline(const graph::Csr& initial, PipelineConfig config = {});

  UpdatePipeline(const UpdatePipeline&) = delete;
  UpdatePipeline& operator=(const UpdatePipeline&) = delete;

  // --- admission (any thread) -------------------------------------------

  /// Stage a mutation; blocks while the log is full (backpressure).
  bool submit(Mutation m) { return log_.append(m); }
  /// Stage without blocking; false when the log is full (shed).
  bool try_submit(Mutation m) { return log_.try_append(m); }

  // --- application ------------------------------------------------------

  /// Apply a mutation span directly (bypassing the log) as policy-routed
  /// batches of at most max_batch ops.
  ApplyReport apply(std::span<const Mutation> mutations);

  /// Drain the log completely and apply everything staged.
  ApplyReport apply_pending();

  // --- snapshotting -----------------------------------------------------

  /// Materialize the current state as a fresh immutable CSR (the
  /// publishable artifact). O(|V| + |E| log |E|).
  [[nodiscard]] graph::Csr materialize() const;

  /// Drain the touched-pair set accumulated since construction or the
  /// previous take: every pair whose count or edge flag may differ from
  /// the state at that point. The publisher consumes this right before
  /// materialize() so the serve cache knows which entries survive the
  /// epoch (serve::ResultCache::carry_forward).
  [[nodiscard]] TouchedSet take_touched();

  /// Maintained counter state (counts exact between apply calls).
  // Per-site waiver: returns a reference to the guarded state without the
  // lock — the documented contract is that readers only dereference it
  // while no apply runs (external quiescence), which a capability can't
  // express without pushing the lock into every single-threaded caller.
  [[nodiscard]] const core::IncrementalCounter& state() const noexcept
      AECNC_NO_THREAD_SAFETY_ANALYSIS {
    return state_;
  }
  [[nodiscard]] MutationLog& log() noexcept { return log_; }
  [[nodiscard]] const PipelineConfig& config() const noexcept {
    return config_;
  }
  /// Cumulative report over every apply since construction.
  [[nodiscard]] ApplyReport totals() const;

 private:
  /// Apply one batch (≤ max_batch ops) through the policy.
  ApplyReport apply_one_batch(std::span<const Mutation> batch)
      AECNC_REQUIRES(state_mutex_);

  /// Record the pairs a single about-to-apply op can perturb, against
  /// the pre-op adjacency. Must run op-by-op interleaved with the
  /// applies: an earlier op in the same batch can extend the very
  /// neighborhoods a later op's incident set is drawn from.
  void record_touched(VertexId u, VertexId v) AECNC_REQUIRES(state_mutex_);

  PipelineConfig config_;
  UpdatePolicy policy_;
  MutationLog log_;
  // apply_pending() drains the log while holding the state lock.
  // aecnc: acquired-before(MutationLog::mutex_)
  mutable util::Mutex state_mutex_;
  core::IncrementalCounter state_ AECNC_GUARDED_BY(state_mutex_);
  ApplyReport totals_ AECNC_GUARDED_BY(state_mutex_);
  /// Touched-pair accumulator for the next take_touched(); unsorted with
  /// duplicates until drained.
  std::vector<std::uint64_t> touched_ AECNC_GUARDED_BY(state_mutex_);
  bool touched_wholesale_ AECNC_GUARDED_BY(state_mutex_) = false;
};

}  // namespace aecnc::update
