// Epoch-versioned, reference-counted graph snapshots for the query
// service (docs/serving.md).
//
// The batch kernels assume an immutable CSR for the whole run; a
// long-lived service must instead answer queries while the graph
// occasionally changes (the paper's own motivating scenario, §1:
// recommend "while the user is shopping"). The store resolves the
// tension with snapshot semantics:
//
//  - publish(csr) wraps the CSR in an immutable Snapshot stamped with
//    the next epoch and swaps it in atomically. Publishers serialize on
//    a mutex; the CSR itself is never mutated after publish.
//  - acquire() is the read path: one lock-free atomic shared_ptr load.
//    The returned pointer *pins* the snapshot — queries compute every
//    result from the pinned graph, so a concurrent publish can never
//    mix two epochs inside one reply.
//  - retirement is implicit: when the last in-flight query drops its
//    pin, the shared_ptr control block frees the old graph. No reader
//    ever blocks a writer or vice versa.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "graph/csr.hpp"
#include "graph/id_map.hpp"
#include "util/annotations.hpp"

namespace aecnc::serve {

/// Snapshot version number. Epoch 0 means "nothing published yet";
/// the first publish() creates epoch 1.
using Epoch = std::uint64_t;

/// An immutable published graph. The CSR must not be modified once the
/// snapshot is constructed; every query result is attributed to the
/// snapshot's epoch.
struct Snapshot {
  Epoch epoch = 0;
  /// The graph in its *internal* ID space (relabeled when the publisher
  /// relabels; otherwise identical to the external space).
  graph::Csr graph;
  /// External <-> internal translation for this snapshot. Identity when
  /// the publisher did not relabel. Queries translate request IDs in and
  /// reply IDs out through this map, so callers always speak external
  /// IDs regardless of the internal layout.
  graph::IdMap id_map;
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

class SnapshotStore {
 public:
  SnapshotStore() = default;

  /// Convenience: construct and publish an initial graph (epoch 1).
  explicit SnapshotStore(graph::Csr initial) { publish(std::move(initial)); }

  /// Swap in a new graph; returns its epoch. Thread-safe against
  /// concurrent publishers and readers; in-flight queries keep their
  /// pinned epoch until they drop it.
  Epoch publish(graph::Csr g) { return publish(std::move(g), graph::IdMap{}); }

  /// As above, with the ID map translating the snapshot's internal space
  /// back to the caller-facing external IDs (identity map = no relabel).
  Epoch publish(graph::Csr g, graph::IdMap id_map);

  /// Pin the current snapshot (lock-free load). Null until the first
  /// publish().
  [[nodiscard]] SnapshotPtr acquire() const noexcept {
    return current_.load(std::memory_order_acquire);
  }

  /// Epoch of the current snapshot; 0 before the first publish. One
  /// plain atomic load with no refcount traffic — cache-hit paths use
  /// this instead of acquire() so a hit never touches the shared_ptr
  /// control block. Ordering: published_epoch_ is stored (release)
  /// *after* current_, so a reader that observes epoch N and then calls
  /// acquire() sees snapshot N or newer.
  [[nodiscard]] Epoch current_epoch() const noexcept {
    return published_epoch_.load(std::memory_order_acquire);
  }

  /// Total snapshots ever published.
  [[nodiscard]] std::uint64_t publish_count() const noexcept {
    return next_epoch_.load(std::memory_order_relaxed);
  }

 private:
  // aecnc: atomic-ok(lock-free RCU-style read path; writers serialize on
  // publish_mutex_, readers pin via acquire-loaded shared_ptr)
  std::atomic<SnapshotPtr> current_{nullptr};
  // aecnc: atomic-ok(release-stored after current_ so epoch observers see
  // that snapshot or newer on a subsequent acquire())
  std::atomic<Epoch> published_epoch_{0};
  // aecnc: atomic-ok(monotonic publish counter; mutated only under
  // publish_mutex_, read lock-free by publish_count())
  std::atomic<Epoch> next_epoch_{0};
  // Held across epoch issue + snapshot swap; nothing else acquired inside.
  // aecnc: lock-leaf(publish() only touches this store's own atomics)
  util::Mutex publish_mutex_;
};

}  // namespace aecnc::serve
