#include "serve/session.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "update/mutation_log.hpp"

namespace aecnc::serve {

bool run_session(Service& svc, std::istream& in, std::ostream& out) {
  const auto print_epoch = [&](Epoch e) { out << "epoch=" << e; };

  std::string line;
  std::uint64_t line_no = 0;
  bool had_error = false;
  // Admission-control identity for subsequent edge queries; the
  // `client <id>` verb switches it mid-session (0 = anonymous default).
  ClientId client = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    std::string command;
    tokens >> command;
    // A malformed request gets an error *reply* and the session keeps
    // going. The reply goes to the session output (so negative-path
    // sessions are golden-testable) and the return value records that
    // errors occurred.
    const auto bad_line = [&]() {
      std::fprintf(stderr, "serve: bad request at line %llu: %s\n",
                   static_cast<unsigned long long>(line_no), line.c_str());
      out << "error: bad request at line " << line_no << ": " << line << '\n';
      had_error = true;
    };

    if (command == "edge") {
      VertexId u = 0;
      VertexId v = 0;
      if (!(tokens >> u >> v)) {
        bad_line();
        continue;
      }
      const auto r = svc.query_edge(u, v, client);
      out << "edge " << u << ' ' << v << ": ";
      // STALE/SHED are *contract* replies, not errors: the SLO degrade
      // is the service working as configured, so the session return
      // value stays clean. A STALE reply names the (previous) epoch its
      // count is exact on; a SHED reply carries no count at all.
      if (r.status == ReplyStatus::kShed) {
        out << "SHED ";
        print_epoch(r.epoch);
        out << '\n';
      } else {
        if (r.status == ReplyStatus::kStale) out << "STALE ";
        print_epoch(r.epoch);
        out << " cnt=" << r.count << " edge=" << (r.is_edge ? "yes" : "no")
            << " cached=" << (r.cached ? "yes" : "no") << '\n';
      }
    } else if (command == "client") {
      ClientId id = 0;
      if (!(tokens >> id)) {
        bad_line();
        continue;
      }
      client = id;
      out << "client " << id << ": active\n";
    } else if (command == "vertex") {
      VertexId u = 0;
      if (!(tokens >> u)) {
        bad_line();
        continue;
      }
      const auto r = svc.query_vertex(u);
      out << "vertex " << u << ": ";
      print_epoch(r.epoch);
      out << " deg=" << r.counts.size() << " cnts=";
      for (std::size_t k = 0; k < r.counts.size(); ++k) {
        out << (k == 0 ? "" : ",") << r.counts[k];
      }
      out << '\n';
    } else if (command == "batch") {
      std::vector<EdgeQuery> queries;
      VertexId u = 0;
      VertexId v = 0;
      while (tokens >> u >> v) queries.push_back({u, v});
      if (queries.empty()) {
        bad_line();
        continue;
      }
      const auto rs = svc.query_batch(queries);
      out << "batch " << rs.size() << ": ";
      print_epoch(rs.empty() ? svc.current_epoch() : rs.front().epoch);
      out << " cnts=";
      for (std::size_t k = 0; k < rs.size(); ++k) {
        out << (k == 0 ? "" : ",") << rs[k].count;
      }
      out << '\n';
    } else if (command == "add" || command == "remove" || command == "del") {
      VertexId u = 0;
      VertexId v = 0;
      if (!(tokens >> u >> v) || u == v) {
        bad_line();
        continue;
      }
      const bool is_add = command == "add";
      const update::Mutation m{is_add ? update::kAddEdge : update::kDelEdge,
                               u, v};
      const auto report = svc.apply_updates({&m, 1});
      if (report.rejected > 0) {
        // Outside the pinned universe: an error reply, but — like every
        // malformed request — one the session survives.
        out << "error: " << command << ' ' << u << ' ' << v
            << ": vertex out of range\n";
        had_error = true;
      } else if (!is_add && report.erased == 0) {
        out << "error: " << command << ' ' << u << ' ' << v
            << ": no such edge\n";
        had_error = true;
      } else {
        // Duplicate adds are idempotent: the staged state already holds
        // the edge, which is exactly what the client asked for.
        out << command << ' ' << u << ' ' << v << ": staged\n";
      }
    } else if (command == "publish") {
      // Seed the pipeline if no mutation has yet (a bare publish simply
      // re-materializes the current snapshot as a fresh epoch).
      (void)svc.apply_updates({});
      const Epoch epoch = svc.publish();
      const SnapshotPtr snap = svc.snapshot();
      out << "publish: ";
      print_epoch(epoch);
      out << " vertices=" << snap->graph.num_vertices()
          << " edges=" << snap->graph.num_undirected_edges() << '\n';
    } else if (command == "stats") {
      // Bare `stats` keeps the one-line service summary; `stats json` /
      // `stats prom` dump the full obs metric registry.
      std::string mode;
      tokens >> mode;
      if (mode == "json") {
        out << obs::Registry::global().dump_json();
      } else if (mode == "prom") {
        out << obs::Registry::global().dump_prometheus();
      } else if (!mode.empty()) {
        bad_line();
        continue;
      } else {
        const auto s = svc.stats();
        out << "stats: ";
        print_epoch(s.epoch);
        out << " cache_size=" << s.cache.size << " hits=" << s.cache.hits
            << " misses=" << s.cache.misses
            << " evictions=" << s.cache.evictions
            << " carried=" << s.cache.carried_forward
            << " point=" << s.point_queries << " vertex=" << s.vertex_queries
            << " batch=" << s.batch_queries << " stale=" << s.stale_served
            << " shed=" << s.slo_shed << '\n';
      }
    } else {
      bad_line();
      continue;
    }
  }
  out.flush();
  return out.good() && !had_error;
}

}  // namespace aecnc::serve
