#include "serve/snapshot_store.hpp"

#include <utility>

namespace aecnc::serve {

Epoch SnapshotStore::publish(graph::Csr g, graph::IdMap id_map) {
  // Serialize publishers so epochs are issued in store order: a reader
  // that observes epoch N can rely on every epoch < N having been the
  // current snapshot at some earlier point.
  util::MutexLock lock(&publish_mutex_);
  const Epoch epoch = next_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto snapshot = std::make_shared<const Snapshot>(Snapshot{
      .epoch = epoch, .graph = std::move(g), .id_map = std::move(id_map)});
  current_.store(std::move(snapshot), std::memory_order_release);
  published_epoch_.store(epoch, std::memory_order_release);
  return epoch;
}

}  // namespace aecnc::serve
