// Per-client SLO-aware admission control for point queries
// (docs/serving.md has the staleness contract).
//
// Each client gets a decaying log2-bucket latency window over its
// recent *compute* latencies (cache hits never threaten the SLO and are
// not recorded). When the window's p99 exceeds the configured budget,
// further cache-missing queries from that client are not admitted to
// the engine; the Service degrades them to a cached-stale read of the
// previous epoch (an explicit STALE reply) or, with no stale entry to
// serve, sheds them (SHED). Bucketing mirrors obs::Histogram — 65
// buckets at bit_width(ns) — so the p99 this controller acts on is the
// same figure serve.latency.point_ns reports, but kept per client and
// independent of whether obs is compiled in.
//
// The window decays by halving every `window` samples instead of
// sliding: O(1) memory per client, and one slow burst stops dominating
// after ~2 windows of healthy traffic.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "util/annotations.hpp"
#include "util/types.hpp"

namespace aecnc::serve {

/// Session-level client identity for admission control. Plain integers:
/// the session `client <id>` verb and embedding callers pick them; 0 is
/// the default (anonymous) client and participates like any other.
using ClientId = std::uint64_t;

struct SloConfig {
  /// p99 compute-latency budget per client; 0 disables admission
  /// control entirely (every query admitted).
  std::uint64_t p99_budget_ns = 0;
  /// Samples a client must accumulate before its p99 is trusted enough
  /// to degrade anything — a cold window's p99 is noise.
  std::size_t min_samples = 64;
  /// Halve-decay the client's buckets every this many samples.
  std::size_t window = 1024;
  /// Degrade to previous-epoch cached reads (STALE replies) before
  /// shedding; false sheds immediately on budget breach.
  bool allow_stale = true;
  /// Testing knob: when nonzero, every recorded sample is replaced by
  /// this fixed latency, making admission decisions deterministic (the
  /// CLI's --obs-clock=fake sets it so golden sessions don't depend on
  /// wall-clock compute times).
  std::uint64_t fake_sample_ns = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(SloConfig config) : config_(config) {}

  [[nodiscard]] bool enabled() const noexcept {
    return config_.p99_budget_ns > 0;
  }
  [[nodiscard]] const SloConfig& config() const noexcept { return config_; }

  /// Record one compute latency for `client`.
  void record(ClientId client, std::uint64_t ns);

  /// Whether the next cache-missing query from `client` may run a fresh
  /// compute. Always true while disabled or under-sampled.
  [[nodiscard]] bool admit(ClientId client) const;

  /// The client's current windowed p99 (0 until min_samples reached).
  [[nodiscard]] std::uint64_t p99_ns(ClientId client) const;

 private:
  static constexpr int kNumBuckets = 65;  // obs::Histogram bucket space

  struct Window {
    std::array<std::uint64_t, kNumBuckets> buckets{};
    std::uint64_t total = 0;
  };

  [[nodiscard]] static int bucket_of(std::uint64_t ns) noexcept {
    return std::bit_width(ns);
  }
  [[nodiscard]] static std::uint64_t bucket_upper(int i) noexcept {
    if (i <= 0) return 0;
    if (i >= 64) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << i) - 1;
  }

  [[nodiscard]] std::uint64_t p99_locked(const Window& w) const
      AECNC_REQUIRES(mutex_);

  SloConfig config_;
  // aecnc: lock-leaf(bucket arithmetic only; never calls out)
  mutable util::Mutex mutex_;
  std::unordered_map<ClientId, Window> windows_ AECNC_GUARDED_BY(mutex_);
};

}  // namespace aecnc::serve
