#include "serve/inflight.hpp"

#include <utility>

namespace aecnc::serve {

InflightTable::JoinResult InflightTable::join(Epoch epoch,
                                              std::uint64_t pair) {
  const Key key{epoch, pair};
  JoinResult result;
  {
    util::MutexLock lock(&mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
      entries_.emplace(key, std::make_shared<Entry>());
      return {.leader = true, .value = std::nullopt};
    }
    // Hold a shared_ptr across the wait: complete()/abandon() erase the
    // map slot before the last joiner wakes.
    const std::shared_ptr<Entry> entry = it->second;
    // Explicit wait loop (not wait(lock, pred)): the thread-safety
    // analysis can't see through predicate lambdas but tracks the
    // capability across wait(mutex).
    while (!(entry->done || entry->abandoned)) {
      resolved_.wait(mutex_);
    }
    if (entry->done) result.value = entry->value;
  }
  joined_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

void InflightTable::complete(Epoch epoch, std::uint64_t pair,
                             CachedEdgeCount value) {
  const Key key{epoch, pair};
  {
    util::MutexLock lock(&mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) return;
    it->second->done = true;
    it->second->value = value;
    entries_.erase(it);
  }
  resolved_.notify_all();
}

void InflightTable::abandon(Epoch epoch, std::uint64_t pair) {
  const Key key{epoch, pair};
  {
    util::MutexLock lock(&mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) return;
    it->second->abandoned = true;
    entries_.erase(it);
  }
  resolved_.notify_all();
}

}  // namespace aecnc::serve
