#include "serve/result_cache.hpp"

#include <algorithm>

namespace aecnc::serve {

ResultCache::ResultCache(std::size_t capacity) {
  if (capacity == 0) {
    ways_ = 0;
    return;  // disabled: lookups miss, inserts drop
  }
  ways_ = std::min(kWays, capacity);
  num_sets_ = (capacity + ways_ - 1) / ways_;
  slots_.assign(num_sets_ * ways_, Slot{});
}

void ResultCache::insert(Epoch epoch, VertexId u, VertexId v,
                         CachedEdgeCount value) {
  if (num_sets_ == 0) return;  // disabled (capacity 0)
  const std::uint64_t pair = pair_key(u, v);
  util::SpinLockHolder lock(&mutex_);
  const std::size_t base = set_base(pair);
  std::size_t slot = ways_ - 1;  // full set: replace the LRU (back) entry
  for (std::size_t i = 0; i < ways_; ++i) {
    const Slot& s = slots_[base + i];
    if ((s.epoch == epoch && s.pair == pair) || s.epoch == 0) {
      slot = i;
      break;
    }
  }
  Slot& victim = slots_[base + slot];
  if (victim.epoch == 0) {
    ++size_;
  } else if (victim.epoch != epoch || victim.pair != pair) {
    ++evictions_;
  }
  victim = Slot{.epoch = epoch, .pair = pair, .value = value};
  std::rotate(slots_.begin() + static_cast<std::ptrdiff_t>(base),
              slots_.begin() + static_cast<std::ptrdiff_t>(base + slot),
              slots_.begin() + static_cast<std::ptrdiff_t>(base + slot + 1));
}

void ResultCache::invalidate_all() {
  util::SpinLockHolder lock(&mutex_);
  invalidations_ += size_;
  size_ = 0;
  std::fill(slots_.begin(), slots_.end(), Slot{});
}

std::size_t ResultCache::carry_forward(Epoch new_epoch,
                                       std::span<const std::uint64_t> touched) {
  if (num_sets_ == 0 || new_epoch == 0) return 0;
  const Epoch prev = new_epoch - 1;
  util::SpinLockHolder lock(&mutex_);
  std::size_t carried = 0;
  for (std::size_t base = 0; base < slots_.size(); base += ways_) {
    // Compact each set in place: survivors keep their recency order (so
    // the front-packed LRU invariant holds), dropped entries open tail
    // slots. Entries already at new_epoch (a racing query pinned the
    // fresh snapshot and inserted before this sweep) pass through
    // untouched.
    std::size_t out = 0;
    for (std::size_t i = 0; i < ways_; ++i) {
      Slot s = slots_[base + i];
      if (s.epoch == 0) break;
      if (s.epoch == prev &&
          !std::binary_search(touched.begin(), touched.end(), s.pair)) {
        // Unperturbed by this publish: the count and edge flag are
        // identical on the new snapshot, so the entry simply advances.
        s.epoch = new_epoch;
        ++carried;
      } else if (s.epoch < prev) {
        // Two or more epochs stale: past the stale-read window, drop.
        ++invalidations_;
        --size_;
        continue;
      }
      slots_[base + out++] = s;
    }
    for (std::size_t i = out; i < ways_; ++i) slots_[base + i] = Slot{};
  }
  carried_forward_ += carried;
  return carried;
}

CacheStats ResultCache::stats() const {
  util::SpinLockHolder lock(&mutex_);
  return {.hits = hits_,
          .misses = misses_,
          .evictions = evictions_,
          .invalidations = invalidations_,
          .carried_forward = carried_forward_,
          .size = size_,
          .capacity = slots_.size()};
}

}  // namespace aecnc::serve
