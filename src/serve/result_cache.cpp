#include "serve/result_cache.hpp"

#include <algorithm>

namespace aecnc::serve {

ResultCache::ResultCache(std::size_t capacity) {
  if (capacity == 0) {
    ways_ = 0;
    return;  // disabled: lookups miss, inserts drop
  }
  ways_ = std::min(kWays, capacity);
  num_sets_ = (capacity + ways_ - 1) / ways_;
  slots_.assign(num_sets_ * ways_, Slot{});
}

void ResultCache::insert(Epoch epoch, VertexId u, VertexId v,
                         CachedEdgeCount value) {
  if (num_sets_ == 0) return;  // disabled (capacity 0)
  const std::uint64_t pair = pair_key(u, v);
  util::SpinLockHolder lock(&mutex_);
  const std::size_t base = set_base(epoch, pair);
  std::size_t slot = ways_ - 1;  // full set: replace the LRU (back) entry
  for (std::size_t i = 0; i < ways_; ++i) {
    const Slot& s = slots_[base + i];
    if ((s.epoch == epoch && s.pair == pair) || s.epoch == 0) {
      slot = i;
      break;
    }
  }
  Slot& victim = slots_[base + slot];
  if (victim.epoch == 0) {
    ++size_;
  } else if (victim.epoch != epoch || victim.pair != pair) {
    ++evictions_;
  }
  victim = Slot{.epoch = epoch, .pair = pair, .value = value};
  std::rotate(slots_.begin() + static_cast<std::ptrdiff_t>(base),
              slots_.begin() + static_cast<std::ptrdiff_t>(base + slot),
              slots_.begin() + static_cast<std::ptrdiff_t>(base + slot + 1));
}

void ResultCache::invalidate_all() {
  util::SpinLockHolder lock(&mutex_);
  invalidations_ += size_;
  size_ = 0;
  std::fill(slots_.begin(), slots_.end(), Slot{});
}

CacheStats ResultCache::stats() const {
  util::SpinLockHolder lock(&mutex_);
  return {.hits = hits_,
          .misses = misses_,
          .evictions = evictions_,
          .invalidations = invalidations_,
          .size = size_,
          .capacity = slots_.size()};
}

}  // namespace aecnc::serve
