#include "serve/query_engine.hpp"

#include <algorithm>
#include <thread>

#include "intersect/dispatch.hpp"
#include "intersect/merge.hpp"
#include "obs/catalog.hpp"

namespace aecnc::serve {
namespace {

int resolve_workers(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

QueryEngine::QueryEngine(const EngineConfig& config)
    : config_(config), pool_(resolve_workers(config.num_workers)) {
  // Normalize once: Options::prefetch is the master switch for the
  // kernel-level prefetch knob.
  config_.options.mps.prefetch = config_.options.prefetch;
  contexts_.resize(static_cast<std::size_t>(pool_.num_workers()));
}

CnCount QueryEngine::count_pair(const Snapshot& snap, VertexId u,
                                VertexId v) const {
  const VertexId n = snap.graph.num_vertices();
  if (u >= n || v >= n || u == v) return 0;
  return intersect::mps_count(snap.graph.neighbors(u), snap.graph.neighbors(v),
                              config_.options.mps);
}

CnCount QueryEngine::indexed_count(const Snapshot& snap, WorkerContext& ctx,
                                   VertexId u,
                                   std::span<const VertexId> probe) const {
  if (ctx.epoch != snap.epoch) {
    // New snapshot: the old index describes a graph this worker can no
    // longer see (its neighbor lists may be freed), so reset instead of
    // clearing bit-by-bit.
    if (config_.index == ServeIndex::kBitmap) {
      ctx.bitmap = bitmap::Bitmap(snap.graph.num_vertices());
    }
    ctx.prev_u = kInvalidVertex;
    ctx.epoch = snap.epoch;
  }
  if (ctx.prev_u != u) {
    if (obs::enabled()) [[unlikely]] {
      obs::KernelMetrics::get().bitmap_builds.add();
    }
    if (config_.index == ServeIndex::kBitmap) {
      // Same epoch => same graph, so the previous source's neighbor list
      // is still valid for the amortized flip-clear (Algorithm 2).
      if (ctx.prev_u != kInvalidVertex) {
        ctx.bitmap.clear_all(snap.graph.neighbors(ctx.prev_u));
      }
      ctx.bitmap.set_all(snap.graph.neighbors(u));
    } else {
      ctx.hash.rebuild(snap.graph.neighbors(u));
    }
    ctx.prev_u = u;
  }
  return config_.index == ServeIndex::kBitmap
             ? bitmap::bitmap_intersect_count(ctx.bitmap, probe,
                                              config_.options.prefetch)
             : intersect::hash_intersect_count(ctx.hash, probe);
}

CnCount QueryEngine::routed_count(const Snapshot& snap, WorkerContext& ctx,
                                  VertexId u, VertexId v) const {
  switch (config_.options.algorithm) {
    case core::Algorithm::kMergeBaseline:
      return intersect::merge_count(snap.graph.neighbors(u),
                                    snap.graph.neighbors(v));
    case core::Algorithm::kMps:
      return intersect::mps_count(snap.graph.neighbors(u),
                                  snap.graph.neighbors(v),
                                  config_.options.mps);
    case core::Algorithm::kBmp:
      return indexed_count(snap, ctx, u, snap.graph.neighbors(v));
  }
  return intersect::merge_count(snap.graph.neighbors(u),
                                snap.graph.neighbors(v));
}

std::vector<CnCount> QueryEngine::count_vertex(const Snapshot& snap,
                                               VertexId u) {
  const VertexId n = snap.graph.num_vertices();
  if (u >= n) return {};
  const auto nbrs = snap.graph.neighbors(u);
  std::vector<CnCount> counts(nbrs.size(), 0);
  if (nbrs.empty()) return counts;

  util::MutexLock lock(&batch_mutex_);
  pool_.run(nbrs.size(), std::max<std::uint64_t>(1, config_.task_size),
            [&](std::uint64_t begin, std::uint64_t end, int worker) {
              WorkerContext& ctx =
                  contexts_[static_cast<std::size_t>(worker)];
              for (std::uint64_t k = begin; k < end; ++k) {
                counts[k] = routed_count(snap, ctx, u, nbrs[k]);
              }
            });
  batches_run_.fetch_add(1, std::memory_order_relaxed);
  queries_run_.fetch_add(nbrs.size(), std::memory_order_relaxed);
  return counts;
}

std::vector<CnCount> QueryEngine::count_batch(
    const Snapshot& snap, std::span<const EdgeQuery> queries) {
  std::vector<CnCount> counts(queries.size(), 0);
  if (queries.empty()) return counts;
  const VertexId n = snap.graph.num_vertices();

  util::MutexLock lock(&batch_mutex_);
  pool_.run(queries.size(), std::max<std::uint64_t>(1, config_.task_size),
            [&](std::uint64_t begin, std::uint64_t end, int worker) {
              WorkerContext& ctx =
                  contexts_[static_cast<std::size_t>(worker)];
              for (std::uint64_t i = begin; i < end; ++i) {
                const auto [u, v] = queries[i];
                if (u >= n || v >= n || u == v) continue;
                counts[i] = routed_count(snap, ctx, u, v);
              }
            });
  batches_run_.fetch_add(1, std::memory_order_relaxed);
  queries_run_.fetch_add(queries.size(), std::memory_order_relaxed);
  return counts;
}

}  // namespace aecnc::serve
