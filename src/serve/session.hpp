// Scripted request-session interpreter for the query service.
//
// One request per line: `edge u v | vertex u | batch u1 v1 [u2 v2 ...] |
// add u v | del u v (alias: remove) | publish | client id |
// stats [json|prom]`; blank lines and `#` comments are skipped. Replies
// go to `out` in a deterministic text format so sessions diff against
// golden files (tests/data/serve_session*). Malformed requests produce
// an "error:" reply and the session continues — a serving loop must not
// die on one bad client line. SLO degrades surface as `STALE`/`SHED`
// replies (docs/serving.md); they are contract outcomes, not errors.
//
// Extracted from the CLI `serve` command so the same interpreter is
// driven by tools/aecnc_cli.cpp, the golden-session tests, and the
// libFuzzer harness (tests/fuzz/fuzz_session.cpp) — the fuzzer then
// exercises exactly the parser that faces untrusted scripted input.
#pragma once

#include <iosfwd>

#include "serve/service.hpp"

namespace aecnc::serve {

/// Drive `svc` from the request stream `in`, writing one reply per
/// request to `out`. Returns true when every line parsed and the output
/// stream is still good; false signals at least one error reply (the
/// session still ran to completion).
bool run_session(Service& svc, std::istream& in, std::ostream& out);

}  // namespace aecnc::serve
