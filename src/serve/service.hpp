// Service façade: the embeddable query-service entry point
// (docs/serving.md has the full architecture).
//
//   aecnc::serve::Service svc;
//   svc.publish(std::move(csr));              // epoch 1
//   auto r = svc.query_edge(u, v);            // r.count, r.epoch, r.cached
//   auto f = svc.submit_edge(u, v);           // async, coalesced batches
//   svc.publish(updated_csr);                 // epoch 2, cache invalidated
//
// Composition:
//  - SnapshotStore: epoch-versioned immutable graphs; queries pin one
//    snapshot for their whole lifetime, so every reply is consistent
//    with exactly one epoch even across a mid-stream publish.
//  - QueryEngine: point / vertex-neighborhood / bulk-batch execution
//    with per-worker reusable indexes.
//  - ResultCache: LRU over (epoch, pair) point results. Pipeline
//    publishes invalidate fine-grained (only pairs the mutations
//    touched; everything else carries forward to the new epoch); direct
//    publish(Csr) still invalidates wholesale.
//  - InflightTable: duplicate concurrent point queries for one
//    (epoch, pair) coalesce onto a single computation.
//  - AdmissionController: per-client p99 compute-latency budget; over
//    budget, cache-missing queries degrade to a previous-epoch cached
//    read (STALE) or are shed (SHED) instead of running the engine.
//
// Two request paths:
//  - Synchronous query_* calls run on the caller's thread (point
//    queries are lock-free on the snapshot path; batch/vertex calls
//    serialize inside the engine).
//  - submit_edge() enqueues onto a *bounded* admission queue; a
//    dispatcher thread drains up to max_coalesce requests at a time and
//    executes them as one engine batch (request coalescing). When the
//    queue is full, submit_edge blocks the producer (backpressure) and
//    try_submit_edge rejects instead — the two standard load-shedding
//    policies.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/inflight.hpp"
#include "serve/query_engine.hpp"
#include "serve/result_cache.hpp"
#include "serve/snapshot_store.hpp"
#include "update/pipeline.hpp"
#include "util/annotations.hpp"

namespace aecnc::serve {

struct ServiceConfig {
  EngineConfig engine{};
  /// Max resident point-result cache entries (0 disables caching).
  std::size_t cache_capacity = 1 << 16;
  /// Bounded admission queue: pending async requests before submit
  /// blocks / try_submit rejects.
  std::size_t queue_capacity = 1024;
  /// Max requests the dispatcher coalesces into one engine batch.
  std::size_t max_coalesce = 256;
  /// Spawn the dispatcher thread. Tests set false and call pump() to
  /// drive the async path deterministically.
  bool start_dispatcher = true;
  /// Relabel published graphs by descending degree (graph::IdMap seam):
  /// snapshots and cache keys live in the internal hub-first space while
  /// every request and reply keeps speaking the caller's external IDs.
  /// Replies are byte-identical either way. Note the cache-hit fast path
  /// pins the snapshot when this is on (it needs the map); leave it off
  /// to keep the epoch-only no-pin hit path.
  bool relabel = false;
  /// Mutation-pipeline knobs for apply_updates()/publish(). The
  /// pipeline is created lazily, seeded from the current snapshot; set
  /// update.max_vertices to pin the mutable universe (the CLI serve
  /// loop pins it to the initial graph's).
  update::PipelineConfig update{};
  /// Carry unaffected cache entries across pipeline publishes using the
  /// pipeline's touched-pair set (ResultCache::carry_forward). Off
  /// reverts every publish to wholesale invalidation — the bench's
  /// baseline arm.
  bool fine_grained_invalidation = true;
  /// Per-client SLO admission control (disabled while p99_budget_ns=0).
  SloConfig slo{};
};

/// How a point reply relates to the SLO/staleness contract
/// (docs/serving.md).
enum class ReplyStatus : std::uint8_t {
  kFresh = 0,  // exact on the epoch it names (computed or cache hit)
  kStale,      // SLO degrade: previous-epoch cached value; still exact
               // for the epoch the reply names
  kShed,       // SLO shed: no value computed; count/is_edge meaningless
};

/// Reply to a point query.
struct QueryResult {
  Epoch epoch = 0;       // snapshot the count was computed on
  VertexId u = 0;
  VertexId v = 0;
  CnCount count = 0;     // |N(u) ∩ N(v)|; 0 for invalid pairs
  bool is_edge = false;  // (u, v) is an edge of that snapshot
  bool cached = false;   // served from the result cache
  ReplyStatus status = ReplyStatus::kFresh;
};

/// Reply to a vertex-neighborhood query: counts[k] pairs u with
/// neighbors[k], matching the cnt[off[u] : off[u+1]) slice of an
/// all-edge run on the same snapshot.
struct VertexResult {
  Epoch epoch = 0;
  VertexId u = 0;
  std::vector<VertexId> neighbors;
  std::vector<CnCount> counts;
};

struct ServiceStats {
  CacheStats cache;
  Epoch epoch = 0;                    // current snapshot epoch
  std::uint64_t publishes = 0;
  std::uint64_t point_queries = 0;    // sync query_edge calls
  std::uint64_t vertex_queries = 0;
  std::uint64_t batch_queries = 0;    // queries through query_batch
  std::uint64_t point_computes = 0;   // point-path engine computations
                                      // (misses that neither coalesced,
                                      // degraded, nor re-hit the cache)
  std::uint64_t engine_batches = 0;   // engine-level batch executions
  std::uint64_t engine_queries = 0;   // pairs evaluated by the batch
                                      // path (post within-batch dedup)
  std::uint64_t async_submitted = 0;  // accepted async requests
  std::uint64_t async_batches = 0;    // dispatcher batches executed
  std::uint64_t async_max_coalesced = 0;  // largest dispatcher batch
  std::uint64_t async_rejected = 0;   // try_submit_edge load-sheds
  std::uint64_t coalesced_joined = 0;  // point queries served by another
                                       // request's in-flight compute
  std::uint64_t stale_served = 0;     // SLO degrades to prev-epoch reads
  std::uint64_t slo_shed = 0;         // SLO sheds (no stale entry held)
  std::size_t queue_depth = 0;        // pending async requests now
  /// Cumulative mutation-pipeline report (zeros until apply_updates).
  update::ApplyReport updates;
};

class Service {
 public:
  explicit Service(ServiceConfig config = {});
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;
  /// Completes every pending async request before returning.
  ~Service();

  /// Publish a new graph snapshot; invalidates the result cache and
  /// returns the new epoch. In-flight queries finish on their pinned
  /// epoch.
  Epoch publish(graph::Csr g);

  // --- live updates (docs/updates.md) -----------------------------------

  /// Apply edge mutations through the update pipeline (delta
  /// maintenance or policy-chosen batch recount). The pipeline is
  /// seeded lazily from the current snapshot — and re-seeded whenever a
  /// direct publish(Csr) superseded its state. Mutations are NOT
  /// visible to queries until publish() is called. Throws before the
  /// first publish(Csr).
  update::ApplyReport apply_updates(std::span<const update::Mutation> muts);

  /// Materialize the pipeline state into a fresh immutable snapshot and
  /// publish it (cache invalidates, epoch advances). Throws if
  /// apply_updates() has never seeded the pipeline.
  Epoch publish();

  /// Maintained count of edge (u, v) in the *pipeline* state (which
  /// may be ahead of the published snapshot); nullopt for non-edges or
  /// an unseeded pipeline.
  [[nodiscard]] std::optional<CnCount> pending_count(VertexId u,
                                                     VertexId v) const;

  /// Epoch of the current snapshot; 0 before the first publish.
  [[nodiscard]] Epoch current_epoch() const noexcept {
    return store_.current_epoch();
  }

  /// Pin the current snapshot for inspection (shape reporting, test
  /// cross-checks). Null before the first publish.
  [[nodiscard]] SnapshotPtr snapshot() const noexcept {
    return store_.acquire();
  }

  // --- synchronous path -------------------------------------------------

  /// Point query on the caller's thread. Cache-first; on a miss the
  /// request coalesces with any identical in-flight query and passes
  /// through the client's SLO admission check (r.status reports kStale /
  /// kShed degrades). Throws std::runtime_error before the first
  /// publish().
  [[nodiscard]] QueryResult query_edge(VertexId u, VertexId v,
                                       ClientId client = 0);

  /// All of u's incident counts (bypasses the point cache; the engine
  /// streams the neighborhood with one shared index build).
  [[nodiscard]] VertexResult query_vertex(VertexId u);

  /// Bulk batch: cache-checked per pair, misses computed as one engine
  /// batch on a single pinned snapshot, results in request order.
  [[nodiscard]] std::vector<QueryResult> query_batch(
      std::span<const EdgeQuery> queries);

  // --- asynchronous path (bounded queue + coalescing) -------------------

  /// Enqueue a point query; blocks while the admission queue is full
  /// (backpressure). Cache hits complete immediately without queuing.
  [[nodiscard]] std::future<QueryResult> submit_edge(VertexId u, VertexId v);

  /// As submit_edge but load-shedding: returns std::nullopt instead of
  /// blocking when the queue is full.
  [[nodiscard]] std::optional<std::future<QueryResult>> try_submit_edge(
      VertexId u, VertexId v);

  /// Drain and execute one coalesced batch on the caller's thread.
  /// Returns the number of requests completed (0 if the queue was
  /// empty). Main use: deterministic tests with start_dispatcher=false;
  /// also safe alongside a running dispatcher.
  std::size_t pump();

  [[nodiscard]] ServiceStats stats() const;

 private:
  struct Pending {
    VertexId u;
    VertexId v;
    std::promise<QueryResult> promise;
  };

  /// Pin the current snapshot or throw (no snapshot published yet).
  [[nodiscard]] SnapshotPtr pinned() const;

  /// Store the snapshot (graph already in its final internal space, with
  /// its translation map), invalidate the cache, bump the stats. A
  /// non-null, non-wholesale `touched` set (pipeline publishes only)
  /// switches invalidation from wholesale to carry-forward.
  Epoch publish_snapshot(graph::Csr g, graph::IdMap id_map,
                         const update::TouchedSet* touched = nullptr);

  /// Build the reply for a cached or freshly-computed point result.
  [[nodiscard]] static QueryResult make_result(Epoch epoch, VertexId u,
                                               VertexId v,
                                               CachedEdgeCount value,
                                               bool cached);

  /// Count the pair on the pinned snapshot and derive its edge flag
  /// (the cacheable part of a point reply).
  [[nodiscard]] CachedEdgeCount compute_pair(const Snapshot& snap, VertexId u,
                                             VertexId v);

  /// Current epoch, or throw if nothing is published yet. The cache-hit
  /// fast path uses this (one atomic load) instead of pinning.
  [[nodiscard]] Epoch current_epoch_or_throw() const;

  /// Cache-miss slow path of query_edge: SLO admission (degrade /
  /// shed), in-flight coalescing, timed compute, cache fill. (u, v) =
  /// the caller's external IDs for the reply; (iu, iv) = the snapshot's
  /// internal pair.
  [[nodiscard]] QueryResult miss_path(const Snapshot& snap, VertexId u,
                                      VertexId v, VertexId iu, VertexId iv,
                                      ClientId client);

  /// Compute (iu, iv) on `snap`, record the client's compute latency
  /// with the admission controller, and fill the cache.
  [[nodiscard]] CachedEdgeCount compute_and_fill(const Snapshot& snap,
                                                 VertexId iu, VertexId iv,
                                                 ClientId client);

  /// Execute one coalesced request group against one pinned snapshot.
  void process_pending(std::vector<Pending> batch);

  void dispatcher_loop();

  /// Pipeline seeded and ready for `epoch`; reseed if the store moved on.
  [[nodiscard]] update::UpdatePipeline& updater_for_current_epoch()
      AECNC_REQUIRES(updater_mutex_);

  ServiceConfig config_;
  SnapshotStore store_;
  QueryEngine engine_;
  ResultCache cache_;
  InflightTable inflight_;
  AdmissionController admission_;

  /// Lazily-created mutation pipeline + the epoch its state mirrors.
  /// updater_mutex_ serializes apply_updates/publish() against each
  /// other; queries never touch the pipeline. Outermost lock of the
  /// update chain: held across pipeline applies (which take the
  /// pipeline's state lock) and epoch publishes (snapshot-store publish
  /// lock, then the cache spinlock).
  // aecnc: acquired-before(UpdatePipeline::state_mutex_,
  //                        SnapshotStore::publish_mutex_,
  //                        ResultCache::mutex_)
  mutable util::Mutex updater_mutex_;
  std::unique_ptr<update::UpdatePipeline> updater_
      AECNC_GUARDED_BY(updater_mutex_);
  Epoch updater_epoch_ AECNC_GUARDED_BY(updater_mutex_) = 0;

  // Admission-queue lock. Never held across query execution: the
  // dispatcher and pump() drain under the lock, release it, then run the
  // batch (which takes the cache spinlock and the engine's batch lock).
  // First obs metric resolution can register under it.
  // aecnc: acquired-before(Registry::mutex_)
  mutable util::Mutex queue_mutex_;
  std::condition_variable_any queue_not_full_;
  std::condition_variable_any queue_not_empty_;
  std::deque<Pending> queue_ AECNC_GUARDED_BY(queue_mutex_);
  bool stopping_ AECNC_GUARDED_BY(queue_mutex_) = false;
  std::thread dispatcher_;

  // aecnc: atomic-ok(monotonic stats counters; relaxed read-modify-write
  // only, snapshotted without ordering guarantees by stats())
  std::atomic<std::uint64_t> publishes_{0};
  // aecnc: atomic-ok(monotonic stats counter; see publishes_)
  std::atomic<std::uint64_t> point_queries_{0};
  // aecnc: atomic-ok(monotonic stats counter; see publishes_)
  std::atomic<std::uint64_t> vertex_queries_{0};
  // aecnc: atomic-ok(monotonic stats counter; see publishes_)
  std::atomic<std::uint64_t> batch_queries_{0};
  // aecnc: atomic-ok(monotonic stats counter; see publishes_)
  std::atomic<std::uint64_t> async_submitted_{0};
  // aecnc: atomic-ok(monotonic stats counter; see publishes_)
  std::atomic<std::uint64_t> async_batches_{0};
  // aecnc: atomic-ok(monotonic high-water mark maintained by a relaxed
  // CAS loop; approximate by design)
  std::atomic<std::uint64_t> async_max_coalesced_{0};
  // aecnc: atomic-ok(monotonic stats counter; see publishes_)
  std::atomic<std::uint64_t> async_rejected_{0};
  // aecnc: atomic-ok(monotonic stats counter; see publishes_)
  std::atomic<std::uint64_t> point_computes_{0};
  // aecnc: atomic-ok(monotonic stats counter; see publishes_)
  std::atomic<std::uint64_t> coalesced_joined_{0};
  // aecnc: atomic-ok(monotonic stats counter; see publishes_)
  std::atomic<std::uint64_t> stale_served_{0};
  // aecnc: atomic-ok(monotonic stats counter; see publishes_)
  std::atomic<std::uint64_t> slo_shed_{0};
};

}  // namespace aecnc::serve
