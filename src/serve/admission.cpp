#include "serve/admission.hpp"

namespace aecnc::serve {

void AdmissionController::record(ClientId client, std::uint64_t ns) {
  if (!enabled()) return;
  if (config_.fake_sample_ns != 0) ns = config_.fake_sample_ns;
  util::MutexLock lock(&mutex_);
  Window& w = windows_[client];
  ++w.buckets[static_cast<std::size_t>(bucket_of(ns))];
  ++w.total;
  if (config_.window > 0 && w.total >= config_.window) {
    // Halve-decay: recent samples keep majority weight, one old burst
    // fades geometrically, and totals stay bounded.
    std::uint64_t total = 0;
    for (std::uint64_t& b : w.buckets) {
      b /= 2;
      total += b;
    }
    w.total = total;
  }
}

std::uint64_t AdmissionController::p99_locked(const Window& w) const {
  if (w.total < config_.min_samples) return 0;  // not engaged yet
  const std::uint64_t rank = (w.total * 99 + 99) / 100;  // ceil(0.99·total)
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += w.buckets[static_cast<std::size_t>(i)];
    if (seen >= rank) return bucket_upper(i);
  }
  return bucket_upper(kNumBuckets - 1);
}

bool AdmissionController::admit(ClientId client) const {
  if (!enabled()) return true;
  util::MutexLock lock(&mutex_);
  const auto it = windows_.find(client);
  if (it == windows_.end()) return true;
  const std::uint64_t p99 = p99_locked(it->second);
  return p99 == 0 || p99 <= config_.p99_budget_ns;
}

std::uint64_t AdmissionController::p99_ns(ClientId client) const {
  if (!enabled()) return 0;
  util::MutexLock lock(&mutex_);
  const auto it = windows_.find(client);
  if (it == windows_.end()) return 0;
  return p99_locked(it->second);
}

}  // namespace aecnc::serve
