#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "graph/reorder.hpp"
#include "obs/catalog.hpp"

namespace aecnc::serve {

namespace {

/// SLO compute timing. Deliberately NOT obs::now_ns: the admission
/// decision must not depend on whether obs is compiled in (the stub
/// returns 0) nor perturb the obs fake clock's deterministic stream.
/// Determinism for tests comes from SloConfig::fake_sample_ns instead.
std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Whether (u, v) is an edge of g (false for invalid pairs). Cached
/// alongside the count so hits skip this search. has_edge probes the
/// smaller adjacency list of the pair — on skewed graphs most queries
/// touch a hub, and searching the hub's list is the expensive order.
bool edge_flag(const graph::Csr& g, VertexId u, VertexId v) {
  const VertexId n = g.num_vertices();
  return u < n && v < n && u != v && g.has_edge(u, v);
}

}  // namespace

Service::Service(ServiceConfig config)
    : config_(std::move(config)),
      engine_(config_.engine),
      cache_(config_.cache_capacity),
      admission_(config_.slo) {
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.max_coalesce == 0) config_.max_coalesce = 1;
  if (config_.start_dispatcher) {
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
  }
}

Service::~Service() {
  {
    util::MutexLock lock(&queue_mutex_);
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Without a dispatcher, requests may still be queued: complete them so
  // no future is left dangling.
  while (pump() > 0) {
  }
}

Epoch Service::publish(graph::Csr g) {
  if (config_.relabel) {
    graph::IdMap map;
    graph::Csr internal = graph::reorder_degree_descending(g, &map);
    return publish_snapshot(std::move(internal), std::move(map));
  }
  return publish_snapshot(std::move(g), graph::IdMap{});
}

Epoch Service::publish_snapshot(graph::Csr g, graph::IdMap id_map,
                                const update::TouchedSet* touched) {
  const Epoch epoch = store_.publish(std::move(g), std::move(id_map));
  // Invalidate after the swap: a racing query may still insert an entry
  // for the *old* epoch, but epochs are part of the cache key, so such
  // stragglers can never serve a newer snapshot — they just age out (or,
  // on the carry-forward path, get re-stamped: sound, because only pairs
  // the publish provably did not perturb are carried).
  std::size_t carried = 0;
  if (touched != nullptr && !touched->wholesale &&
      config_.fine_grained_invalidation) {
    carried = cache_.carry_forward(epoch, touched->pairs);
  } else {
    cache_.invalidate_all();
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    const obs::ServeMetrics& m = obs::ServeMetrics::get();
    m.publishes.add();
    m.epoch.set(static_cast<std::int64_t>(epoch));
    m.cache_carried.add(carried);
  }
  return epoch;
}

update::UpdatePipeline& Service::updater_for_current_epoch() {
  const SnapshotPtr snap = pinned();
  if (updater_ == nullptr || updater_epoch_ != snap->epoch) {
    // First use, or a direct publish(Csr) superseded the pipeline's
    // state: reseed from the live snapshot (one all-edge count).
    updater_ =
        std::make_unique<update::UpdatePipeline>(snap->graph, config_.update);
    updater_epoch_ = snap->epoch;
  }
  return *updater_;
}

update::ApplyReport Service::apply_updates(
    std::span<const update::Mutation> muts) {
  util::MutexLock lock(&updater_mutex_);
  update::UpdatePipeline& pipe = updater_for_current_epoch();
  const SnapshotPtr snap = pinned();
  if (snap->id_map.is_identity()) return pipe.apply(muts);
  // Mutations arrive in external IDs; the pipeline state lives in the
  // snapshot's internal space. Out-of-range externals pass through the
  // map unchanged, so the pipeline rejects exactly what it would have
  // rejected without the relabel.
  std::vector<update::Mutation> internal(muts.begin(), muts.end());
  for (update::Mutation& mut : internal) {
    mut.u = snap->id_map.to_internal(mut.u);
    mut.v = snap->id_map.to_internal(mut.v);
  }
  return pipe.apply(internal);
}

Epoch Service::publish() {
  obs::ScopedTimer timer(obs::UpdateMetrics::get().publish_ns);
  util::MutexLock lock(&updater_mutex_);
  if (updater_ == nullptr) {
    throw std::runtime_error(
        "aecnc::serve::Service: publish() before any apply_updates()");
  }
  // The pipeline mutated the *internal*-space graph, so its snapshot
  // keeps the map it was seeded under — re-relabeling here would detach
  // the pipeline state from the published ID space.
  graph::IdMap map;
  if (const SnapshotPtr snap = store_.acquire(); snap != nullptr) {
    map = snap->id_map;
  }
  // The touched set is relative to the epoch the pipeline was seeded
  // from; if a direct publish(Csr) slid in since, the superseded epoch's
  // entries describe a *different* graph and carry-forward would be
  // unsound — fall back to wholesale for that publish.
  const bool contiguous = updater_epoch_ == store_.current_epoch();
  const update::TouchedSet touched = updater_->take_touched();
  const Epoch epoch = publish_snapshot(updater_->materialize(), std::move(map),
                                       contiguous ? &touched : nullptr);
  // The pipeline state IS the new snapshot — no reseed needed for the
  // next apply_updates.
  updater_epoch_ = epoch;
  return epoch;
}

std::optional<CnCount> Service::pending_count(VertexId u, VertexId v) const {
  util::MutexLock lock(&updater_mutex_);
  if (updater_ == nullptr) return std::nullopt;
  if (const SnapshotPtr snap = store_.acquire(); snap != nullptr) {
    u = snap->id_map.to_internal(u);
    v = snap->id_map.to_internal(v);
  }
  return updater_->state().count(u, v);
}

SnapshotPtr Service::pinned() const {
  SnapshotPtr snap = store_.acquire();
  if (snap == nullptr) {
    throw std::runtime_error(
        "aecnc::serve::Service: query before first publish()");
  }
  return snap;
}

QueryResult Service::make_result(Epoch epoch, VertexId u, VertexId v,
                                 CachedEdgeCount value, bool cached) {
  return {.epoch = epoch,
          .u = u,
          .v = v,
          .count = value.count,
          .is_edge = value.is_edge,
          .cached = cached};
}

CachedEdgeCount Service::compute_pair(const Snapshot& snap, VertexId u,
                                      VertexId v) {
  return {.count = engine_.count_pair(snap, u, v),
          .is_edge = edge_flag(snap.graph, u, v)};
}

Epoch Service::current_epoch_or_throw() const {
  const Epoch epoch = store_.current_epoch();
  if (epoch == 0) {
    throw std::runtime_error(
        "aecnc::serve::Service: query before first publish()");
  }
  return epoch;
}

QueryResult Service::query_edge(VertexId u, VertexId v, ClientId client) {
  // Hit fast path: resolve the epoch with one atomic load (no snapshot
  // pin, no refcount traffic) and answer straight from the cache — the
  // cached value carries is_edge, so no per-hit e(u, v) binary search
  // either. bench_serve_throughput's >=10x cached-vs-recompute target
  // depends on this path staying this short. Hits also bypass admission
  // entirely: a served cache entry cannot threaten the latency SLO.
  const obs::ServeMetrics& m = obs::ServeMetrics::get();
  obs::ScopedTimer timer(m.point_ns);
  if (config_.relabel) {
    // Relabel mode: the cache is keyed on *internal* pairs, and hits
    // need the snapshot's map to translate — so this path pins even on
    // a hit. The reply still speaks the caller's external IDs.
    const SnapshotPtr snap = pinned();
    point_queries_.fetch_add(1, std::memory_order_relaxed);
    const VertexId iu = snap->id_map.to_internal(u);
    const VertexId iv = snap->id_map.to_internal(v);
    if (const auto hit = cache_.lookup(snap->epoch, iu, iv); hit.has_value()) {
      if (obs::enabled()) m.cache_hits.add();
      return make_result(snap->epoch, u, v, *hit, /*cached=*/true);
    }
    if (obs::enabled()) m.cache_misses.add();
    return miss_path(*snap, u, v, iu, iv, client);
  }
  const Epoch epoch = current_epoch_or_throw();
  point_queries_.fetch_add(1, std::memory_order_relaxed);
  if (const auto hit = cache_.lookup(epoch, u, v); hit.has_value()) {
    if (obs::enabled()) m.cache_hits.add();
    return make_result(epoch, u, v, *hit, /*cached=*/true);
  }
  if (obs::enabled()) m.cache_misses.add();
  const SnapshotPtr snap = pinned();
  return miss_path(*snap, u, v, u, v, client);
}

CachedEdgeCount Service::compute_and_fill(const Snapshot& snap, VertexId iu,
                                          VertexId iv, ClientId client) {
  point_computes_.fetch_add(1, std::memory_order_relaxed);
  const bool timed = admission_.enabled();
  const std::uint64_t start = timed ? steady_now_ns() : 0;
  const CachedEdgeCount value = compute_pair(snap, iu, iv);
  if (timed) admission_.record(client, steady_now_ns() - start);
  cache_.insert(snap.epoch, iu, iv, value);
  return value;
}

QueryResult Service::miss_path(const Snapshot& snap, VertexId u, VertexId v,
                               VertexId iu, VertexId iv, ClientId client) {
  const obs::ServeMetrics& m = obs::ServeMetrics::get();

  // SLO gate (miss path only). Over budget: prefer an exact answer on
  // the superseded epoch — entries the last carry-forward left behind —
  // over running the engine; with nothing stale to serve, shed.
  if (!admission_.admit(client)) {
    if (config_.slo.allow_stale && snap.epoch > 1) {
      if (const auto stale = cache_.lookup(snap.epoch - 1, iu, iv);
          stale.has_value()) {
        stale_served_.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled()) m.slo_stale.add();
        QueryResult r =
            make_result(snap.epoch - 1, u, v, *stale, /*cached=*/true);
        r.status = ReplyStatus::kStale;
        return r;
      }
    }
    slo_shed_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) m.slo_shed.add();
    return {.epoch = snap.epoch,
            .u = u,
            .v = v,
            .count = 0,
            .is_edge = false,
            .cached = false,
            .status = ReplyStatus::kShed};
  }

  // Coalesce with any identical in-flight computation.
  const std::uint64_t pair = update::touched_key(iu, iv);
  const InflightTable::JoinResult join = inflight_.join(snap.epoch, pair);
  if (!join.leader) {
    if (join.value.has_value()) {
      coalesced_joined_.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) m.coalesce_joined.add();
      return make_result(snap.epoch, u, v, *join.value, /*cached=*/true);
    }
    // Leader abandoned (its compute threw): fall back to computing
    // independently rather than failing a healthy request.
    const CachedEdgeCount value = compute_and_fill(snap, iu, iv, client);
    return make_result(snap.epoch, u, v, value, /*cached=*/false);
  }

  InflightLeaderGuard guard(&inflight_, snap.epoch, pair);
  // Re-check the cache after winning the lead: a previous leader may
  // have completed (and erased its entry) between our miss and our join
  // — this re-check is what makes the group exactly-once.
  if (const auto hit = cache_.lookup(snap.epoch, iu, iv); hit.has_value()) {
    guard.complete(*hit);
    return make_result(snap.epoch, u, v, *hit, /*cached=*/true);
  }
  const CachedEdgeCount value = compute_and_fill(snap, iu, iv, client);
  guard.complete(value);
  return make_result(snap.epoch, u, v, value, /*cached=*/false);
}

VertexResult Service::query_vertex(VertexId u) {
  obs::ScopedTimer timer(obs::ServeMetrics::get().vertex_ns);
  const SnapshotPtr snap = pinned();
  vertex_queries_.fetch_add(1, std::memory_order_relaxed);
  VertexResult result{.epoch = snap->epoch, .u = u, .neighbors = {}, .counts = {}};
  const VertexId iu = snap->id_map.to_internal(u);
  if (iu < snap->graph.num_vertices()) {
    const auto nbrs = snap->graph.neighbors(iu);
    result.counts = engine_.count_vertex(*snap, iu);
    if (snap->id_map.is_identity()) {
      result.neighbors.assign(nbrs.begin(), nbrs.end());
    } else {
      // Externalize the adjacency and restore the external-ID sort order
      // so the reply is byte-identical to an unrelabeled service's.
      std::vector<std::pair<VertexId, CnCount>> rows(nbrs.size());
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        rows[k] = {snap->id_map.to_external(nbrs[k]), result.counts[k]};
      }
      std::sort(rows.begin(), rows.end());
      result.neighbors.resize(rows.size());
      for (std::size_t k = 0; k < rows.size(); ++k) {
        result.neighbors[k] = rows[k].first;
        result.counts[k] = rows[k].second;
      }
    }
  }
  return result;
}

std::vector<QueryResult> Service::query_batch(
    std::span<const EdgeQuery> queries) {
  const obs::ServeMetrics& m = obs::ServeMetrics::get();
  obs::ScopedTimer timer(m.batch_ns);
  const SnapshotPtr snap = pinned();
  batch_queries_.fetch_add(queries.size(), std::memory_order_relaxed);

  std::vector<QueryResult> results(queries.size());
  std::vector<EdgeQuery> misses;  // internal-space pairs for the engine
  std::vector<std::size_t> miss_slots;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto [u, v] = queries[i];
    const VertexId iu = snap->id_map.to_internal(u);
    const VertexId iv = snap->id_map.to_internal(v);
    if (const auto hit = cache_.lookup(snap->epoch, iu, iv); hit.has_value()) {
      results[i] = make_result(snap->epoch, u, v, *hit, /*cached=*/true);
    } else {
      misses.push_back({iu, iv});
      miss_slots.push_back(i);
    }
  }
  if (obs::enabled()) {
    m.cache_hits.add(queries.size() - misses.size());
    m.cache_misses.add(misses.size());
  }
  if (!misses.empty()) {
    // Within-batch coalescing: duplicate pairs (either orientation)
    // reach the engine once; every requesting slot shares the result.
    std::vector<EdgeQuery> unique;
    std::vector<std::size_t> which(misses.size());
    std::unordered_map<std::uint64_t, std::size_t> seen;
    for (std::size_t k = 0; k < misses.size(); ++k) {
      const auto [iu, iv] = misses[k];
      const auto [it, fresh] =
          seen.emplace(update::touched_key(iu, iv), unique.size());
      if (fresh) unique.push_back(misses[k]);
      which[k] = it->second;
    }
    const std::vector<CnCount> counts = engine_.count_batch(*snap, unique);
    std::vector<CachedEdgeCount> values(unique.size());
    for (std::size_t k = 0; k < unique.size(); ++k) {
      const auto [iu, iv] = unique[k];
      values[k] = {.count = counts[k],
                   .is_edge = edge_flag(snap->graph, iu, iv)};
      cache_.insert(snap->epoch, iu, iv, values[k]);
    }
    for (std::size_t k = 0; k < misses.size(); ++k) {
      const auto [u, v] = queries[miss_slots[k]];
      results[miss_slots[k]] =
          make_result(snap->epoch, u, v, values[which[k]], /*cached=*/false);
    }
  }
  return results;
}

std::future<QueryResult> Service::submit_edge(VertexId u, VertexId v) {
  // Cache fast path: complete without touching the queue (or pinning —
  // except in relabel mode, which needs the snapshot's map for the key).
  Epoch epoch;
  VertexId iu = u, iv = v;
  if (config_.relabel) {
    const SnapshotPtr snap = pinned();
    epoch = snap->epoch;
    iu = snap->id_map.to_internal(u);
    iv = snap->id_map.to_internal(v);
  } else {
    epoch = current_epoch_or_throw();
  }
  if (const auto hit = cache_.lookup(epoch, iu, iv); hit.has_value()) {
    if (obs::enabled()) obs::ServeMetrics::get().cache_hits.add();
    std::promise<QueryResult> promise;
    promise.set_value(make_result(epoch, u, v, *hit, /*cached=*/true));
    async_submitted_.fetch_add(1, std::memory_order_relaxed);
    return promise.get_future();
  }

  const obs::ServeMetrics& m = obs::ServeMetrics::get();
  std::future<QueryResult> future;
  {
    util::MutexLock lock(&queue_mutex_);
    if (obs::enabled() && queue_.size() >= config_.queue_capacity) {
      // The producer is about to block on a full queue: that's the
      // backpressure event worth alerting on, not the successful enqueue.
      m.backpressure_waits.add();
    }
    // Explicit wait loop (not wait(lock, pred)): the thread-safety
    // analysis can't see through predicate lambdas but tracks the
    // capability across wait(mutex).
    while (!(stopping_ || queue_.size() < config_.queue_capacity)) {
      queue_not_full_.wait(queue_mutex_);
    }
    Pending pending{u, v, std::promise<QueryResult>()};
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
    if (obs::enabled()) {
      m.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    }
    async_submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  queue_not_empty_.notify_one();
  return future;
}

std::optional<std::future<QueryResult>> Service::try_submit_edge(VertexId u,
                                                                 VertexId v) {
  Epoch epoch;
  VertexId iu = u, iv = v;
  if (config_.relabel) {
    const SnapshotPtr snap = pinned();
    epoch = snap->epoch;
    iu = snap->id_map.to_internal(u);
    iv = snap->id_map.to_internal(v);
  } else {
    epoch = current_epoch_or_throw();
  }
  if (const auto hit = cache_.lookup(epoch, iu, iv); hit.has_value()) {
    if (obs::enabled()) obs::ServeMetrics::get().cache_hits.add();
    std::promise<QueryResult> promise;
    promise.set_value(make_result(epoch, u, v, *hit, /*cached=*/true));
    async_submitted_.fetch_add(1, std::memory_order_relaxed);
    return promise.get_future();
  }

  const obs::ServeMetrics& m = obs::ServeMetrics::get();
  std::future<QueryResult> future;
  {
    util::MutexLock lock(&queue_mutex_);
    if (queue_.size() >= config_.queue_capacity) {
      async_rejected_.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) m.shed.add();
      return std::nullopt;
    }
    Pending pending{u, v, std::promise<QueryResult>()};
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
    if (obs::enabled()) {
      m.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    }
    async_submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  queue_not_empty_.notify_one();
  return future;
}

void Service::process_pending(std::vector<Pending> batch) {
  async_batches_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = async_max_coalesced_.load(std::memory_order_relaxed);
  while (seen < batch.size() &&
         !async_max_coalesced_.compare_exchange_weak(
             seen, batch.size(), std::memory_order_relaxed)) {
  }

  // One pinned snapshot for the whole coalesced batch: every reply in
  // it carries the same epoch by construction.
  const SnapshotPtr snap = pinned();
  std::vector<QueryResult> replies(batch.size());
  std::vector<EdgeQuery> misses;  // internal-space pairs for the engine
  std::vector<std::size_t> miss_slots;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const VertexId iu = snap->id_map.to_internal(batch[i].u);
    const VertexId iv = snap->id_map.to_internal(batch[i].v);
    // Re-check the cache: an earlier batch (or a sync query) may have
    // filled the entry while this request sat in the queue.
    if (const auto hit = cache_.lookup(snap->epoch, iu, iv);
        hit.has_value()) {
      replies[i] = make_result(snap->epoch, batch[i].u, batch[i].v, *hit,
                               /*cached=*/true);
    } else {
      misses.push_back({iu, iv});
      miss_slots.push_back(i);
    }
  }
  if (obs::enabled()) {
    const obs::ServeMetrics& m = obs::ServeMetrics::get();
    m.cache_hits.add(batch.size() - misses.size());
    m.cache_misses.add(misses.size());
  }
  if (!misses.empty()) {
    // Same within-batch coalescing as query_batch: the dispatcher's
    // whole reason to exist is aggregating duplicates, so duplicate
    // pairs in one drain cost one engine evaluation.
    std::vector<EdgeQuery> unique;
    std::vector<std::size_t> which(misses.size());
    std::unordered_map<std::uint64_t, std::size_t> seen;
    for (std::size_t k = 0; k < misses.size(); ++k) {
      const auto [iu, iv] = misses[k];
      const auto [it, fresh] =
          seen.emplace(update::touched_key(iu, iv), unique.size());
      if (fresh) unique.push_back(misses[k]);
      which[k] = it->second;
    }
    const std::vector<CnCount> counts = engine_.count_batch(*snap, unique);
    std::vector<CachedEdgeCount> values(unique.size());
    for (std::size_t k = 0; k < unique.size(); ++k) {
      const auto [iu, iv] = unique[k];
      values[k] = {.count = counts[k],
                   .is_edge = edge_flag(snap->graph, iu, iv)};
      cache_.insert(snap->epoch, iu, iv, values[k]);
    }
    for (std::size_t k = 0; k < misses.size(); ++k) {
      const Pending& req = batch[miss_slots[k]];
      replies[miss_slots[k]] = make_result(snap->epoch, req.u, req.v,
                                           values[which[k]], /*cached=*/false);
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(replies[i]);
  }
}

std::size_t Service::pump() {
  std::vector<Pending> local;
  {
    util::MutexLock lock(&queue_mutex_);
    const std::size_t take = std::min(config_.max_coalesce, queue_.size());
    local.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      local.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    if (obs::enabled()) {
      obs::ServeMetrics::get().queue_depth.set(
          static_cast<std::int64_t>(queue_.size()));
    }
  }
  if (local.empty()) return 0;
  queue_not_full_.notify_all();
  const std::size_t processed = local.size();
  process_pending(std::move(local));
  return processed;
}

void Service::dispatcher_loop() {
  while (true) {
    std::vector<Pending> local;
    {
      util::MutexLock lock(&queue_mutex_);
      while (!(stopping_ || !queue_.empty())) {
        queue_not_empty_.wait(queue_mutex_);
      }
      if (queue_.empty() && stopping_) return;
      const std::size_t take = std::min(config_.max_coalesce, queue_.size());
      local.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        local.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (obs::enabled()) {
        obs::ServeMetrics::get().queue_depth.set(
            static_cast<std::int64_t>(queue_.size()));
      }
    }
    queue_not_full_.notify_all();
    process_pending(std::move(local));
  }
}

ServiceStats Service::stats() const {
  ServiceStats s;
  s.cache = cache_.stats();
  s.epoch = store_.current_epoch();
  s.publishes = publishes_.load(std::memory_order_relaxed);
  s.point_queries = point_queries_.load(std::memory_order_relaxed);
  s.vertex_queries = vertex_queries_.load(std::memory_order_relaxed);
  s.batch_queries = batch_queries_.load(std::memory_order_relaxed);
  s.point_computes = point_computes_.load(std::memory_order_relaxed);
  s.engine_batches = engine_.batches_run();
  s.engine_queries = engine_.queries_run();
  s.async_submitted = async_submitted_.load(std::memory_order_relaxed);
  s.async_batches = async_batches_.load(std::memory_order_relaxed);
  s.async_max_coalesced =
      async_max_coalesced_.load(std::memory_order_relaxed);
  s.async_rejected = async_rejected_.load(std::memory_order_relaxed);
  s.coalesced_joined = coalesced_joined_.load(std::memory_order_relaxed);
  s.stale_served = stale_served_.load(std::memory_order_relaxed);
  s.slo_shed = slo_shed_.load(std::memory_order_relaxed);
  {
    util::MutexLock lock(&queue_mutex_);
    s.queue_depth = queue_.size();
  }
  {
    util::MutexLock lock(&updater_mutex_);
    if (updater_ != nullptr) s.updates = updater_->totals();
  }
  return s;
}

}  // namespace aecnc::serve
