// In-flight request coalescing for point queries (docs/serving.md).
//
// Under read-heavy traffic the same hot pair is often queried by many
// threads at once; without coordination every one of them misses the
// cache and recomputes the identical intersection. This table latches
// duplicate concurrent queries for one (epoch, canonical pair) onto a
// single computation: the first arrival becomes the *leader* and
// computes; everyone else *joins* and blocks until the leader publishes
// the value — one engine call per coalesced group instead of N.
//
// Protocol (Service::query_edge drives it on the cache-miss path):
//
//   auto j = inflight.join(epoch, pair);
//   if (j.leader)        → compute, cache-insert, complete(epoch, pair, v)
//   else if (j.value)    → leader's result, ready to return
//   else                 → leader abandoned (threw): compute yourself
//
// complete() erases the entry, so a late arrival after the erase becomes
// a fresh leader — it must re-check the result cache after winning the
// lead (the previous leader already inserted), which closes the
// double-compute window and gives exactly-once computation per
// (epoch, pair) group. abandon() (RAII LeaderGuard) wakes joiners with
// no value rather than wedging them behind an exception.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <memory>
#include <optional>
#include <unordered_map>

#include "serve/result_cache.hpp"
#include "serve/snapshot_store.hpp"
#include "util/annotations.hpp"

namespace aecnc::serve {

class InflightTable {
 public:
  struct JoinResult {
    /// This caller owns the computation; it MUST complete() or abandon().
    bool leader = false;
    /// Joined and the leader delivered (engaged), or the leader
    /// abandoned (empty → compute yourself). Meaningless for leaders.
    std::optional<CachedEdgeCount> value;
  };

  /// Claim or join the in-flight computation for (epoch, pair). `pair`
  /// must be the canonical (min << 32 | max) key in the cache's ID
  /// space. Joiners block until the leader resolves the entry.
  [[nodiscard]] JoinResult join(Epoch epoch, std::uint64_t pair);

  /// Leader-only: publish the computed value to every joiner and retire
  /// the entry.
  void complete(Epoch epoch, std::uint64_t pair, CachedEdgeCount value);

  /// Leader-only: give up without a value (compute threw); joiners fall
  /// back to computing independently.
  void abandon(Epoch epoch, std::uint64_t pair);

  /// Cumulative joins that latched onto another request's computation —
  /// each one is a recompute the table saved (modulo abandons).
  [[nodiscard]] std::uint64_t joined() const noexcept {
    return joined_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    bool done = false;       // complete() delivered `value`
    bool abandoned = false;  // leader bailed; no value coming
    CachedEdgeCount value;
  };

  struct Key {
    Epoch epoch;
    std::uint64_t pair;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t x = k.pair ^ (k.epoch * 0x9e3779b97f4a7c15ULL);
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdULL;
      x ^= x >> 33;
      return static_cast<std::size_t>(x);
    }
  };

  /// Resolve the entry under the lock; joiners keep a shared_ptr so the
  /// leader can erase the map slot while they still wait on the Entry.
  // aecnc: lock-leaf(map upkeep and flag flips only; compute runs
  // outside the lock)
  mutable util::Mutex mutex_;
  std::condition_variable_any resolved_;
  std::unordered_map<Key, std::shared_ptr<Entry>, KeyHash> entries_
      AECNC_GUARDED_BY(mutex_);
  // aecnc: atomic-ok(monotonic stats counter; relaxed add, snapshotted
  // without ordering by Service::stats())
  std::atomic<std::uint64_t> joined_{0};
};

/// RAII leadership: constructed by the winning leader, `complete(v)` on
/// success; destruction without completion abandons, so an exception in
/// the compute path can never wedge the joiners.
class InflightLeaderGuard {
 public:
  InflightLeaderGuard(InflightTable* table, Epoch epoch,
                      std::uint64_t pair) noexcept
      : table_(table), epoch_(epoch), pair_(pair) {}
  InflightLeaderGuard(const InflightLeaderGuard&) = delete;
  InflightLeaderGuard& operator=(const InflightLeaderGuard&) = delete;
  ~InflightLeaderGuard() {
    if (table_ != nullptr) table_->abandon(epoch_, pair_);
  }

  void complete(CachedEdgeCount value) {
    table_->complete(epoch_, pair_, value);
    table_ = nullptr;
  }

 private:
  InflightTable* table_;
  Epoch epoch_;
  std::uint64_t pair_;
};

}  // namespace aecnc::serve
