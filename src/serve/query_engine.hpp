// Batched edge-query execution over pinned snapshots (docs/serving.md).
//
// The batch kernels (core/parallel.cpp) spin up execution contexts —
// per-thread FindSrc caches and BMP bitmaps — for one all-edge run and
// tear them down with it. A query service answers millions of small
// requests instead, so the engine inverts the lifetime: a persistent
// parallel::WorkerPool whose per-worker contexts (bitmap or hash index,
// keyed by (epoch, source vertex)) survive across queries. A batch that
// revisits a recently-queried source probes the already-built index
// instead of rebuilding it — the same amortization Algorithm 3 gets
// from contiguous slot ranges, recovered for arbitrary request streams.
//
// Routing mirrors the paper's family split:
//  - point queries always take the MPS dispatch (intersect/dispatch.hpp):
//    building an index for a single intersection costs as much as the
//    intersection itself;
//  - vertex-neighborhood and bulk batches honor Options::algorithm —
//    kBmp routes through the per-worker index (bitmap by default, hash
//    index as the O(d) alternative), everything else through MPS/merge.
//
// Thread safety: count_pair is stateless and callable from any thread.
// count_vertex / count_batch serialize internally on a batch mutex (the
// service's coalescing dispatcher is their main caller).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "bitmap/bitmap.hpp"
#include "core/options.hpp"
#include "intersect/hash_index.hpp"
#include "parallel/task_pool.hpp"
#include "serve/snapshot_store.hpp"
#include "util/annotations.hpp"
#include "util/types.hpp"

namespace aecnc::serve {

/// Index structure backing the kBmp route of batched queries.
enum class ServeIndex {
  kBitmap,  // |V|-bit bitmap per worker (paper Algorithm 2)
  kHash,    // O(d_u) open-addressing index (related-work comparator)
};

struct EngineConfig {
  /// Algorithm family + MPS knobs; `parallel`/`scheduler` fields are
  /// ignored (the engine always runs batches on its own pool).
  core::Options options{};
  ServeIndex index = ServeIndex::kBitmap;
  /// Worker threads for batch execution; 0 = hardware concurrency.
  int num_workers = 0;
  /// Queries per dynamically-scheduled chunk within a batch.
  std::uint64_t task_size = 64;
};

/// One point query: the (unordered) vertex pair to count.
struct EdgeQuery {
  VertexId u = 0;
  VertexId v = 0;
};

class QueryEngine {
 public:
  explicit QueryEngine(const EngineConfig& config = {});

  /// |N(u) ∩ N(v)| on the pinned snapshot. Distinct in-range vertices
  /// only: u == v or an out-of-range id returns 0. Stateless; safe to
  /// call concurrently from any number of threads.
  [[nodiscard]] CnCount count_pair(const Snapshot& snap, VertexId u,
                                   VertexId v) const;

  /// Counts for every slot of u's adjacency, aligned with
  /// snap.graph.neighbors(u) — the slice cnt[off[u] : off[u+1]) of an
  /// all-edge run. Empty for out-of-range u.
  [[nodiscard]] std::vector<CnCount> count_vertex(const Snapshot& snap,
                                                  VertexId u);

  /// One count per query, in request order. Executed on the worker pool
  /// with per-worker index reuse; invalid pairs yield 0.
  [[nodiscard]] std::vector<CnCount> count_batch(
      const Snapshot& snap, std::span<const EdgeQuery> queries);

  [[nodiscard]] int num_workers() const noexcept {
    return pool_.num_workers();
  }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

  /// Cumulative batches executed / queries answered by the batch path.
  [[nodiscard]] std::uint64_t batches_run() const noexcept {
    return batches_run_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t queries_run() const noexcept {
    return queries_run_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-worker reusable state, alignas(64) against false sharing (as
  /// core/parallel.cpp's ThreadState).
  struct alignas(64) WorkerContext {
    Epoch epoch = 0;                    // snapshot the index belongs to
    VertexId prev_u = kInvalidVertex;   // source the index is built for
    bitmap::Bitmap bitmap;
    intersect::HashIndex hash;
  };

  /// Indexed (kBmp-route) count of N(u) ∩ N(v), maintaining ctx's
  /// (epoch, source) keyed index.
  [[nodiscard]] CnCount indexed_count(const Snapshot& snap, WorkerContext& ctx,
                                      VertexId u,
                                      std::span<const VertexId> probe) const;

  /// Dispatch one in-range, distinct pair on the configured route.
  [[nodiscard]] CnCount routed_count(const Snapshot& snap, WorkerContext& ctx,
                                     VertexId u, VertexId v) const;

  EngineConfig config_;
  parallel::WorkerPool pool_;
  // contexts_ is mutated by pool workers *inside* a run() while the
  // batch caller holds batch_mutex_ — each worker touches only its own
  // slot, and run() doesn't return until every worker is done, so the
  // lock still covers every access. The analysis can't follow the
  // capability into the pool threads, hence no GUARDED_BY; the batch
  // lock below is what makes the protocol sound.
  std::vector<WorkerContext> contexts_;
  // Serializes pool_ + contexts_ users (WorkerPool::run is not
  // reentrant); the pool's own lock nests inside.
  // aecnc: acquired-before(WorkerPool::mutex_)
  mutable util::Mutex batch_mutex_;
  // aecnc: atomic-ok(monotonic stats counters; relaxed add under the
  // batch lock, lock-free reads by stats accessors)
  std::atomic<std::uint64_t> batches_run_{0};
  // aecnc: atomic-ok(monotonic stats counter; see batches_run_)
  std::atomic<std::uint64_t> queries_run_{0};
};

}  // namespace aecnc::serve
