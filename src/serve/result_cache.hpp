// LRU cache of point-query results for the query service
// (docs/serving.md).
//
// Keyed by (epoch, canonical pair): a cached count is only ever valid
// for the snapshot it was computed on, so the publishing epoch is part
// of the key — a stale entry can never satisfy a query against a newer
// snapshot even if invalidation raced the swap. Invalidation on publish
// is either wholesale (invalidate_all — direct publishes, recount-routed
// batches) or fine-grained (carry_forward): given the sorted touched-pair
// set the update pipeline exports, every entry of the superseded epoch
// whose pair the publish provably did not perturb is re-stamped to the
// new epoch in place, so a steady mutation stream no longer zeroes the
// cache. Touched entries stay behind under their old epoch — they are
// still exact for that snapshot, which is what the SLO controller's
// stale-degraded reads serve — and anything two or more epochs old is
// dropped by the same sweep.
//
// Layout: set-associative with per-set exact LRU (kWays entries per
// set, slot order = recency order). A hit is one hash, one ≤8-entry
// scan, and a short rotate — no allocation, no pointer-chased list, no
// per-hit binary search (is_edge is cached alongside the count). That
// keeps the hit path an order of magnitude cheaper than recomputing the
// intersection, which is the whole point of the cache
// (bench_serve_throughput measures exactly this ratio). Counters
// (hits / misses / evictions / invalidations) feed the service stats.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "serve/snapshot_store.hpp"
#include "util/annotations.hpp"
#include "util/types.hpp"

namespace aecnc::serve {

/// A cached point result: the count plus whether the pair is an edge of
/// its snapshot (so hits skip the e(u,v) binary search).
struct CachedEdgeCount {
  CnCount count = 0;
  bool is_edge = false;
};

/// Cumulative across the cache's whole lifetime: publishes never reset
/// any counter (only `size` moves down), so before/after-publish
/// comparisons — the bench_serve mixed section lives off these — always
/// diff two monotonic readings.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;  // entries dropped by invalidation
  std::uint64_t carried_forward = 0;  // entries re-stamped across a publish
  std::size_t size = 0;
  std::size_t capacity = 0;
};

class ResultCache {
 public:
  /// `capacity` = max resident entries (rounded up to a whole number of
  /// sets); 0 disables caching entirely (every lookup is a miss,
  /// inserts are dropped).
  explicit ResultCache(std::size_t capacity);

  /// Cached result for the canonicalized pair under `epoch`, bumping it
  /// to most-recently-used within its set on hit. Defined inline below:
  /// the hit path is the latency-critical leg of Service::query_edge
  /// and must inline into the caller.
  [[nodiscard]] std::optional<CachedEdgeCount> lookup(Epoch epoch, VertexId u,
                                                      VertexId v);

  /// Insert/refresh an entry, evicting the set's least-recently-used
  /// one when the set is full.
  void insert(Epoch epoch, VertexId u, VertexId v, CachedEdgeCount value);

  /// Drop every entry (wholesale publishes: direct publish(Csr), a
  /// recount-routed or overflowed touched set).
  void invalidate_all();

  /// Fine-grained publish sweep. `touched` is the sorted, deduplicated
  /// canonical-pair-key set the update pipeline exported for the batch
  /// of mutations this publish materializes (update::TouchedSet::pairs).
  /// Entries of epoch `new_epoch - 1` whose pair is NOT in the set are
  /// re-stamped to `new_epoch` in place — their count and edge flag are
  /// provably identical on the new snapshot. Touched entries remain
  /// under the superseded epoch (exact for that snapshot; the stale-read
  /// degrade path serves them); entries older than `new_epoch - 1` are
  /// dropped. Returns the number of entries carried forward.
  std::size_t carry_forward(Epoch new_epoch,
                            std::span<const std::uint64_t> touched);

  [[nodiscard]] CacheStats stats() const;

 private:
  // 8 ways balances probe cost (a set spans 2-3 cache lines) against
  // conflict evictions: at 4 ways a working set near capacity sheds
  // several percent of its entries to set overflow, and every shed hit
  // pays a full recompute — measurably worse than the extra line fill.
  static constexpr std::size_t kWays = 8;

  struct Slot {
    Epoch epoch = 0;  // 0 = empty (published epochs start at 1)
    std::uint64_t pair = 0;
    CachedEdgeCount value;
  };

  static std::uint64_t pair_key(VertexId u, VertexId v) noexcept {
    if (u > v) {
      const VertexId t = u;
      u = v;
      v = t;
    }
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  [[nodiscard]] std::size_t set_base(std::uint64_t pair) const noexcept {
    // Splitmix-style finalizer over the pair key alone. The epoch is
    // deliberately NOT hashed in: carry_forward re-stamps a slot's epoch
    // in place, which is only sound if the slot's set does not move with
    // it. Same-pair entries of different epochs coexist as distinct
    // slots within one set.
    std::uint64_t x = pair * 0x9e3779b97f4a7c15ULL;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return (static_cast<std::size_t>(x) % num_sets_) * ways_;
  }

  /// util::SpinLock because every critical section is a <=kWays-slot
  /// scan, far shorter than a futex round-trip, and unlocking is a plain
  /// store where std::mutex pays a second atomic RMW.
  // aecnc: lock-leaf(slot scans only; never calls out of the cache)
  mutable util::SpinLock mutex_;
  // ways_/num_sets_ are set once in the constructor and immutable after,
  // so the pre-lock disabled-cache check reads num_sets_ lock-free.
  std::size_t ways_ = kWays;
  std::size_t num_sets_ = 0;
  // num_sets_ * ways_ slots; per-set front = MRU
  std::vector<Slot> slots_ AECNC_GUARDED_BY(mutex_);
  std::size_t size_ AECNC_GUARDED_BY(mutex_) = 0;  // occupied slots
  std::uint64_t hits_ AECNC_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ AECNC_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ AECNC_GUARDED_BY(mutex_) = 0;
  std::uint64_t invalidations_ AECNC_GUARDED_BY(mutex_) = 0;
  std::uint64_t carried_forward_ AECNC_GUARDED_BY(mutex_) = 0;
};

inline std::optional<CachedEdgeCount> ResultCache::lookup(Epoch epoch,
                                                          VertexId u,
                                                          VertexId v) {
  if (num_sets_ == 0) return std::nullopt;  // disabled (capacity 0)
  const std::uint64_t pair = pair_key(u, v);
  util::SpinLockHolder lock(&mutex_);
  const std::size_t base = set_base(pair);
  for (std::size_t i = 0; i < ways_; ++i) {
    Slot& s = slots_[base + i];
    if (s.epoch == epoch && s.pair == pair) {
      ++hits_;
      const CachedEdgeCount value = s.value;
      if (i != 0) {
        // Bump to MRU: shift [base, base+i) down one and reinsert the
        // hit at the front of its set.
        for (std::size_t k = i; k > 0; --k) {
          slots_[base + k] = slots_[base + k - 1];
        }
        slots_[base] = Slot{.epoch = epoch, .pair = pair, .value = value};
      }
      return value;
    }
    // Sets fill front-to-back and hits/inserts only permute the occupied
    // prefix, so the first empty slot ends the occupied region.
    if (s.epoch == 0) break;
  }
  ++misses_;
  return std::nullopt;
}

}  // namespace aecnc::serve
