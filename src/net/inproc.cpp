#include "net/inproc.hpp"

#include <utility>

namespace aecnc::net {

InprocTransport::InprocTransport(int num_endpoints, std::size_t inbox_capacity)
    : num_endpoints_(num_endpoints),
      inbox_capacity_(inbox_capacity == 0 ? 1 : inbox_capacity),
      inboxes_(static_cast<std::size_t>(num_endpoints)),
      barrier_(num_endpoints),
      pending_gen_(static_cast<std::size_t>(num_endpoints), 0) {}

SendStatus InprocTransport::try_send(Frame& frame) {
  check_poisoned();
  const std::uint64_t n = frame.messages.size();
  Inbox& in = inboxes_[frame.dst];
  util::MutexLock lock(&in.mutex_);
  if (in.queue_.size() >= inbox_capacity_) return SendStatus::kBackpressure;
  in.queue_.push_back(std::move(frame));
  in.messages_in_ += n;
  in.batches_in_ += 1;
  return SendStatus::kDelivered;
}

bool InprocTransport::try_recv(int self, Frame& out) {
  check_poisoned();
  Inbox& in = inboxes_[static_cast<std::size_t>(self)];
  util::MutexLock lock(&in.mutex_);
  if (in.queue_.empty()) return false;
  out = std::move(in.queue_.front());
  in.queue_.pop_front();
  return true;
}

void InprocTransport::finish_phase(int self) {
  check_poisoned();
  pending_gen_[static_cast<std::size_t>(self)] = barrier_.arrive();
}

bool InprocTransport::phase_done(int self) {
  check_poisoned();
  return barrier_.passed(pending_gen_[static_cast<std::size_t>(self)]);
}

TransportStats InprocTransport::stats() const {
  TransportStats s;
  for (const Inbox& in : inboxes_) {
    util::MutexLock lock(&in.mutex_);
    s.messages += in.messages_in_;
    s.batches += in.batches_in_;
  }
  s.bytes = s.messages * sizeof(shard::Message);
  return s;
}

}  // namespace aecnc::net
