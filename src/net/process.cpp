#include "net/process.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "graph/io.hpp"
#include "net/socket.hpp"
#include "shard/partition.hpp"

namespace aecnc::net {

namespace {

/// Counts per kResult frame: 4 + 8 + 4 + 65536*4 bytes stays well under
/// kMaxFramePayload.
constexpr std::uint32_t kResultChunk = 65536;

void close_quiet(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

/// Kernel-level send/recv deadlines on a blocking control socket: if
/// the peer process is gone, blocked calls return EAGAIN and the
/// deadline logic in the blocking helpers turns that into kTimeout
/// instead of an indefinite hang.
void set_io_deadline(int fd, std::uint32_t ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Read exactly `n` bytes with a deadline. Used where a fixed-size
/// frame must be consumed without over-reading the stream (the mesh
/// hello: bytes after it belong to the data transport's decoder).
void read_exact(int fd, std::uint8_t* buf, std::size_t n,
                std::uint32_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::recv(fd, buf + off, n - off, 0);
    if (r > 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      throw TransportError(ErrorKind::kPeerDead, "peer closed during hello");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        throw TransportError(ErrorKind::kTimeout, "hello deadline exceeded");
      }
      pollfd pfd{fd, POLLIN, 0};
      (void)::poll(&pfd, 1, static_cast<int>(left.count()));
      continue;
    }
    throw TransportError(ErrorKind::kSystem,
                         std::string("recv(hello): ") + std::strerror(errno));
  }
}

/// The 28-byte mesh hello: header + u32 shard id.
constexpr std::size_t kHelloIdBytes = kFrameHeaderBytes + 4;

Frame make_hello(int shard, std::uint32_t data_port) {
  Frame f;
  f.type = FrameType::kHello;
  f.src = static_cast<std::uint8_t>(shard);
  f.dst = kParentRank;
  put_u32(f.payload, static_cast<std::uint32_t>(shard));
  put_u32(f.payload, data_port);
  return f;
}

[[nodiscard]] int decode_hello_id(const std::uint8_t* buf, std::size_t n,
                                  int num_shards) {
  FrameDecoder decoder;
  decoder.feed(buf, n);
  Frame f;
  if (decoder.next(f) != FrameDecoder::Status::kFrame ||
      f.type != FrameType::kHello || f.payload.size() < 4) {
    throw TransportError(ErrorKind::kProtocol, "malformed mesh hello");
  }
  const std::uint32_t id = get_u32(f.payload.data());
  if (id >= static_cast<std::uint32_t>(num_shards)) {
    throw TransportError(ErrorKind::kProtocol, "mesh hello shard out of range");
  }
  return static_cast<int>(id);
}

graph::Csr load_worker_graph(const std::string& path) {
  const bool is_csr = path.size() >= 4 &&
                      path.compare(path.size() - 4, 4, ".csr") == 0;
  if (is_csr) return graph::load_csr_binary(path);
  return graph::Csr::from_edge_list(graph::load_edge_list_text(path));
}

}  // namespace

int run_shard_worker(const WorkerOptions& options) {
  const int s = options.shard;
  const int p = options.num_shards;
  int ctrl = -1;
  try {
    // Data listener first: its port rides in the hello to the parent.
    std::uint16_t data_port = 0;
    const int data_listener = listen_on_loopback(data_port);

    std::uint64_t reconnects = 0;
    ctrl = connect_loopback(options.parent_port, options.net, &reconnects);
    set_io_deadline(ctrl, options.net.io_timeout_ms);
    send_frame_blocking(ctrl, make_hello(s, data_port),
                        options.net.io_timeout_ms);

    const graph::Csr g = load_worker_graph(options.graph_path);

    // kPorts then kStart, in order, on the control stream.
    FrameDecoder ctrl_decoder;
    Frame ports_frame;
    if (!recv_frame_blocking(ctrl, ctrl_decoder, ports_frame,
                             options.net.io_timeout_ms) ||
        ports_frame.type != FrameType::kPorts ||
        ports_frame.payload.size() < 4) {
      throw TransportError(ErrorKind::kProtocol, "expected kPorts");
    }
    if (get_u32(ports_frame.payload.data()) !=
            static_cast<std::uint32_t>(p) ||
        ports_frame.payload.size() !=
            4 + static_cast<std::size_t>(p) * 4) {
      throw TransportError(ErrorKind::kProtocol, "kPorts shape mismatch");
    }
    std::vector<std::uint16_t> ports(static_cast<std::size_t>(p), 0);
    for (int t = 0; t < p; ++t) {
      ports[static_cast<std::size_t>(t)] = static_cast<std::uint16_t>(
          get_u32(ports_frame.payload.data() + 4 + 4 * t));
    }
    Frame start_frame;
    if (!recv_frame_blocking(ctrl, ctrl_decoder, start_frame,
                             options.net.io_timeout_ms) ||
        start_frame.type != FrameType::kStart ||
        start_frame.payload.size() !=
            4 + static_cast<std::size_t>(p + 1) * 4) {
      throw TransportError(ErrorKind::kProtocol, "expected kStart");
    }

    // Mesh up: dial lower-ranked peers (announcing ourselves with a
    // fixed-size hello), accept higher-ranked ones.
    std::vector<std::vector<int>> fds(
        static_cast<std::size_t>(p),
        std::vector<int>(static_cast<std::size_t>(p), -1));
    auto& row = fds[static_cast<std::size_t>(s)];
    for (int t = 0; t < s; ++t) {
      const int fd =
          connect_loopback(ports[static_cast<std::size_t>(t)], options.net,
                           &reconnects);
      // Exactly kHelloIdBytes on the wire: the acceptor reads that many
      // and no more, so the stream hands over to the transport cleanly.
      Frame hello;
      hello.type = FrameType::kHello;
      hello.src = static_cast<std::uint8_t>(s);
      hello.dst = static_cast<std::uint8_t>(t);
      put_u32(hello.payload, static_cast<std::uint32_t>(s));
      send_frame_blocking(fd, hello, options.net.io_timeout_ms);
      row[static_cast<std::size_t>(t)] = fd;
    }
    for (int t = s + 1; t < p; ++t) {
      const int fd =
          accept_with_timeout(data_listener, options.net.connect_timeout_ms);
      std::uint8_t hello[kHelloIdBytes];
      read_exact(fd, hello, sizeof(hello), options.net.io_timeout_ms);
      const int peer = decode_hello_id(hello, sizeof(hello), p);
      if (row[static_cast<std::size_t>(peer)] != -1) {
        throw TransportError(ErrorKind::kProtocol, "duplicate mesh hello");
      }
      row[static_cast<std::size_t>(peer)] = fd;
    }
    close_quiet(data_listener);

    SocketTransport::Tuning tuning;
    tuning.die_at_phase = options.fault_abort_phase;
    SocketTransport transport(std::move(fds), options.net, tuning);

    shard::ShardConfig cfg = options.engine;
    cfg.num_shards = p;
    shard::ShardedEngine engine(g, cfg, transport);

    // The partition is rebuilt deterministically from the same graph;
    // verify against the parent's boundaries so a version or input
    // mismatch fails fast instead of mis-slotting counts.
    const std::vector<VertexId>& bounds = engine.partition().boundaries();
    for (int i = 0; i <= p; ++i) {
      if (get_u32(start_frame.payload.data() + 4 + 4 * i) !=
          bounds[static_cast<std::size_t>(i)]) {
        throw TransportError(ErrorKind::kProtocol,
                             "partition boundary mismatch with parent");
      }
    }

    const core::CountArray cnt = engine.run_shard(s);

    // Stream the owned slice back in bounded chunks, then kDone.
    const std::uint64_t slot_base = engine.partition().shard(s).slot_base;
    std::uint64_t off = 0;
    while (off < cnt.size()) {
      const std::uint32_t n = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(kResultChunk, cnt.size() - off));
      Frame chunk;
      chunk.type = FrameType::kResult;
      chunk.src = static_cast<std::uint8_t>(s);
      chunk.dst = kParentRank;
      put_u32(chunk.payload, static_cast<std::uint32_t>(s));
      put_u64(chunk.payload, slot_base + off);
      put_u32(chunk.payload, n);
      for (std::uint32_t i = 0; i < n; ++i) {
        put_u32(chunk.payload, cnt[off + i]);
      }
      send_frame_blocking(ctrl, chunk, options.net.io_timeout_ms);
      off += n;
    }
    Frame done;
    done.type = FrameType::kDone;
    done.src = static_cast<std::uint8_t>(s);
    done.dst = kParentRank;
    put_u32(done.payload, static_cast<std::uint32_t>(s));
    send_frame_blocking(ctrl, done, options.net.io_timeout_ms);
    close_quiet(ctrl);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    if (ctrl >= 0) {
      try {
        Frame err;
        err.type = FrameType::kError;
        err.src = static_cast<std::uint8_t>(s);
        err.dst = kParentRank;
        put_u32(err.payload, static_cast<std::uint32_t>(s));
        const char* what = e.what();
        err.payload.insert(err.payload.end(), what, what + std::strlen(what));
        send_frame_blocking(ctrl, err, 1000);
      } catch (...) {
        // Best effort only: the parent also watches for EOF and exit codes.
      }
      close_quiet(ctrl);
    }
    return 1;
  }
}

namespace {

/// Parent-side bookkeeping for one worker process.
struct Child {
  pid_t pid = -1;
  int ctrl = -1;
  FrameDecoder decoder;
  bool done = false;
  bool reaped = false;
};

void kill_and_reap(std::vector<Child>& children) {
  for (Child& c : children) {
    if (c.pid > 0 && !c.reaped) (void)::kill(c.pid, SIGKILL);
  }
  for (Child& c : children) {
    if (c.pid > 0 && !c.reaped) {
      (void)::waitpid(c.pid, nullptr, 0);
      c.reaped = true;
    }
    close_quiet(c.ctrl);
    c.ctrl = -1;
  }
}

pid_t spawn_worker(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw TransportError(ErrorKind::kSystem,
                         std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    // Exec failure in the child: nothing sane to clean up.
    std::fprintf(stderr, "error: system: execv %s: %s\n", argv[0],
                 std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

}  // namespace

core::CountArray count_multiprocess(const graph::Csr& g,
                                    const MultiProcessOptions& options) {
  const shard::Partition2D part(g, options.num_shards);
  const int p = part.num_shards();
  const std::uint64_t total = part.num_directed_edges();

  std::uint16_t ctrl_port = 0;
  const int listener = listen_on_loopback(ctrl_port);
  std::vector<Child> children(static_cast<std::size_t>(p));
  try {
    for (int s = 0; s < p; ++s) {
      std::vector<std::string> args = {
          options.exe_path,
          "shard-worker",
          "--in=" + options.graph_path,
          "--shard=" + std::to_string(s),
          "--shards=" + std::to_string(p),
          "--parent-port=" + std::to_string(ctrl_port),
          "--io-timeout-ms=" + std::to_string(options.net.io_timeout_ms),
      };
      for (const std::string& a : options.worker_args) args.push_back(a);
      if (s == options.fault_abort_shard && options.fault_abort_phase >= 0) {
        args.push_back("--fault-abort-phase=" +
                       std::to_string(options.fault_abort_phase));
      }
      children[static_cast<std::size_t>(s)].pid = spawn_worker(args);
    }

    // Collect hellos (any order), learn each worker's data port.
    std::vector<std::uint32_t> data_ports(static_cast<std::size_t>(p), 0);
    for (int i = 0; i < p; ++i) {
      const int fd =
          accept_with_timeout(listener, options.net.connect_timeout_ms);
      set_io_deadline(fd, options.net.io_timeout_ms);
      FrameDecoder hello_decoder;
      Frame hello;
      if (!recv_frame_blocking(fd, hello_decoder, hello,
                               options.net.io_timeout_ms) ||
          hello.type != FrameType::kHello || hello.payload.size() < 8) {
        close_quiet(fd);
        throw TransportError(ErrorKind::kProtocol, "malformed worker hello");
      }
      const std::uint32_t shard = get_u32(hello.payload.data());
      if (shard >= static_cast<std::uint32_t>(p) ||
          children[shard].ctrl != -1) {
        close_quiet(fd);
        throw TransportError(ErrorKind::kProtocol,
                             "duplicate or out-of-range worker hello");
      }
      children[shard].ctrl = fd;
      data_ports[shard] = get_u32(hello.payload.data() + 4);
    }

    // Everyone checked in: publish the mesh ports and the partition.
    Frame ports;
    ports.type = FrameType::kPorts;
    ports.src = kParentRank;
    put_u32(ports.payload, static_cast<std::uint32_t>(p));
    for (int t = 0; t < p; ++t) {
      put_u32(ports.payload, data_ports[static_cast<std::size_t>(t)]);
    }
    Frame start;
    start.type = FrameType::kStart;
    start.src = kParentRank;
    put_u32(start.payload, static_cast<std::uint32_t>(p));
    for (const VertexId b : part.boundaries()) put_u32(start.payload, b);
    for (int s = 0; s < p; ++s) {
      Frame ports_copy = ports;
      Frame start_copy = start;
      ports_copy.dst = static_cast<std::uint8_t>(s);
      start_copy.dst = static_cast<std::uint8_t>(s);
      send_frame_blocking(children[static_cast<std::size_t>(s)].ctrl,
                          ports_copy, options.net.io_timeout_ms);
      send_frame_blocking(children[static_cast<std::size_t>(s)].ctrl,
                          start_copy, options.net.io_timeout_ms);
    }

    // Fold result slices until every worker reports kDone. Liveness is
    // watched three ways: control-stream progress, child exit status,
    // and the io timeout.
    core::CountArray cnt(static_cast<std::size_t>(total), 0);
    std::uint64_t received = 0;
    int done_count = 0;
    auto last_progress = std::chrono::steady_clock::now();
    while (done_count < p) {
      std::vector<pollfd> pfds;
      std::vector<std::size_t> owner;
      for (std::size_t s = 0; s < children.size(); ++s) {
        if (children[s].done || children[s].ctrl < 0) continue;
        pfds.push_back(pollfd{children[s].ctrl, POLLIN, 0});
        owner.push_back(s);
      }
      const int r = ::poll(pfds.data(), pfds.size(), 200);
      if (r < 0 && errno != EINTR) {
        throw TransportError(ErrorKind::kSystem,
                             std::string("poll: ") + std::strerror(errno));
      }
      for (std::size_t i = 0; i < pfds.size(); ++i) {
        if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        Child& c = children[owner[i]];
        Frame f;
        if (!recv_frame_blocking(c.ctrl, c.decoder, f,
                                 options.net.io_timeout_ms)) {
          throw TransportError(ErrorKind::kPeerDead,
                               "worker " + std::to_string(owner[i]) +
                                   " exited before reporting results");
        }
        last_progress = std::chrono::steady_clock::now();
        // One readable event may have completed several frames; drain
        // the decoder fully before returning to poll.
        for (;;) {
          if (f.type == FrameType::kResult) {
            if (f.payload.size() < 16) {
              throw TransportError(ErrorKind::kProtocol,
                                   "short kResult payload");
            }
            const std::uint64_t base = get_u64(f.payload.data() + 4);
            const std::uint32_t n = get_u32(f.payload.data() + 12);
            if (f.payload.size() != 16 + static_cast<std::size_t>(n) * 4 ||
                base + n > total) {
              throw TransportError(ErrorKind::kProtocol,
                                   "kResult slice out of range");
            }
            for (std::uint32_t k = 0; k < n; ++k) {
              cnt[base + k] = get_u32(f.payload.data() + 16 + 4 * k);
            }
            received += n;
          } else if (f.type == FrameType::kDone) {
            c.done = true;
            ++done_count;
          } else if (f.type == FrameType::kError) {
            const std::string msg(
                f.payload.begin() +
                    static_cast<std::ptrdiff_t>(
                        std::min<std::size_t>(4, f.payload.size())),
                f.payload.end());
            throw TransportError(ErrorKind::kAborted,
                                 "worker " + std::to_string(owner[i]) +
                                     " failed: " + msg);
          } else {
            throw TransportError(ErrorKind::kProtocol,
                                 "unexpected control frame from worker");
          }
          const FrameDecoder::Status st = c.decoder.next(f);
          if (st == FrameDecoder::Status::kNeedMore) break;
          if (st == FrameDecoder::Status::kError) {
            throw TransportError(ErrorKind::kBadFrame, c.decoder.error());
          }
        }
      }

      // A worker dying without a word (SIGKILL, _Exit fault hook) shows
      // up as an exit before kDone.
      for (std::size_t s = 0; s < children.size(); ++s) {
        Child& c = children[s];
        if (c.reaped || c.pid <= 0) continue;
        int status = 0;
        const pid_t w = ::waitpid(c.pid, &status, WNOHANG);
        if (w != c.pid) continue;
        c.reaped = true;
        if (!c.done) {
          throw TransportError(
              ErrorKind::kPeerDead,
              "worker " + std::to_string(s) + " died mid-run (status " +
                  std::to_string(WIFEXITED(status) ? WEXITSTATUS(status)
                                                   : -WTERMSIG(status)) +
                  ")");
        }
      }
      const auto idle = std::chrono::steady_clock::now() - last_progress;
      if (idle > std::chrono::milliseconds(options.net.io_timeout_ms)) {
        throw TransportError(ErrorKind::kTimeout,
                             "no worker progress within the io timeout");
      }
    }

    if (received != total) {
      throw TransportError(ErrorKind::kProtocol,
                           "workers reported " + std::to_string(received) +
                               " of " + std::to_string(total) + " slots");
    }
    for (Child& c : children) {
      close_quiet(c.ctrl);
      c.ctrl = -1;
      if (c.pid > 0 && !c.reaped) {
        int status = 0;
        (void)::waitpid(c.pid, &status, 0);
        c.reaped = true;
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
          throw TransportError(ErrorKind::kSystem,
                               "worker exited with a failure status");
        }
      }
    }
    close_quiet(listener);
    return cnt;
  } catch (...) {
    kill_and_reap(children);
    close_quiet(listener);
    throw;
  }
}

}  // namespace aecnc::net
