#include "net/transport.hpp"

namespace aecnc::net {

const char* error_kind_name(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kTimeout:
      return "timeout";
    case ErrorKind::kPeerDead:
      return "peer-dead";
    case ErrorKind::kLostFrame:
      return "lost-frame";
    case ErrorKind::kBadFrame:
      return "bad-frame";
    case ErrorKind::kRetriesExhausted:
      return "retries-exhausted";
    case ErrorKind::kAborted:
      return "aborted";
    case ErrorKind::kProtocol:
      return "protocol";
    case ErrorKind::kSystem:
      return "system";
  }
  return "unknown";
}

}  // namespace aecnc::net
