// Deterministic fault-injection Transport decorator (docs/sharding.md §7).
//
// Wraps any Transport and injects a seeded schedule of the faults the
// retry/dedup layer is specified to absorb — drops (surfaced to the
// sender as kTransient, so the bounded retry resends the same frame),
// duplicates (delivered twice with the same sequence number, so the
// receiver's dedup discards the echo), and delays (the frame is held
// and released a few operations later, with every subsequent send
// queued behind it so per-link FIFO order is preserved) — plus one
// fault it is not: peer death, which throws a typed
// TransportError(kPeerDead) out of the victim endpoint mid-phase.
//
// All per-endpoint state is thread-confined to that endpoint's shard
// thread; the same seed always produces the same schedule, which is
// what makes the differential harness (tests/shard_transport_test.cpp)
// reproducible under AECNC_TEST_SEED.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/transport.hpp"

namespace aecnc::net {

/// One seeded schedule. Rates are probabilities in [0, 1] evaluated
/// per try_send; at most one fault fires per send.
struct FaultPlan {
  std::uint64_t seed = 1;
  double drop_rate = 0.0;
  double dup_rate = 0.0;
  double delay_rate = 0.0;
  /// A delayed frame is released after 1..delay_max_ops further
  /// operations by its sender.
  int delay_max_ops = 4;
  /// Endpoint to kill (-1: nobody): its kill_after_ops-th operation
  /// throws TransportError(kPeerDead) instead of completing.
  int kill_endpoint = -1;
  std::uint64_t kill_after_ops = 0;
};

/// Injected-fault tallies, for asserting a schedule actually fired.
struct FaultCounts {
  std::uint64_t drops = 0;
  std::uint64_t dups = 0;
  std::uint64_t delays = 0;
};

class FaultyTransport final : public Transport {
 public:
  FaultyTransport(Transport& inner, const FaultPlan& plan);

  [[nodiscard]] int num_endpoints() const noexcept override {
    return inner_.num_endpoints();
  }
  [[nodiscard]] SendStatus try_send(Frame& frame) override;
  [[nodiscard]] bool try_recv(int self, Frame& out) override;
  void finish_phase(int self) override;
  [[nodiscard]] bool phase_done(int self) override;
  void poison(ErrorKind kind, const std::string& reason) override {
    inner_.poison(kind, reason);
  }
  [[nodiscard]] TransportStats stats() const override {
    return inner_.stats();
  }

  /// Sum of injected faults across endpoints. Only meaningful once the
  /// run is over (per-endpoint tallies are thread-confined).
  [[nodiscard]] FaultCounts fault_counts() const;

 private:
  /// A frame held back until its sender has performed `release_at` ops.
  struct Delayed {
    Frame frame;
    std::uint64_t release_at = 0;
  };

  /// Thread-confined to the endpoint's own shard thread — try_send
  /// touches state[frame.src], everything else state[self] — so no
  /// locking is needed and schedules stay deterministic per endpoint.
  struct EndpointState {
    std::uint64_t rng = 0;
    std::uint64_t ops = 0;
    bool finishing = false;
    bool arrived = false;
    std::deque<Delayed> pending;
    FaultCounts counts;
  };

  /// Count one operation by `endpoint`; fires the kill schedule.
  void note_op(int endpoint);
  /// Release due pending frames in order; stops at backpressure.
  void drive(int endpoint);
  [[nodiscard]] bool roll(EndpointState& es, double rate);

  Transport& inner_;
  const FaultPlan plan_;
  std::vector<EndpointState> states_;
};

}  // namespace aecnc::net
