#include "net/faulty.hpp"

#include <utility>

namespace aecnc::net {

namespace {

// splitmix64: tiny, seedable, and good enough for fault schedules.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

FaultyTransport::FaultyTransport(Transport& inner, const FaultPlan& plan)
    : inner_(inner),
      plan_(plan),
      states_(static_cast<std::size_t>(inner.num_endpoints())) {
  for (std::size_t e = 0; e < states_.size(); ++e) {
    // Distinct per-endpoint streams so one endpoint's traffic volume
    // does not perturb another's schedule.
    states_[e].rng = plan.seed ^ (0xD1B54A32D192ED03ull * (e + 1));
  }
}

bool FaultyTransport::roll(EndpointState& es, double rate) {
  if (rate <= 0.0) return false;
  const double u =
      static_cast<double>(splitmix64(es.rng) >> 11) * 0x1.0p-53;
  return u < rate;
}

void FaultyTransport::note_op(int endpoint) {
  EndpointState& es = states_[static_cast<std::size_t>(endpoint)];
  ++es.ops;
  if (endpoint == plan_.kill_endpoint && es.ops >= plan_.kill_after_ops) {
    throw TransportError(ErrorKind::kPeerDead, "injected peer death");
  }
}

void FaultyTransport::drive(int endpoint) {
  EndpointState& es = states_[static_cast<std::size_t>(endpoint)];
  while (!es.pending.empty()) {
    Delayed& d = es.pending.front();
    if (es.ops < d.release_at) break;
    if (inner_.try_send(d.frame) != SendStatus::kDelivered) break;
    es.pending.pop_front();
  }
}

SendStatus FaultyTransport::try_send(Frame& frame) {
  const int src = frame.src;
  EndpointState& es = states_[static_cast<std::size_t>(src)];
  note_op(src);
  drive(src);

  if (roll(es, plan_.drop_rate)) {
    // Dropped on the floor. The sender sees a transient fault and
    // resends the identical frame (same seq) after backing off, so the
    // retry layer absorbs the loss exactly.
    ++es.counts.drops;
    return SendStatus::kTransient;
  }
  const bool dup = roll(es, plan_.dup_rate);
  Frame copy;
  if (dup) {
    ++es.counts.dups;
    copy = frame;  // same seq: the receiver's dedup discards the echo
  }

  if (!es.pending.empty() || roll(es, plan_.delay_rate)) {
    // Hold the frame (new delay) or queue behind an existing hold:
    // once anything is pending, every later send lines up behind it,
    // otherwise a later frame could overtake and the receiver would
    // mistake the reordering for loss.
    std::uint64_t release_at = es.ops;
    if (es.pending.empty()) {
      ++es.counts.delays;
      release_at += 1 + splitmix64(es.rng) %
                            static_cast<std::uint64_t>(
                                plan_.delay_max_ops < 1 ? 1
                                                        : plan_.delay_max_ops);
    }
    es.pending.push_back(Delayed{std::move(frame), release_at});
    frame.messages.clear();
    frame.payload.clear();
    if (dup) es.pending.push_back(Delayed{std::move(copy), release_at});
    return SendStatus::kDelivered;
  }

  const SendStatus status = inner_.try_send(frame);
  if (status != SendStatus::kDelivered) return status;
  if (dup && inner_.try_send(copy) != SendStatus::kDelivered) {
    // The receiver had room for the original but not the echo; park
    // the echo so it still arrives (and still gets deduplicated).
    es.pending.push_back(Delayed{std::move(copy), es.ops});
  }
  return SendStatus::kDelivered;
}

bool FaultyTransport::try_recv(int self, Frame& out) {
  note_op(self);
  drive(self);
  return inner_.try_recv(self, out);
}

void FaultyTransport::finish_phase(int self) {
  EndpointState& es = states_[static_cast<std::size_t>(self)];
  note_op(self);
  // Do NOT forward yet: frames this endpoint delayed must reach the
  // wire before it announces the phase end, or a peer could agree the
  // phase is over while our held frames are still undelivered.
  es.finishing = true;
}

bool FaultyTransport::phase_done(int self) {
  EndpointState& es = states_[static_cast<std::size_t>(self)];
  note_op(self);
  drive(self);
  if (!es.pending.empty()) return false;  // caller drains and re-polls
  if (es.finishing && !es.arrived) {
    inner_.finish_phase(self);
    es.arrived = true;
  }
  if (!es.arrived) return false;
  if (!inner_.phase_done(self)) return false;
  es.finishing = false;
  es.arrived = false;
  return true;
}

FaultCounts FaultyTransport::fault_counts() const {
  FaultCounts total;
  for (const EndpointState& es : states_) {
    total.drops += es.counts.drops;
    total.dups += es.counts.dups;
    total.delays += es.counts.delays;
  }
  return total;
}

}  // namespace aecnc::net
