// Wire framing for the shard transport (docs/sharding.md §7).
//
// Every byte that crosses a process boundary is a length-prefixed frame:
// a fixed 24-byte little-endian header followed by a checksummed payload.
// Data frames carry serialized shard::Message batches (each field encoded
// explicitly, so the wire format is independent of struct padding and
// host layout); control frames carry small opaque payloads for the
// multi-process wire-up (src/net/process.cpp).
//
// The decoder is incremental — feed() raw stream bytes, next() yields
// complete frames — and hardened against untrusted input: a bad magic,
// version, type, oversized length prefix, checksum mismatch, or invalid
// message byte turns the stream into a terminal typed error instead of
// an over-read or an unbounded allocation. tests/fuzz/fuzz_frame.cpp
// drives exactly this surface.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "shard/message.hpp"

namespace aecnc::net {

inline constexpr std::uint32_t kFrameMagic = 0xAEC1F7A3u;
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 24;

/// Hard bound on a single frame's payload. A length prefix above this is
/// a protocol error, never an allocation: the decoder validates the
/// header before reserving a single payload byte.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/// Serialized size of one shard::Message: u8 type + u32 u + u32 v +
/// u64 slot + u64 value, written field by field.
inline constexpr std::size_t kMessageWireBytes = 25;

/// Endpoint id the coordinating parent uses in control frames; shard
/// ranks are always < this.
inline constexpr std::uint8_t kParentRank = 0xFF;

enum class FrameType : std::uint8_t {
  kData = 0,      // a shard::Message batch; seq = per-link sequence number
  kPhaseEnd = 1,  // BSP phase marker; seq = phase generation
  kHello = 2,     // worker -> parent / peer: u32 shard [+ u32 data_port]
  kPorts = 3,     // parent -> worker: u32 p, p x u32 data ports
  kStart = 4,     // parent -> worker: u32 p, (p+1) x u32 partition bounds
  kResult = 5,    // worker -> parent: u32 shard, u64 slot_base, u32 n, n x u32
  kError = 6,     // worker -> parent: u32 shard, utf-8 message
  kDone = 7,      // worker -> parent: u32 shard, end of results
};

[[nodiscard]] bool frame_type_valid(std::uint8_t raw) noexcept;

struct Frame {
  FrameType type = FrameType::kData;
  std::uint8_t src = 0;
  std::uint8_t dst = 0;
  std::uint64_t seq = 0;
  std::vector<shard::Message> messages;  // kData payload
  std::vector<std::uint8_t> payload;     // control payload (everything else)
};

// Little-endian scalar helpers for control payloads.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
[[nodiscard]] std::uint16_t get_u16(const std::uint8_t* p) noexcept;
[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) noexcept;
[[nodiscard]] std::uint64_t get_u64(const std::uint8_t* p) noexcept;

/// Append the encoded frame (header + payload) to `out`. Throws
/// std::length_error if the payload would exceed kMaxFramePayload —
/// senders chunk at the call site, so hitting this is a logic bug.
void encode_frame(const Frame& f, std::vector<std::uint8_t>& out);

/// Bytes encode_frame would append for `f`.
[[nodiscard]] std::size_t encoded_size(const Frame& f) noexcept;

class FrameDecoder {
 public:
  enum class Status : std::uint8_t {
    kFrame,     // `out` holds the next complete frame
    kNeedMore,  // stream exhausted mid-frame; feed() more bytes
    kError,     // terminal: stream violated the protocol, see error()
  };

  /// Append raw stream bytes. Safe to call after an error (ignored).
  void feed(const std::uint8_t* data, std::size_t n);

  /// Extract the next complete frame into `out`.
  [[nodiscard]] Status next(Frame& out);

  /// Diagnostic for the kError state; empty otherwise.
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buf_.size() - pos_;
  }

 private:
  Status fail(const char* why);

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  bool failed_ = false;
  std::string error_;
};

}  // namespace aecnc::net
