#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "obs/catalog.hpp"

namespace aecnc::net {

namespace {

[[noreturn]] void throw_errno(ErrorKind kind, const char* what) {
  throw TransportError(kind,
                       std::string(what) + ": " + std::strerror(errno));
}

void close_quiet(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

std::uint32_t remaining_ms(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() <= 0 ? 0 : static_cast<std::uint32_t>(left.count());
}

}  // namespace

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno(ErrorKind::kSystem, "fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  // Frames are latency-critical barrier traffic; never Nagle them.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

int listen_on_loopback(std::uint16_t& port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno(ErrorKind::kSystem, "socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    close_quiet(fd);
    throw_errno(ErrorKind::kSystem, "bind");
  }
  if (::listen(fd, SOMAXCONN) < 0) {
    close_quiet(fd);
    throw_errno(ErrorKind::kSystem, "listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    close_quiet(fd);
    throw_errno(ErrorKind::kSystem, "getsockname");
  }
  port_out = ntohs(addr.sin_port);
  return fd;
}

int connect_loopback(std::uint16_t port, const NetConfig& config,
                     std::uint64_t* reconnects) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config.connect_timeout_ms);
  std::uint32_t backoff_us = config.retry.backoff_init_us;
  bool first = true;
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno(ErrorKind::kSystem, "socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      set_nodelay(fd);
      return fd;
    }
    close_quiet(fd);
    if (!first && reconnects != nullptr) ++*reconnects;
    first = false;
    if (std::chrono::steady_clock::now() >= deadline) {
      throw TransportError(ErrorKind::kSystem,
                           "connect to loopback peer timed out");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    backoff_us = std::min(backoff_us * 2, config.retry.backoff_max_us);
  }
}

int accept_with_timeout(int listen_fd, std::uint32_t timeout_ms) {
  pollfd pfd{listen_fd, POLLIN, 0};
  const int r = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  if (r < 0) throw_errno(ErrorKind::kSystem, "poll(accept)");
  if (r == 0) {
    throw TransportError(ErrorKind::kTimeout, "accept timed out");
  }
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) throw_errno(ErrorKind::kSystem, "accept");
  set_nodelay(fd);
  return fd;
}

void send_frame_blocking(int fd, const Frame& frame,
                         std::uint32_t timeout_ms) {
  std::vector<std::uint8_t> buf;
  encode_frame(frame, buf);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n =
        ::send(fd, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      const std::uint32_t left = remaining_ms(deadline);
      if (left == 0 || ::poll(&pfd, 1, static_cast<int>(left)) == 0) {
        throw TransportError(ErrorKind::kTimeout, "send deadline exceeded");
      }
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      throw TransportError(ErrorKind::kPeerDead, "peer closed during send");
    }
    throw_errno(ErrorKind::kSystem, "send");
  }
}

bool recv_frame_blocking(int fd, FrameDecoder& decoder, Frame& out,
                         std::uint32_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    switch (decoder.next(out)) {
      case FrameDecoder::Status::kFrame:
        return true;
      case FrameDecoder::Status::kError:
        throw TransportError(ErrorKind::kBadFrame, decoder.error());
      case FrameDecoder::Status::kNeedMore:
        break;
    }
    std::uint8_t buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      if (decoder.buffered() != 0) {
        throw TransportError(ErrorKind::kPeerDead,
                             "peer closed mid-frame");
      }
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{fd, POLLIN, 0};
      const std::uint32_t left = remaining_ms(deadline);
      if (left == 0 || ::poll(&pfd, 1, static_cast<int>(left)) == 0) {
        throw TransportError(ErrorKind::kTimeout, "recv deadline exceeded");
      }
      continue;
    }
    if (errno == ECONNRESET) {
      throw TransportError(ErrorKind::kPeerDead, "peer reset during recv");
    }
    throw_errno(ErrorKind::kSystem, "recv");
  }
}

// --- SocketTransport -------------------------------------------------------

SocketTransport::SocketTransport(std::vector<std::vector<int>> fds,
                                 const NetConfig& config,
                                 const Tuning& tuning)
    : config_(config),
      tuning_(tuning),
      num_endpoints_(static_cast<int>(fds.size())),
      endpoints_(fds.size()) {
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t e = 0; e < fds.size(); ++e) {
    Endpoint& ep = endpoints_[e];
    ep.conns.resize(fds.size());
    ep.last_progress = now;
    bool hosted = true;
    for (std::size_t t = 0; t < fds.size(); ++t) {
      ep.conns[t].fd = fds[e][t];
      if (t == e) continue;
      if (fds[e][t] < 0) {
        hosted = false;
      } else {
        set_nonblocking(fds[e][t]);
      }
    }
    ep.hosted = hosted;
  }
}

SocketTransport::~SocketTransport() {
  for (Endpoint& ep : endpoints_) {
    for (Conn& c : ep.conns) close_quiet(c.fd);
  }
}

std::unique_ptr<SocketTransport> SocketTransport::connect_local_mesh(
    int p, const NetConfig& config, const Tuning& tuning) {
  std::vector<std::vector<int>> fds(
      static_cast<std::size_t>(p),
      std::vector<int>(static_cast<std::size_t>(p), -1));
  if (p > 1) {
    std::uint16_t port = 0;
    const int listener = listen_on_loopback(port);
    try {
      // One real TCP connection per unordered pair: the connecting side
      // becomes s's descriptor for t, the accepted side t's for s.
      // Loopback connects are sequential, so pairing is deterministic.
      for (int s = 0; s < p; ++s) {
        for (int t = s + 1; t < p; ++t) {
          fds[static_cast<std::size_t>(s)][static_cast<std::size_t>(t)] =
              connect_loopback(port, config);
          fds[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)] =
              accept_with_timeout(listener, config.connect_timeout_ms);
        }
      }
    } catch (...) {
      for (auto& row : fds) {
        for (int fd : row) close_quiet(fd);
      }
      close_quiet(listener);
      throw;
    }
    close_quiet(listener);
  }
  return std::make_unique<SocketTransport>(std::move(fds), config, tuning);
}

void SocketTransport::note_progress(Endpoint& ep) {
  ep.last_progress = std::chrono::steady_clock::now();
}

void SocketTransport::throw_io(ErrorKind kind, const char* what) {
  if (kind == ErrorKind::kTimeout) {
    util::SpinLockHolder hold(&stats_mutex_);
    ++stats_.timeouts;
  }
  throw TransportError(kind, what);
}

bool SocketTransport::flush_out(Endpoint& ep, Conn& c) {
  while (c.out_pos < c.out.size()) {
    const std::size_t want =
        std::min(c.out.size() - c.out_pos, tuning_.max_write_bytes);
    const ssize_t n =
        ::send(c.fd, c.out.data() + c.out_pos, want, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_pos += static_cast<std::size_t>(n);
      note_progress(ep);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      throw_io(ErrorKind::kPeerDead, "peer closed while flushing");
    }
    throw_io(ErrorKind::kSystem, "send on shard link failed");
  }
  c.out.clear();
  c.out_pos = 0;
  return true;
}

SendStatus SocketTransport::try_send(Frame& frame) {
  check_poisoned();
  Endpoint& ep = endpoints_[frame.src];
  Conn& c = ep.conns[frame.dst];
  if (c.fd < 0) {
    // The link was retired by a clean peer close; new traffic for that
    // peer means it left before we were done with it.
    throw_io(ErrorKind::kPeerDead, "peer closed its shard link");
  }
  // At most one data frame is buffered per connection: finish flushing
  // the previous one first, and report backpressure while it lingers —
  // the engine's drain loop is the flow control.
  if (!flush_out(ep, c)) return SendStatus::kBackpressure;
  const std::size_t wire = encoded_size(frame);
  encode_frame(frame, c.out);
  if (obs::enabled()) [[unlikely]] {
    const obs::NetMetrics& m = obs::NetMetrics::get();
    m.frames_sent.add();
    m.bytes_sent.add(wire);
  }
  frame.messages.clear();
  frame.payload.clear();
  (void)flush_out(ep, c);  // best effort; the rest drains on later calls
  return SendStatus::kDelivered;
}

bool SocketTransport::poll_io(Endpoint& ep) {
  bool moved = false;
  std::vector<pollfd> pfds;
  std::vector<std::size_t> peer_of;
  pfds.reserve(ep.conns.size());
  for (std::size_t t = 0; t < ep.conns.size(); ++t) {
    Conn& c = ep.conns[t];
    if (c.fd < 0) continue;
    short events = POLLIN;
    if (c.out_pos < c.out.size()) events |= POLLOUT;
    pfds.push_back(pollfd{c.fd, events, 0});
    peer_of.push_back(t);
  }
  if (pfds.empty()) return false;
  const int r = ::poll(pfds.data(), pfds.size(), 0);
  if (r < 0 && errno != EINTR) {
    throw_io(ErrorKind::kSystem, "poll on shard links failed");
  }
  if (r <= 0) return false;

  for (std::size_t i = 0; i < pfds.size(); ++i) {
    Conn& c = ep.conns[peer_of[i]];
    if ((pfds[i].revents & POLLOUT) != 0) {
      const std::size_t before = c.out_pos;
      (void)flush_out(ep, c);
      moved = moved || c.out_pos != before || c.out.empty();
    }
    if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    bool eof = false;
    for (;;) {
      std::uint8_t buf[65536];
      const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        moved = true;
        note_progress(ep);
        c.decoder.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        // Decode what arrived before deciding: a finished peer's final
        // phase marker may be sitting in the same read burst as the EOF.
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == ECONNRESET) {
        throw_io(ErrorKind::kPeerDead, "peer reset its shard link");
      }
      throw_io(ErrorKind::kSystem, "recv on shard link failed");
    }
    // Drain every complete frame the bytes above finished.
    for (;;) {
      Frame f;
      const FrameDecoder::Status st = c.decoder.next(f);
      if (st == FrameDecoder::Status::kNeedMore) break;
      if (st == FrameDecoder::Status::kError) {
        throw_io(ErrorKind::kBadFrame, c.decoder.error().c_str());
      }
      if (f.type == FrameType::kPhaseEnd) {
        c.marker_gen = std::max(c.marker_gen, f.seq);
      } else if (f.type == FrameType::kData) {
        {
          util::SpinLockHolder hold(&stats_mutex_);
          stats_.messages += f.messages.size();
          stats_.batches += 1;
          stats_.bytes += kFrameHeaderBytes +
                          f.messages.size() * kMessageWireBytes;
        }
        if (obs::enabled()) [[unlikely]] {
          const obs::NetMetrics& m = obs::NetMetrics::get();
          m.frames_recv.add();
          m.bytes_recv.add(kFrameHeaderBytes +
                           f.messages.size() * kMessageWireBytes);
        }
        ep.ready.push_back(std::move(f));
      } else {
        throw_io(ErrorKind::kProtocol,
                 "unexpected control frame on a data link");
      }
    }
    if (eof) {
      // A peer that finished its run closes its end: benign iff the
      // stream ended at a frame boundary, we owe it nothing, and its
      // marker for the current generation already landed (the marker
      // fence means everything it sent us arrived first). Anything
      // else is a mid-protocol death.
      if (c.decoder.buffered() != 0 || c.out_pos != c.out.size() ||
          c.marker_gen < ep.phase_gen) {
        throw_io(ErrorKind::kPeerDead, "peer closed its shard link");
      }
      ::close(c.fd);
      c.fd = -1;
      moved = true;
      note_progress(ep);
    }
  }
  return moved;
}

bool SocketTransport::try_recv(int self, Frame& out) {
  check_poisoned();
  Endpoint& ep = endpoints_[static_cast<std::size_t>(self)];
  if (ep.ready.empty()) (void)poll_io(ep);
  if (ep.ready.empty()) return false;
  out = std::move(ep.ready.front());
  ep.ready.pop_front();
  return true;
}

void SocketTransport::finish_phase(int self) {
  check_poisoned();
  Endpoint& ep = endpoints_[static_cast<std::size_t>(self)];
  ++ep.phase_gen;
  if (tuning_.die_at_phase >= 0 &&
      ep.phase_gen == static_cast<std::uint64_t>(tuning_.die_at_phase)) {
    // Simulated crash for the peer-kill smoke: no teardown, no flush —
    // peers must detect the dead link, not a polite shutdown.
    // NOLINTNEXTLINE(concurrency-mt-unsafe): process is dying by design
    std::_Exit(9);
  }
  // The marker is queued after all buffered data on every link, so its
  // arrival at the peer proves everything we sent this phase arrived.
  for (std::size_t t = 0; t < ep.conns.size(); ++t) {
    Conn& c = ep.conns[t];
    if (c.fd < 0) continue;
    Frame marker;
    marker.type = FrameType::kPhaseEnd;
    marker.src = static_cast<std::uint8_t>(self);
    marker.dst = static_cast<std::uint8_t>(t);
    marker.seq = ep.phase_gen;
    encode_frame(marker, c.out);
  }
  note_progress(ep);
}

bool SocketTransport::phase_done(int self) {
  check_poisoned();
  Endpoint& ep = endpoints_[static_cast<std::size_t>(self)];
  bool flushed = true;
  for (Conn& c : ep.conns) {
    if (c.fd < 0) continue;
    flushed = flush_out(ep, c) && flushed;
  }
  const bool moved = poll_io(ep);
  bool markers = true;
  for (std::size_t t = 0; t < ep.conns.size(); ++t) {
    if (ep.conns[t].fd < 0) continue;
    markers = markers && ep.conns[t].marker_gen >= ep.phase_gen;
  }
  if (flushed && markers) {
    note_progress(ep);
    return true;
  }
  if (!moved) {
    const auto idle = std::chrono::steady_clock::now() - ep.last_progress;
    if (idle > std::chrono::milliseconds(config_.io_timeout_ms)) {
      throw_io(ErrorKind::kTimeout,
               "no transport progress within the io timeout");
    }
  }
  return false;
}

TransportStats SocketTransport::stats() const {
  util::SpinLockHolder hold(&stats_mutex_);
  return stats_;
}

}  // namespace aecnc::net
