// Transport abstraction behind the MessageAggregator seam
// (docs/sharding.md §7).
//
// A Transport moves whole Frames between `num_endpoints()` shard
// endpoints. Every call is nonblocking: try_send reports delivery,
// backpressure (caller drains its own inbox and retries), or a
// transient fault (caller retries with backoff up to
// RetryPolicy::max_attempts); phase completion is a two-call contract —
// finish_phase(self) cheaply announces "no more sends this phase" and
// phase_done(self) makes bounded progress toward agreement, so the
// engine can keep draining its inbox between polls and the protocol
// stays deadlock-free regardless of what the transport buffers.
//
// Implementations: InprocTransport (bounded in-memory mailboxes +
// phase barrier; the p=1 zero-cost path), SocketTransport (nonblocking
// TCP loopback mesh with length-prefixed frames), and FaultyTransport
// (deterministic fault-injection decorator for the differential
// harness).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "net/frame.hpp"
#include "util/annotations.hpp"

namespace aecnc::net {

/// Failure taxonomy. error_kind_name() strings are part of the CLI
/// contract: the CI smoke legs grep stderr for them.
enum class ErrorKind : std::uint8_t {
  kTimeout,           // no progress within the io timeout budget
  kPeerDead,          // peer closed, died, or was killed mid-phase
  kLostFrame,         // sequence gap: a frame vanished past the retry layer
  kBadFrame,          // frame decoder rejected the stream
  kRetriesExhausted,  // transient faults outlasted RetryPolicy
  kAborted,           // another shard failed; this one was torn down
  kProtocol,          // peer violated the control protocol
  kSystem,            // socket/fork/exec syscall failure
};

[[nodiscard]] const char* error_kind_name(ErrorKind kind) noexcept;

/// The loud typed failure: no hang, no partial counts. Everything a
/// transport surfaces (as opposed to absorbs) is thrown as this.
class TransportError : public std::runtime_error {
 public:
  TransportError(ErrorKind kind, const std::string& what)
      : std::runtime_error(std::string(error_kind_name(kind)) + ": " + what),
        kind_(kind) {}

  [[nodiscard]] ErrorKind kind() const noexcept { return kind_; }

 private:
  ErrorKind kind_;
};

/// Cumulative transport counters, independent of the obs layer so
/// benches can report the transport bill with metrics compiled out.
/// `bytes` is wire bytes for the socket path and messages *
/// sizeof(shard::Message) for the in-process path.
struct TransportStats {
  std::uint64_t messages = 0;      // messages delivered to inboxes
  std::uint64_t batches = 0;       // frames delivered (each counted once)
  std::uint64_t bytes = 0;         // payload volume moved
  std::uint64_t retries = 0;       // transient-fault resends
  std::uint64_t timeouts = 0;      // io deadlines hit
  std::uint64_t reconnects = 0;    // connect() attempts beyond the first
  std::uint64_t dups_dropped = 0;  // duplicate frames discarded by seq
  std::uint64_t backpressure = 0;  // sends refused by a full inbox
};

/// Bounded retry with exponential backoff for transient send faults.
struct RetryPolicy {
  int max_attempts = 8;
  std::uint32_t backoff_init_us = 50;
  std::uint32_t backoff_max_us = 20000;
};

/// Knobs shared by the socket transport and the multi-process wire-up.
struct NetConfig {
  RetryPolicy retry;
  std::uint32_t connect_timeout_ms = 5000;
  std::uint32_t io_timeout_ms = 20000;
};

enum class SendStatus : std::uint8_t {
  kDelivered,     // frame handed off; sender may reuse/refill it
  kBackpressure,  // receiver full; frame untouched, drain and retry
  kTransient,     // recoverable fault; frame untouched, back off and retry
};

class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual int num_endpoints() const noexcept = 0;

  /// Attempt to deliver `frame` (routed by frame.dst). On anything but
  /// kDelivered the frame is left intact for the caller to retry.
  [[nodiscard]] virtual SendStatus try_send(Frame& frame) = 0;

  /// Pop the next frame addressed to endpoint `self`, if any.
  [[nodiscard]] virtual bool try_recv(int self, Frame& out) = 0;

  /// Announce that `self` sends nothing more this phase. Cheap and
  /// nonblocking; delivery of frames already accepted may still be in
  /// flight until phase_done() reports agreement.
  virtual void finish_phase(int self) = 0;

  /// Make bounded nonblocking progress; true once every endpoint has
  /// finished the phase and all accepted frames are delivered. The
  /// caller must drain its own inbox between calls.
  [[nodiscard]] virtual bool phase_done(int self) = 0;

  /// Mark the transport failed so every endpoint's next call throws
  /// TransportError(kind) instead of waiting on a peer that never comes.
  virtual void poison(ErrorKind kind, const std::string& reason) = 0;

  [[nodiscard]] virtual TransportStats stats() const = 0;
};

/// Shared poison plumbing: a lock-free failed flag checked on every hot
/// call, with the diagnostic behind a leaf spinlock off the hot path.
class TransportBase : public Transport {
 public:
  void poison(ErrorKind kind, const std::string& reason) override {
    {
      util::SpinLockHolder hold(&poison_mutex_);
      if (poison_reason_.empty()) {
        poison_kind_ = kind;
        poison_reason_ = reason;
      }
    }
    // Release pairs with check_poisoned()'s acquire: a thread that sees
    // the flag also sees the kind/reason written above.
    poisoned_.store(true, std::memory_order_release);
  }

 protected:
  /// Throw the stored poison error if any endpoint failed.
  void check_poisoned() const {
    if (poisoned_.load(std::memory_order_acquire)) [[unlikely]] {
      ErrorKind kind = ErrorKind::kAborted;
      std::string reason;
      {
        util::SpinLockHolder hold(&poison_mutex_);
        kind = poison_kind_;
        reason = poison_reason_;
      }
      throw TransportError(kind, reason);
    }
  }

 private:
  // aecnc: atomic-ok(set-once failure flag; release store in poison()
  // pairs with acquire load in check_poisoned() to publish kind/reason)
  std::atomic<bool> poisoned_{false};
  // aecnc: lock-leaf(guards only the poison diagnostic fields; no other
  // lock is ever taken under it)
  mutable util::SpinLock poison_mutex_;
  ErrorKind poison_kind_ AECNC_GUARDED_BY(poison_mutex_) = ErrorKind::kAborted;
  std::string poison_reason_ AECNC_GUARDED_BY(poison_mutex_);
};

}  // namespace aecnc::net
