// TCP socket Transport: a nonblocking loopback mesh moving
// length-prefixed frames between shard endpoints (docs/sharding.md §7).
//
// Every pair of shards shares one TCP connection. Sends are
// store-and-forward per connection — at most one encoded frame (plus
// phase markers) is pending per peer, and a frame is only accepted once
// the previous one is fully on the wire, which is how socket
// backpressure surfaces through the same SendStatus::kBackpressure
// path the in-process transport uses. Phase agreement replaces the
// in-process barrier with kPhaseEnd marker frames: finish_phase queues
// a marker after all data on every connection (per-link FIFO makes the
// marker a delivery fence), and phase_done polls until every peer's
// marker for the current generation has arrived. A phase_done window
// with no forward progress for NetConfig::io_timeout_ms throws
// TransportError(kTimeout); a peer closing mid-protocol throws
// kPeerDead; a stream the decoder rejects throws kBadFrame.
//
// The same file exposes the small blocking helpers the multi-process
// wire-up (src/net/process.cpp) uses for its control channel: loopback
// listen/connect/accept with deadlines, and blocking whole-frame
// send/recv.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "net/frame.hpp"
#include "net/transport.hpp"
#include "util/annotations.hpp"

namespace aecnc::net {

/// Deterministic failure hooks for the harness and the CI smoke legs.
/// (Namespace scope: a nested class's member initializers are parsed
/// too late to default-construct `= {}` arguments.)
struct SocketTuning {
  /// Cap on bytes per write() call — forces short writes so the
  /// partial-flush path is exercised deterministically.
  std::size_t max_write_bytes = SIZE_MAX;
  /// When >= 0: the hosted endpoint hard-exits (std::_Exit) at the
  /// end of this phase generation, simulating a worker crash
  /// mid-protocol. Peers must surface kPeerDead/kTimeout, never hang.
  int die_at_phase = -1;
};

class SocketTransport final : public TransportBase {
 public:
  using Tuning = SocketTuning;

  /// Wrap an established p×p mesh. fds[e][t] is endpoint e's connection
  /// to peer t (-1 when absent); the transport owns and closes them.
  /// Endpoint e is "hosted" — callable from this process — iff every
  /// fds[e][t] (t != e) is a live descriptor. All descriptors are
  /// switched to nonblocking mode here.
  SocketTransport(std::vector<std::vector<int>> fds, const NetConfig& config,
                  const Tuning& tuning = {});
  ~SocketTransport() override;

  /// Build an in-process loopback mesh hosting all p endpoints — the
  /// single-machine configuration tests and bench_shard use to put the
  /// full socket stack under the unchanged engine.
  [[nodiscard]] static std::unique_ptr<SocketTransport> connect_local_mesh(
      int p, const NetConfig& config, const Tuning& tuning = {});

  [[nodiscard]] int num_endpoints() const noexcept override {
    return num_endpoints_;
  }
  [[nodiscard]] SendStatus try_send(Frame& frame) override;
  [[nodiscard]] bool try_recv(int self, Frame& out) override;
  void finish_phase(int self) override;
  [[nodiscard]] bool phase_done(int self) override;
  [[nodiscard]] TransportStats stats() const override;

 private:
  /// One connection to a peer. Owned by the hosting endpoint's thread.
  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> out;  // encoded bytes awaiting the wire
    std::size_t out_pos = 0;        // flushed prefix of out
    FrameDecoder decoder;
    std::uint64_t marker_gen = 0;  // highest kPhaseEnd seq seen from peer
  };

  /// Per-endpoint state, thread-confined to that endpoint's shard
  /// thread (try_send routes by frame.src; the rest by `self`).
  struct Endpoint {
    bool hosted = false;
    std::vector<Conn> conns;  // by peer id; conns[self].fd == -1
    std::deque<Frame> ready;  // decoded data frames awaiting try_recv
    std::uint64_t phase_gen = 0;
    std::chrono::steady_clock::time_point last_progress;
  };

  /// Write pending bytes; true when the conn's buffer drained fully.
  bool flush_out(Endpoint& ep, Conn& c);
  /// Nonblocking read/write sweep over the endpoint's connections;
  /// decodes arrived frames into ready/marker state. Returns true when
  /// any bytes moved.
  bool poll_io(Endpoint& ep);
  void note_progress(Endpoint& ep);
  [[noreturn]] void throw_io(ErrorKind kind, const char* what);

  const NetConfig config_;
  const Tuning tuning_;
  int num_endpoints_ = 0;
  std::vector<Endpoint> endpoints_;

  // aecnc: lock-leaf(guards only the traffic counters; no other lock is
  // ever taken under it)
  mutable util::SpinLock stats_mutex_;
  TransportStats stats_ AECNC_GUARDED_BY(stats_mutex_);
};

// --- blocking helpers for the multi-process control channel ---------------

/// Listen on 127.0.0.1 with an ephemeral port; returns the fd and writes
/// the bound port. Throws TransportError(kSystem) on failure.
[[nodiscard]] int listen_on_loopback(std::uint16_t& port_out);

/// Connect to 127.0.0.1:port, retrying with the policy's backoff until
/// connect_timeout_ms elapses. Attempts beyond the first are counted
/// into `reconnects` when non-null. Throws kSystem on exhaustion.
[[nodiscard]] int connect_loopback(std::uint16_t port, const NetConfig& config,
                                   std::uint64_t* reconnects = nullptr);

/// Accept one connection within timeout_ms; throws kTimeout / kSystem.
[[nodiscard]] int accept_with_timeout(int listen_fd, std::uint32_t timeout_ms);

void set_nonblocking(int fd);
void set_nodelay(int fd);

/// Write one whole encoded frame within timeout_ms (blocking, with a
/// poll deadline). Throws kTimeout / kPeerDead / kSystem.
void send_frame_blocking(int fd, const Frame& frame, std::uint32_t timeout_ms);

/// Read until the decoder yields one frame. Returns false on clean EOF
/// at a frame boundary; throws kBadFrame / kTimeout / kSystem otherwise.
[[nodiscard]] bool recv_frame_blocking(int fd, FrameDecoder& decoder,
                                       Frame& out, std::uint32_t timeout_ms);

}  // namespace aecnc::net
