// Multi-process sharded counting: one OS process per shard over the
// socket transport, coordinated by a parent (docs/sharding.md §7).
//
// The parent builds the Partition2D, fork+execs p `shard-worker` CLI
// processes, hands each the mesh ports and partition boundaries over a
// loopback control connection, and folds the kResult slices the workers
// stream back. Any worker error — or a worker dying mid-protocol — is
// surfaced as a typed TransportError after every child has been killed
// and reaped: the parent never hangs past the io timeout and never
// returns partial counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "graph/csr.hpp"
#include "net/transport.hpp"
#include "shard/engine.hpp"

namespace aecnc::net {

/// Everything a `shard-worker` process needs; parsed from its CLI flags
/// (tools/aecnc_cli.cpp) and mirrored from the parent's options.
struct WorkerOptions {
  std::string graph_path;
  int shard = 0;
  int num_shards = 1;
  std::uint16_t parent_port = 0;
  shard::ShardConfig engine;
  NetConfig net;
  /// Fault hook: hard-exit at the end of this phase generation
  /// (SocketTransport::Tuning::die_at_phase); -1 disables.
  int fault_abort_phase = -1;
};

/// The worker body: connect to the parent, mesh up with peers, run one
/// shard, stream results back. Returns the process exit code; failures
/// are reported to the parent as a kError frame (best effort) and to
/// stderr as `error: <kind>: ...`.
[[nodiscard]] int run_shard_worker(const WorkerOptions& options);

struct MultiProcessOptions {
  /// Path of the CLI binary to re-exec as `shard-worker` (argv[0] as
  /// resolved by the caller, e.g. /proc/self/exe).
  std::string exe_path;
  /// Graph file each worker loads independently — the parent's in-memory
  /// graph is never shipped over the wire.
  std::string graph_path;
  int num_shards = 1;
  NetConfig net;
  /// Extra CLI flags forwarded verbatim to every worker (algorithm,
  /// kernel, flush/inbox knobs) so option parsing stays in one place.
  std::vector<std::string> worker_args;
  /// Fault hooks for the peer-kill smoke: worker `fault_abort_shard`
  /// gets --fault-abort-phase=fault_abort_phase; -1 disables.
  int fault_abort_shard = -1;
  int fault_abort_phase = -1;
};

/// Run the full sharded count with one process per shard. `g` is only
/// used for partition boundaries and result sizing; workers re-load the
/// graph from options.graph_path. Throws TransportError on any worker
/// failure, death, or protocol violation.
[[nodiscard]] core::CountArray count_multiprocess(
    const graph::Csr& g, const MultiProcessOptions& options);

}  // namespace aecnc::net
