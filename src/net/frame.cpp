#include "net/frame.hpp"

#include <cstring>
#include <stdexcept>

namespace aecnc::net {

namespace {

// FNV-1a over the payload bytes: cheap, endian-stable, and enough to
// catch framing desynchronization — TCP already guards bit integrity.
std::uint32_t fnv1a(const std::uint8_t* data, std::size_t n) noexcept {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

bool message_type_valid(std::uint8_t raw) noexcept {
  return raw <= static_cast<std::uint8_t>(shard::MessageType::kMirror);
}

void put_message(std::vector<std::uint8_t>& out, const shard::Message& m) {
  out.push_back(static_cast<std::uint8_t>(m.type));
  put_u32(out, m.u);
  put_u32(out, m.v);
  put_u64(out, m.slot);
  put_u64(out, m.value);
}

shard::Message get_message(const std::uint8_t* p) noexcept {
  shard::Message m;
  m.type = static_cast<shard::MessageType>(p[0]);
  m.u = get_u32(p + 1);
  m.v = get_u32(p + 5);
  m.slot = get_u64(p + 9);
  m.value = get_u64(p + 17);
  return m;
}

}  // namespace

bool frame_type_valid(std::uint8_t raw) noexcept {
  return raw <= static_cast<std::uint8_t>(FrameType::kDone);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint16_t get_u16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::size_t encoded_size(const Frame& f) noexcept {
  const std::size_t body = f.type == FrameType::kData
                               ? f.messages.size() * kMessageWireBytes
                               : f.payload.size();
  return kFrameHeaderBytes + body;
}

void encode_frame(const Frame& f, std::vector<std::uint8_t>& out) {
  const std::size_t body_bytes = encoded_size(f) - kFrameHeaderBytes;
  if (body_bytes > kMaxFramePayload) {
    throw std::length_error("net frame payload exceeds kMaxFramePayload");
  }
  const std::size_t header_at = out.size();
  put_u32(out, kFrameMagic);
  out.push_back(kFrameVersion);
  out.push_back(static_cast<std::uint8_t>(f.type));
  out.push_back(f.src);
  out.push_back(f.dst);
  put_u64(out, f.seq);
  put_u32(out, static_cast<std::uint32_t>(body_bytes));
  put_u32(out, 0);  // checksum backpatched below

  const std::size_t body_at = out.size();
  if (f.type == FrameType::kData) {
    for (const shard::Message& m : f.messages) put_message(out, m);
  } else {
    out.insert(out.end(), f.payload.begin(), f.payload.end());
  }
  const std::uint32_t checksum = fnv1a(out.data() + body_at, body_bytes);
  std::uint8_t sum_le[4];
  for (int i = 0; i < 4; ++i) {
    sum_le[i] = static_cast<std::uint8_t>(checksum >> (8 * i));
  }
  std::memcpy(out.data() + header_at + 20, sum_le, 4);
}

FrameDecoder::Status FrameDecoder::fail(const char* why) {
  failed_ = true;
  error_ = why;
  buf_.clear();
  pos_ = 0;
  return Status::kError;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  if (failed_) return;
  // Reclaim the consumed prefix before growing: the buffer never holds
  // more than one partial frame plus whatever the caller just fed.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= kMaxFramePayload)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

FrameDecoder::Status FrameDecoder::next(Frame& out) {
  if (failed_) return Status::kError;
  if (buffered() < kFrameHeaderBytes) return Status::kNeedMore;
  const std::uint8_t* h = buf_.data() + pos_;
  if (get_u32(h) != kFrameMagic) return fail("bad frame magic");
  if (h[4] != kFrameVersion) return fail("unsupported frame version");
  if (!frame_type_valid(h[5])) return fail("unknown frame type");
  const std::uint32_t body_bytes = get_u32(h + 16);
  // Validate the length prefix BEFORE waiting for (or allocating) the
  // body: a hostile length can neither over-read nor over-allocate.
  if (body_bytes > kMaxFramePayload) return fail("oversized frame payload");
  const auto type = static_cast<FrameType>(h[5]);
  if (type == FrameType::kData && body_bytes % kMessageWireBytes != 0) {
    return fail("data frame payload is not a whole message batch");
  }
  if (buffered() < kFrameHeaderBytes + body_bytes) return Status::kNeedMore;

  const std::uint8_t* body = h + kFrameHeaderBytes;
  if (fnv1a(body, body_bytes) != get_u32(h + 20)) {
    return fail("frame checksum mismatch");
  }
  out.type = type;
  out.src = h[6];
  out.dst = h[7];
  out.seq = get_u64(h + 8);
  out.messages.clear();
  out.payload.clear();
  if (type == FrameType::kData) {
    const std::size_t n = body_bytes / kMessageWireBytes;
    out.messages.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t* rec = body + i * kMessageWireBytes;
      if (!message_type_valid(rec[0])) return fail("invalid message type");
      out.messages.push_back(get_message(rec));
    }
  } else {
    out.payload.assign(body, body + body_bytes);
  }
  pos_ += kFrameHeaderBytes + body_bytes;
  return Status::kFrame;
}

}  // namespace aecnc::net
