// In-process Transport: bounded per-endpoint frame mailboxes plus a
// generation barrier for phase agreement (docs/sharding.md §7).
//
// This is the refactored home of the original MessageAggregator inbox
// and the engine's PhaseBarrier: delivery is a deque push under a short
// leaf lock, so the p=1 single-shard path stays zero-cost relative to
// the pre-transport engine (bench_shard's p1-within-10% gate holds).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "net/transport.hpp"
#include "util/annotations.hpp"

namespace aecnc::net {

/// Reusable generation barrier for the BSP supersteps. arrive() returns
/// the generation the caller must wait for; waiters poll passed() so
/// they can keep draining their inbox between checks instead of
/// sleeping (blocking here could deadlock against a full inbox).
class PhaseBarrier {
 public:
  explicit PhaseBarrier(int parties) : parties_(parties) {}

  PhaseBarrier(const PhaseBarrier&) = delete;
  PhaseBarrier& operator=(const PhaseBarrier&) = delete;

  [[nodiscard]] std::uint64_t arrive() {
    util::MutexLock lock(&mutex_);
    const std::uint64_t target =
        generation_.load(std::memory_order_relaxed) + 1;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      generation_.store(target, std::memory_order_release);
    }
    return target;
  }

  [[nodiscard]] bool passed(std::uint64_t target) const noexcept {
    return generation_.load(std::memory_order_acquire) >= target;
  }

 private:
  const int parties_;
  // aecnc: lock-leaf(guards only the arrival count; the generation
  // publish is an atomic store made under it)
  util::Mutex mutex_;
  int waiting_ AECNC_GUARDED_BY(mutex_) = 0;
  // aecnc: atomic-ok(monotonic generation; the last arriver's release
  // store under mutex_ pairs with waiters' acquire loads in passed())
  std::atomic<std::uint64_t> generation_{0};
};

class InprocTransport final : public TransportBase {
 public:
  /// `inbox_capacity`: max pending frames per endpoint before try_send
  /// reports backpressure. Clamped to >= 1.
  InprocTransport(int num_endpoints, std::size_t inbox_capacity);

  [[nodiscard]] int num_endpoints() const noexcept override {
    return num_endpoints_;
  }
  [[nodiscard]] SendStatus try_send(Frame& frame) override;
  [[nodiscard]] bool try_recv(int self, Frame& out) override;
  void finish_phase(int self) override;
  [[nodiscard]] bool phase_done(int self) override;
  [[nodiscard]] TransportStats stats() const override;

 private:
  /// One bounded mailbox per destination endpoint. The mutex is
  /// innermost by construction: nothing is acquired while holding it.
  struct Inbox {
    // aecnc: lock-leaf(guards only this deque and its tallies; no other
    // lock is ever taken under it)
    mutable util::Mutex mutex_;
    std::deque<Frame> queue_ AECNC_GUARDED_BY(mutex_);
    std::uint64_t messages_in_ AECNC_GUARDED_BY(mutex_) = 0;
    std::uint64_t batches_in_ AECNC_GUARDED_BY(mutex_) = 0;
  };

  const int num_endpoints_;
  const std::size_t inbox_capacity_;
  std::vector<Inbox> inboxes_;  // one per destination endpoint
  PhaseBarrier barrier_;
  std::vector<std::uint64_t> pending_gen_;  // per endpoint, thread-confined
};

}  // namespace aecnc::net
