#include "bitmap/bitmap.hpp"

#include <bit>

namespace aecnc::bitmap {

bool Bitmap::all_zero() const noexcept {
  for (const std::uint64_t word : words_) {
    if (word != 0) return false;
  }
  return true;
}

std::uint64_t Bitmap::popcount() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t word : words_) {
    total += static_cast<std::uint64_t>(std::popcount(word));
  }
  return total;
}

CnCount bitmap_intersect_count(const Bitmap& index,
                               std::span<const VertexId> a, bool prefetch) {
  intersect::NullCounter null;
  return bitmap_intersect_count(index, a, null, prefetch);
}

}  // namespace aecnc::bitmap
