#include "bitmap/bitmap.hpp"

#include <bit>

#include "obs/catalog.hpp"

namespace aecnc::bitmap {

bool Bitmap::all_zero() const noexcept {
  for (const std::uint64_t word : words_) {
    if (word != 0) return false;
  }
  return true;
}

std::uint64_t Bitmap::popcount() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t word : words_) {
    total += static_cast<std::uint64_t>(std::popcount(word));
  }
  return total;
}

CnCount bitmap_intersect_count(const Bitmap& index,
                               std::span<const VertexId> a, bool prefetch) {
  // This overload is the entry point of every non-StatsCounter caller
  // (parallel drivers, serve engine), so it is where obs work counters
  // attach: local StatsCounter in the loop, one flush per intersection.
  if (obs::enabled()) [[unlikely]] {
    intersect::StatsCounter sc;
    const CnCount c = bitmap_intersect_count(index, a, sc, prefetch);
    const obs::KernelMetrics& m = obs::KernelMetrics::get();
    m.bitmap_probes.add(sc.bitmap_probes);
    m.bitmap_matches.add(sc.matches);
    return c;
  }
  intersect::NullCounter null;
  return bitmap_intersect_count(index, a, null, prefetch);
}

}  // namespace aecnc::bitmap
