#include "bitmap/range_filter.hpp"

#include "obs/catalog.hpp"

namespace aecnc::bitmap {

CnCount rf_intersect_count(const RangeFilteredBitmap& index,
                           std::span<const VertexId> a, bool prefetch) {
  // Non-StatsCounter chokepoint (see bitmap.cpp): attach obs counters
  // here so every parallel/serve RF intersection reports its probe,
  // skip, and match profile.
  if (obs::enabled()) [[unlikely]] {
    intersect::StatsCounter sc;
    const CnCount c = rf_intersect_count(index, a, sc, prefetch);
    const obs::KernelMetrics& m = obs::KernelMetrics::get();
    m.rf_probes.add(sc.rf_probes);
    m.rf_skips.add(sc.rf_skips);
    m.bitmap_probes.add(sc.bitmap_probes);
    m.bitmap_matches.add(sc.matches);
    return c;
  }
  intersect::NullCounter null;
  return rf_intersect_count(index, a, null, prefetch);
}

}  // namespace aecnc::bitmap
