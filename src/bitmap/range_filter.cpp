#include "bitmap/range_filter.hpp"

namespace aecnc::bitmap {

CnCount rf_intersect_count(const RangeFilteredBitmap& index,
                           std::span<const VertexId> a, bool prefetch) {
  intersect::NullCounter null;
  return rf_intersect_count(index, a, null, prefetch);
}

}  // namespace aecnc::bitmap
