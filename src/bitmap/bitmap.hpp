// The |V|-bit bitmap index underlying BMP (paper Algorithm 2).
//
// A bitmap is constructed dynamically for the current vertex u (set the
// bit of every neighbor), reused for every intersection N(u) ∩ N(v), and
// cleared by flipping the same bits — so construction and clearing cost
// amortizes to O(1) per intersection. Memory: |V|/8 bytes per bitmap
// (Table 3), one per execution context.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "intersect/counters.hpp"
#include "util/prefetch.hpp"
#include "util/types.hpp"

namespace aecnc::bitmap {

class Bitmap {
 public:
  Bitmap() = default;
  /// All-zero bitmap over the id universe [0, cardinality).
  explicit Bitmap(std::uint64_t cardinality)
      : num_bits_(cardinality), words_((cardinality + 63) / 64, 0) {}

  [[nodiscard]] std::uint64_t cardinality() const noexcept { return num_bits_; }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return words_.size() * sizeof(std::uint64_t);
  }

  void set(VertexId v) noexcept { words_[v >> 6] |= 1ULL << (v & 63); }
  void flip(VertexId v) noexcept { words_[v >> 6] ^= 1ULL << (v & 63); }
  void clear(VertexId v) noexcept { words_[v >> 6] &= ~(1ULL << (v & 63)); }
  [[nodiscard]] bool test(VertexId v) const noexcept {
    return (words_[v >> 6] >> (v & 63)) & 1ULL;
  }

  /// Hint the word holding v's bit into cache ahead of a future test().
  /// The |V|-bit bitmap dwarfs LLC on large graphs and probes are random,
  /// so the BMP inner loop prefetches the word of a *later* neighbor while
  /// testing the current one.
  void prefetch(VertexId v) const noexcept {
    util::prefetch_ro(&words_[v >> 6]);
  }

  /// Set the bit of every element (bitmap construction, Alg. 2 lines 3-4).
  void set_all(std::span<const VertexId> elements) noexcept {
    for (const VertexId v : elements) set(v);
  }

  /// Flip the same bits back to zero (clearing, Alg. 2 lines 8-9).
  void clear_all(std::span<const VertexId> elements) noexcept {
    for (const VertexId v : elements) flip(v);
  }

  /// True iff every bit is zero — the invariant between vertex
  /// computations that clearing must restore.
  [[nodiscard]] bool all_zero() const noexcept;

  /// Number of set bits.
  [[nodiscard]] std::uint64_t popcount() const noexcept;

 private:
  std::uint64_t num_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// IntersectBMP (Alg. 2 lines 10-14): count elements of `a` whose bit is
/// set in `index`.
template <typename Counter = intersect::NullCounter>
[[nodiscard]] CnCount bitmap_intersect_count(const Bitmap& index,
                                             std::span<const VertexId> a,
                                             Counter& counter,
                                             bool prefetch = true) {
  CnCount c = 0;
  const std::size_t n = a.size();
  // Hint only when the bitmap exceeds cache; see kIndexPrefetchMinBytes.
  const bool pf =
      prefetch && index.memory_bytes() >= util::kIndexPrefetchMinBytes;
  for (std::size_t i = 0; i < n; ++i) {
    if (pf && i + util::kBitmapPrefetchDistance < n) {
      index.prefetch(a[i + util::kBitmapPrefetchDistance]);
    }
    counter.bitmap_probe();
    if (index.test(a[i])) {
      ++c;
      counter.match();
    }
  }
  return c;
}

[[nodiscard]] CnCount bitmap_intersect_count(const Bitmap& index,
                                             std::span<const VertexId> a,
                                             bool prefetch = true);

}  // namespace aecnc::bitmap
