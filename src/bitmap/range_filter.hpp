// Bitmap range filtering (paper §4.3).
//
// Matches in a set intersection are sparse: most probes of the |V|-bit
// bitmap miss. RF adds a small summary bitmap, one bit per `range_scale`
// bits of the big bitmap (the paper uses 4096 so the summary fits in L1 /
// GPU shared memory). A zero summary bit proves the whole range is zero,
// so the big-bitmap access — a random DRAM load — is skipped.
#pragma once

#include <span>

#include "bitmap/bitmap.hpp"
#include "intersect/counters.hpp"
#include "util/types.hpp"

namespace aecnc::bitmap {

class RangeFilteredBitmap {
 public:
  /// The paper's summary ratio: 4096 big-bitmap bits per summary bit.
  static constexpr std::uint64_t kDefaultRangeScale = 4096;

  RangeFilteredBitmap() = default;
  explicit RangeFilteredBitmap(std::uint64_t cardinality,
                               std::uint64_t range_scale = kDefaultRangeScale)
      : big_(cardinality),
        summary_((cardinality + range_scale - 1) / range_scale),
        range_scale_(range_scale) {}

  [[nodiscard]] std::uint64_t cardinality() const noexcept {
    return big_.cardinality();
  }
  [[nodiscard]] std::uint64_t range_scale() const noexcept {
    return range_scale_;
  }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return big_.memory_bytes() + summary_.memory_bytes();
  }
  [[nodiscard]] std::uint64_t summary_bytes() const noexcept {
    return summary_.memory_bytes();
  }

  void set(VertexId v) noexcept {
    big_.set(v);
    summary_.set(static_cast<VertexId>(v / range_scale_));
  }

  [[nodiscard]] bool test(VertexId v) const noexcept {
    if (!summary_.test(static_cast<VertexId>(v / range_scale_))) return false;
    return big_.test(v);
  }

  void set_all(std::span<const VertexId> elements) noexcept {
    for (const VertexId v : elements) set(v);
  }

  /// Clear after a vertex computation. Only this vertex's neighbors are
  /// set, so flipping each neighbor's bit and zeroing its (possibly
  /// shared) summary bit restores the all-zero state in one O(d) pass.
  void clear_all(std::span<const VertexId> elements) noexcept {
    for (const VertexId v : elements) {
      big_.flip(v);
      summary_.clear(static_cast<VertexId>(v / range_scale_));
    }
  }

  [[nodiscard]] bool all_zero() const noexcept {
    return big_.all_zero() && summary_.all_zero();
  }

  [[nodiscard]] const Bitmap& big() const noexcept { return big_; }
  [[nodiscard]] const Bitmap& summary() const noexcept { return summary_; }

 private:
  Bitmap big_;
  Bitmap summary_;
  std::uint64_t range_scale_ = kDefaultRangeScale;
};

/// IntersectBMP with range filtering: probe the summary first; only on a
/// summary hit touch the big bitmap.
///
/// Prefetching respects the filter: the big-bitmap word of the lookahead
/// neighbor is requested only when its summary bit (an L1-resident read)
/// is set, so ranges RF proves empty still cost zero DRAM traffic.
template <typename Counter = intersect::NullCounter>
[[nodiscard]] CnCount rf_intersect_count(const RangeFilteredBitmap& index,
                                         std::span<const VertexId> a,
                                         Counter& counter,
                                         bool prefetch = true) {
  CnCount c = 0;
  const std::uint64_t scale = index.range_scale();
  const std::size_t n = a.size();
  // Hint only when the big bitmap exceeds cache (kIndexPrefetchMinBytes):
  // the summary is L1-resident by design and never worth prefetching.
  const bool pf =
      prefetch && index.big().memory_bytes() >= util::kIndexPrefetchMinBytes;
  for (std::size_t i = 0; i < n; ++i) {
    if (pf && i + util::kBitmapPrefetchDistance < n) {
      const VertexId ahead = a[i + util::kBitmapPrefetchDistance];
      if (index.summary().test(static_cast<VertexId>(ahead / scale))) {
        index.big().prefetch(ahead);
      }
    }
    const VertexId w = a[i];
    counter.rf_probe();
    if (!index.summary().test(static_cast<VertexId>(w / scale))) {
      counter.rf_skip();
      continue;
    }
    counter.bitmap_probe();
    if (index.big().test(w)) {
      ++c;
      counter.match();
    }
  }
  return c;
}

[[nodiscard]] CnCount rf_intersect_count(const RangeFilteredBitmap& index,
                                         std::span<const VertexId> a,
                                         bool prefetch = true);

}  // namespace aecnc::bitmap
