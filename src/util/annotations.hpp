// Clang Thread Safety Analysis capability macros and the annotated lock
// primitives every concurrent component in the repo must use.
//
// The macros wrap clang's `capability`/`guarded_by`/`acquire_capability`
// attribute family (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html)
// and expand to nothing on compilers without the attributes, so GCC builds
// are byte-identical to the unannotated code. The clang CI leg compiles
// with `-Werror=thread-safety -Werror=thread-safety-beta`, turning
// guarded-field races and lock-order inversions into build failures.
//
// Contract (enforced by tools/check_memory_order.py and
// tools/check_lock_order.py, both ctest entries):
//
//  * Every mutex member under src/ is a `util::Mutex` or `util::SpinLock`
//    from this header — raw `std::mutex` members don't carry capability
//    attributes and the analysis cannot see them.
//  * Every mutex member declares its place in the canonical lock order
//    (docs/checking.md §6) — either `AECNC_ACQUIRED_BEFORE(...)` for
//    same-class edges, or a structured comment for cross-class edges:
//      // aecnc: acquired-before(Class::member_, ...)
//      // aecnc: lock-leaf(<why nothing is acquired under it>)
//  * Every `std::atomic` member outside this header carries a
//      // aecnc: atomic-ok(<reason>)
//    waiver naming the protocol that makes lock-free access sound.
#pragma once

#include <atomic>
#include <mutex>
#include <thread>

#if defined(__clang__) && defined(__has_attribute)
#define AECNC_HAS_THREAD_ATTR(x) __has_attribute(x)
#else
#define AECNC_HAS_THREAD_ATTR(x) 0
#endif

#if AECNC_HAS_THREAD_ATTR(guarded_by)
#define AECNC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AECNC_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// --- declaration-site attributes -------------------------------------------

/// Marks a class as a lockable capability (mutexes, spinlocks).
#define AECNC_CAPABILITY(x) AECNC_THREAD_ANNOTATION(capability(x))

/// Marks an RAII guard whose constructor acquires and destructor releases.
#define AECNC_SCOPED_CAPABILITY AECNC_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be touched while holding `x`.
#define AECNC_GUARDED_BY(x) AECNC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* may only be touched while holding `x`.
#define AECNC_PT_GUARDED_BY(x) AECNC_THREAD_ANNOTATION(pt_guarded_by(x))

/// This mutex is acquired before the listed ones (same-class lock order).
#define AECNC_ACQUIRED_BEFORE(...) \
  AECNC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// This mutex is acquired after the listed ones.
#define AECNC_ACQUIRED_AFTER(...) \
  AECNC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// --- function-site attributes ----------------------------------------------

/// Caller must already hold the listed capabilities.
#define AECNC_REQUIRES(...) \
  AECNC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock guard).
#define AECNC_EXCLUDES(...) AECNC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define AECNC_ACQUIRE(...) \
  AECNC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define AECNC_RELEASE(...) \
  AECNC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define AECNC_TRY_ACQUIRE(b, ...) \
  AECNC_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Accessor returns (a reference to) the given capability.
#define AECNC_RETURN_CAPABILITY(x) AECNC_THREAD_ANNOTATION(lock_returned(x))

/// Per-site analysis waiver. Forbidden without an adjacent comment saying
/// why the access pattern is sound (see docs/checking.md §6).
#define AECNC_NO_THREAD_SAFETY_ANALYSIS \
  AECNC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace aecnc::util {

/// Annotated wrapper over std::mutex. BasicLockable, so it works directly
/// with std::condition_variable_any (waits must use the explicit
/// `while (!pred) cv.wait(mutex_);` form: the analysis cannot see through
/// predicate lambdas passed to `wait(lock, pred)`).
class AECNC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AECNC_ACQUIRE() { m_.lock(); }
  void unlock() AECNC_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() AECNC_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

 private:
  std::mutex m_;
};

/// Annotated test-and-set spinlock for short critical sections on hot
/// paths (the serve-side result cache). Acquire/release ordering on the
/// flag publishes everything written inside the section.
class AECNC_CAPABILITY("spinlock") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept AECNC_ACQUIRE() {
    while (flag_.exchange(true, std::memory_order_acquire)) {
      // Spin on a relaxed load so contended waiters don't bounce the
      // cache line with RMW traffic; the winning exchange above is the
      // acquire that pairs with unlock()'s release.
      while (flag_.load(std::memory_order_relaxed)) {
        std::this_thread::yield();
      }
    }
  }

  void unlock() noexcept AECNC_RELEASE() {
    flag_.store(false, std::memory_order_release);
  }

  [[nodiscard]] bool try_lock() noexcept AECNC_TRY_ACQUIRE(true) {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard for Mutex (std::lock_guard is not annotation-aware).
class AECNC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) AECNC_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() AECNC_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// RAII guard for SpinLock.
class AECNC_SCOPED_CAPABILITY SpinLockHolder {
 public:
  explicit SpinLockHolder(SpinLock* lock) AECNC_ACQUIRE(lock) : lock_(lock) {
    lock_->lock();
  }
  ~SpinLockHolder() AECNC_RELEASE() { lock_->unlock(); }

  SpinLockHolder(const SpinLockHolder&) = delete;
  SpinLockHolder& operator=(const SpinLockHolder&) = delete;

 private:
  SpinLock* lock_;
};

}  // namespace aecnc::util
