// Portable software-prefetch hints for the skew-sensitive kernels.
//
// __builtin_prefetch lowers to PREFETCHh on x86-64 (baseline ISA since
// SSE1) and to PRFM on AArch64; on targets without a prefetch instruction
// it compiles to nothing. Hints never fault, so callers only have to keep
// the *pointer arithmetic* in bounds (forming a pointer more than one past
// the end of an array is UB even if never dereferenced).
//
// SIMD translation units use _mm_prefetch directly; this header stays
// intrinsic-free so portable headers including it carry no ISA tokens
// (tools/check_simd_guards.py scans for those).
#pragma once

#include <cstddef>

namespace aecnc::util {

/// Read prefetch with moderate temporal locality (L2-and-up). The hot
/// kernels re-touch fetched lines within a few iterations, so evicting
/// straight to L1 (locality 3) just thrashes; locality 2 is the sweet
/// spot measured in bench_hotpath.
inline void prefetch_ro(const void* p) noexcept {
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/2);
}

/// Write prefetch: fetch the line in exclusive state so the upcoming
/// store skips the read-for-ownership stall (symmetric count mirroring).
inline void prefetch_rw(const void* p) noexcept {
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/2);
}

/// Lookahead distances (in elements) tuned on the skewed Twitter replica;
/// see docs/perf.md for the methodology. Far enough to cover DRAM latency
/// at the kernels' per-element throughput, near enough not to overrun the
/// L2 fill buffers. The bitmap distance is the larger because the probe
/// loop body is a handful of instructions: the out-of-order window alone
/// covers ~12 iterations, so a hint must land further out to add any
/// memory parallelism on top.
inline constexpr std::size_t kBlockPrefetchDistance = 16;   // vb block pairs
inline constexpr std::size_t kBitmapPrefetchDistance = 32;  // BMP word probes

/// Minimum index size before bitmap-probe prefetching engages. A bitmap
/// smaller than L2 is cache-resident after its first pass, and issuing a
/// hint per probe then costs ~30% extra instructions for nothing (the
/// regression bench_hotpath caught on small replicas). Above this size
/// probes go to DRAM and the hints pay for themselves. The gate is on
/// the *index*, not the probe list: the probe list is streamed linearly
/// (hardware prefetchers handle it); the random-probe target is what
/// misses.
inline constexpr std::size_t kIndexPrefetchMinBytes = 256 * 1024;

}  // namespace aecnc::util
