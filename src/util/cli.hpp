// Minimal command-line option parsing for the bench/example binaries.
//
// Supports `--key=value` and `--flag` forms only; everything the harness
// needs and nothing more. Unknown options abort with a message so typos in
// sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace aecnc::util {

class CliArgs {
 public:
  /// Parse argv. Aborts (exit 2) on malformed arguments.
  CliArgs(int argc, char** argv);

  [[nodiscard]] bool has(std::string_view key) const;

  /// First parsed key not in `allowed` (lexicographically smallest),
  /// or nullopt when every key is known. Lets a multi-command tool
  /// reject typos per command with its own usage text.
  [[nodiscard]] std::optional<std::string> first_unknown(
      std::initializer_list<std::string_view> allowed) const;

  /// Strict mode for single-command binaries: exit 2 with a message on
  /// stderr if any parsed key is not in `allowed`.
  void allow_only(std::initializer_list<std::string_view> allowed) const;

  /// Typed getters with defaults. Numeric getters abort (exit 2, message
  /// on stderr) when the present value does not parse in full.
  [[nodiscard]] std::string get(std::string_view key,
                                std::string_view fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace aecnc::util
