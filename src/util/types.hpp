// Fundamental integer types shared across the library.
//
// Vertex IDs follow the paper: unique 32-bit unsigned integers in [0, |V|).
// Edge offsets (CSR slots) must address up to ~2 * 10^9 directed edges on
// billion-edge graphs, so they are 64-bit.
#pragma once

#include <cstdint>

namespace aecnc {

/// A vertex identifier in [0, |V|).
using VertexId = std::uint32_t;

/// A directed edge slot e(u, v): an index into the CSR `dst`/`cnt` arrays.
using EdgeId = std::uint64_t;

/// A vertex degree (|N(u)| fits in 32 bits for the graphs we target).
using Degree = std::uint32_t;

/// A common neighbor count. Bounded by min-degree of the endpoints.
using CnCount = std::uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = ~VertexId{0};

}  // namespace aecnc
