// Vose alias method for O(1) sampling from a discrete distribution.
// Used by the Chung-Lu graph generator to pick endpoints proportional to
// target degree weights.
#pragma once

#include <cstdint>
#include <vector>

#include "util/prng.hpp"

namespace aecnc::util {

class DiscreteSampler {
 public:
  /// Build from non-negative weights (at least one must be positive).
  explicit DiscreteSampler(const std::vector<double>& weights);

  /// Sample an index proportional to its weight.
  [[nodiscard]] std::uint32_t sample(Xoshiro256& rng) const noexcept {
    const auto slot = rng.below(static_cast<std::uint32_t>(prob_.size()));
    return rng.uniform() < prob_[slot] ? slot : alias_[slot];
  }

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace aecnc::util
