// Cache-line / vector-register aligned allocation.
//
// The VB merge kernels load 256/512-bit blocks; aligning the CSR `dst`
// array to 64 bytes lets them use aligned loads and avoids split-line
// penalties. AlignedAllocator is a minimal C++17-style allocator usable
// with std::vector.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace aecnc::util {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T, std::size_t Alignment = kCacheLineBytes>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T));
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be 2^k");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    // Round the byte size up to a multiple of the alignment as required
    // by std::aligned_alloc.
    const std::size_t bytes = ((n * sizeof(T) + Alignment - 1) / Alignment) * Alignment;
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc{};
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// A std::vector whose buffer is 64-byte aligned (safe for _mm512 loads).
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace aecnc::util
