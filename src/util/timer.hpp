// Wall-clock timing helpers used by benches and the examples.
//
// The paper's metric is "in-memory processing time": elapsed time from the
// end of graph loading to the completion of all-edge counting. WallTimer
// measures exactly that window.
#pragma once

#include <chrono>

namespace aecnc::util {

/// Monotonic wall-clock timer. Started on construction; restart with reset().
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace aecnc::util
