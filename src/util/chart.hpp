// Terminal chart rendering for the figure benches.
//
// The paper's figures are bar/line charts; the benches reproduce the
// numbers as tables, and these helpers add the visual: horizontal bar
// charts (one bar per category) and multi-series sparklines (one row
// per series over a shared x-axis).
#pragma once

#include <string>
#include <vector>

namespace aecnc::util {

/// One labeled bar.
struct Bar {
  std::string label;
  double value = 0.0;
};

/// Render a horizontal bar chart scaled to `width` characters at the
/// maximum value. Values must be non-negative; a trailing formatted
/// value is appended to each bar.
[[nodiscard]] std::string bar_chart(const std::vector<Bar>& bars,
                                    int width = 48);

/// One named series of y-values over an implicit shared x-axis.
struct Series {
  std::string name;
  std::vector<double> values;
};

/// Render aligned sparklines (8-level Unicode blocks), one per series,
/// normalized over ALL series so relative magnitudes are comparable.
[[nodiscard]] std::string sparklines(const std::vector<Series>& series);

}  // namespace aecnc::util
