#include "util/alias.hpp"

#include <cassert>
#include <numeric>

namespace aecnc::util {

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  assert(n > 0);
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Numerical leftovers land at probability 1.
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;
}

}  // namespace aecnc::util
