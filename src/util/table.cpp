#include "util/table.hpp"

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace aecnc::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };
  emit_row(header_);
  out << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::print() const { std::fputs(str().c_str(), stdout); }

std::string TablePrinter::csv() const {
  std::ostringstream out;
  auto emit_field = [&out](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) {
      out << field;
      return;
    }
    out << '"';
    for (const char c : field) {
      if (c == '"') out << '"';
      out << c;
    }
    out << '"';
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      emit_field(row[c]);
    }
    out << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f us", seconds * 1e6);
  }
  return buf;
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f %s", bytes, kUnits[unit]);
  return buf;
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string format_speedup(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1fx", ratio);
  return buf;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

}  // namespace aecnc::util
