#include "util/chart.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/table.hpp"

namespace aecnc::util {
namespace {

std::size_t widest_label(const std::vector<Bar>& bars) {
  std::size_t w = 0;
  for (const auto& b : bars) w = std::max(w, b.label.size());
  return w;
}

}  // namespace

std::string bar_chart(const std::vector<Bar>& bars, int width) {
  double max_value = 0.0;
  for (const auto& b : bars) max_value = std::max(max_value, b.value);
  const std::size_t label_width = widest_label(bars);

  std::ostringstream out;
  for (const auto& b : bars) {
    const int filled =
        max_value <= 0.0
            ? 0
            : static_cast<int>(std::lround(b.value / max_value * width));
    out << "  " << b.label << std::string(label_width - b.label.size(), ' ')
        << " |";
    for (int i = 0; i < filled; ++i) out << "#";
    out << ' ' << format_seconds(b.value) << '\n';
  }
  return out.str();
}

std::string sparklines(const std::vector<Series>& series) {
  static const char* kLevels[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  double max_value = 0.0;
  std::size_t name_width = 0;
  for (const auto& s : series) {
    name_width = std::max(name_width, s.name.size());
    for (const double v : s.values) max_value = std::max(max_value, v);
  }

  std::ostringstream out;
  for (const auto& s : series) {
    out << "  " << s.name << std::string(name_width - s.name.size(), ' ')
        << " ";
    for (const double v : s.values) {
      const int level =
          max_value <= 0.0
              ? 0
              : static_cast<int>(std::lround(std::clamp(v / max_value, 0.0, 1.0) * 8));
      out << kLevels[level];
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace aecnc::util
