// Plain-text table rendering for the benchmark harnesses.
//
// Every bench binary prints the same rows/series the paper's table or
// figure reports; TablePrinter keeps that output aligned and greppable.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace aecnc::util {

/// Column-aligned text table. Add a header then rows; str() renders with
/// every column padded to its widest cell, in GitHub-markdown style.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render the full table (header, separator, rows).
  [[nodiscard]] std::string str() const;

  /// Render and write to stdout.
  void print() const;

  /// Render as RFC-4180-ish CSV (fields with commas/quotes are quoted).
  [[nodiscard]] std::string csv() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format seconds with adaptive precision ("12.3 s", "45.6 ms", "789 us").
[[nodiscard]] std::string format_seconds(double seconds);

/// Format a byte count as a human-readable string ("1.50 GB").
[[nodiscard]] std::string format_bytes(double bytes);

/// Format a count with thousands separators ("1,806,067,135").
[[nodiscard]] std::string format_count(std::uint64_t value);

/// Format a ratio as "12.3x".
[[nodiscard]] std::string format_speedup(double ratio);

/// Fixed-precision double ("3.14").
[[nodiscard]] std::string format_fixed(double value, int digits = 2);

}  // namespace aecnc::util
