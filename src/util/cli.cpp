#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

namespace aecnc::util {

CliArgs::CliArgs(int argc, char** argv) : program_(argv[0]) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      std::fprintf(stderr, "%s: unexpected argument '%s' (use --key=value)\n",
                   program_.c_str(), argv[i]);
      // Argument parsing runs in main() before any thread spawns.
      // NOLINTNEXTLINE(concurrency-mt-unsafe)
      std::exit(2);
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_.emplace(std::string(arg), "true");
    } else {
      values_.emplace(std::string(arg.substr(0, eq)),
                      std::string(arg.substr(eq + 1)));
    }
  }
}

bool CliArgs::has(std::string_view key) const {
  return values_.find(key) != values_.end();
}

std::optional<std::string> CliArgs::first_unknown(
    std::initializer_list<std::string_view> allowed) const {
  for (const auto& [key, value] : values_) {
    bool known = false;
    for (const auto a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) return key;
  }
  return std::nullopt;
}

void CliArgs::allow_only(
    std::initializer_list<std::string_view> allowed) const {
  const auto bad = first_unknown(allowed);
  if (!bad.has_value()) return;
  std::fprintf(stderr, "%s: unknown option '--%s'\n", program_.c_str(),
               bad->c_str());
  // Argument parsing runs in main() before any thread spawns.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  std::exit(2);
}

std::string CliArgs::get(std::string_view key, std::string_view fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::string(fallback) : it->second;
}

std::int64_t CliArgs::get_int(std::string_view key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const std::int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  // Strict: reject empty and trailing garbage so typos in sweep scripts
  // (--threads=abc, --seed=1x) fail loudly instead of parsing as 0.
  if (end == it->second.c_str() || *end != '\0') {
    std::fprintf(stderr, "%s: bad integer value '--%s=%s'\n", program_.c_str(),
                 it->first.c_str(), it->second.c_str());
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    std::exit(2);
  }
  return value;
}

double CliArgs::get_double(std::string_view key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    std::fprintf(stderr, "%s: bad numeric value '--%s=%s'\n", program_.c_str(),
                 it->first.c_str(), it->second.c_str());
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    std::exit(2);
  }
  return value;
}

bool CliArgs::get_bool(std::string_view key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace aecnc::util
