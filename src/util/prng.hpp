// Deterministic pseudo-random number generation.
//
// All generators in this library are seeded explicitly so every experiment
// is reproducible bit-for-bit. We use splitmix64 for seeding and
// xoshiro256** for bulk generation (fast, passes BigCrush, no allocation).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace aecnc::util {

/// splitmix64: used to expand a single 64-bit seed into generator state.
/// Reference: Sebastiano Vigna, public domain.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: general-purpose 64-bit generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift rejection-free
  /// approximation is fine here (bias < 2^-32 for bound < 2^32).
  constexpr std::uint32_t below(std::uint32_t bound) noexcept {
    return static_cast<std::uint32_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_;
};

}  // namespace aecnc::util
