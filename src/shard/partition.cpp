#include "shard/partition.hpp"

#include <algorithm>
#include <cassert>

namespace aecnc::shard {

Partition2D::Partition2D(const graph::Csr& g, int num_shards) {
  num_vertices_ = g.num_vertices();
  num_directed_edges_ = g.num_directed_edges();

  const int max_shards =
      std::max(1, static_cast<int>(std::min<VertexId>(
                      num_vertices_ == 0 ? 1 : num_vertices_, 1u << 16)));
  const int p = std::clamp(num_shards, 1, max_shards);

  // Cut points balance directed-slot count: boundary s is the first
  // vertex whose offset reaches s/p of the slot total. offsets is
  // nondecreasing, so the cuts are monotone; isolated-vertex runs can
  // make a lower_bound land short of |V|, hence the explicit final cut.
  // A default-constructed Csr has no offset array at all; substitute the
  // canonical empty-graph shape {0}.
  static const std::vector<EdgeId> kEmptyOffsets{0};
  const std::vector<EdgeId>& offsets =
      g.offsets().empty() ? kEmptyOffsets : g.offsets();
  boundaries_.assign(static_cast<std::size_t>(p) + 1, 0);
  for (int s = 1; s < p; ++s) {
    const EdgeId target =
        num_directed_edges_ / static_cast<EdgeId>(p) * static_cast<EdgeId>(s);
    const auto it = std::lower_bound(offsets.begin(), offsets.end(), target);
    boundaries_[static_cast<std::size_t>(s)] =
        static_cast<VertexId>(it - offsets.begin());
  }
  boundaries_[static_cast<std::size_t>(p)] = num_vertices_;
  for (int s = 1; s <= p; ++s) {
    // Monotone repair: an all-zero-degree prefix could order cuts
    // backwards; empty ranges are fine, descending ones are not.
    boundaries_[static_cast<std::size_t>(s)] =
        std::max(boundaries_[static_cast<std::size_t>(s)],
                 boundaries_[static_cast<std::size_t>(s) - 1]);
  }

  const EdgeId* rev =
      num_directed_edges_ > 0 ? g.reverse_offsets().data() : nullptr;

  shards_.resize(static_cast<std::size_t>(p));
  for (int s = 0; s < p; ++s) {
    ShardBlock& blk = shards_[static_cast<std::size_t>(s)];
    blk.vbegin = boundaries_[static_cast<std::size_t>(s)];
    blk.vend = boundaries_[static_cast<std::size_t>(s) + 1];
    blk.slot_base = blk.vbegin < num_vertices_ ? g.offset_begin(blk.vbegin)
                                               : num_directed_edges_;
    blk.slot_end = blk.vend < num_vertices_ ? g.offset_begin(blk.vend)
                                            : num_directed_edges_;

    // Row store: rebased offsets plus a copy of the owned dst slice.
    const VertexId owned = blk.num_owned();
    blk.row_offsets.resize(static_cast<std::size_t>(owned) + 1);
    for (VertexId i = 0; i <= owned; ++i) {
      blk.row_offsets[i] = offsets[blk.vbegin + i] - blk.slot_base;
    }
    blk.row_dst.assign(g.dst().begin() + static_cast<std::ptrdiff_t>(blk.slot_base),
                       g.dst().begin() + static_cast<std::ptrdiff_t>(blk.slot_end));

    // Mirror-slot map for the owned slot range.
    if (blk.num_owned_slots() > 0) {
      blk.rev.assign(rev + blk.slot_base, rev + blk.slot_end);
    }
  }

  // Column stores (p > 1 only): N(x) ∩ V_s is a contiguous subrange of
  // the sorted N(x), located with two lower_bounds per (x, s). Total
  // column storage across shards is exactly 2|E|.
  if (p > 1) {
    for (int s = 0; s < p; ++s) {
      ShardBlock& blk = shards_[static_cast<std::size_t>(s)];
      blk.col_offsets.resize(static_cast<std::size_t>(num_vertices_) + 1, 0);
      blk.col_dst.reserve(static_cast<std::size_t>(blk.num_owned_slots()));
      for (VertexId x = 0; x < num_vertices_; ++x) {
        const auto part = g.neighbors_in_range(x, blk.vbegin, blk.vend);
        blk.col_dst.insert(blk.col_dst.end(), part.begin(), part.end());
        blk.col_offsets[x + 1] = static_cast<EdgeId>(blk.col_dst.size());
      }
    }
  }
}

int Partition2D::owner(VertexId v) const noexcept {
  assert(v < num_vertices_);
  // First boundary strictly greater than v, minus one; repeated
  // boundaries (empty shards) resolve to the non-empty owner.
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), v);
  return static_cast<int>(it - boundaries_.begin()) - 1;
}

graph::Csr Partition2D::reassemble() const {
  std::vector<EdgeId> offsets(static_cast<std::size_t>(num_vertices_) + 1, 0);
  util::AlignedVector<VertexId> dst;
  dst.reserve(static_cast<std::size_t>(num_directed_edges_));
  if (num_shards() == 1) {
    const ShardBlock& blk = shards_[0];
    offsets.assign(blk.row_offsets.begin(), blk.row_offsets.end());
    dst = blk.row_dst;
  } else {
    // Concatenating the shards' columns of N(x) in shard order restores
    // the sorted adjacency, because vertex ranges ascend with s.
    for (VertexId x = 0; x < num_vertices_; ++x) {
      for (const ShardBlock& blk : shards_) {
        const auto part = blk.col_neighbors(x);
        dst.insert(dst.end(), part.begin(), part.end());
      }
      offsets[x + 1] = static_cast<EdgeId>(dst.size());
    }
  }
  return graph::Csr::from_raw(std::move(offsets), std::move(dst));
}

}  // namespace aecnc::shard
