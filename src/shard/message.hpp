// The message taxonomy of the sharded counting engine (docs/sharding.md).
//
// Every datum that crosses a shard boundary travels as one of these fixed
// 32-byte records — shards never dereference another shard's memory, so
// swapping the in-process queue transport for a socket/RDMA one is a
// matter of serializing `Message` arrays, not touching kernels.
//
// The protocol is type-dispatched and order-free: applying any message is
// correct whenever it arrives (partial-count adds are commutative, mirror
// stores target slots disjoint from every other write), which is what
// lets a backpressured sender drain and apply its own inbox while blocked
// without tracking phases per message.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace aecnc::shard {

enum class MessageType : std::uint8_t {
  /// "How many of YOUR vertices neighbor both u and v?" Sent by the owner
  /// of a forward edge (u, v) to every shard j with N_j(u) non-empty;
  /// `slot` is the requester's global forward slot e(u, v).
  kCountRequest,
  /// Answer to a kCountRequest: `value` = |N_j(u) ∩ N_j(v)| over the
  /// responder's vertex column, echoed back with the requester's `slot`.
  /// Zero partials are elided at the source.
  kCountReply,
  /// Symmetric assignment across the boundary: `slot` is the global
  /// mirror slot e(v, u) owned by the receiver, `value` the final count.
  kMirror,
};

struct Message {
  MessageType type = MessageType::kCountRequest;
  VertexId u = 0;
  VertexId v = 0;
  EdgeId slot = 0;
  std::uint64_t value = 0;
};

static_assert(sizeof(Message) <= 32, "messages are fixed small records");

}  // namespace aecnc::shard
