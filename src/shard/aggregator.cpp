#include "shard/aggregator.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/catalog.hpp"

namespace aecnc::shard {

MessageAggregator::MessageAggregator(net::Transport& transport,
                                     std::size_t flush_messages,
                                     const net::RetryPolicy& retry)
    : transport_(transport),
      num_shards_(transport.num_endpoints()),
      flush_messages_(flush_messages == 0 ? 1 : flush_messages),
      retry_(retry),
      outboxes_(static_cast<std::size_t>(num_shards_) *
                static_cast<std::size_t>(num_shards_)),
      send_seq_(outboxes_.size(), 0),
      recv_seq_(outboxes_.size(), 0) {}

bool MessageAggregator::append(int src, int dst, const Message& msg) {
  Batch& box = outbox(src, dst);
  box.push_back(msg);
  return box.size() >= flush_messages_;
}

bool MessageAggregator::try_flush(int src, int dst) {
  Batch& box = outbox(src, dst);
  const std::size_t lk = link(src, dst);
  // A single data frame is capped at the wire payload bound
  // (encode_frame throws past it — senders chunk at the call site). A
  // box normally holds <= flush_messages_, but sustained backpressure
  // re-queues batches while the producer keeps appending, so it can
  // grow past the cap; such a box goes out as several frames, each
  // advancing the per-link sequence on its own delivery.
  constexpr std::size_t kMaxBatch =
      net::kMaxFramePayload / net::kMessageWireBytes;
  while (!box.empty()) {
    net::Frame frame;
    frame.type = net::FrameType::kData;
    frame.src = static_cast<std::uint8_t>(src);
    frame.dst = static_cast<std::uint8_t>(dst);
    frame.seq = send_seq_[lk] + 1;
    if (box.size() <= kMaxBatch) {
      frame.messages = std::move(box);
      box.clear();  // moved-from; make the outbox explicitly empty again
    } else {
      const auto split = box.begin() + static_cast<std::ptrdiff_t>(kMaxBatch);
      frame.messages.assign(box.begin(), split);
      box.erase(box.begin(), split);
    }
    const std::uint64_t n = frame.messages.size();

    int attempt = 0;
    std::uint32_t backoff_us = retry_.backoff_init_us;
    bool delivered = false;
    while (!delivered) {
      switch (transport_.try_send(frame)) {
        case net::SendStatus::kDelivered:
          // The batch is counted exactly once, on the delivery that
          // advanced the sequence — not per attempt, and not again when
          // a backpressured batch is re-queued and flushed later.
          send_seq_[lk] = frame.seq;
          if (obs::enabled()) [[unlikely]] {
            const obs::ShardMetrics& m = obs::ShardMetrics::get();
            m.msgs_sent.add(n);
            m.flushes.add();
            m.bytes_moved.add(n * sizeof(Message));
          }
          delivered = true;
          break;
        case net::SendStatus::kBackpressure:
          // Receiver full: put the chunk back at the FRONT of the box
          // (same seq next time, and it stays ahead of anything the
          // producer appends meanwhile) and let the caller run its
          // drain loop.
          if (box.empty()) {
            box = std::move(frame.messages);
          } else {
            box.insert(box.begin(), frame.messages.begin(),
                       frame.messages.end());
          }
          {
            util::SpinLockHolder hold(&stats_mutex_);
            ++backpressure_;
          }
          return false;
        case net::SendStatus::kTransient:
          {
            util::SpinLockHolder hold(&stats_mutex_);
            ++retries_;
          }
          if (obs::enabled()) [[unlikely]] {
            obs::NetMetrics::get().retries.add();
          }
          if (++attempt >= retry_.max_attempts) {
            throw net::TransportError(
                net::ErrorKind::kRetriesExhausted,
                "send retry budget exhausted on shard link");
          }
          std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
          backoff_us = std::min(backoff_us * 2, retry_.backoff_max_us);
          break;
      }
    }
  }
  return true;
}

bool MessageAggregator::flush_all(int src) {
  bool all = true;
  for (int dst = 0; dst < num_shards_; ++dst) {
    if (dst == src) continue;
    all = try_flush(src, dst) && all;
  }
  return all;
}

bool MessageAggregator::try_pop(int dst, Batch& out) {
  net::Frame frame;
  while (transport_.try_recv(dst, frame)) {
    const std::size_t lk = link(frame.src, dst);
    const std::uint64_t expect = recv_seq_[lk] + 1;
    if (frame.seq < expect) {
      // A retry of a frame that already arrived (drop absorbed on a
      // later attempt, or an injected duplicate): discard the echo.
      {
        util::SpinLockHolder hold(&stats_mutex_);
        ++dups_dropped_;
      }
      if (obs::enabled()) [[unlikely]] {
        obs::NetMetrics::get().dups_dropped.add();
      }
      continue;
    }
    if (frame.seq > expect) {
      throw net::TransportError(net::ErrorKind::kLostFrame,
                                "sequence gap on shard link");
    }
    recv_seq_[lk] = expect;
    out = std::move(frame.messages);
    return true;
  }
  return false;
}

bool MessageAggregator::outboxes_empty(int src) const noexcept {
  const std::size_t row =
      static_cast<std::size_t>(src) * static_cast<std::size_t>(num_shards_);
  for (int dst = 0; dst < num_shards_; ++dst) {
    if (!outboxes_[row + static_cast<std::size_t>(dst)].empty()) return false;
  }
  return true;
}

net::TransportStats MessageAggregator::stats() const {
  net::TransportStats s = transport_.stats();
  util::SpinLockHolder hold(&stats_mutex_);
  s.retries += retries_;
  s.dups_dropped += dups_dropped_;
  s.backpressure += backpressure_;
  return s;
}

}  // namespace aecnc::shard
