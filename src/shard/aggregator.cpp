#include "shard/aggregator.hpp"

#include <utility>

#include "obs/catalog.hpp"

namespace aecnc::shard {

MessageAggregator::MessageAggregator(int num_shards,
                                     std::size_t flush_messages,
                                     std::size_t inbox_capacity)
    : num_shards_(num_shards),
      flush_messages_(flush_messages == 0 ? 1 : flush_messages),
      inbox_capacity_(inbox_capacity == 0 ? 1 : inbox_capacity),
      outboxes_(static_cast<std::size_t>(num_shards) *
                static_cast<std::size_t>(num_shards)),
      inboxes_(static_cast<std::size_t>(num_shards)) {}

bool MessageAggregator::append(int src, int dst, const Message& msg) {
  Batch& box = outbox(src, dst);
  box.push_back(msg);
  return box.size() >= flush_messages_;
}

bool MessageAggregator::try_flush(int src, int dst) {
  Batch& box = outbox(src, dst);
  if (box.empty()) return true;
  const std::uint64_t n = box.size();
  Inbox& in = inboxes_[static_cast<std::size_t>(dst)];
  {
    util::MutexLock lock(&in.mutex_);
    if (in.queue_.size() >= inbox_capacity_) return false;
    in.queue_.push_back(std::move(box));
    in.messages_in_ += n;
    in.batches_in_ += 1;
  }
  box.clear();  // moved-from; make the outbox explicitly empty again
  if (obs::enabled()) [[unlikely]] {
    const obs::ShardMetrics& m = obs::ShardMetrics::get();
    m.msgs_sent.add(n);
    m.flushes.add();
    m.bytes_moved.add(n * sizeof(Message));
  }
  return true;
}

bool MessageAggregator::flush_all(int src) {
  bool all = true;
  for (int dst = 0; dst < num_shards_; ++dst) {
    if (dst == src) continue;
    all = try_flush(src, dst) && all;
  }
  return all;
}

bool MessageAggregator::try_pop(int dst, Batch& out) {
  Inbox& in = inboxes_[static_cast<std::size_t>(dst)];
  util::MutexLock lock(&in.mutex_);
  if (in.queue_.empty()) return false;
  out = std::move(in.queue_.front());
  in.queue_.pop_front();
  return true;
}

bool MessageAggregator::outboxes_empty(int src) const noexcept {
  const std::size_t row =
      static_cast<std::size_t>(src) * static_cast<std::size_t>(num_shards_);
  for (int dst = 0; dst < num_shards_; ++dst) {
    if (!outboxes_[row + static_cast<std::size_t>(dst)].empty()) return false;
  }
  return true;
}

AggregatorStats MessageAggregator::stats() const {
  AggregatorStats s;
  for (const Inbox& in : inboxes_) {
    util::MutexLock lock(&in.mutex_);
    s.messages += in.messages_in_;
    s.flushes += in.batches_in_;
  }
  s.bytes = s.messages * sizeof(Message);
  return s;
}

}  // namespace aecnc::shard
