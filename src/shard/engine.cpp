#include "shard/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "bitmap/bitmap.hpp"
#include "intersect/counters.hpp"
#include "intersect/dispatch.hpp"
#include "intersect/merge.hpp"
#include "net/inproc.hpp"
#include "obs/catalog.hpp"

namespace aecnc::shard {

/// Per-run, per-shard working set. Owned by run()'s stack; each worker
/// touches only its own entry, so the states need no locking.
struct ShardedEngine::ShardState {
  core::CountArray cnt;  // owned slot range, indexed by slot - slot_base

  /// A forward edge whose other endpoint lives elsewhere: after replies
  /// are folded, the final count ships to `mirror_shard` as a kMirror
  /// targeting global slot `mirror_slot` = e(v, u).
  struct CrossEdge {
    EdgeId local;
    EdgeId mirror_slot;
    int mirror_shard;
  };
  std::vector<CrossEdge> cross;

  bitmap::Bitmap bitmap;  // kBmp local kernel only; empty otherwise
  MessageAggregator::Batch batch;  // reused pop buffer
  std::uint64_t backpressure_waits = 0;
};

ShardedEngine::ShardedEngine(const graph::Csr& g, const ShardConfig& config)
    : config_(config),
      partition_(g, config.num_shards),
      owned_transport_(std::make_unique<net::InprocTransport>(
          partition_.num_shards(), config.inbox_capacity)),
      transport_(owned_transport_.get()),
      aggregator_(*transport_, config.flush_messages) {}

ShardedEngine::ShardedEngine(const graph::Csr& g, const ShardConfig& config,
                             net::Transport& transport)
    : config_(config),
      partition_(g, config.num_shards),
      owned_transport_(nullptr),
      transport_(&transport),
      aggregator_(*transport_, config.flush_messages) {
  if (transport.num_endpoints() != partition_.num_shards()) {
    throw std::invalid_argument(
        "transport endpoint count does not match shard count");
  }
}

void ShardedEngine::apply(int s, const Message& msg, ShardState& st) {
  const ShardBlock& blk = partition_.shard(s);
  switch (msg.type) {
    case MessageType::kCountRequest: {
      // Serve |N_s(u) ∩ N_s(v)| from the column store. Replies are
      // append-only sends: apply() can run inside a backpressure drain,
      // where attempting a nested flush could recurse unboundedly.
      intersect::MpsConfig mps = config_.mps;
      mps.prefetch = config_.prefetch;
      const CnCount partial = intersect::mps_count(
          blk.col_neighbors(msg.u), blk.col_neighbors(msg.v), mps);
      if (partial > 0) {
        send(s, partition_.owner(msg.u),
             Message{MessageType::kCountReply, msg.u, msg.v, msg.slot,
                     partial},
             st, /*may_flush=*/false);
      }
      break;
    }
    case MessageType::kCountReply:
      // Commutative fold into the requester's own forward slot; the
      // local partial was stored before the request went out, so any
      // arrival order is correct.
      st.cnt[msg.slot - blk.slot_base] +=
          static_cast<CnCount>(msg.value);
      break;
    case MessageType::kMirror:
      // Mirror slots of cross edges are backward slots no other write
      // targets, so a plain store at any time is race-free.
      st.cnt[msg.slot - blk.slot_base] = static_cast<CnCount>(msg.value);
      break;
  }
}

void ShardedEngine::drain_and_process(int s, ShardState& st) {
  if (!aggregator_.try_pop(s, st.batch)) return;
  for (const Message& msg : st.batch) apply(s, msg, st);
  st.batch.clear();
}

void ShardedEngine::send(int s, int dst, const Message& msg, ShardState& st,
                         bool may_flush) {
  if (!aggregator_.append(s, dst, msg) || !may_flush) return;
  while (!aggregator_.try_flush(s, dst)) {
    // Destination inbox is full: make progress on our own inbox so the
    // peer blocked on *us* (or on anyone) eventually drains us too.
    ++st.backpressure_waits;
    drain_and_process(s, st);
    std::this_thread::yield();
  }
}

void ShardedEngine::flush_all_blocking(int s, ShardState& st) {
  while (!aggregator_.flush_all(s)) {
    ++st.backpressure_waits;
    drain_and_process(s, st);
    std::this_thread::yield();
  }
}

void ShardedEngine::phase_wait(int s, ShardState& st) {
  flush_all_blocking(s, st);
  aggregator_.finish_phase(s);
  while (!aggregator_.phase_done(s)) {
    // Drain while waiting: a peer may be blocked flushing into us, and
    // sleeping here would deadlock the phase wait against backpressure.
    drain_and_process(s, st);
    std::this_thread::yield();
  }
}

void ShardedEngine::shard_main(int s, ShardState& st) {
  obs::ScopedTimer timer(obs::ShardMetrics::get().run_ns);
  const ShardBlock& blk = partition_.shard(s);
  const int p = partition_.num_shards();
  const std::vector<VertexId>& bounds = partition_.boundaries();
  intersect::MpsConfig mps = config_.mps;
  mps.prefetch = config_.prefetch;
  intersect::NullCounter null;

  st.cnt.assign(static_cast<std::size_t>(blk.num_owned_slots()), 0);
  st.cross.clear();
  if (config_.algorithm == core::Algorithm::kBmp &&
      st.bitmap.cardinality() < partition_.num_vertices()) {
    st.bitmap = bitmap::Bitmap(partition_.num_vertices());
  }

  // Phase A: full local intersections for shard-internal edges;
  // own-column partials plus CountRequest fan-out for cross edges.
  for (VertexId u = blk.vbegin; u < blk.vend; ++u) {
    const auto nbrs = blk.neighbors(u);
    const EdgeId row_base = blk.row_offsets[u - blk.vbegin];
    bool built = false;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId v = nbrs[k];
      if (u >= v) continue;
      const EdgeId local = row_base + static_cast<EdgeId>(k);
      if (v < blk.vend) {
        // Both endpoints owned: the full adjacencies are local, run the
        // configured kernel exactly as the sequential drivers do.
        CnCount c = 0;
        switch (config_.algorithm) {
          case core::Algorithm::kMergeBaseline:
            c = intersect::merge_count(nbrs, blk.neighbors(v), null);
            break;
          case core::Algorithm::kMps:
            c = intersect::mps_count(nbrs, blk.neighbors(v), mps);
            break;
          case core::Algorithm::kBmp:
            if (!built) {
              st.bitmap.set_all(nbrs);
              built = true;
            }
            c = bitmap::bitmap_intersect_count(st.bitmap, blk.neighbors(v),
                                               null, config_.prefetch);
            break;
        }
        st.cnt[local] = c;
        st.cnt[blk.rev[local] - blk.slot_base] = c;
      } else {
        // Cross edge: store our column's partial first (replies fold
        // into it), then fan a request out to every shard that holds a
        // non-empty column of N(u).
        st.cnt[local] = intersect::mps_count(blk.col_neighbors(u),
                                             blk.col_neighbors(v), mps);
        const int mirror_shard = partition_.owner(v);
        st.cross.push_back({local, blk.rev[local], mirror_shard});
        const Message req{MessageType::kCountRequest, u, v,
                          blk.slot_base + local, 0};
        auto it = nbrs.begin();
        for (int j = 0; j < p && it != nbrs.end(); ++j) {
          const auto next = std::lower_bound(it, nbrs.end(), bounds[j + 1]);
          if (j != s && next != it) send(s, j, req, st, /*may_flush=*/true);
          it = next;
        }
      }
    }
    if (built) st.bitmap.clear_all(nbrs);
  }
  phase_wait(s, st);

  // Phase B: every request addressed to us was delivered before the
  // phase wait passed, so one drain-to-empty serves them all.
  // Opportunistic flushes keep reply batches flowing at the configured
  // size.
  while (aggregator_.try_pop(s, st.batch)) {
    for (const Message& msg : st.batch) apply(s, msg, st);
    st.batch.clear();
    (void)aggregator_.flush_all(s);
  }
  phase_wait(s, st);

  // Phase C: all replies are in; fold any still queued, then ship each
  // cross edge's final count to its mirror slot's owner.
  while (aggregator_.try_pop(s, st.batch)) {
    for (const Message& msg : st.batch) apply(s, msg, st);
    st.batch.clear();
  }
  for (const ShardState::CrossEdge& ce : st.cross) {
    send(s, ce.mirror_shard,
         Message{MessageType::kMirror, 0, 0, ce.mirror_slot,
                 st.cnt[ce.local]},
         st, /*may_flush=*/true);
  }
  phase_wait(s, st);

  // Phase D: apply the mirrors; nothing sends after this point.
  while (aggregator_.try_pop(s, st.batch)) {
    for (const Message& msg : st.batch) apply(s, msg, st);
    st.batch.clear();
  }
}

namespace {

/// Choose the error to surface from a failed run: prefer the root cause
/// (any error that is not the kAborted echo of another shard's poison).
std::exception_ptr pick_root_error(
    const std::vector<std::exception_ptr>& errors) {
  std::exception_ptr first;
  for (const std::exception_ptr& err : errors) {
    if (!err) continue;
    if (!first) first = err;
    try {
      std::rethrow_exception(err);
    } catch (const net::TransportError& e) {
      if (e.kind() != net::ErrorKind::kAborted) return err;
    } catch (...) {
      return err;  // non-transport failures are root causes
    }
  }
  return first;
}

}  // namespace

core::CountArray ShardedEngine::run() {
  util::MutexLock lock(&run_mutex_);
  const obs::ShardMetrics& metrics = obs::ShardMetrics::get();
  if (obs::enabled()) [[unlikely]] metrics.runs.add();

  const int p = partition_.num_shards();
  std::vector<ShardState> states(static_cast<std::size_t>(p));
  // One slot per shard, each written only by that shard's thread.
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(p));
  auto guarded_main = [this, &states, &errors](int s) {
    try {
      shard_main(s, states[static_cast<std::size_t>(s)]);
    } catch (const std::exception& e) {
      errors[static_cast<std::size_t>(s)] = std::current_exception();
      // Wake every peer out of its phase/backpressure polling with a
      // typed error instead of leaving it waiting on us forever.
      transport_->poison(net::ErrorKind::kAborted, e.what());
    } catch (...) {
      errors[static_cast<std::size_t>(s)] = std::current_exception();
      transport_->poison(net::ErrorKind::kAborted, "shard worker failed");
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(p) - 1);
  for (int s = 1; s < p; ++s) {
    workers.emplace_back([&guarded_main, s] { guarded_main(s); });
  }
  guarded_main(0);
  for (std::thread& t : workers) t.join();

  if (std::exception_ptr err = pick_root_error(errors)) {
    std::rethrow_exception(err);
  }

  if (obs::enabled()) [[unlikely]] {
    std::uint64_t waits = 0;
    for (const ShardState& st : states) waits += st.backpressure_waits;
    metrics.backpressure_waits.add(waits);
  }

  if (p == 1) return std::move(states[0].cnt);
  core::CountArray cnt(
      static_cast<std::size_t>(partition_.num_directed_edges()), 0);
  for (int s = 0; s < p; ++s) {
    const ShardBlock& blk = partition_.shard(s);
    std::copy(states[static_cast<std::size_t>(s)].cnt.begin(),
              states[static_cast<std::size_t>(s)].cnt.end(),
              cnt.begin() + static_cast<std::ptrdiff_t>(blk.slot_base));
  }
  return cnt;
}

core::CountArray ShardedEngine::run_shard(int s) {
  util::MutexLock lock(&run_mutex_);
  if (obs::enabled()) [[unlikely]] obs::ShardMetrics::get().runs.add();
  ShardState st;
  shard_main(s, st);
  return std::move(st.cnt);
}

core::CountArray count_sharded(const graph::Csr& g, const ShardConfig& config) {
  ShardedEngine engine(g, config);
  return engine.run();
}

}  // namespace aecnc::shard
