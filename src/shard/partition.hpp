// 2D partition of a CSR into a p×p grid of blocks (docs/sharding.md).
//
// Vertices are split into p contiguous ranges V_0..V_{p-1}, balanced by
// directed-slot count (Tom & Karypis, arXiv 1907.09575: a 2D split
// bounds both per-shard memory and the number of peers a wedge
// computation can touch). Shard s owns the vertex range V_s and the
// directed slot range of those rows; block (s, j) of the logical grid is
// the adjacency of V_s restricted to destination column V_j.
//
// Because adjacency lists are sorted and vertex ranges are contiguous,
// every block is a contiguous subrange of a row — the partitioner
// materializes per-shard copies (a row store, a column store, and a
// mirror-slot map) so the engine's shards touch only their own arrays.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "util/aligned.hpp"
#include "util/types.hpp"

namespace aecnc::shard {

/// Everything shard s owns. All arrays are private copies: the engine's
/// strict no-shared-dereference discipline starts here.
struct ShardBlock {
  VertexId vbegin = 0;   // owned vertex range [vbegin, vend)
  VertexId vend = 0;
  EdgeId slot_base = 0;  // owned directed-slot range [slot_base, slot_end)
  EdgeId slot_end = 0;

  /// Row store: the full sorted adjacency of every owned vertex.
  /// row_offsets is rebased so owned vertex u lives at u - vbegin.
  std::vector<EdgeId> row_offsets;       // (vend - vbegin) + 1
  util::AlignedVector<VertexId> row_dst;  // slot_end - slot_base

  /// Column store: N(x) ∩ V_s for EVERY global vertex x — block (j, s)
  /// for all j, which is what serving cross-shard count requests needs.
  /// Left empty at p == 1 (no cross-shard work exists).
  std::vector<EdgeId> col_offsets;        // |V| + 1, or empty
  util::AlignedVector<VertexId> col_dst;

  /// Mirror map: global slot e(v, u) for every owned slot e(u, v) —
  /// the owner map for edges that lets a mirror message carry its
  /// destination slot instead of a (v, u) pair to re-search.
  util::AlignedVector<EdgeId> rev;        // slot_end - slot_base

  [[nodiscard]] VertexId num_owned() const noexcept { return vend - vbegin; }
  [[nodiscard]] EdgeId num_owned_slots() const noexcept {
    return slot_end - slot_base;
  }

  /// Full adjacency of an owned vertex u (vbegin <= u < vend).
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId u) const noexcept {
    const VertexId local = u - vbegin;
    return {row_dst.data() + row_offsets[local],
            row_dst.data() + row_offsets[local + 1]};
  }

  /// N(x) ∩ V_s for any global vertex x. Only valid when p > 1.
  [[nodiscard]] std::span<const VertexId> col_neighbors(
      VertexId x) const noexcept {
    return {col_dst.data() + col_offsets[x],
            col_dst.data() + col_offsets[x + 1]};
  }
};

class Partition2D {
 public:
  /// Split `g` into `num_shards` blocks. num_shards is clamped to
  /// [1, max(1, |V|)]; the split is deterministic in (g, num_shards).
  Partition2D(const graph::Csr& g, int num_shards);

  [[nodiscard]] int num_shards() const noexcept {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return num_vertices_;
  }
  [[nodiscard]] EdgeId num_directed_edges() const noexcept {
    return num_directed_edges_;
  }

  /// The shard owning vertex v.
  [[nodiscard]] int owner(VertexId v) const noexcept;

  [[nodiscard]] const ShardBlock& shard(int s) const noexcept {
    return shards_[static_cast<std::size_t>(s)];
  }

  /// Vertex range boundaries: shard s owns [boundaries()[s],
  /// boundaries()[s+1]). Size num_shards() + 1.
  [[nodiscard]] const std::vector<VertexId>& boundaries() const noexcept {
    return boundaries_;
  }

  /// Rebuild the original CSR from the per-shard copies (column stores
  /// when p > 1, the row store at p == 1). Test hook for the
  /// partition → reassemble round-trip property.
  [[nodiscard]] graph::Csr reassemble() const;

 private:
  VertexId num_vertices_ = 0;
  EdgeId num_directed_edges_ = 0;
  std::vector<VertexId> boundaries_;  // num_shards + 1
  std::vector<ShardBlock> shards_;
};

}  // namespace aecnc::shard
