// Buffered message aggregation between shards (docs/sharding.md).
//
// In the spirit of Grappa's RDMAAggregator and Sanders & Uhl's buffered
// exchanges (arXiv 2302.11443): fine-grained per-edge messages are
// appended to per-(src, dst) outboxes — thread-confined to the sending
// shard, so appends are lock-free — and move between shards only as
// whole batches, pushed into the destination's bounded inbox under a
// short leaf lock. The inbox bound is the backpressure signal: a full
// inbox makes try_flush fail and the engine's sender drains its own
// inbox while it waits (engine.cpp), which is what keeps the protocol
// deadlock-free without unbounded buffering.
//
// This queue layer is the transport-swap seam: replacing Batch handoff
// with a socket/RDMA write leaves every caller unchanged.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "shard/message.hpp"
#include "util/annotations.hpp"

namespace aecnc::shard {

/// Cumulative transport counters, independent of the obs layer so
/// benches can report bytes-moved with metrics compiled out.
struct AggregatorStats {
  std::uint64_t messages = 0;  // messages delivered into inboxes
  std::uint64_t flushes = 0;   // batches moved
  std::uint64_t bytes = 0;     // messages * sizeof(Message)
};

class MessageAggregator {
 public:
  using Batch = std::vector<Message>;

  /// `flush_messages`: outbox size at which append() asks the caller to
  /// flush. `inbox_capacity`: max pending batches per inbox before
  /// try_flush reports backpressure.
  MessageAggregator(int num_shards, std::size_t flush_messages,
                    std::size_t inbox_capacity);

  MessageAggregator(const MessageAggregator&) = delete;
  MessageAggregator& operator=(const MessageAggregator&) = delete;

  [[nodiscard]] int num_shards() const noexcept { return num_shards_; }
  [[nodiscard]] std::size_t flush_messages() const noexcept {
    return flush_messages_;
  }

  /// Append one message to the (src, dst) outbox. Thread-confined: only
  /// shard src's thread may call this. Returns true when the outbox
  /// reached the flush threshold — the caller decides when to flush so
  /// it can run its backpressure drain loop at a safe depth.
  bool append(int src, int dst, const Message& msg);

  /// Move the (src, dst) outbox into dst's inbox as one batch. Returns
  /// false (leaving the outbox intact) when the inbox is at capacity;
  /// true when the outbox was empty or the batch was delivered.
  [[nodiscard]] bool try_flush(int src, int dst);

  /// try_flush toward every destination. Returns true when every outbox
  /// of src is now empty.
  [[nodiscard]] bool flush_all(int src);

  /// Pop one pending batch from dst's inbox. Only shard dst's thread
  /// consumes its inbox, but producers push concurrently.
  [[nodiscard]] bool try_pop(int dst, Batch& out);

  /// True when every outbox of src has been flushed.
  [[nodiscard]] bool outboxes_empty(int src) const noexcept;

  /// Snapshot of the cumulative transport counters (sums the per-inbox
  /// tallies under their leaf locks).
  [[nodiscard]] AggregatorStats stats() const;

 private:
  /// One bounded mailbox per destination shard. The mutex is innermost
  /// by construction: nothing is acquired while holding it.
  struct Inbox {
    // aecnc: lock-leaf(guards only this deque and its tallies; no other
    // lock is ever taken under it)
    mutable util::Mutex mutex_;
    std::deque<Batch> queue_ AECNC_GUARDED_BY(mutex_);
    std::uint64_t messages_in_ AECNC_GUARDED_BY(mutex_) = 0;
    std::uint64_t batches_in_ AECNC_GUARDED_BY(mutex_) = 0;
  };

  [[nodiscard]] Batch& outbox(int src, int dst) noexcept {
    return outboxes_[static_cast<std::size_t>(src) *
                         static_cast<std::size_t>(num_shards_) +
                     static_cast<std::size_t>(dst)];
  }

  const int num_shards_;
  const std::size_t flush_messages_;
  const std::size_t inbox_capacity_;
  std::vector<Batch> outboxes_;        // p×p, row-major by src
  std::vector<Inbox> inboxes_;         // one per destination shard
};

}  // namespace aecnc::shard
