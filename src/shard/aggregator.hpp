// Buffered message aggregation between shards (docs/sharding.md).
//
// In the spirit of Grappa's RDMAAggregator and Sanders & Uhl's buffered
// exchanges (arXiv 2302.11443): fine-grained per-edge messages are
// appended to per-(src, dst) outboxes — thread-confined to the sending
// shard, so appends are lock-free — and move between shards only as
// whole Frames through a net::Transport. The transport's backpressure
// signal is preserved: a refused send makes try_flush fail and the
// engine's sender drains its own inbox while it waits (engine.cpp),
// which is what keeps the protocol deadlock-free without unbounded
// buffering.
//
// The aggregator is also the reliability layer over the transport: it
// stamps a per-(src, dst) sequence number on every delivered frame,
// retries transient send faults with bounded exponential backoff, and
// on receive discards duplicate frames (seq below expected) and turns
// sequence gaps into a typed kLostFrame error — so a FaultyTransport's
// absorbed faults never change the counted result, and unabsorbable
// ones fail loudly.
#pragma once

#include <cstdint>
#include <vector>

#include "net/transport.hpp"
#include "shard/message.hpp"
#include "util/annotations.hpp"

namespace aecnc::shard {

class MessageAggregator {
 public:
  using Batch = std::vector<Message>;

  /// `flush_messages`: outbox size at which append() asks the caller to
  /// flush. Shard count and inbox bounds come from the transport.
  MessageAggregator(net::Transport& transport, std::size_t flush_messages,
                    const net::RetryPolicy& retry = {});

  MessageAggregator(const MessageAggregator&) = delete;
  MessageAggregator& operator=(const MessageAggregator&) = delete;

  [[nodiscard]] int num_shards() const noexcept { return num_shards_; }
  [[nodiscard]] std::size_t flush_messages() const noexcept {
    return flush_messages_;
  }

  /// Append one message to the (src, dst) outbox. Thread-confined: only
  /// shard src's thread may call this. Returns true when the outbox
  /// reached the flush threshold — the caller decides when to flush so
  /// it can run its backpressure drain loop at a safe depth.
  bool append(int src, int dst, const Message& msg);

  /// Send the (src, dst) outbox through the transport as one sequenced
  /// frame. Returns false (leaving the outbox intact) on backpressure;
  /// true when the outbox was empty or the frame was delivered — each
  /// delivered batch is counted exactly once, however many transient
  /// retries or backpressure round-trips it took. Throws
  /// TransportError(kRetriesExhausted) when transient faults outlast
  /// the retry budget.
  [[nodiscard]] bool try_flush(int src, int dst);

  /// try_flush toward every destination. Returns true when every outbox
  /// of src is now empty.
  [[nodiscard]] bool flush_all(int src);

  /// Pop the next in-sequence batch addressed to dst. Only shard dst's
  /// thread consumes its inbox. Duplicate frames are discarded here;
  /// a sequence gap throws TransportError(kLostFrame).
  [[nodiscard]] bool try_pop(int dst, Batch& out);

  /// True when every outbox of src has been flushed.
  [[nodiscard]] bool outboxes_empty(int src) const noexcept;

  /// Announce shard src sends nothing more this phase (cheap,
  /// nonblocking). Pair with phase_done() polling.
  void finish_phase(int src) { transport_.finish_phase(src); }

  /// True once all shards finished the phase and every accepted frame
  /// is delivered. Callers drain their inbox between polls.
  [[nodiscard]] bool phase_done(int s) { return transport_.phase_done(s); }

  /// Snapshot of the cumulative transport counters: the transport's own
  /// tallies plus the aggregator-side retry/dedup/backpressure counts.
  [[nodiscard]] net::TransportStats stats() const;

 private:
  [[nodiscard]] Batch& outbox(int src, int dst) noexcept {
    return outboxes_[link(src, dst)];
  }
  [[nodiscard]] std::size_t link(int src, int dst) const noexcept {
    return static_cast<std::size_t>(src) *
               static_cast<std::size_t>(num_shards_) +
           static_cast<std::size_t>(dst);
  }

  net::Transport& transport_;
  const int num_shards_;
  const std::size_t flush_messages_;
  const net::RetryPolicy retry_;
  std::vector<Batch> outboxes_;  // p×p, row-major by src
  // Per-link sequence numbers. send_seq_ row s is thread-confined to
  // shard s (try_flush); recv_seq_ column d to shard d (try_pop).
  std::vector<std::uint64_t> send_seq_;
  std::vector<std::uint64_t> recv_seq_;

  // aecnc: lock-leaf(guards only the aggregator-side counters below;
  // no other lock is ever taken under it)
  mutable util::SpinLock stats_mutex_;
  std::uint64_t retries_ AECNC_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t dups_dropped_ AECNC_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t backpressure_ AECNC_GUARDED_BY(stats_mutex_) = 0;
};

}  // namespace aecnc::shard
