// The sharded all-edge counting driver (docs/sharding.md).
//
// p shard workers (shard 0 runs on the calling thread) each count their
// owned forward edges over a Partition2D, exchanging the cross-shard
// parts of each intersection as aggregated messages: the count of an
// edge (u, v) decomposes exactly as Σ_j |N_j(u) ∩ N_j(v)| over the
// destination columns, so the sharded result is bit-identical to the
// sequential oracle for every kernel and shard count.
//
// The run is a four-phase BSP schedule with drain-while-waiting barriers
// (a shard blocked on a full inbox or at a phase wait keeps applying its
// own inbox, which makes backpressure deadlock-free):
//   A: local counts + own-column partials, CountRequests out
//   B: serve CountRequests from the column store, CountReplies out
//   C: fold replies, Mirror messages out for cross-owner mirror slots
//   D: apply mirrors
//
// All message movement goes through a net::Transport behind the
// MessageAggregator: by default an owned InprocTransport (the p=1
// zero-cost path), or an externally provided transport — sockets for
// per-shard processes (run_shard), FaultyTransport for the
// fault-injection harness.
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "core/options.hpp"
#include "net/transport.hpp"
#include "shard/aggregator.hpp"
#include "shard/partition.hpp"
#include "util/annotations.hpp"

namespace aecnc::shard {

struct ShardConfig {
  /// Number of shard workers p (the partition is p×p). Clamped to >= 1.
  int num_shards = 1;
  /// Outbox batch size at which a send triggers a flush attempt.
  std::size_t flush_messages = 1024;
  /// Pending-batch bound per inbox (the backpressure knob).
  std::size_t inbox_capacity = 64;
  /// Kernel for whole-adjacency local intersections; cross-shard
  /// partials always use the skew-aware MPS dispatch.
  core::Algorithm algorithm = core::Algorithm::kMps;
  intersect::MpsConfig mps{};
  bool prefetch = true;
};

class ShardedEngine {
 public:
  /// Builds the partition up front; run() is then repeatable (the bench
  /// times run() alone, like the other drivers). Messages move over an
  /// owned in-process transport.
  ShardedEngine(const graph::Csr& g, const ShardConfig& config);

  /// Same, but over a caller-provided transport whose endpoint count
  /// must match the partition's shard count. The engine poisons the
  /// transport when a shard fails, so every endpoint unwinds with a
  /// typed error instead of waiting on a peer that never comes.
  ShardedEngine(const graph::Csr& g, const ShardConfig& config,
                net::Transport& transport);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// One full sharded count: spawns p-1 workers, runs shard 0 inline,
  /// returns counts in global directed-slot order. Thread-safe;
  /// concurrent calls serialize on run_mutex_. If any shard throws, the
  /// transport is poisoned, every worker unwinds, and the first
  /// root-cause error is rethrown — never a hang, never partial counts.
  [[nodiscard]] core::CountArray run();

  /// Run exactly one shard on the calling thread — the per-process
  /// worker entry (src/net/process.cpp), where each of the p processes
  /// owns one endpoint of a socket mesh. Returns the shard's owned slot
  /// range (slot_base-relative).
  [[nodiscard]] core::CountArray run_shard(int s);

  [[nodiscard]] const Partition2D& partition() const noexcept {
    return partition_;
  }
  [[nodiscard]] const ShardConfig& config() const noexcept { return config_; }

  /// Cumulative transport traffic across all run() calls so far.
  [[nodiscard]] net::TransportStats transport_stats() const {
    return aggregator_.stats();
  }

 private:
  struct ShardState;

  void shard_main(int s, ShardState& st);
  void drain_and_process(int s, ShardState& st);
  void send(int s, int dst, const Message& msg, ShardState& st,
            bool may_flush);
  void flush_all_blocking(int s, ShardState& st);
  /// End-of-phase wait: flush everything, announce the phase end, and
  /// poll completion while draining our own inbox.
  void phase_wait(int s, ShardState& st);

  void apply(int s, const Message& msg, ShardState& st);

  const ShardConfig config_;
  const Partition2D partition_;
  std::unique_ptr<net::Transport> owned_transport_;  // null when external
  net::Transport* transport_;
  MessageAggregator aggregator_;
  // Serializes run(): per-run shard state and the aggregator's outboxes
  // assume one driver at a time. Shard 0 executes on the calling thread
  // under this lock, so the transport/barrier leaf locks and the first
  // obs registration nest inside it.
  // aecnc: acquired-before(InprocTransport::Inbox::mutex_,
  //   net::PhaseBarrier::mutex_, TransportBase::poison_mutex_,
  //   SocketTransport::stats_mutex_, MessageAggregator::stats_mutex_,
  //   Registry::mutex_)
  util::Mutex run_mutex_;
};

/// Convenience one-shot: partition + run.
[[nodiscard]] core::CountArray count_sharded(const graph::Csr& g,
                                             const ShardConfig& config);

}  // namespace aecnc::shard
