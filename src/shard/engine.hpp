// The sharded all-edge counting driver (docs/sharding.md).
//
// p shard workers (shard 0 runs on the calling thread) each count their
// owned forward edges over a Partition2D, exchanging the cross-shard
// parts of each intersection as aggregated messages: the count of an
// edge (u, v) decomposes exactly as Σ_j |N_j(u) ∩ N_j(v)| over the
// destination columns, so the sharded result is bit-identical to the
// sequential oracle for every kernel and shard count.
//
// The run is a four-phase BSP schedule with drain-while-waiting barriers
// (a shard blocked on a full inbox or at a barrier keeps applying its
// own inbox, which makes backpressure deadlock-free):
//   A: local counts + own-column partials, CountRequests out
//   B: serve CountRequests from the column store, CountReplies out
//   C: fold replies, Mirror messages out for cross-owner mirror slots
//   D: apply mirrors
#pragma once

#include <cstdint>
#include <vector>

#include "core/options.hpp"
#include "shard/aggregator.hpp"
#include "shard/partition.hpp"
#include "util/annotations.hpp"

namespace aecnc::shard {

/// Reusable generation barrier for the BSP supersteps. arrive() returns
/// the generation the caller must wait for; waiters poll passed() so
/// they can keep draining their inbox between checks instead of
/// sleeping (blocking here could deadlock against a full inbox).
class PhaseBarrier {
 public:
  explicit PhaseBarrier(int parties) : parties_(parties) {}

  PhaseBarrier(const PhaseBarrier&) = delete;
  PhaseBarrier& operator=(const PhaseBarrier&) = delete;

  [[nodiscard]] std::uint64_t arrive() {
    util::MutexLock lock(&mutex_);
    const std::uint64_t target =
        generation_.load(std::memory_order_relaxed) + 1;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      generation_.store(target, std::memory_order_release);
    }
    return target;
  }

  [[nodiscard]] bool passed(std::uint64_t target) const noexcept {
    return generation_.load(std::memory_order_acquire) >= target;
  }

 private:
  const int parties_;
  // aecnc: lock-leaf(guards only the arrival count; the generation
  // publish is an atomic store made under it)
  util::Mutex mutex_;
  int waiting_ AECNC_GUARDED_BY(mutex_) = 0;
  // aecnc: atomic-ok(monotonic generation; the last arriver's release
  // store under mutex_ pairs with waiters' acquire loads in passed())
  std::atomic<std::uint64_t> generation_{0};
};

struct ShardConfig {
  /// Number of shard workers p (the partition is p×p). Clamped to >= 1.
  int num_shards = 1;
  /// Outbox batch size at which a send triggers a flush attempt.
  std::size_t flush_messages = 1024;
  /// Pending-batch bound per inbox (the backpressure knob).
  std::size_t inbox_capacity = 64;
  /// Kernel for whole-adjacency local intersections; cross-shard
  /// partials always use the skew-aware MPS dispatch.
  core::Algorithm algorithm = core::Algorithm::kMps;
  intersect::MpsConfig mps{};
  bool prefetch = true;
};

class ShardedEngine {
 public:
  /// Builds the partition up front; run() is then repeatable (the bench
  /// times run() alone, like the other drivers).
  ShardedEngine(const graph::Csr& g, const ShardConfig& config);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// One full sharded count: spawns p-1 workers, runs shard 0 inline,
  /// returns counts in global directed-slot order. Thread-safe;
  /// concurrent calls serialize on run_mutex_.
  [[nodiscard]] core::CountArray run();

  [[nodiscard]] const Partition2D& partition() const noexcept {
    return partition_;
  }
  [[nodiscard]] const ShardConfig& config() const noexcept { return config_; }

  /// Cumulative transport traffic across all run() calls so far.
  [[nodiscard]] AggregatorStats transport_stats() const {
    return aggregator_.stats();
  }

 private:
  struct ShardState;

  void shard_main(int s, ShardState& st);
  void drain_and_process(int s, ShardState& st);
  void send(int s, int dst, const Message& msg, ShardState& st,
            bool may_flush);
  void flush_all_blocking(int s, ShardState& st);
  void barrier_wait(int s, ShardState& st);
  void apply(int s, const Message& msg, ShardState& st);

  const ShardConfig config_;
  const Partition2D partition_;
  MessageAggregator aggregator_;
  PhaseBarrier barrier_;
  // Serializes run(): per-run shard state and the aggregator's outboxes
  // assume one driver at a time. Shard 0 executes on the calling thread
  // under this lock, so the queue/barrier leaf locks and the first obs
  // registration nest inside it.
  // aecnc: acquired-before(MessageAggregator::Inbox::mutex_,
  //   PhaseBarrier::mutex_, Registry::mutex_)
  util::Mutex run_mutex_;
};

/// Convenience one-shot: partition + run.
[[nodiscard]] core::CountArray count_sharded(const graph::Csr& g,
                                             const ShardConfig& config);

}  // namespace aecnc::shard
