// SCAN structural graph clustering (Xu et al., KDD'07 [27]) on top of
// the all-edge common neighbor counts — the paper's primary motivating
// consumer (§1, §2.1: pSCAN, SCAN++, SCAN-XP and index-based variants
// all spend most of their time computing exactly these counts).
//
// Definitions (closed neighborhoods Γ(u) = N(u) ∪ {u}):
//   similarity    σ(u,v) = |Γ(u) ∩ Γ(v)| / sqrt(|Γ(u)| |Γ(v)|)
//                        = (cnt[e(u,v)] + 2) / sqrt((d_u+1)(d_v+1))
//   ε-neighborhood N_ε(u) = {v ∈ N(u) : σ(u,v) >= ε} ∪ {u}
//   core           |N_ε(u)| >= μ
//   cluster        connected component of cores under σ >= ε edges,
//                  plus the non-core members of any core's N_ε
//   hub            unclustered vertex adjacent to >= 2 clusters
//   outlier        any other unclustered vertex
#pragma once

#include <cstdint>
#include <vector>

#include "core/options.hpp"
#include "graph/csr.hpp"

namespace aecnc::scan {

struct Params {
  double epsilon = 0.5;  // similarity threshold ε in (0, 1]
  std::uint32_t mu = 2;  // core threshold μ >= 2
};

enum class Role : std::uint8_t {
  kCore,
  kBorder,   // non-core cluster member
  kHub,      // unclustered, bridges >= 2 clusters
  kOutlier,  // unclustered, bridges < 2 clusters
};

struct Result {
  /// Cluster id per vertex; kUnclustered for hubs/outliers.
  static constexpr std::uint32_t kUnclustered = ~std::uint32_t{0};
  std::vector<std::uint32_t> cluster;
  std::vector<Role> role;
  std::uint32_t num_clusters = 0;

  [[nodiscard]] std::uint64_t count_role(Role r) const noexcept {
    std::uint64_t n = 0;
    for (const Role x : role) n += (x == r);
    return n;
  }
};

/// Structural similarity of the directed slot e (endpoints (u,v)).
[[nodiscard]] double similarity(const graph::Csr& g, VertexId u, VertexId v,
                                CnCount common);

/// Per-edge similarities for the whole graph from a count array.
[[nodiscard]] std::vector<double> edge_similarities(
    const graph::Csr& g, const core::CountArray& counts);

/// Run SCAN using precomputed counts.
[[nodiscard]] Result cluster_from_counts(const graph::Csr& g,
                                         const core::CountArray& counts,
                                         const Params& params);

/// Convenience: count (with `count_options`) then cluster.
[[nodiscard]] Result cluster(const graph::Csr& g, const Params& params,
                             const core::Options& count_options = {});

}  // namespace aecnc::scan
