#include "scan/scan.hpp"

#include <cmath>
#include <numeric>

#include "core/api.hpp"

namespace aecnc::scan {
namespace {

/// Union-find (path halving, union by size) over vertex ids.
class DisjointSets {
 public:
  explicit DisjointSets(VertexId n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), VertexId{0});
  }

  VertexId find(VertexId x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(VertexId a, VertexId b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<VertexId> parent_;
  std::vector<VertexId> size_;
};

}  // namespace

double similarity(const graph::Csr& g, VertexId u, VertexId v,
                  CnCount common) {
  // Closed neighborhoods add u and v themselves: for an edge (u, v) both
  // belong to both closed neighborhoods, hence the +2 / +1 terms.
  return (static_cast<double>(common) + 2.0) /
         std::sqrt((g.degree(u) + 1.0) * (g.degree(v) + 1.0));
}

std::vector<double> edge_similarities(const graph::Csr& g,
                                      const core::CountArray& counts) {
  std::vector<double> sigma(g.num_directed_edges(), 0.0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeId base = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      sigma[base + k] = similarity(g, u, nbrs[k], counts[base + k]);
    }
  }
  return sigma;
}

Result cluster_from_counts(const graph::Csr& g,
                           const core::CountArray& counts,
                           const Params& params) {
  const VertexId n = g.num_vertices();
  const auto sigma = edge_similarities(g, counts);

  // Step 1: cores. |N_ε(u)| counts u itself, so u is core when it has at
  // least μ-1 strong neighbors.
  std::vector<std::uint8_t> is_core(n, 0);
  for (VertexId u = 0; u < n; ++u) {
    std::uint32_t strong = 1;  // u ∈ N_ε(u)
    const EdgeId base = g.offset_begin(u);
    for (std::size_t k = 0; k < g.neighbors(u).size(); ++k) {
      strong += (sigma[base + k] >= params.epsilon);
    }
    is_core[u] = strong >= params.mu;
  }

  // Step 2: connect cores along strong edges (structural reachability).
  DisjointSets components(n);
  for (VertexId u = 0; u < n; ++u) {
    if (!is_core[u]) continue;
    const EdgeId base = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId v = nbrs[k];
      if (u < v && is_core[v] && sigma[base + k] >= params.epsilon) {
        components.unite(u, v);
      }
    }
  }

  // Step 3: dense cluster ids for core components.
  Result result;
  result.cluster.assign(n, Result::kUnclustered);
  result.role.assign(n, Role::kOutlier);
  std::vector<std::uint32_t> id_of_root(n, Result::kUnclustered);
  for (VertexId u = 0; u < n; ++u) {
    if (!is_core[u]) continue;
    const VertexId root = components.find(u);
    if (id_of_root[root] == Result::kUnclustered) {
      id_of_root[root] = result.num_clusters++;
    }
    result.cluster[u] = id_of_root[root];
    result.role[u] = Role::kCore;
  }

  // Step 4: borders — non-cores in some core's ε-neighborhood. (A vertex
  // reachable from several clusters is assigned the first; SCAN allows
  // either convention.)
  for (VertexId u = 0; u < n; ++u) {
    if (!is_core[u]) continue;
    const EdgeId base = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId v = nbrs[k];
      if (!is_core[v] && sigma[base + k] >= params.epsilon &&
          result.cluster[v] == Result::kUnclustered) {
        result.cluster[v] = result.cluster[u];
        result.role[v] = Role::kBorder;
      }
    }
  }

  // Step 5: hubs vs outliers among the unclustered.
  for (VertexId u = 0; u < n; ++u) {
    if (result.cluster[u] != Result::kUnclustered) continue;
    std::uint32_t first = Result::kUnclustered;
    bool hub = false;
    for (const VertexId v : g.neighbors(u)) {
      const std::uint32_t c = result.cluster[v];
      if (c == Result::kUnclustered) continue;
      if (first == Result::kUnclustered) {
        first = c;
      } else if (c != first) {
        hub = true;
        break;
      }
    }
    result.role[u] = hub ? Role::kHub : Role::kOutlier;
  }
  return result;
}

Result cluster(const graph::Csr& g, const Params& params,
               const core::Options& count_options) {
  return cluster_from_counts(g, core::count_common_neighbors(g, count_options),
                             params);
}

}  // namespace aecnc::scan
