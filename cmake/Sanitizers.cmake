# Per-target sanitizer wiring.
#
# AECNC_SANITIZE is a semicolon list of sanitizers, e.g.
#   -DAECNC_SANITIZE=address;undefined     (ASan + UBSan, the memory/UB job)
#   -DAECNC_SANITIZE=thread                (TSan, the race job)
#
# `thread` cannot be combined with `address`; the combination is rejected
# at configure time instead of failing deep inside the link.
#
# aecnc_enable_sanitizers(<target> <scope>) applies the compile and link
# flags to one target. The library applies it PUBLIC so every consumer
# (tests, tools, benches, examples) inherits a consistently instrumented
# build — mixing instrumented and uninstrumented TUs yields false
# negatives for ASan and false positives for TSan.

set(AECNC_SANITIZE "" CACHE STRING
    "Semicolon list of sanitizers to build with (address;undefined / thread)")

if(AECNC_SANITIZE)
  if("thread" IN_LIST AECNC_SANITIZE AND "address" IN_LIST AECNC_SANITIZE)
    message(FATAL_ERROR
      "AECNC_SANITIZE: 'thread' and 'address' are mutually exclusive")
  endif()
  foreach(_san IN LISTS AECNC_SANITIZE)
    if(NOT _san MATCHES "^(address|undefined|thread|leak)$")
      message(FATAL_ERROR "AECNC_SANITIZE: unknown sanitizer '${_san}'")
    endif()
  endforeach()
  string(REPLACE ";" "," _aecnc_san_csv "${AECNC_SANITIZE}")
endif()

function(aecnc_enable_sanitizers target scope)
  if(NOT AECNC_SANITIZE)
    return()
  endif()
  target_compile_options(${target} ${scope}
    -fsanitize=${_aecnc_san_csv}
    -fno-omit-frame-pointer)
  target_link_options(${target} ${scope} -fsanitize=${_aecnc_san_csv})
  if("undefined" IN_LIST AECNC_SANITIZE)
    # Make UBSan findings fatal so ctest actually fails on them.
    target_compile_options(${target} ${scope}
      -fno-sanitize-recover=undefined)
  endif()
endfunction()
