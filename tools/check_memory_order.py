#!/usr/bin/env python3
"""Atomics memory-order lint: every atomic access states its contract.

The concurrency-contract layer (src/util/annotations.hpp, docs/checking.md
§6) makes lock-based protocols machine-checked via Clang Thread Safety
Analysis — but lock-free atomics are invisible to that analysis, so this
lint enforces the written rules for them instead:

  1. No defaulted seq_cst operations: every load/store/RMW on an atomic
     names an explicit std::memory_order. A bare `.load()` usually means
     "I didn't think about ordering", and when it *is* deliberate the
     explicit argument documents it at zero runtime cost.
  2. No relaxed loads guarding data reads: `if`/`while` conditions on a
     `memory_order_relaxed` load are the classic unsynchronized-flag bug
     (the guarded data may not be visible yet). Acquire the flag, or
     waiver the site with the reason the subsequent reads are safe.
  3. No bare atomic members outside the annotated wrappers: every
     `std::atomic` declared outside src/util/annotations.hpp carries a
         // aecnc: atomic-ok(<reason>)
     waiver on the declaration or an adjacent preceding line, naming the
     protocol that makes lock-free access sound (monotonic stats counter,
     RCU-style snapshot pointer, ...). The wrapper header itself is the
     one place atomics may live undocumented — they *are* the wrappers.

Waivers apply per site: an `aecnc: atomic-ok(...)` comment on the line or
within the 3 lines above exempts that site from rules 1 and 2 as well.
Scope: src/ only (tests and benches may use defaults). Heuristic and
regex-based by design — no compiler needed, runs as a ctest entry.

Exit status: 0 clean, 1 violations (printed one per line), 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# The one file allowed to hold undocumented atomics: the annotated lock
# wrappers themselves.
WRAPPER_FILE = "src/util/annotations.hpp"

ATOMIC_DECL = re.compile(
    r"\bstd::atomic\s*<|\bstd::atomic_(?:bool|int|uint|flag|size_t)\b"
)
WAIVER = re.compile(r"aecnc:\s*atomic-ok\(")

# Atomic member functions whose defaulted order is seq_cst.
ATOMIC_METHODS = (
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange_weak",
    "compare_exchange_strong",
)
METHOD_CALL = re.compile(r"\.\s*(" + "|".join(ATOMIC_METHODS) + r")\s*\(")

RELAXED_LOAD = re.compile(r"\.\s*load\s*\(\s*std::memory_order_relaxed\s*\)")
CONDITION_HEAD = re.compile(r"\b(?:if|while)\s*\(")


def strip_comments(text: str) -> str:
    """Blank out comments and string literals, preserving line numbers."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif ch == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:j]))
            i = j
        elif ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def waivered(raw_lines: list[str], lineno: int) -> bool:
    """aecnc: atomic-ok(...) on this line or within the 3 lines above."""
    lo = max(0, lineno - 4)
    return any(WAIVER.search(raw_lines[k]) for k in range(lo, lineno))


def balanced_args(code: str, open_paren: int) -> str:
    """The argument text of the call whose '(' sits at open_paren."""
    depth = 0
    for j in range(open_paren, len(code)):
        if code[j] == "(":
            depth += 1
        elif code[j] == ")":
            depth -= 1
            if depth == 0:
                return code[open_paren + 1 : j]
    return code[open_paren + 1 :]


def check_file(rel: str, raw: str) -> tuple[list[str], int, int]:
    code = strip_comments(raw)
    raw_lines = raw.split("\n")
    code_lines = code.split("\n")
    errors: list[str] = []
    atomics = 0
    waivers = 0

    # Rule 3: atomic declarations need a waiver comment.
    for lineno, line in enumerate(code_lines, 1):
        if not ATOMIC_DECL.search(line):
            continue
        # Declarations only: skip casts/templates referencing the type in
        # expressions — a declaration line ends in ';', '{', '}' or ','.
        if not re.search(r"[;{},]\s*$", line.rstrip()):
            continue
        atomics += 1
        if rel == WRAPPER_FILE:
            continue
        if waivered(raw_lines, lineno):
            waivers += 1
            continue
        errors.append(
            f"{rel}:{lineno}: std::atomic outside the annotated wrappers "
            f"without an `// aecnc: atomic-ok(<reason>)` waiver "
            f"(docs/checking.md §6)"
        )

    # Rule 1: every atomic operation names its memory order.
    for match in METHOD_CALL.finditer(code):
        lineno = code.count("\n", 0, match.start()) + 1
        args = balanced_args(code, match.end() - 1)
        if "memory_order" in args:
            continue
        if rel == WRAPPER_FILE or waivered(raw_lines, lineno):
            continue
        # compare_exchange with explicit success order covers failure too.
        errors.append(
            f"{rel}:{lineno}: .{match.group(1)}() with defaulted "
            f"(seq_cst) memory order; state the order explicitly or add "
            f"an `// aecnc: atomic-ok(<reason>)` waiver"
        )

    # Rule 2: relaxed loads must not guard control flow over shared data.
    for lineno, line in enumerate(code_lines, 1):
        if not RELAXED_LOAD.search(line):
            continue
        if not CONDITION_HEAD.search(line):
            continue
        if rel == WRAPPER_FILE or waivered(raw_lines, lineno):
            continue
        errors.append(
            f"{rel}:{lineno}: relaxed load in an if/while condition — "
            f"if the branch reads data the flag publishes, this needs "
            f"acquire; otherwise waiver the site with the reason"
        )

    return errors, atomics, waivers


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)",
    )
    args = parser.parse_args()
    repo = args.repo.resolve()
    src = repo / "src"
    if not src.is_dir():
        print(f"check_memory_order: no src/ under {repo}", file=sys.stderr)
        return 2

    files = sorted(src.rglob("*.cpp")) + sorted(src.rglob("*.hpp"))
    errors: list[str] = []
    total_atomics = 0
    total_waivers = 0
    for path in files:
        rel = str(path.relative_to(repo))
        file_errors, atomics, waivers = check_file(rel, path.read_text())
        errors += file_errors
        total_atomics += atomics
        total_waivers += waivers

    for error in errors:
        print(error)
    if errors:
        print(
            f"check_memory_order: {len(errors)} violation(s)", file=sys.stderr
        )
        return 1
    print(
        f"check_memory_order: OK ({len(files)} files, "
        f"{total_atomics} atomics, {total_waivers} waivered sites)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
