#!/usr/bin/env python3
"""Lock-order inventory lint: every mutex is annotated and the order is acyclic.

Clang Thread Safety Analysis checks *which* lock guards *what*, but its
`acquired_before` attribute can only name members of the same class — the
cross-component order (Service → UpdatePipeline → MutationLog → obs
Registry, docs/checking.md §6) lives in structured comments instead. This
lint makes those comments load-bearing:

  1. Inventory: every mutex member in src/ is a `util::Mutex` or
     `util::SpinLock` (raw `std::mutex` / `std::shared_mutex` members and
     plain `std::condition_variable` are errors — the util wrappers and
     `std::condition_variable_any` are the annotatable forms).
  2. Declaration contract: every wrapper-typed mutex declares its place in
     the global order, via either
         // aecnc: acquired-before(Class::member_, ...)
     (this mutex may be held while acquiring each listed target) or
         // aecnc: lock-leaf(<reason>)
     (nothing else is ever acquired under it), on the declaration or the
     comment block immediately above. AECNC_ACQUIRED_BEFORE(member_)
     attributes on the declaration are read as same-class edges too.
  3. Graph: targets must resolve to inventoried mutexes (a rename that
     orphans an edge fails the lint), and the resulting digraph must be
     acyclic — a cycle in the declared order is a potential deadlock.

Inventory nodes are keyed by the *innermost* enclosing class (the brace
scanner does not track nesting chains), so a mutex in a nested struct —
the shard aggregator's per-inbox queue lock, `MessageAggregator::Inbox::
mutex_` — registers as `Inbox::mutex_`. Targets may nevertheless spell
the outer qualification for readability: a target that is a strict
qualification of exactly one inventory node resolves to it; matching
more than one node is an ambiguity error.

Scope: src/ only. Class attribution is a lightweight brace scanner, good
for this codebase's one-class-per-header style; regex-based by design so
it runs without a compiler as a ctest entry.

Exit status: 0 clean, 1 violations (printed one per line), 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

WRAPPER_FILE = "src/util/annotations.hpp"

MUTEX_DECL = re.compile(
    r"\b(?:util::(?:Mutex|SpinLock))\s*&?\s+([A-Za-z_]\w*)\s*(?:;|\{|=)"
)
RAW_MUTEX = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|shared_mutex|timed_mutex)\b"
)
RAW_CV = re.compile(r"\bstd::condition_variable\b(?!_any)")
BEFORE_COMMENT = re.compile(r"aecnc:\s*acquired-before\(([^)]*)\)")
LEAF_COMMENT = re.compile(r"aecnc:\s*lock-leaf\(")
BEFORE_ATTR = re.compile(r"\bAECNC_ACQUIRED_BEFORE\(([^)]*)\)")
SCOPE_HEAD = re.compile(r"\b(class|struct|namespace)\s+([A-Za-z_]\w*)")


def strip_comments(text: str) -> str:
    """Blank out comments and string literals, preserving line numbers."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif ch == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:j]))
            i = j
        elif ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def enclosing_class(code: str, offset: int) -> str | None:
    """Innermost class/struct containing `offset`, via a brace scan.

    Tracks a stack of open braces; a brace is a class scope when the
    nearest preceding `class`/`struct` keyword (with no intervening `;`,
    `{`, or `}`) introduces it. Function and namespace braces push
    anonymous frames so member declarations inside function bodies still
    attribute to the enclosing class (e.g. a static local mutex).
    """
    stack: list[str | None] = []
    i = 0
    while i < offset:
        ch = code[i]
        if ch == "{":
            head_start = i
            while head_start > 0 and code[head_start - 1] not in ";{}":
                head_start -= 1
            head = code[head_start:i]
            name = None
            last = None
            for m in SCOPE_HEAD.finditer(head):
                last = m
            if last is not None and last.group(1) in ("class", "struct"):
                name = last.group(2)
            stack.append(name)
        elif ch == "}":
            if stack:
                stack.pop()
        i += 1
    for name in reversed(stack):
        if name is not None:
            return name
    return None


class MutexInfo:
    def __init__(self, rel: str, lineno: int, node: str):
        self.rel = rel
        self.lineno = lineno
        self.node = node  # "Class::member" or "<file>::member"
        self.edges: list[str] = []  # acquired-before targets
        self.leaf = False
        self.annotated = False


def parse_targets(spec: str, owner_class: str | None) -> list[str]:
    targets = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "::" not in item and owner_class is not None:
            item = f"{owner_class}::{item}"
        targets.append(item)
    return targets


def collect(repo: Path) -> tuple[list[MutexInfo], list[str]]:
    errors: list[str] = []
    mutexes: list[MutexInfo] = []
    src = repo / "src"
    files = sorted(src.rglob("*.hpp")) + sorted(src.rglob("*.cpp"))
    for path in files:
        rel = str(path.relative_to(repo))
        if rel == WRAPPER_FILE:
            continue
        raw = path.read_text()
        code = strip_comments(raw)
        raw_lines = raw.split("\n")
        code_lines = code.split("\n")
        line_offsets = [0]
        for line in code_lines[:-1]:
            line_offsets.append(line_offsets[-1] + len(line) + 1)

        for lineno, line in enumerate(code_lines, 1):
            if RAW_MUTEX.search(line):
                errors.append(
                    f"{rel}:{lineno}: raw std::mutex — use util::Mutex so "
                    f"thread-safety analysis and this inventory see it"
                )
            if RAW_CV.search(line):
                errors.append(
                    f"{rel}:{lineno}: std::condition_variable requires "
                    f"std::unique_lock<std::mutex>; use "
                    f"std::condition_variable_any with util::Mutex"
                )

        for lineno, line in enumerate(code_lines, 1):
            decl = MUTEX_DECL.search(line)
            if decl is None:
                continue
            # References/parameters alias an existing mutex, not a new one.
            if "&" in line[: decl.start(1)]:
                continue
            member = decl.group(1)
            owner = enclosing_class(code, line_offsets[lineno - 1])
            node = f"{owner}::{member}" if owner else f"<{rel}>::{member}"
            info = MutexInfo(rel, lineno, node)

            # The contract comment sits on the declaration line or in the
            # contiguous comment block directly above it.
            window = [raw_lines[lineno - 1]]
            k = lineno - 2
            while k >= 0 and raw_lines[k].lstrip().startswith("//"):
                window.append(raw_lines[k])
                k -= 1
            window_text = "\n".join(reversed(window))
            # Multi-line comments split the target list across lines; join
            # continuation comment lines before matching.
            joined = re.sub(r"\n\s*//\s*", " ", window_text)

            for m in BEFORE_COMMENT.finditer(joined):
                info.annotated = True
                info.edges += parse_targets(m.group(1), owner)
            for m in BEFORE_ATTR.finditer(joined):
                info.annotated = True
                info.edges += parse_targets(m.group(1), owner)
            if LEAF_COMMENT.search(joined):
                info.annotated = True
                info.leaf = True

            if not info.annotated:
                errors.append(
                    f"{rel}:{lineno}: mutex `{node}` has no lock-order "
                    f"annotation; add `// aecnc: acquired-before(...)` or "
                    f"`// aecnc: lock-leaf(<reason>)` (docs/checking.md §6)"
                )
            if info.leaf and info.edges:
                errors.append(
                    f"{rel}:{lineno}: mutex `{node}` declared both "
                    f"lock-leaf and acquired-before — pick one"
                )
            mutexes.append(info)
    return mutexes, errors


def resolve_target(target: str, nodes: set[str]) -> tuple[str | None, str]:
    """Resolve a target to an inventory node.

    Exact matches win; otherwise a fully-qualified spelling (e.g.
    `MessageAggregator::Inbox::mutex_`) resolves to the unique inventory
    node it is a qualification of (`Inbox::mutex_`). Returns
    (node, "") on success, (None, reason) on failure.
    """
    if target in nodes:
        return target, ""
    suffixes = [n for n in nodes if target.endswith("::" + n)]
    if len(suffixes) == 1:
        return suffixes[0], ""
    if len(suffixes) > 1:
        return None, (
            f"qualification of several inventoried mutexes "
            f"({', '.join(sorted(suffixes))}); spell one unambiguously"
        )
    return None, "does not name a known mutex"


def check_graph(mutexes: list[MutexInfo]) -> list[str]:
    errors: list[str] = []
    nodes = {m.node for m in mutexes}
    graph: dict[str, list[str]] = {m.node: [] for m in mutexes}
    for m in mutexes:
        for target in m.edges:
            resolved, reason = resolve_target(target, nodes)
            if resolved is None:
                errors.append(
                    f"{m.rel}:{m.lineno}: acquired-before target "
                    f"`{target}` {reason} "
                    f"(inventory: {', '.join(sorted(nodes))})"
                )
                continue
            graph[m.node].append(resolved)

    # DFS cycle detection with path reporting.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in graph}
    path: list[str] = []

    def dfs(n: str) -> list[str] | None:
        color[n] = GRAY
        path.append(n)
        for t in graph[n]:
            if color[t] == GRAY:
                return path[path.index(t) :] + [t]
            if color[t] == WHITE:
                cycle = dfs(t)
                if cycle is not None:
                    return cycle
        path.pop()
        color[n] = BLACK
        return None

    for n in sorted(graph):
        if color[n] == WHITE:
            cycle = dfs(n)
            if cycle is not None:
                errors.append(
                    "lock-order cycle: " + " -> ".join(cycle)
                    + " (a thread following one edge while another follows "
                    "the other can deadlock)"
                )
                break
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)",
    )
    args = parser.parse_args()
    repo = args.repo.resolve()
    if not (repo / "src").is_dir():
        print(f"check_lock_order: no src/ under {repo}", file=sys.stderr)
        return 2

    mutexes, errors = collect(repo)
    errors += check_graph(mutexes)

    for error in errors:
        print(error)
    if errors:
        print(f"check_lock_order: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    edges = sum(len(m.edges) for m in mutexes)
    leaves = sum(1 for m in mutexes if m.leaf)
    print(
        f"check_lock_order: OK ({len(mutexes)} mutexes, {edges} order "
        f"edges, {leaves} leaves, graph acyclic)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
