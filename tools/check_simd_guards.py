#!/usr/bin/env python3
"""SIMD guard lint: raw-intrinsics code must stay behind runtime dispatch.

The library compiles a handful of translation units with -mavx2/-mavx512*
and dispatches into them only after cpuid checks (cpu_has_avx2 /
cpu_has_avx512). Three classes of bugs silently break that contract and
produce SIGILL on older hosts or corrupt counts:

  1. an AVX2/AVX-512 intrinsic creeping into a TU that is *not* compiled
     with the matching -m flags (the compiler rejects some of these, but
     target-attribute and header leaks slip through);
  2. a kernel symbol called from generic code without a cpu_has_* /
     MergeKind guard, or an ISA TU defining a generically-named symbol
     that generic code might call (leaking -mavx* code into the baseline
     binary);
  3. an *aligned* load/store (`_mm512_load_si512`, `_mm256_store_si256`,
     ...) applied to storage that is not alignas-qualified, which faults
     only on the alignment the allocator happens not to give you.

The lint is source-level and heuristic by design (no compiler needed), so
it runs in seconds as a ctest entry and on every CI push. Scope: src/ only
(tests may call kernels directly under their own GTEST_SKIP guards).

Exit status: 0 clean, 1 violations (printed one per line), 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Files allowed to contain raw call sites of kernel symbols outside the
# kernel TUs themselves: the runtime dispatch layers (VB merge and packed
# popcount) and the differential harness (which cross-checks kernels
# directly under its own cpuid guard).
DISPATCH_FILES = {
    "intersect/dispatch.cpp",
    "intersect/packed_index.cpp",
    "check/differential.cpp",
}

# The cpuid guard functions themselves: referencing them anywhere is the
# point, so they are never treated as kernel symbols.
GUARD_FUNCTIONS = {"cpu_has_avx2", "cpu_has_avx512"}

# The preprocessor guard that fences SIMD declarations and dispatch code.
SIMD_GUARD = "AECNC_HAVE_SIMD_KERNELS"

# Guard-exempt intrinsics, blanked from the text before any heuristic
# runs: _mm_prefetch is baseline SSE (valid on every x86-64 this project
# builds for) and hint-only — executing it never faults and never changes
# architectural state — so prefetch hints may appear in any TU without
# cpuid dispatch.
GUARD_EXEMPT_INTRINSICS = ("_mm_prefetch",)

# Aligned memory intrinsics and the alignment they demand.
ALIGNED_OPS = {
    "_mm_load_si128": 16,
    "_mm_store_si128": 16,
    "_mm256_load_si256": 32,
    "_mm256_store_si256": 32,
    "_mm512_load_si512": 64,
    "_mm512_store_si512": 64,
    "_mm512_load_epi32": 64,
    "_mm512_store_epi32": 64,
}

AVX2_TOKEN = re.compile(r"\b(?:_mm256_\w+|__m256i?\b)")
AVX512_TOKEN = re.compile(r"\b(?:_mm512_\w+|__m512i?\b|__mmask\d+)")
KERNEL_SYMBOL = re.compile(r"\b([A-Za-z_]\w*_(?:avx2|avx512))\s*\(")


def strip_comments(text: str) -> str:
    """Blank out comments and string literals, preserving line numbers."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif ch == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:j]))
            i = j
        elif ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def parse_cmake(repo: Path) -> tuple[dict[str, str], set[str]]:
    """Return (TU -> COMPILE_OPTIONS string, TUs inside AECNC_NATIVE_SIMD)."""
    text = (repo / "src" / "CMakeLists.txt").read_text()
    flags: dict[str, str] = {}
    for match in re.finditer(
        r"set_source_files_properties\(\s*(\S+)\s+"
        r"PROPERTIES\s+COMPILE_OPTIONS\s+\"([^\"]+)\"",
        text,
    ):
        flags[match.group(1)] = match.group(2)

    gated: set[str] = set()
    for block in re.finditer(
        r"if\(AECNC_NATIVE_SIMD\)(.*?)endif\(\)", text, re.DOTALL
    ):
        gated.update(re.findall(r"\b(\S+\.cpp)\b", block.group(1)))
    return flags, gated


def guard_regions(lines: list[str]) -> list[bool]:
    """Per line: inside an `#if AECNC_HAVE_SIMD_KERNELS` region?"""
    inside = []
    depth = 0  # nesting of the guard itself
    pp_stack: list[bool] = []  # is each open #if the SIMD guard?
    for line in lines:
        stripped = line.strip()
        if stripped.startswith("#if"):
            is_guard = SIMD_GUARD in stripped
            pp_stack.append(is_guard)
            depth += is_guard
        elif stripped.startswith("#endif") and pp_stack:
            depth -= pp_stack.pop()
        inside.append(depth > 0)
    return inside


def enclosing_function_names(lines: list[str]) -> list[str]:
    """Per line: name of the most recent column-0 function definition."""
    names = []
    current = ""
    definition = re.compile(r"^[A-Za-z_][\w:<>,&*\s]*?\b(\w+)\s*\($")
    for line in lines:
        match = re.match(r"^[A-Za-z_].*?\b([A-Za-z_]\w*)\s*\(", line)
        if match and not line.rstrip().endswith(";") and "=" not in line.split("(")[0]:
            current = match.group(1)
        names.append(current)
    return names


def check_intrinsic_placement(
    rel: str, code: str, flags: dict[str, str], gated: set[str]
) -> list[str]:
    errors = []
    tu = rel.removeprefix("src/")  # flags map uses paths relative to src/
    tu_flags = flags.get(tu, "")
    uses_avx2 = AVX2_TOKEN.search(code)
    uses_avx512 = AVX512_TOKEN.search(code)

    if rel.endswith((".hpp", ".h")):
        if uses_avx2 or uses_avx512:
            errors.append(
                f"{rel}: AVX2/AVX-512 intrinsics in a header leak vector code "
                f"into every includer; move them into a -mavx* TU"
            )
        return errors

    if uses_avx512 and "-mavx512f" not in tu_flags:
        errors.append(
            f"{rel}: uses AVX-512 intrinsics but has no -mavx512f "
            f"COMPILE_OPTIONS entry in src/CMakeLists.txt"
        )
    if uses_avx2 and not ("-mavx2" in tu_flags or "-mavx512f" in tu_flags):
        errors.append(
            f"{rel}: uses AVX2 intrinsics but has no -mavx2 "
            f"COMPILE_OPTIONS entry in src/CMakeLists.txt"
        )
    if (uses_avx2 or uses_avx512) and tu not in gated:
        errors.append(
            f"{rel}: AVX TU is not inside the if(AECNC_NATIVE_SIMD) source "
            f"list, so -DAECNC_NATIVE_SIMD=OFF builds would still compile it"
        )
    return errors


def check_exported_symbols(rel: str, lines: list[str]) -> list[str]:
    """ISA TUs may only export *_avx2/*_avx512 symbols (or file-local ones
    in an anonymous namespace): a generically-named definition here would
    let generic code call -mavx*-compiled instructions unguarded."""
    errors = []
    anon_depth = 0
    brace_depth = 0
    anon_at: list[int] = []
    for lineno, line in enumerate(lines, 1):
        if re.search(r"\bnamespace\s*\{", line):
            anon_at.append(brace_depth)
        brace_depth += line.count("{") - line.count("}")
        while anon_at and brace_depth <= anon_at[-1]:
            anon_at.pop()
        in_anon = bool(anon_at)

        match = re.match(r"^[A-Za-z_].*?\b([A-Za-z_]\w*)\s*\(", line)
        if not match or line.rstrip().endswith(";"):
            continue
        name = match.group(1)
        if name in ("if", "for", "while", "switch", "return", "namespace"):
            continue
        if in_anon or re.search(r"_(avx2|avx512|sse\d*)$", name):
            continue
        errors.append(
            f"{rel}:{lineno}: ISA TU defines generically-named symbol "
            f"'{name}'; name it *_avx2/*_avx512 or make it file-local"
        )
    return errors


def check_call_sites(
    rel: str,
    lines: list[str],
    kernel_symbols: dict[str, str],
    is_isa_tu: bool,
) -> list[str]:
    errors = []
    if is_isa_tu:
        return errors
    inside_guard = guard_regions(lines)
    functions = enclosing_function_names(lines)
    is_header = rel.endswith((".hpp", ".h"))

    for lineno, line in enumerate(lines, 1):
        for match in KERNEL_SYMBOL.finditer(line):
            name = match.group(1)
            if name not in kernel_symbols:
                continue
            suffix = "avx512" if name.endswith("avx512") else "avx2"
            if not inside_guard[lineno - 1]:
                errors.append(
                    f"{rel}:{lineno}: reference to {name} outside "
                    f"#if {SIMD_GUARD}"
                )
                continue
            if is_header:
                continue  # guarded declarations are fine
            tu = rel.removeprefix("src/")
            if tu not in DISPATCH_FILES:
                errors.append(
                    f"{rel}:{lineno}: call of {name} outside the dispatch "
                    f"layer ({', '.join(sorted(DISPATCH_FILES))})"
                )
                continue
            # Exempt bodies of functions that are themselves kernel-named:
            # their callers carry the guard obligation.
            if re.search(rf"_{suffix}$", functions[lineno - 1]):
                continue
            window = " ".join(lines[max(0, lineno - 11) : lineno])
            guard = (
                f"cpu_has_{suffix}()" in window
                or f"kAvx{'512' if suffix == 'avx512' else '2'}" in window
            )
            if not guard:
                errors.append(
                    f"{rel}:{lineno}: call of {name} has no cpu_has_{suffix}()"
                    f" or MergeKind::kAvx* guard in the preceding lines"
                )
    return errors


def check_aligned_ops(rel: str, lines: list[str]) -> list[str]:
    errors = []
    decls = {}  # identifier -> alignas bytes, from declarations in this file
    for line in lines:
        for match in re.finditer(
            r"alignas\((\d+)\)[\w:<>\s]*?\b([A-Za-z_]\w*)\s*[\[;={]", line
        ):
            decls[match.group(2)] = int(match.group(1))

    for lineno, line in enumerate(lines, 1):
        for op, need in ALIGNED_OPS.items():
            for match in re.finditer(rf"\b{op}\s*\(", line):
                args = line[match.end():]
                idents = re.findall(r"\b([a-z_]\w*)\b", args)
                if any(decls.get(ident, 0) >= need for ident in idents):
                    continue
                errors.append(
                    f"{rel}:{lineno}: {op} requires {need}-byte alignment but "
                    f"no operand is declared alignas({need}) in this file; "
                    f"use the unaligned variant or alignas storage"
                )
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)",
    )
    args = parser.parse_args()
    repo = args.repo.resolve()
    src = repo / "src"
    if not src.is_dir():
        print(f"check_simd_guards: no src/ under {repo}", file=sys.stderr)
        return 2

    flags, gated = parse_cmake(repo)
    files = sorted(src.rglob("*.cpp")) + sorted(src.rglob("*.hpp"))
    stripped = {}
    for path in files:
        text = strip_comments(path.read_text())
        for intrinsic in GUARD_EXEMPT_INTRINSICS:
            text = text.replace(intrinsic, " " * len(intrinsic))
        stripped[path] = text

    # ISA TUs = sources compiled with any -mavx* flag.
    isa_tus = {tu for tu, opt in flags.items() if "-mavx" in opt}

    # Kernel symbols: *_avx2/*_avx512 functions referenced inside ISA TUs,
    # plus kernel-named wrappers defined in the dispatch layer (calling a
    # wrapper unguarded is as fatal as calling the kernel itself).
    kernel_symbols: dict[str, str] = {}
    for path in files:
        tu = str(path.relative_to(src))
        if tu in isa_tus or tu in DISPATCH_FILES:
            for match in KERNEL_SYMBOL.finditer(stripped[path]):
                if match.group(1) not in GUARD_FUNCTIONS:
                    kernel_symbols.setdefault(match.group(1), tu)

    errors = []
    for path in files:
        rel = str(path.relative_to(repo))
        tu = str(path.relative_to(src))
        code = stripped[path]
        lines = code.split("\n")
        errors += check_intrinsic_placement(rel, code, flags, gated)
        if tu in isa_tus:
            errors += check_exported_symbols(rel, lines)
        errors += check_call_sites(rel, lines, kernel_symbols, tu in isa_tus)
        errors += check_aligned_ops(rel, lines)

    for error in errors:
        print(error)
    if errors:
        print(f"check_simd_guards: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print(
        f"check_simd_guards: OK ({len(files)} files, "
        f"{len(isa_tus)} ISA TUs, {len(kernel_symbols)} kernel symbols)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
