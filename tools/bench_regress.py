#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json files the benches emit.

Two jobs, both cheap enough for every CI push:

  1. Structural: the JSON must parse and carry the keys the experiment is
     contracted to emit (a bench that bit-rots into emitting nothing, or
     half a file after a crash, fails loudly instead of green-washing).
  2. Semantic: invariants that must hold at *any* scale. For the hotpath
     experiment: the reverse-index symmetric store must never be slower
     than the per-edge binary search it replaced beyond a 10% noise
     allowance (e2e_speedup >= 0.9) — if that gate trips, the O(|E|)
     index has regressed into a pessimization.

Optionally, --baseline OLD.json compares metric-by-metric against a
stored run: "_ms"/"_s" keys may grow by at most --max-regress (relative),
throughput/speedup keys may shrink by the same bound. Metric direction is
inferred from the key suffix; unknown suffixes are ignored.

Exit status: 0 clean, 1 regression/malformed, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Keys each experiment must emit (nested dicts use dotted paths).
REQUIRED_KEYS = {
    "hotpath": [
        "dataset",
        "scale",
        "reps",
        "reverse_build_ms",
        "symcopy_reverse_ms",
        "symcopy_find_edge_ms",
        "symcopy_speedup",
        "e2e_reverse_ms",
        "e2e_find_edge_ms",
        "e2e_speedup",
        "e2e_bmp_reverse_ms",
        "e2e_bmp_find_edge_ms",
        "e2e_bmp_speedup",
        "prefetch.pivot_skip_on_ms",
        "prefetch.pivot_skip_off_ms",
        "prefetch.vb_on_ms",
        "prefetch.vb_off_ms",
        "prefetch.bitmap_on_ms",
        "prefetch.bitmap_off_ms",
        "prefetch.e2e_mps_on_ms",
        "prefetch.e2e_mps_off_ms",
        "prefetch.e2e_bmp_on_ms",
        "prefetch.e2e_bmp_off_ms",
        # Observability overhead (section D): the runtime-off numbers are
        # what production pays and what --baseline holds to budget; the
        # runtime-on numbers are informational (counting is opt-in).
        "obs.mps_dispatch_off_ms",
        "obs.mps_dispatch_on_ms",
        "obs.e2e_mps_off_ms",
        "obs.e2e_mps_on_ms",
        # Relabel + packed hub index (section E, docs/perf.md): build
        # cost, footprint, skewed-pair micro, and the packed-vs-plain BMP
        # end-to-end ratio the floor below gates.
        "packed.build_ms",
        "packed.bytes",
        "packed.bytes_per_hub",
        "packed.words",
        "packed.micro_packed_ms",
        "packed.micro_bmp_ms",
        "packed.micro_merge_ms",
        "packed.e2e_packed_ms",
        "packed.e2e_bmp_ms",
        "packed_e2e_vs_bmp",
    ],
    "serve_throughput": [
        "dataset",
        "scale",
        "qps_recompute",
        "qps_cached",
        "cached_speedup_vs_recompute",
        # Sustained mixed query/mutation section: both invalidation arms
        # must report tail latency and hit rate, plus the ratio the
        # invariant below gates.
        "mixed.fine.p50_ns",
        "mixed.fine.p99_ns",
        "mixed.fine.hit_rate",
        "mixed.fine.qps",
        "mixed.wholesale.p50_ns",
        "mixed.wholesale.p99_ns",
        "mixed.wholesale.hit_rate",
        "mixed.wholesale.qps",
        "mixed_hit_rate_vs_wholesale",
    ],
    "update": [
        "dataset",
        "scale",
        "edges",
        "seed_ms",
        "materialize_ms",
        "batch_1.delta_ms",
        "batch_1.recount_ms",
        "batch_16.delta_ms",
        "batch_16.recount_ms",
        "batch_256.delta_ms",
        "batch_256.recount_ms",
        "batch_4096.delta_ms",
        "batch_4096.recount_ms",
        "batch_65536.delta_ms",
        "batch_65536.recount_ms",
        "batch_262144.delta_ms",
        "batch_262144.recount_ms",
        "small_batch_speedup",
        "crossover_batch",
        "policy_crossover_batch",
    ],
    "shard": [
        "dataset",
        "scale",
        "edges",
        "reps",
        "seq_ms",
        "par_ms",
        "p1_ms",
        "p2_ms",
        "p4_ms",
        "p8_ms",
        "p1_vs_seq_speedup",
        "p2_transport.msgs_sent",
        "p2_transport.bytes_moved",
        "p4_transport.msgs_sent",
        "p4_transport.bytes_moved",
        "p8_transport.msgs_sent",
        "p8_transport.bytes_moved",
        "flush_sweep.f16_ms",
        "flush_sweep.f256_ms",
        "flush_sweep.f1024_ms",
        "flush_sweep.f8192_ms",
        # Transport bill (docs/sharding.md §7): socket numbers are
        # reported, not gated — the p1_vs_seq_speedup gate stays on the
        # in-process path, and socket_p1_overhead makes the seam's cost
        # visible in every bench report.
        "transport.inproc_p1_ms",
        "transport.socket_p1_ms",
        "transport.socket_p2_ms",
        "transport.socket_p4_ms",
        "transport.socket_p1_overhead",
        "transport.socket_p2_wire_bytes",
        "transport.socket_p4_wire_bytes",
    ],
}

# The reverse-index path may be at most 10% slower than find_edge before
# the gate trips (generous: on any skewed graph the symmetric copy runs
# 5-10x faster). MPS end-to-end gets a looser bound: its runtime is
# dominated by intersection work, so the mirror store is only a few
# percent of it and run-to-run noise on shared CI runners swamps the
# signal — a trip there must mean something systemic broke.
HOTPATH_MIN_SPEEDUP = {
    "symcopy_speedup": 0.9,
    "e2e_bmp_speedup": 0.9,
    "e2e_speedup": 0.75,
    # The packed hub index must never lose to the plain |V|-bit BMP it
    # replaces on the relabeled replica (it measures >= 1.15x on the TW
    # shape; 1.0 is the never-a-pessimization floor).
    "packed_e2e_vs_bmp": 1.0,
}

LOWER_IS_BETTER = ("_ms", "_ns", "_s", "_time", "_bytes")
HIGHER_IS_BETTER = ("_speedup", "_per_s", "qps_", "_eps")


def lookup(data: dict, dotted: str):
    node = data
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def flatten(data, prefix=""):
    out = {}
    for key, value in data.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(flatten(value, path + "."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            out[path] = float(value)
    return out


def metric_direction(key: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 not a perf metric."""
    leaf = key.rsplit(".", 1)[-1]
    if any(leaf.endswith(s) for s in LOWER_IS_BETTER):
        return -1
    if any(leaf.endswith(s) or leaf.startswith(s) for s in HIGHER_IS_BETTER):
        return +1
    return 0


def check_structure(data: dict, path: Path) -> list[str]:
    errors = []
    experiment = data.get("experiment")
    if not isinstance(experiment, str):
        return [f"{path}: missing or non-string 'experiment' key"]
    required = REQUIRED_KEYS.get(experiment)
    if required is None:
        # Unknown experiments only need to be valid JSON objects.
        return []
    for key in required:
        value = lookup(data, key)
        if value is None:
            errors.append(f"{path}: missing required key '{key}'")
        elif key != "dataset" and isinstance(value, str):
            errors.append(f"{path}: key '{key}' should be numeric, got string")
    return errors


def check_invariants(data: dict, path: Path) -> list[str]:
    errors = []
    if data.get("experiment") == "update":
        # Below the crossover, per-op delta maintenance must beat a full
        # recount — that asymmetry is the whole reason src/update's
        # policy exists. A single-op batch losing to an all-edge recount
        # means delta maintenance has regressed into a pessimization.
        speedup = lookup(data, "small_batch_speedup")
        if isinstance(speedup, (int, float)) and speedup < 1.0:
            errors.append(
                f"{path}: delta maintenance no longer beats a full recount "
                f"at batch size 1 (small_batch_speedup {speedup:.3f} < 1.0)"
            )
        return errors
    if data.get("experiment") == "serve_throughput":
        # Under mutation traffic, fine-grained carry-forward must never
        # produce a worse cache hit rate than wholesale invalidation —
        # the touched-set plumbing exists to *keep* entries; losing to
        # drop-everything means invalidation has over-approximated into
        # a pessimization.
        ratio = lookup(data, "mixed_hit_rate_vs_wholesale")
        if isinstance(ratio, (int, float)) and ratio < 1.0:
            errors.append(
                f"{path}: fine-grained invalidation hit rate fell below "
                f"the wholesale baseline (mixed_hit_rate_vs_wholesale "
                f"{ratio:.3f} < 1.0)"
            )
        return errors
    if data.get("experiment") == "shard":
        # A single shard runs the plain row-store path: no column copies,
        # no messages, no barrier traffic. Its only admissible cost over
        # the sequential loop is the partition copy, so p=1 falling more
        # than 10% behind means the seam leaked overhead into the
        # degenerate case every caller of --shards=1 pays.
        speedup = lookup(data, "p1_vs_seq_speedup")
        if isinstance(speedup, (int, float)) and speedup < 0.9:
            errors.append(
                f"{path}: one-shard engine fell behind the sequential loop "
                f"(p1_vs_seq_speedup {speedup:.3f} < 0.9) — the partition "
                f"seam is taxing the degenerate case"
            )
        return errors
    if data.get("experiment") != "hotpath":
        return errors
    for key, floor in HOTPATH_MIN_SPEEDUP.items():
        speedup = lookup(data, key)
        if isinstance(speedup, (int, float)) and speedup < floor:
            errors.append(
                f"{path}: optimized path is slower than the baseline it "
                f"replaced ({key} {speedup:.3f} < {floor}) — the "
                f"optimization regressed"
            )
    for key in ("symcopy_reverse_ms", "symcopy_find_edge_ms"):
        value = lookup(data, key)
        if isinstance(value, (int, float)) and value < 0:
            errors.append(f"{path}: negative timing '{key}' = {value}")
    return errors


def check_baseline(
    data: dict, baseline: dict, path: Path, max_regress: float
) -> list[str]:
    errors = []
    new = flatten(data)
    old = flatten(baseline)
    for key, old_value in old.items():
        direction = metric_direction(key)
        if direction == 0 or key not in new or old_value <= 0:
            continue
        new_value = new[key]
        rel = (new_value - old_value) / old_value
        if direction < 0 and rel > max_regress:
            errors.append(
                f"{path}: {key} regressed {rel * 100:.1f}% "
                f"({old_value:g} -> {new_value:g}, budget {max_regress * 100:.0f}%)"
            )
        elif direction > 0 and rel < -max_regress:
            errors.append(
                f"{path}: {key} dropped {-rel * 100:.1f}% "
                f"({old_value:g} -> {new_value:g}, budget {max_regress * 100:.0f}%)"
            )
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("json", type=Path, nargs="+",
                        help="BENCH_*.json file(s) to validate")
    parser.add_argument("--baseline", type=Path,
                        help="previous run of the same experiment to diff "
                             "against (only valid with a single input)")
    parser.add_argument("--max-regress", type=float, default=0.25,
                        help="relative per-metric budget vs the baseline "
                             "(default 0.25 = 25%%, benches are noisy)")
    args = parser.parse_args()
    if args.baseline and len(args.json) != 1:
        print("bench_regress: --baseline needs exactly one input",
              file=sys.stderr)
        return 2

    errors = []
    for path in args.json:
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            errors.append(f"{path}: no such file")
            continue
        except json.JSONDecodeError as exc:
            errors.append(f"{path}: malformed JSON: {exc}")
            continue
        if not isinstance(data, dict):
            errors.append(f"{path}: top level must be a JSON object")
            continue
        errors += check_structure(data, path)
        errors += check_invariants(data, path)
        if args.baseline:
            try:
                baseline = json.loads(args.baseline.read_text())
            except (FileNotFoundError, json.JSONDecodeError) as exc:
                errors.append(f"{args.baseline}: unusable baseline: {exc}")
            else:
                errors += check_baseline(data, baseline, path,
                                         args.max_regress)

    for error in errors:
        print(error)
    if errors:
        print(f"bench_regress: {len(errors)} failure(s)", file=sys.stderr)
        return 1
    print(f"bench_regress: OK ({len(args.json)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
