// aecnc command-line tool: the library's functionality for shell users.
//
//   aecnc_cli generate  --out=g.txt [--kind=powerlaw|er|rmat|dataset]
//                       [--vertices=N --edges=M --exponent=2.3 --seed=1]
//                       [--dataset=TW --scale=1e-3]
//   aecnc_cli convert   --in=g.txt --out=g.csr           (text -> binary CSR)
//   aecnc_cli stats     --in=g.txt|g.csr [--skew-threshold=50]
//                       [--obs=json|prom --algo=... --rf --kernel=...
//                        --obs-clock=fake]
//   aecnc_cli count     --in=... --out=counts.txt
//                       [--algo=mps|bmp|m] [--rf] [--kernel=...]
//                       [--threads=0] [--seq] [--shards=p]
//                       [--processes=p] [--io-timeout-ms=20000]
//                       [--fault-worker=S:P]
//                       [--relabel] [--packed] [--pack-threshold=32768]
//   aecnc_cli triangles --in=...  [--algo=merge|hash|all-edge]
//   aecnc_cli scan      --in=... --eps=0.5 --mu=3 [--out=clusters.txt]
//   aecnc_cli verify    --in=...   (all algorithm variants vs brute force)
//   aecnc_cli query     --in=... (--edge=u,v | --vertex=u) [--algo=mps|bmp|m]
//   aecnc_cli serve     --in=... [--script=reqs.txt] [--out=replies.txt]
//                       [--algo=mps|bmp|m] [--index=bitmap|hash]
//                       [--workers=N] [--cache=65536] [--task-size=64]
//                       [--kernel=...] [--obs-clock=fake] [--relabel]
//                       [--slo-p99-ns=0] [--slo-min-samples=64]
//                       [--slo-stale=true|false]
//   aecnc_cli update    --in=... --mutations=muts.txt [--out=replies.txt]
//                       [--batch=1024] [--recount-advantage=4.0]
//                       [--min-recount-batch=16] [--max-vertices=0]
//                       [--seq] [--verify] [--relabel]
//   aecnc_cli shard-worker --in=... --shard=s --shards=p --parent-port=N
//                       [--algo=... --rf --kernel=...]
//                       [--flush-messages=1024] [--inbox-capacity=64]
//                       [--io-timeout-ms=20000] [--fault-abort-phase=-1]
//
// count --processes=p runs the sharded count with one OS process per
// shard over the TCP socket transport (docs/sharding.md §7): the parent
// re-execs itself as `shard-worker` p times, wires the loopback mesh,
// and folds the streamed results — bit-identical to the in-process
// paths. --fault-worker=S:P makes worker S hard-exit at the end of
// phase P (CI's peer-kill smoke): the run must fail with a typed
// transport error, never hang or write --out. `shard-worker` is that
// internal re-exec entry point, not meant for direct use.
//
// serve --shards=p routes wholesale recounts during publish through the
// sharded engine (the live-update pipeline's from-scratch path).
//
// --relabel (count/serve/update) switches the engine to the hub-first
// internal ID space behind graph::IdMap: counts, session replies, and
// replay output stay byte-identical to the unrelabeled run while the
// kernels see descending-degree adjacency. count --packed additionally
// intersects hub neighborhoods via the word-packed index
// (docs/perf.md).
//
// stats --obs=json|prom runs one sequential count with the observability
// layer enabled and prints the metric registry dump instead of the graph
// table (docs/observability.md has the schema). --kernel pins the VB
// MergeKind (scalar|branchless|block|sse|avx2|avx512) so dumps are
// machine-independent; --obs-clock=fake replaces latency timestamps with
// a fixed tick for golden tests.
//
// serve drives the embeddable query service (docs/serving.md) from a
// scripted request stream (--script file, else stdin), one request per
// line:  edge u v | vertex u | batch u1 v1 [u2 v2 ...] | add u v |
// del u v (alias: remove) | publish | client id | stats [json|prom].
// Replies go to --out (else stdout) in a deterministic text format, so
// sessions diff against golden files. Mutations flow through the
// live-update pipeline (docs/updates.md): add/del stage deltas against
// the current snapshot, publish materializes and swaps the new epoch in
// (unaffected cache entries carry forward). --slo-p99-ns enables
// per-client admission control: over-budget clients get STALE
// (previous-epoch cached) or SHED replies — contract outcomes, not
// errors. Malformed requests produce an "error:" reply and the session
// continues; the exit status is 1 if any line was bad.
//
// update replays a mutation file through update::UpdatePipeline +
// serve::SnapshotStore without the query service: lines are `add u v`,
// `del u v`, `publish`, `#` comments. --verify cross-checks every
// published snapshot's maintained counts against a from-scratch
// sequential MPS recount (exit 1 on any mismatch).
//
// Inputs ending in ".csr" are read as the binary format, anything else
// as a SNAP-style text edge list.
#include <unistd.h>

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "check/invariants.hpp"
#include "core/api.hpp"
#include "core/triangle.hpp"
#include "core/verify.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"
#include "net/process.hpp"
#include "obs/catalog.hpp"
#include "scan/scan.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"
#include "update/pipeline.hpp"
#include "update/replay.hpp"
#include "util/chart.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace aecnc;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fputs(
      "usage: aecnc_cli "
      "<generate|convert|stats|count|triangles|scan|verify|query|serve"
      "|update|shard-worker> [--key=value ...]\n"
      "see the header of tools/aecnc_cli.cpp for the full option list\n",
      stderr);
  // Usage errors abort in main() before any thread spawns.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  std::exit(2);
}

/// Strict per-command flag validation: a misspelled or misplaced option
/// (`--obs-clock` on `update`, `--worker=` for `--workers=`) exits 2
/// with the usage text instead of being silently ignored — an ignored
/// flag in a scripted sweep or golden session is a wrong-results bug,
/// not a convenience.
void require_known(const util::CliArgs& args,
                   std::initializer_list<std::string_view> allowed) {
  const auto bad = args.first_unknown(allowed);
  if (bad.has_value()) {
    const std::string msg = "unknown option '--" + *bad + "'";
    usage(msg.c_str());
  }
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

graph::Csr load_graph(const util::CliArgs& args) {
  const std::string path = args.get("in", "");
  if (path.empty()) usage("--in=<path> is required");
  if (ends_with(path, ".csr")) return graph::load_csr_binary(path);
  return graph::Csr::from_edge_list(graph::load_edge_list_text(path));
}

core::Options parse_algo_options(const util::CliArgs& args);
void setup_obs(const util::CliArgs& args);

int cmd_generate(const util::CliArgs& args) {
  require_known(args, {"out", "kind", "vertices", "edges", "exponent", "seed",
                       "rmat-scale", "dataset", "scale"});
  const std::string out = args.get("out", "");
  if (out.empty()) usage("--out=<path> is required");
  const std::string kind = args.get("kind", "powerlaw");
  const auto n = static_cast<VertexId>(args.get_int("vertices", 100000));
  const auto m = static_cast<std::uint64_t>(args.get_int("edges", 800000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  graph::EdgeList edges;
  if (kind == "powerlaw") {
    edges = graph::chung_lu_power_law(n, m, args.get_double("exponent", 2.3),
                                      seed);
  } else if (kind == "er") {
    edges = graph::erdos_renyi(n, m, seed);
  } else if (kind == "rmat") {
    edges = graph::rmat(static_cast<int>(args.get_int("rmat-scale", 17)), m,
                        {}, seed);
  } else if (kind == "dataset") {
    const auto id = graph::dataset_from_name(args.get("dataset", "TW"));
    const graph::Csr g =
        graph::make_dataset(id, args.get_double("scale", 1e-3));
    graph::save_csr_binary(g, out);
    std::printf("wrote %s: %u vertices, %llu edges (binary CSR)\n",
                out.c_str(), g.num_vertices(),
                static_cast<unsigned long long>(g.num_undirected_edges()));
    return 0;
  } else {
    usage("unknown --kind (powerlaw|er|rmat|dataset)");
  }
  graph::save_edge_list_text(edges, out);
  std::printf("wrote %s: %u vertices, %llu edges\n", out.c_str(),
              edges.num_vertices(),
              static_cast<unsigned long long>(edges.num_edges()));
  return 0;
}

int cmd_convert(const util::CliArgs& args) {
  require_known(args, {"in", "out"});
  const graph::Csr g = load_graph(args);
  const std::string out = args.get("out", "");
  if (out.empty()) usage("--out=<path> is required");
  graph::save_csr_binary(g, out);
  std::printf("wrote %s (%s)\n", out.c_str(),
              util::format_bytes(static_cast<double>(g.memory_bytes())).c_str());
  return 0;
}

int cmd_stats(const util::CliArgs& args) {
  require_known(args, {"in", "skew-threshold", "obs", "out", "algo", "rf",
                       "kernel", "obs-clock"});
  // --obs mode: run one sequential count with instrumentation on and
  // print the metric registry instead of the graph-shape table. The run
  // is sequential and (with --kernel pinned) machine-independent, so the
  // dump golden-tests byte for byte.
  const std::string obs_mode = args.get("obs", "");
  if (!obs_mode.empty()) {
    if (obs_mode != "json" && obs_mode != "prom") {
      usage("unknown --obs (json|prom)");
    }
    setup_obs(args);
    const graph::Csr g = load_graph(args);
    core::Options opt = parse_algo_options(args);
    opt.parallel = false;  // deterministic counters (builds, leases)
    const auto counts = core::count_common_neighbors(g, opt);
    (void)counts;  // run for its metric side effects
    const std::string dump = obs_mode == "json"
                                 ? obs::Registry::global().dump_json()
                                 : obs::Registry::global().dump_prometheus();
    const std::string out = args.get("out", "");
    if (!out.empty()) {
      std::ofstream file(out);
      if (!file) usage("cannot open --out file");
      file << dump;
      return file.good() ? 0 : 1;
    }
    std::fputs(dump.c_str(), stdout);
    return 0;
  }

  const graph::Csr g = load_graph(args);
  const std::string problem = g.validate();
  const auto s = graph::compute_stats(g);
  const double t = args.get_double("skew-threshold", 50.0);
  util::TablePrinter table({"metric", "value"});
  table.add_row({"vertices", util::format_count(s.num_vertices)});
  table.add_row({"undirected edges", util::format_count(s.num_undirected_edges)});
  table.add_row({"avg degree", util::format_fixed(s.avg_degree, 2)});
  table.add_row({"max degree", util::format_count(s.max_degree)});
  table.add_row({"skewed intersections",
                 util::format_fixed(
                     graph::skewed_intersection_percentage(g, t), 1) + "% (t=" +
                     util::format_fixed(t, 0) + ")"});
  table.add_row({"CSR bytes",
                 util::format_bytes(static_cast<double>(g.memory_bytes()))});
  table.add_row({"valid", problem.empty() ? "yes" : problem});
  table.print();

  // Degree distribution as a log2-bucket sparkline (log-scaled heights).
  const auto histogram = graph::degree_histogram(g);
  std::vector<double> heights;
  heights.reserve(histogram.size());
  for (const auto count : histogram) {
    heights.push_back(count == 0 ? 0.0
                                 : std::log2(static_cast<double>(count) + 1));
  }
  std::printf("degree distribution (log2 buckets 1,2-3,4-7,...):\n%s",
              util::sparklines({{"vertices (log)", heights}}).c_str());
  return 0;
}

/// Assemble the parent-side options for `count --processes=p`: re-exec
/// this binary as `shard-worker`, forwarding the algorithm flags
/// verbatim so option parsing stays in one place (parse_algo_options in
/// the worker). --fault-worker=S:P arms the peer-kill smoke.
net::MultiProcessOptions parse_multiprocess_options(const util::CliArgs& args,
                                                    int num_shards) {
  net::MultiProcessOptions mp;
  char exe[PATH_MAX];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n <= 0) usage("cannot resolve /proc/self/exe for --processes");
  mp.exe_path.assign(exe, static_cast<std::size_t>(n));
  mp.graph_path = args.get("in", "");
  if (mp.graph_path.empty()) usage("--in=<path> is required");
  mp.num_shards = num_shards;
  mp.net.io_timeout_ms = static_cast<std::uint32_t>(args.get_int(
      "io-timeout-ms", static_cast<std::int64_t>(mp.net.io_timeout_ms)));
  for (const char* key : {"algo", "rf", "kernel"}) {
    if (args.has(key)) {
      mp.worker_args.push_back(std::string("--") + key + "=" +
                               args.get(key, ""));
    }
  }
  mp.worker_args.push_back("--io-timeout-ms=" +
                           std::to_string(mp.net.io_timeout_ms));
  const std::string fault = args.get("fault-worker", "");
  if (!fault.empty()) {
    int s = -1;
    int p = -1;
    if (std::sscanf(fault.c_str(), "%d:%d", &s, &p) != 2 || s < 0 ||
        s >= num_shards || p < 0) {
      usage("--fault-worker expects 'shard:phase'");
    }
    mp.fault_abort_shard = s;
    mp.fault_abort_phase = p;
  }
  return mp;
}

int cmd_count(const util::CliArgs& args) {
  require_known(args,
                {"in", "out", "algo", "rf", "kernel", "threads", "seq",
                 "shards", "processes", "io-timeout-ms", "fault-worker",
                 "relabel", "packed", "pack-threshold"});
  const graph::Csr g = load_graph(args);
  core::Options opt = parse_algo_options(args);
  const std::string algo = args.get("algo", "mps");
  opt.parallel = !args.get_bool("seq", false);
  opt.num_threads = static_cast<int>(args.get_int("threads", 0));
  opt.num_shards = static_cast<int>(args.get_int("shards", 0));
  if (opt.num_shards < 0) usage("--shards must be >= 0");
  opt.relabel = args.get_bool("relabel", false);
  opt.bmp_packed = args.get_bool("packed", false);
  opt.pack_threshold = static_cast<std::uint32_t>(args.get_int(
      "pack-threshold", static_cast<std::int64_t>(opt.pack_threshold)));
  if (opt.pack_threshold == 0 || opt.pack_threshold > 65536) {
    usage("--pack-threshold must be in (0, 65536]");
  }
  const int processes = static_cast<int>(args.get_int("processes", 0));
  if (processes < 0) usage("--processes must be >= 0");
  if (processes > 0) {
    if (opt.num_shards == 0) opt.num_shards = processes;
    if (opt.num_shards != processes) usage("--processes must equal --shards");
    if (opt.relabel || opt.bmp_packed) {
      usage("--processes does not combine with --relabel/--packed");
    }
  } else if (args.has("fault-worker")) {
    usage("--fault-worker requires --processes");
  }

  util::WallTimer timer;
  // A failed multi-process run throws out of here before the --out file
  // below is even opened: a fault never leaves partial counts on disk.
  const auto counts =
      processes > 0
          ? net::count_multiprocess(g, parse_multiprocess_options(
                                           args, opt.num_shards))
          : (opt.algorithm == core::Algorithm::kBmp
                 ? core::count_with_reorder(g, opt)
                 : core::count_common_neighbors(g, opt));
  std::printf("counted %llu slots in %s (%s)\n",
              static_cast<unsigned long long>(counts.size()),
              util::format_seconds(timer.seconds()).c_str(), algo.c_str());
  std::printf("triangles: %llu\n",
              static_cast<unsigned long long>(
                  core::triangle_count_from(counts)));

  const std::string out = args.get("out", "");
  if (!out.empty()) {
    std::ofstream file(out);
    if (!file) usage("cannot open --out file");
    file << "# u v cnt\n";
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      const auto nbrs = g.neighbors(u);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        if (u < nbrs[k]) {
          file << u << ' ' << nbrs[k] << ' '
               << counts[g.offset_begin(u) + k] << '\n';
        }
      }
    }
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

int cmd_triangles(const util::CliArgs& args) {
  require_known(args, {"in", "algo"});
  const graph::Csr g = load_graph(args);
  const std::string algo = args.get("algo", "merge");
  util::WallTimer timer;
  std::uint64_t triangles = 0;
  if (algo == "merge") {
    triangles = core::count_triangles(g, core::TriangleAlgorithm::kMergeForward);
  } else if (algo == "hash") {
    triangles = core::count_triangles(g, core::TriangleAlgorithm::kHashForward);
  } else if (algo == "all-edge") {
    triangles = core::triangle_count(g);
  } else {
    usage("unknown --algo (merge|hash|all-edge)");
  }
  std::printf("triangles: %llu (%s, %s)\n",
              static_cast<unsigned long long>(triangles), algo.c_str(),
              util::format_seconds(timer.seconds()).c_str());
  return 0;
}

int cmd_verify(const util::CliArgs& args) {
  require_known(args, {"in"});
  const graph::Csr g = load_graph(args);
  const std::string structural = g.validate();
  if (!structural.empty()) {
    std::fprintf(stderr, "structural validation FAILED: %s\n",
                 structural.c_str());
    return 1;
  }
  // Deep invariants on top of the shallow pass: reverse-offset
  // consistency and slot round trips (src/check/invariants.hpp).
  const auto deep = check::validate_csr(g);
  if (deep.has_value()) {
    std::fprintf(stderr, "invariant validation FAILED: %s\n", deep->c_str());
    return 1;
  }
  std::printf("structure: ok\n");

  const auto reference = core::count_reference(g);
  struct Variant {
    const char* name;
    core::Options opt;
  };
  std::vector<Variant> variants;
  {
    core::Options o;
    o.algorithm = core::Algorithm::kMergeBaseline;
    variants.push_back({"M (parallel)", o});
    o.algorithm = core::Algorithm::kMps;
    o.mps.kind = intersect::best_merge_kind();
    variants.push_back({"MPS (parallel)", o});
    o.parallel = false;
    variants.push_back({"MPS (sequential)", o});
    o.parallel = true;
    o.algorithm = core::Algorithm::kBmp;
    variants.push_back({"BMP (parallel)", o});
    o.bmp_range_filter = true;
    o.rf_range_scale = 64;
    variants.push_back({"BMP-RF (parallel)", o});
  }
  bool ok = true;
  for (const auto& v : variants) {
    const auto counts = core::count_common_neighbors(g, v.opt);
    const auto diff = core::diff_counts(g, counts, reference);
    if (diff.has_value()) {
      std::fprintf(stderr, "%s: MISMATCH — %s\n", v.name, diff->c_str());
      ok = false;
    } else {
      std::printf("%s: ok\n", v.name);
    }
  }
  std::printf("triangles: %llu\n",
              static_cast<unsigned long long>(
                  core::triangle_count_from(reference)));
  return ok ? 0 : 1;
}

int cmd_scan(const util::CliArgs& args) {
  require_known(args, {"in", "eps", "mu", "out"});
  const graph::Csr g = load_graph(args);
  const scan::Params params{
      .epsilon = args.get_double("eps", 0.5),
      .mu = static_cast<std::uint32_t>(args.get_int("mu", 2)),
  };
  util::WallTimer timer;
  const auto result = scan::cluster(g, params);
  std::printf("SCAN(eps=%.2f, mu=%u): %u clusters, %llu cores, %llu borders, "
              "%llu hubs, %llu outliers (%s)\n",
              params.epsilon, params.mu, result.num_clusters,
              static_cast<unsigned long long>(result.count_role(scan::Role::kCore)),
              static_cast<unsigned long long>(result.count_role(scan::Role::kBorder)),
              static_cast<unsigned long long>(result.count_role(scan::Role::kHub)),
              static_cast<unsigned long long>(
                  result.count_role(scan::Role::kOutlier)),
              util::format_seconds(timer.seconds()).c_str());

  const std::string out = args.get("out", "");
  if (!out.empty()) {
    std::ofstream file(out);
    if (!file) usage("cannot open --out file");
    file << "# vertex cluster role(0=core,1=border,2=hub,3=outlier)\n";
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      file << v << ' '
           << (result.cluster[v] == scan::Result::kUnclustered
                   ? -1
                   : static_cast<long>(result.cluster[v]))
           << ' ' << static_cast<int>(result.role[v]) << '\n';
    }
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

intersect::MergeKind parse_kernel(const std::string& name) {
  if (name == "scalar") return intersect::MergeKind::kScalar;
  if (name == "branchless") return intersect::MergeKind::kBranchless;
  if (name == "block") return intersect::MergeKind::kBlockScalar;
  if (name == "sse") return intersect::MergeKind::kSse;
  if (name == "avx2") return intersect::MergeKind::kAvx2;
  if (name == "avx512") return intersect::MergeKind::kAvx512;
  usage("unknown --kernel (scalar|branchless|block|sse|avx2|avx512)");
}

core::Options parse_algo_options(const util::CliArgs& args) {
  core::Options opt;
  const std::string algo = args.get("algo", "mps");
  if (algo == "mps") {
    opt.algorithm = core::Algorithm::kMps;
    opt.mps.kind = intersect::best_merge_kind();
  } else if (algo == "bmp") {
    opt.algorithm = core::Algorithm::kBmp;
    opt.bmp_range_filter = args.get_bool("rf", false);
  } else if (algo == "m") {
    opt.algorithm = core::Algorithm::kMergeBaseline;
  } else {
    usage("unknown --algo (mps|bmp|m)");
  }
  if (args.has("kernel")) {
    // Pin the VB kernel instead of taking the widest this host supports;
    // metric dumps pinned to --kernel=block are machine-independent.
    opt.mps.kind = parse_kernel(args.get("kernel", ""));
    if (!intersect::merge_kind_supported(opt.mps.kind)) {
      usage("--kernel not supported on this host");
    }
  }
  return opt;
}

/// Turn the observability layer on for this invocation; --obs-clock=fake
/// replaces the latency clock with a fixed 4096ns tick (golden tests).
void setup_obs(const util::CliArgs& args) {
  obs::set_enabled(true);
  obs::register_all();
  const std::string clock = args.get("obs-clock", "");
  if (clock == "fake") {
    obs::set_fake_clock(4096);
  } else if (!clock.empty()) {
    usage("unknown --obs-clock (fake)");
  }
}

int cmd_query(const util::CliArgs& args) {
  require_known(args, {"in", "edge", "vertex", "algo", "rf", "kernel"});
  const graph::Csr g = load_graph(args);
  const core::Options opt = parse_algo_options(args);
  if (args.has("edge")) {
    const std::string pair = args.get("edge", "");
    unsigned long u = 0;
    unsigned long v = 0;
    if (std::sscanf(pair.c_str(), "%lu,%lu", &u, &v) != 2) {
      usage("--edge expects 'u,v'");
    }
    const auto uu = static_cast<VertexId>(u);
    const auto vv = static_cast<VertexId>(v);
    const CnCount c = core::count_edge(g, uu, vv, opt);
    const bool is_edge = uu < g.num_vertices() && vv < g.num_vertices() &&
                         uu != vv &&
                         g.find_edge(uu, vv) != g.num_directed_edges();
    std::printf("edge %lu %lu: cnt=%u edge=%s\n", u, v, c,
                is_edge ? "yes" : "no");
    return 0;
  }
  if (args.has("vertex")) {
    const auto u = static_cast<VertexId>(args.get_int("vertex", 0));
    const auto counts = core::count_vertex(g, u, opt);
    std::printf("vertex %u: deg=%zu cnts=", u, counts.size());
    for (std::size_t k = 0; k < counts.size(); ++k) {
      std::printf("%s%u", k == 0 ? "" : ",", counts[k]);
    }
    std::printf("\n");
    return 0;
  }
  usage("query needs --edge=u,v or --vertex=u");
}

int cmd_serve(const util::CliArgs& args) {
  require_known(args, {"in", "script", "out", "algo", "rf", "kernel", "index",
                       "workers", "cache", "task-size", "obs-clock", "relabel",
                       "shards", "slo-p99-ns", "slo-min-samples", "slo-stale"});
  graph::Csr g = load_graph(args);

  // Scripted sessions always serve with observability on: the metric
  // cost is irrelevant next to I/O here, and `stats json|prom` should
  // work without extra flags.
  setup_obs(args);

  serve::ServiceConfig cfg;
  cfg.engine.options = parse_algo_options(args);
  const std::string index = args.get("index", "bitmap");
  if (index == "bitmap") {
    cfg.engine.index = serve::ServeIndex::kBitmap;
  } else if (index == "hash") {
    cfg.engine.index = serve::ServeIndex::kHash;
  } else {
    usage("unknown --index (bitmap|hash)");
  }
  cfg.engine.num_workers = static_cast<int>(args.get_int("workers", 0));
  cfg.engine.task_size =
      static_cast<std::uint64_t>(args.get_int("task-size", 64));
  cfg.cache_capacity = static_cast<std::size_t>(args.get_int("cache", 65536));
  // Internal hub-first snapshots behind external-ID requests/replies;
  // scripted sessions are byte-identical with the flag on or off.
  cfg.relabel = args.get_bool("relabel", false);
  // Pin the mutable vertex universe to the initial graph: a scripted
  // session mutating vertex ids the graph never had is a client bug, and
  // the pinned universe turns it into a deterministic error reply.
  cfg.update.max_vertices = g.num_vertices();
  // --shards=p routes wholesale recounts during publish through the
  // sharded engine; 0 (default) keeps the direct sequential/parallel
  // paths. Replies are bit-identical either way.
  cfg.update.recount_options.num_shards =
      static_cast<int>(args.get_int("shards", 0));
  if (cfg.update.recount_options.num_shards < 0) {
    usage("--shards must be >= 0");
  }
  // SLO admission control (docs/serving.md): a per-client p99 compute
  // budget in ns; 0 (default) leaves it off. Under --obs-clock=fake
  // every compute records as a fixed 4096ns sample, so golden sessions
  // exercise deterministic degrade decisions instead of wall-clock ones.
  cfg.slo.p99_budget_ns =
      static_cast<std::uint64_t>(args.get_int("slo-p99-ns", 0));
  cfg.slo.min_samples =
      static_cast<std::size_t>(args.get_int("slo-min-samples", 64));
  cfg.slo.allow_stale = args.get_bool("slo-stale", true);
  if (args.get("obs-clock", "") == "fake") cfg.slo.fake_sample_ns = 4096;

  std::ifstream script_file;
  std::istream* in = &std::cin;
  const std::string script = args.get("script", "");
  if (!script.empty()) {
    script_file.open(script);
    if (!script_file) usage("cannot open --script file");
    in = &script_file;
  }
  std::ofstream out_file;
  std::ostream* out = &std::cout;
  const std::string out_path = args.get("out", "");
  if (!out_path.empty()) {
    out_file.open(out_path);
    if (!out_file) usage("cannot open --out file");
    out = &out_file;
  }

  serve::Service svc(cfg);
  svc.publish(std::move(g));

  // The interpreter lives in the library (src/serve/session.cpp) so the
  // fuzz harness drives the same parser; the CLI only wires the streams.
  return serve::run_session(svc, *in, *out) ? 0 : 1;
}

/// Internal: the `count --processes=p` re-exec entry point. Parses the
/// mirrored engine flags and hands off to net::run_shard_worker, which
/// owns the whole worker protocol (hello, mesh, run, results).
int cmd_shard_worker(const util::CliArgs& args) {
  require_known(args, {"in", "shard", "shards", "parent-port", "algo", "rf",
                       "kernel", "flush-messages", "inbox-capacity",
                       "io-timeout-ms", "fault-abort-phase"});
  net::WorkerOptions opt;
  opt.graph_path = args.get("in", "");
  if (opt.graph_path.empty()) usage("--in=<path> is required");
  opt.shard = static_cast<int>(args.get_int("shard", -1));
  opt.num_shards = static_cast<int>(args.get_int("shards", 0));
  if (opt.num_shards < 1 || opt.shard < 0 || opt.shard >= opt.num_shards) {
    usage("--shard must be in [0, --shards)");
  }
  opt.parent_port =
      static_cast<std::uint16_t>(args.get_int("parent-port", 0));
  if (opt.parent_port == 0) usage("--parent-port=<port> is required");
  // Same Options -> ShardConfig mapping as the in-process --shards path
  // (core count_in_place), so the two transports count the same plan.
  const core::Options algo = parse_algo_options(args);
  opt.engine.num_shards = opt.num_shards;
  opt.engine.algorithm = algo.algorithm;
  opt.engine.mps = algo.mps;
  opt.engine.prefetch = algo.prefetch;
  opt.engine.flush_messages = static_cast<std::size_t>(args.get_int(
      "flush-messages", static_cast<std::int64_t>(opt.engine.flush_messages)));
  opt.engine.inbox_capacity = static_cast<std::size_t>(args.get_int(
      "inbox-capacity", static_cast<std::int64_t>(opt.engine.inbox_capacity)));
  opt.net.io_timeout_ms = static_cast<std::uint32_t>(args.get_int(
      "io-timeout-ms", static_cast<std::int64_t>(opt.net.io_timeout_ms)));
  opt.fault_abort_phase =
      static_cast<int>(args.get_int("fault-abort-phase", -1));
  return net::run_shard_worker(opt);
}

int cmd_update(const util::CliArgs& args) {
  require_known(args, {"in", "mutations", "out", "batch", "recount-advantage",
                       "min-recount-batch", "max-vertices", "seq", "verify",
                       "relabel"});
  const std::string muts_path = args.get("mutations", "");
  if (muts_path.empty()) usage("--mutations=<path> is required");
  std::ifstream muts(muts_path);
  if (!muts) usage("cannot open --mutations file");

  std::ofstream out_file;
  std::ostream* out = &std::cout;
  const std::string out_path = args.get("out", "");
  if (!out_path.empty()) {
    out_file.open(out_path);
    if (!out_file) usage("cannot open --out file");
    out = &out_file;
  }

  graph::Csr g = load_graph(args);

  update::PipelineConfig cfg;
  cfg.max_batch = static_cast<std::size_t>(args.get_int("batch", 1024));
  cfg.policy.recount_advantage = args.get_double("recount-advantage", 4.0);
  cfg.policy.min_recount_batch =
      static_cast<std::size_t>(args.get_int("min-recount-batch", 16));
  cfg.max_vertices = static_cast<VertexId>(args.get_int("max-vertices", 0));
  cfg.recount_options.parallel = !args.get_bool("seq", false);

  // --relabel seeds the pipeline from the hub-first internal graph; the
  // map translates mutation lines in and published snapshots carry it.
  // Replay output is byte-identical with the flag on or off (out-of-range
  // ids pass through the map unchanged and reject exactly as before).
  graph::IdMap id_map;
  const bool relabel = args.get_bool("relabel", false);
  if (relabel) g = graph::reorder_degree_descending(g, &id_map);
  const update::ReplayOptions replay{
      .verify = args.get_bool("verify", false),
      .id_map = relabel ? &id_map : nullptr,
  };

  // The pipeline seeds its maintained counts from the input graph; the
  // store gives every publish a real epoch, exactly as in the service.
  // The initial snapshot carries the map so epoch 1 translates like
  // every pipeline-published epoch after it.
  update::UpdatePipeline pipe(g, cfg);
  serve::SnapshotStore store;
  store.publish(std::move(g), id_map);

  // The parser lives in the library (src/update/replay.cpp) so the fuzz
  // harness drives the same code; the CLI only wires the streams.
  return update::run_replay(pipe, store, muts, *out, replay) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  const util::CliArgs args(argc - 1, argv + 1);
  // Every failure path exits non-zero with a message on stderr: usage()
  // for bad invocations (exit 2), this catch for runtime errors such as
  // unreadable or malformed graph files (exit 1).
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "convert") return cmd_convert(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "count") return cmd_count(args);
    if (command == "triangles") return cmd_triangles(args);
    if (command == "scan") return cmd_scan(args);
    if (command == "verify") return cmd_verify(args);
    if (command == "query") return cmd_query(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "update") return cmd_update(args);
    if (command == "shard-worker") return cmd_shard_worker(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage("unknown command");
}
