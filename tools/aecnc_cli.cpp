// aecnc command-line tool: the library's functionality for shell users.
//
//   aecnc_cli generate  --out=g.txt [--kind=powerlaw|er|rmat|dataset]
//                       [--vertices=N --edges=M --exponent=2.3 --seed=1]
//                       [--dataset=TW --scale=1e-3]
//   aecnc_cli convert   --in=g.txt --out=g.csr           (text -> binary CSR)
//   aecnc_cli stats     --in=g.txt|g.csr [--skew-threshold=50]
//   aecnc_cli count     --in=... --out=counts.txt
//                       [--algo=mps|bmp|m] [--rf] [--threads=0] [--seq]
//   aecnc_cli triangles --in=...  [--algo=merge|hash|all-edge]
//   aecnc_cli scan      --in=... --eps=0.5 --mu=3 [--out=clusters.txt]
//   aecnc_cli verify    --in=...   (all algorithm variants vs brute force)
//
// Inputs ending in ".csr" are read as the binary format, anything else
// as a SNAP-style text edge list.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "check/invariants.hpp"
#include "core/api.hpp"
#include "core/triangle.hpp"
#include "core/verify.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"
#include "scan/scan.hpp"
#include "util/chart.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace aecnc;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fputs(
      "usage: aecnc_cli <generate|convert|stats|count|triangles|scan> "
      "[--key=value ...]\n"
      "see the header of tools/aecnc_cli.cpp for the full option list\n",
      stderr);
  std::exit(2);
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

graph::Csr load_graph(const util::CliArgs& args) {
  const std::string path = args.get("in", "");
  if (path.empty()) usage("--in=<path> is required");
  if (ends_with(path, ".csr")) return graph::load_csr_binary(path);
  return graph::Csr::from_edge_list(graph::load_edge_list_text(path));
}

int cmd_generate(const util::CliArgs& args) {
  const std::string out = args.get("out", "");
  if (out.empty()) usage("--out=<path> is required");
  const std::string kind = args.get("kind", "powerlaw");
  const auto n = static_cast<VertexId>(args.get_int("vertices", 100000));
  const auto m = static_cast<std::uint64_t>(args.get_int("edges", 800000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  graph::EdgeList edges;
  if (kind == "powerlaw") {
    edges = graph::chung_lu_power_law(n, m, args.get_double("exponent", 2.3),
                                      seed);
  } else if (kind == "er") {
    edges = graph::erdos_renyi(n, m, seed);
  } else if (kind == "rmat") {
    edges = graph::rmat(static_cast<int>(args.get_int("rmat-scale", 17)), m,
                        {}, seed);
  } else if (kind == "dataset") {
    const auto id = graph::dataset_from_name(args.get("dataset", "TW"));
    const graph::Csr g =
        graph::make_dataset(id, args.get_double("scale", 1e-3));
    graph::save_csr_binary(g, out);
    std::printf("wrote %s: %u vertices, %llu edges (binary CSR)\n",
                out.c_str(), g.num_vertices(),
                static_cast<unsigned long long>(g.num_undirected_edges()));
    return 0;
  } else {
    usage("unknown --kind (powerlaw|er|rmat|dataset)");
  }
  graph::save_edge_list_text(edges, out);
  std::printf("wrote %s: %u vertices, %llu edges\n", out.c_str(),
              edges.num_vertices(),
              static_cast<unsigned long long>(edges.num_edges()));
  return 0;
}

int cmd_convert(const util::CliArgs& args) {
  const graph::Csr g = load_graph(args);
  const std::string out = args.get("out", "");
  if (out.empty()) usage("--out=<path> is required");
  graph::save_csr_binary(g, out);
  std::printf("wrote %s (%s)\n", out.c_str(),
              util::format_bytes(static_cast<double>(g.memory_bytes())).c_str());
  return 0;
}

int cmd_stats(const util::CliArgs& args) {
  const graph::Csr g = load_graph(args);
  const std::string problem = g.validate();
  const auto s = graph::compute_stats(g);
  const double t = args.get_double("skew-threshold", 50.0);
  util::TablePrinter table({"metric", "value"});
  table.add_row({"vertices", util::format_count(s.num_vertices)});
  table.add_row({"undirected edges", util::format_count(s.num_undirected_edges)});
  table.add_row({"avg degree", util::format_fixed(s.avg_degree, 2)});
  table.add_row({"max degree", util::format_count(s.max_degree)});
  table.add_row({"skewed intersections",
                 util::format_fixed(
                     graph::skewed_intersection_percentage(g, t), 1) + "% (t=" +
                     util::format_fixed(t, 0) + ")"});
  table.add_row({"CSR bytes",
                 util::format_bytes(static_cast<double>(g.memory_bytes()))});
  table.add_row({"valid", problem.empty() ? "yes" : problem});
  table.print();

  // Degree distribution as a log2-bucket sparkline (log-scaled heights).
  const auto histogram = graph::degree_histogram(g);
  std::vector<double> heights;
  heights.reserve(histogram.size());
  for (const auto count : histogram) {
    heights.push_back(count == 0 ? 0.0
                                 : std::log2(static_cast<double>(count) + 1));
  }
  std::printf("degree distribution (log2 buckets 1,2-3,4-7,...):\n%s",
              util::sparklines({{"vertices (log)", heights}}).c_str());
  return 0;
}

int cmd_count(const util::CliArgs& args) {
  const graph::Csr g = load_graph(args);
  core::Options opt;
  const std::string algo = args.get("algo", "mps");
  if (algo == "mps") {
    opt.algorithm = core::Algorithm::kMps;
    opt.mps.kind = intersect::best_merge_kind();
  } else if (algo == "bmp") {
    opt.algorithm = core::Algorithm::kBmp;
    opt.bmp_range_filter = args.get_bool("rf", false);
  } else if (algo == "m") {
    opt.algorithm = core::Algorithm::kMergeBaseline;
  } else {
    usage("unknown --algo (mps|bmp|m)");
  }
  opt.parallel = !args.get_bool("seq", false);
  opt.num_threads = static_cast<int>(args.get_int("threads", 0));

  util::WallTimer timer;
  const auto counts = opt.algorithm == core::Algorithm::kBmp
                          ? core::count_with_reorder(g, opt)
                          : core::count_common_neighbors(g, opt);
  std::printf("counted %llu slots in %s (%s)\n",
              static_cast<unsigned long long>(counts.size()),
              util::format_seconds(timer.seconds()).c_str(), algo.c_str());
  std::printf("triangles: %llu\n",
              static_cast<unsigned long long>(
                  core::triangle_count_from(counts)));

  const std::string out = args.get("out", "");
  if (!out.empty()) {
    std::ofstream file(out);
    if (!file) usage("cannot open --out file");
    file << "# u v cnt\n";
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      const auto nbrs = g.neighbors(u);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        if (u < nbrs[k]) {
          file << u << ' ' << nbrs[k] << ' '
               << counts[g.offset_begin(u) + k] << '\n';
        }
      }
    }
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

int cmd_triangles(const util::CliArgs& args) {
  const graph::Csr g = load_graph(args);
  const std::string algo = args.get("algo", "merge");
  util::WallTimer timer;
  std::uint64_t triangles = 0;
  if (algo == "merge") {
    triangles = core::count_triangles(g, core::TriangleAlgorithm::kMergeForward);
  } else if (algo == "hash") {
    triangles = core::count_triangles(g, core::TriangleAlgorithm::kHashForward);
  } else if (algo == "all-edge") {
    triangles = core::triangle_count(g);
  } else {
    usage("unknown --algo (merge|hash|all-edge)");
  }
  std::printf("triangles: %llu (%s, %s)\n",
              static_cast<unsigned long long>(triangles), algo.c_str(),
              util::format_seconds(timer.seconds()).c_str());
  return 0;
}

int cmd_verify(const util::CliArgs& args) {
  const graph::Csr g = load_graph(args);
  const std::string structural = g.validate();
  if (!structural.empty()) {
    std::fprintf(stderr, "structural validation FAILED: %s\n",
                 structural.c_str());
    return 1;
  }
  // Deep invariants on top of the shallow pass: reverse-offset
  // consistency and slot round trips (src/check/invariants.hpp).
  const auto deep = check::validate_csr(g);
  if (deep.has_value()) {
    std::fprintf(stderr, "invariant validation FAILED: %s\n", deep->c_str());
    return 1;
  }
  std::printf("structure: ok\n");

  const auto reference = core::count_reference(g);
  struct Variant {
    const char* name;
    core::Options opt;
  };
  std::vector<Variant> variants;
  {
    core::Options o;
    o.algorithm = core::Algorithm::kMergeBaseline;
    variants.push_back({"M (parallel)", o});
    o.algorithm = core::Algorithm::kMps;
    o.mps.kind = intersect::best_merge_kind();
    variants.push_back({"MPS (parallel)", o});
    o.parallel = false;
    variants.push_back({"MPS (sequential)", o});
    o.parallel = true;
    o.algorithm = core::Algorithm::kBmp;
    variants.push_back({"BMP (parallel)", o});
    o.bmp_range_filter = true;
    o.rf_range_scale = 64;
    variants.push_back({"BMP-RF (parallel)", o});
  }
  bool ok = true;
  for (const auto& v : variants) {
    const auto counts = core::count_common_neighbors(g, v.opt);
    const auto diff = core::diff_counts(g, counts, reference);
    if (diff.has_value()) {
      std::fprintf(stderr, "%s: MISMATCH — %s\n", v.name, diff->c_str());
      ok = false;
    } else {
      std::printf("%s: ok\n", v.name);
    }
  }
  std::printf("triangles: %llu\n",
              static_cast<unsigned long long>(
                  core::triangle_count_from(reference)));
  return ok ? 0 : 1;
}

int cmd_scan(const util::CliArgs& args) {
  const graph::Csr g = load_graph(args);
  const scan::Params params{
      .epsilon = args.get_double("eps", 0.5),
      .mu = static_cast<std::uint32_t>(args.get_int("mu", 2)),
  };
  util::WallTimer timer;
  const auto result = scan::cluster(g, params);
  std::printf("SCAN(eps=%.2f, mu=%u): %u clusters, %llu cores, %llu borders, "
              "%llu hubs, %llu outliers (%s)\n",
              params.epsilon, params.mu, result.num_clusters,
              static_cast<unsigned long long>(result.count_role(scan::Role::kCore)),
              static_cast<unsigned long long>(result.count_role(scan::Role::kBorder)),
              static_cast<unsigned long long>(result.count_role(scan::Role::kHub)),
              static_cast<unsigned long long>(
                  result.count_role(scan::Role::kOutlier)),
              util::format_seconds(timer.seconds()).c_str());

  const std::string out = args.get("out", "");
  if (!out.empty()) {
    std::ofstream file(out);
    if (!file) usage("cannot open --out file");
    file << "# vertex cluster role(0=core,1=border,2=hub,3=outlier)\n";
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      file << v << ' '
           << (result.cluster[v] == scan::Result::kUnclustered
                   ? -1
                   : static_cast<long>(result.cluster[v]))
           << ' ' << static_cast<int>(result.role[v]) << '\n';
    }
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  const util::CliArgs args(argc - 1, argv + 1);
  if (command == "generate") return cmd_generate(args);
  if (command == "convert") return cmd_convert(args);
  if (command == "stats") return cmd_stats(args);
  if (command == "count") return cmd_count(args);
  if (command == "triangles") return cmd_triangles(args);
  if (command == "scan") return cmd_scan(args);
  if (command == "verify") return cmd_verify(args);
  usage("unknown command");
}
