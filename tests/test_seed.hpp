// Single knob for every randomized test in the suite: AECNC_TEST_SEED.
//
// Unset (the default), mix_seed(base) returns `base` unchanged, so the
// suite runs the exact baked-in seeds the goldens and statistical
// assertions were tuned against. Set to any integer, it perturbs every
// PRNG stream in graph_test / property_test / differential_test through a
// splitmix64 combine — a cheap way to widen randomized coverage in CI or
// to re-roll a flaky repro. The resolved value is logged to stderr once
// per binary so the exact run can always be replayed:
//
//   AECNC_TEST_SEED=12345 ctest -R property_test
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace aecnc::testsupport {

// Raw override value: 0 when AECNC_TEST_SEED is unset/empty (0 is also a
// valid explicit value and deliberately equivalent to "unset").
inline std::uint64_t test_seed() {
  static const std::uint64_t seed = [] {
    std::uint64_t s = 0;
    const char* env = std::getenv("AECNC_TEST_SEED");
    if (env != nullptr && *env != '\0') {
      s = std::strtoull(env, nullptr, 0);
    }
    std::fprintf(stderr, "[test_seed] AECNC_TEST_SEED=%llu%s\n",
                 static_cast<unsigned long long>(s),
                 s == 0 ? " (default streams)" : "");
    return s;
  }();
  return seed;
}

// Derive the seed a test actually feeds its PRNG. Identity when no
// override is active; otherwise a splitmix64 finalizer over
// (override, base) so distinct base seeds keep distinct streams.
inline std::uint64_t mix_seed(std::uint64_t base) {
  const std::uint64_t s = test_seed();
  if (s == 0) return base;
  std::uint64_t z = s + base * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace aecnc::testsupport
