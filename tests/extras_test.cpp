// Tests for the related-work comparators (hash index, sparse bitmap),
// the dedicated triangle counters, the coarse-grained parallel skeleton,
// and the SCAN clustering module.
#include <gtest/gtest.h>

#include <set>

#include "core/api.hpp"
#include "core/comparators.hpp"
#include "core/triangle.hpp"
#include "core/verify.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "intersect/hash_index.hpp"
#include "intersect/merge.hpp"
#include "intersect/sparse_bitmap.hpp"
#include "scan/scan.hpp"
#include "util/prng.hpp"

namespace aecnc {
namespace {

using graph::Csr;
using Set = std::vector<VertexId>;

Set random_sorted_set(std::size_t size, VertexId universe,
                      util::Xoshiro256& rng) {
  std::set<VertexId> s;
  while (s.size() < size) s.insert(rng.below(universe));
  return Set(s.begin(), s.end());
}

// --- HashIndex ---------------------------------------------------------------

TEST(HashIndex, ContainsExactlyTheIndexedElements) {
  util::Xoshiro256 rng(1);
  const Set elems = random_sorted_set(300, 100000, rng);
  const intersect::HashIndex index(elems);
  for (const VertexId v : elems) EXPECT_TRUE(index.contains(v));
  for (int i = 0; i < 2000; ++i) {
    const VertexId v = rng.below(100000);
    EXPECT_EQ(index.contains(v), std::binary_search(elems.begin(), elems.end(), v));
  }
}

TEST(HashIndex, EmptyIndexContainsNothing) {
  const intersect::HashIndex index;
  EXPECT_FALSE(index.contains(0));
  EXPECT_FALSE(index.contains(12345));
}

TEST(HashIndex, RebuildReplacesContents) {
  intersect::HashIndex index(Set{1, 2, 3});
  EXPECT_TRUE(index.contains(2));
  index.rebuild(Set{7, 8});
  EXPECT_FALSE(index.contains(2));
  EXPECT_TRUE(index.contains(7));
}

TEST(HashIndex, IntersectMatchesReference) {
  util::Xoshiro256 rng(2);
  for (int round = 0; round < 50; ++round) {
    const Set a = random_sorted_set(1 + rng.below(200), 2000, rng);
    const Set b = random_sorted_set(1 + rng.below(200), 2000, rng);
    EXPECT_EQ(intersect::hash_count(a, b), intersect::reference_count(a, b));
  }
}

TEST(HashIndex, CollidingKeysAllFound) {
  // Dense universe forces many adjacent probe chains.
  Set elems;
  for (VertexId v = 0; v < 512; ++v) elems.push_back(v);
  const intersect::HashIndex index(elems);
  for (const VertexId v : elems) EXPECT_TRUE(index.contains(v));
  EXPECT_FALSE(index.contains(512));
}

// --- SparseBitmap -------------------------------------------------------------

TEST(SparseBitmap, BuildAndContains) {
  const Set elems = {0, 1, 63, 64, 65, 4096, 100000};
  const intersect::SparseBitmap sb(elems);
  EXPECT_EQ(sb.cardinality(), elems.size());
  // Elements 0,1,63 share a word; 64,65 share the next.
  EXPECT_EQ(sb.num_words(), 4u);
  for (const VertexId v : elems) EXPECT_TRUE(sb.contains(v));
  EXPECT_FALSE(sb.contains(2));
  EXPECT_FALSE(sb.contains(66));
  EXPECT_FALSE(sb.contains(99999));
}

TEST(SparseBitmap, EmptySet) {
  const intersect::SparseBitmap sb{Set{}};
  EXPECT_EQ(sb.cardinality(), 0u);
  EXPECT_EQ(sb.num_words(), 0u);
  EXPECT_FALSE(sb.contains(0));
}

TEST(SparseBitmap, IntersectMatchesReference) {
  util::Xoshiro256 rng(3);
  for (int round = 0; round < 60; ++round) {
    const Set a = random_sorted_set(1 + rng.below(300), 5000, rng);
    const Set b = random_sorted_set(1 + rng.below(300), 5000, rng);
    const intersect::SparseBitmap sa(a), sb(b);
    EXPECT_EQ(intersect::sparse_bitmap_intersect_count(sa, sb),
              intersect::reference_count(a, b));
  }
}

TEST(SparseBitmap, DenseSetsCompressWell) {
  // 64 consecutive ids -> one word.
  Set dense;
  for (VertexId v = 128; v < 192; ++v) dense.push_back(v);
  const intersect::SparseBitmap sb(dense);
  EXPECT_EQ(sb.num_words(), 1u);
  EXPECT_EQ(sb.cardinality(), 64u);
}

TEST(SparseBitmapIndex, CoversWholeGraph) {
  const Csr g = Csr::from_edge_list(graph::erdos_renyi(400, 3000, 5));
  const intersect::SparseBitmapIndex index(g);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_EQ(index.of(u).cardinality(), g.degree(u));
  }
  EXPECT_GT(index.memory_bytes(), 0u);
}

// --- Comparator all-edge counters ---------------------------------------------

class ComparatorTest : public ::testing::TestWithParam<int> {};

TEST_P(ComparatorTest, MatchesBruteForce) {
  static const std::vector<Csr> graphs = [] {
    std::vector<Csr> gs;
    gs.push_back(Csr::from_edge_list(graph::clique(12)));
    gs.push_back(Csr::from_edge_list(graph::chung_lu_power_law(700, 5000, 2.2, 11)));
    gs.push_back(graph::reorder_degree_descending(
        graph::make_dataset(graph::DatasetId::kTwitter, 5e-5)));
    return gs;
  }();
  const Csr& g = graphs[static_cast<std::size_t>(GetParam())];
  const auto expected = core::count_reference(g);
  EXPECT_FALSE(
      core::diff_counts(g, core::count_sparse_bitmap(g), expected).has_value());
  EXPECT_FALSE(
      core::diff_counts(g, core::count_hash_index(g), expected).has_value());
}

INSTANTIATE_TEST_SUITE_P(Graphs, ComparatorTest, ::testing::Range(0, 3));

// --- Triangle counting ---------------------------------------------------------

TEST(Triangles, KnownValues) {
  EXPECT_EQ(core::count_triangles(Csr::from_edge_list(graph::clique(4))), 4u);
  EXPECT_EQ(core::count_triangles(Csr::from_edge_list(graph::clique(10))), 120u);
  graph::EdgeList path(6);
  for (VertexId v = 0; v + 1 < 6; ++v) path.add(v, v + 1);
  EXPECT_EQ(core::count_triangles(Csr::from_edge_list(path)), 0u);
}

TEST(Triangles, MergeAndHashAgreeWithAllEdgeDerivation) {
  const Csr g = Csr::from_edge_list(graph::chung_lu_power_law(800, 7000, 2.1, 13));
  const auto expected = core::triangle_count(g);
  EXPECT_EQ(core::count_triangles(g, core::TriangleAlgorithm::kMergeForward),
            expected);
  EXPECT_EQ(core::count_triangles(g, core::TriangleAlgorithm::kHashForward),
            expected);
}

TEST(Triangles, ParallelThreadCountsAgree) {
  const Csr g = Csr::from_edge_list(graph::erdos_renyi(600, 6000, 17));
  const auto t1 = core::count_triangles(g, core::TriangleAlgorithm::kMergeForward, 1);
  for (const int t : {2, 4}) {
    EXPECT_EQ(core::count_triangles(g, core::TriangleAlgorithm::kMergeForward, t), t1);
  }
}

TEST(Triangles, PerVertexSumsToThreeTimesTotal) {
  const Csr g = Csr::from_edge_list(graph::chung_lu_power_law(500, 4000, 2.3, 19));
  const auto tri = core::per_vertex_triangles(g);
  std::uint64_t sum = 0;
  for (const auto t : tri) sum += t;
  EXPECT_EQ(sum, 3 * core::count_triangles(g));
}

TEST(Triangles, PerVertexOnClique) {
  const auto tri = core::per_vertex_triangles(Csr::from_edge_list(graph::clique(6)));
  // Each vertex of K6 is in C(5,2) = 10 triangles.
  for (const auto t : tri) EXPECT_EQ(t, 10u);
}

// --- Coarse-grained parallel skeleton -----------------------------------------

class CoarseGrainTest : public ::testing::TestWithParam<core::Algorithm> {};

TEST_P(CoarseGrainTest, MatchesFineGrained) {
  const Csr g = graph::reorder_degree_descending(
      Csr::from_edge_list(graph::chung_lu_power_law(900, 8000, 2.1, 23)));
  core::Options fine;
  fine.algorithm = GetParam();
  fine.bmp_range_filter = GetParam() == core::Algorithm::kBmp;
  fine.rf_range_scale = 64;
  core::Options coarse = fine;
  coarse.granularity = core::TaskGranularity::kCoarseGrained;
  const auto a = core::count_common_neighbors(g, fine);
  const auto b = core::count_common_neighbors(g, coarse);
  EXPECT_FALSE(core::diff_counts(g, b, a).has_value());
}

INSTANTIATE_TEST_SUITE_P(Algos, CoarseGrainTest,
                         ::testing::Values(core::Algorithm::kMergeBaseline,
                                           core::Algorithm::kMps,
                                           core::Algorithm::kBmp),
                         [](const auto& info) {
                           return std::string(
                               core::algorithm_name(info.param));
                         });

// --- SCAN clustering ------------------------------------------------------------

Csr planted_communities(VertexId communities, VertexId size,
                        std::uint64_t seed) {
  graph::EdgeList edges(communities * size);
  util::Xoshiro256 rng(seed);
  for (VertexId c = 0; c < communities; ++c) {
    const VertexId base = c * size;
    for (VertexId i = 0; i < size; ++i) {
      for (VertexId j = i + 1; j < size; ++j) {
        if (rng.uniform() < 0.9) edges.add(base + i, base + j);
      }
    }
  }
  // Sparse inter-community bridges.
  for (VertexId c = 0; c + 1 < communities; ++c) {
    edges.add(c * size, (c + 1) * size);
  }
  return Csr::from_edge_list(std::move(edges));
}

TEST(Scan, SimilarityFormula) {
  const Csr g = Csr::from_edge_list(graph::clique(4));
  // In K4: cnt = 2 for every edge, degrees 3 -> sigma = 4/4 = 1.
  EXPECT_DOUBLE_EQ(scan::similarity(g, 0, 1, 2), 1.0);
}

TEST(Scan, RecoversPlantedCommunities) {
  const Csr g = planted_communities(8, 24, 31);
  const auto result = scan::cluster(g, {.epsilon = 0.6, .mu = 3});
  EXPECT_EQ(result.num_clusters, 8u);
  // All vertices of one community share one cluster id.
  for (VertexId c = 0; c < 8; ++c) {
    const auto id = result.cluster[c * 24];
    ASSERT_NE(id, scan::Result::kUnclustered);
    for (VertexId i = 1; i < 24; ++i) {
      EXPECT_EQ(result.cluster[c * 24 + i], id) << "community " << c;
    }
  }
}

TEST(Scan, EpsilonOneKeepsOnlyPerfectEdges) {
  // A triangle has sigma = 1 edges only when all closed neighborhoods
  // coincide; K4 qualifies, a path does not.
  const auto k4 = scan::cluster(Csr::from_edge_list(graph::clique(4)),
                                {.epsilon = 1.0, .mu = 2});
  EXPECT_EQ(k4.num_clusters, 1u);
  graph::EdgeList path(4);
  for (VertexId v = 0; v + 1 < 4; ++v) path.add(v, v + 1);
  const auto p = scan::cluster(Csr::from_edge_list(path),
                               {.epsilon = 1.0, .mu = 2});
  EXPECT_EQ(p.num_clusters, 0u);
}

TEST(Scan, HubBridgesTwoClusters) {
  // Two K5s joined through one extra vertex adjacent to both.
  graph::EdgeList edges(11);
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = i + 1; j < 5; ++j) {
      edges.add(i, j);
      edges.add(5 + i, 5 + j);
    }
  }
  const VertexId hub = 10;
  edges.add(hub, 0);
  edges.add(hub, 5);
  const Csr g = Csr::from_edge_list(std::move(edges));
  const auto result = scan::cluster(g, {.epsilon = 0.7, .mu = 3});
  EXPECT_EQ(result.num_clusters, 2u);
  EXPECT_EQ(result.cluster[hub], scan::Result::kUnclustered);
  EXPECT_EQ(result.role[hub], scan::Role::kHub);
}

TEST(Scan, IsolatedVertexIsOutlier) {
  graph::EdgeList edges(5);
  edges.add(0, 1);
  edges.add(1, 2);
  edges.add(0, 2);
  edges.ensure_vertices(5);
  const Csr g = Csr::from_edge_list(std::move(edges));
  const auto result = scan::cluster(g, {.epsilon = 0.5, .mu = 2});
  EXPECT_EQ(result.role[4], scan::Role::kOutlier);
  EXPECT_EQ(result.cluster[4], scan::Result::kUnclustered);
}

TEST(Scan, CountAlgorithmDoesNotChangeClustering) {
  const Csr g = planted_communities(4, 16, 37);
  core::Options mps;
  core::Options bmp;
  bmp.algorithm = core::Algorithm::kBmp;
  const auto a = scan::cluster(g, {.epsilon = 0.55, .mu = 3}, mps);
  const auto b = scan::cluster(g, {.epsilon = 0.55, .mu = 3}, bmp);
  EXPECT_EQ(a.cluster, b.cluster);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
}

TEST(Scan, RoleCountsPartitionTheGraph) {
  const Csr g = graph::reorder_degree_descending(
      graph::make_dataset(graph::DatasetId::kLiveJournal, 2e-4));
  const auto result = scan::cluster(g, {.epsilon = 0.4, .mu = 3});
  const auto total = result.count_role(scan::Role::kCore) +
                     result.count_role(scan::Role::kBorder) +
                     result.count_role(scan::Role::kHub) +
                     result.count_role(scan::Role::kOutlier);
  EXPECT_EQ(total, g.num_vertices());
  // Cores and borders are exactly the clustered vertices.
  std::uint64_t clustered = 0;
  for (const auto c : result.cluster) {
    clustered += (c != scan::Result::kUnclustered);
  }
  EXPECT_EQ(clustered, result.count_role(scan::Role::kCore) +
                           result.count_role(scan::Role::kBorder));
}

}  // namespace
}  // namespace aecnc
