// Tests for the transport layer (src/net/): frame codec round-trips and
// corruption handling, the in-process transport's bounded mailboxes and
// phase contract, the fault-injection decorator's absorbed/surfaced
// semantics, and the aggregator's reliability layer — including a
// regression pinning TransportStats totals against a hand-computed
// schedule (delivered batches are counted exactly once, however many
// backpressure round-trips they take).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/faulty.hpp"
#include "net/frame.hpp"
#include "net/inproc.hpp"
#include "net/transport.hpp"
#include "shard/aggregator.hpp"
#include "shard/message.hpp"
#include "test_seed.hpp"

namespace aecnc {
namespace {

shard::Message make_message(std::uint32_t u, std::uint32_t v,
                            std::uint64_t slot, std::uint64_t value) {
  shard::Message m;
  m.type = shard::MessageType::kCountReply;
  m.u = u;
  m.v = v;
  m.slot = slot;
  m.value = value;
  return m;
}

net::Frame make_data_frame(int src, int dst, std::uint64_t seq,
                           std::size_t n) {
  net::Frame f;
  f.type = net::FrameType::kData;
  f.src = static_cast<std::uint8_t>(src);
  f.dst = static_cast<std::uint8_t>(dst);
  f.seq = seq;
  for (std::size_t i = 0; i < n; ++i) {
    f.messages.push_back(make_message(static_cast<std::uint32_t>(i), 7,
                                      100 + i, 3 * i));
  }
  return f;
}

TEST(FrameCodec, DataFrameRoundTrip) {
  const net::Frame in = make_data_frame(1, 2, 42, 5);
  std::vector<std::uint8_t> wire;
  net::encode_frame(in, wire);
  EXPECT_EQ(wire.size(), net::encoded_size(in));
  EXPECT_EQ(wire.size(),
            net::kFrameHeaderBytes + 5 * net::kMessageWireBytes);

  net::FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  net::Frame out;
  ASSERT_EQ(dec.next(out), net::FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.type, net::FrameType::kData);
  EXPECT_EQ(out.src, 1);
  EXPECT_EQ(out.dst, 2);
  EXPECT_EQ(out.seq, 42u);
  ASSERT_EQ(out.messages.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out.messages[i].type, shard::MessageType::kCountReply);
    EXPECT_EQ(out.messages[i].u, i);
    EXPECT_EQ(out.messages[i].v, 7u);
    EXPECT_EQ(out.messages[i].slot, 100 + i);
    EXPECT_EQ(out.messages[i].value, 3 * i);
  }
  EXPECT_EQ(dec.next(out), net::FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameCodec, ControlFrameRoundTripAndBytewiseFeed) {
  net::Frame in;
  in.type = net::FrameType::kResult;
  in.src = 3;
  in.dst = net::kParentRank;
  in.seq = 9;
  net::put_u32(in.payload, 3);
  net::put_u64(in.payload, 0x1122334455667788ull);
  net::put_u16(in.payload, 0xBEEF);
  std::vector<std::uint8_t> wire;
  net::encode_frame(in, wire);

  // One byte at a time: the decoder must report kNeedMore until the
  // final byte lands, then yield the identical frame.
  net::FrameDecoder dec;
  net::Frame out;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    dec.feed(&wire[i], 1);
    ASSERT_EQ(dec.next(out), net::FrameDecoder::Status::kNeedMore)
        << "byte " << i;
  }
  dec.feed(&wire[wire.size() - 1], 1);
  ASSERT_EQ(dec.next(out), net::FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.type, net::FrameType::kResult);
  EXPECT_EQ(out.dst, net::kParentRank);
  ASSERT_EQ(out.payload.size(), in.payload.size());
  EXPECT_EQ(net::get_u32(out.payload.data()), 3u);
  EXPECT_EQ(net::get_u64(out.payload.data() + 4), 0x1122334455667788ull);
  EXPECT_EQ(net::get_u16(out.payload.data() + 12), 0xBEEF);
}

TEST(FrameCodec, TwoFramesInOneFeed) {
  std::vector<std::uint8_t> wire;
  net::encode_frame(make_data_frame(0, 1, 1, 2), wire);
  net::encode_frame(make_data_frame(0, 1, 2, 3), wire);
  net::FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  net::Frame out;
  ASSERT_EQ(dec.next(out), net::FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.seq, 1u);
  ASSERT_EQ(dec.next(out), net::FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.seq, 2u);
  EXPECT_EQ(dec.next(out), net::FrameDecoder::Status::kNeedMore);
}

// Each corruption must turn the stream into a terminal typed error —
// never an over-read, an allocation, or a silently skipped frame.
TEST(FrameCodec, CorruptionIsTerminal) {
  std::vector<std::uint8_t> clean;
  net::encode_frame(make_data_frame(0, 1, 5, 3), clean);

  struct Case {
    const char* name;
    std::size_t offset;  // byte to clobber
  };
  // magic[0..3] ver[4] type[5] src[6] dst[7] seq[8..15] len[16..19]
  // checksum[20..23]
  const Case cases[] = {
      {"magic", 0},
      {"version", 4},
      {"type", 5},
      {"checksum", 20},
      {"payload", net::kFrameHeaderBytes + 3},
  };
  for (const Case& c : cases) {
    std::vector<std::uint8_t> wire = clean;
    wire[c.offset] ^= 0x5A;
    net::FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    net::Frame out;
    EXPECT_EQ(dec.next(out), net::FrameDecoder::Status::kError) << c.name;
    EXPECT_FALSE(dec.error().empty()) << c.name;
    // Terminal: further feeds are ignored, the error sticks.
    dec.feed(clean.data(), clean.size());
    EXPECT_EQ(dec.next(out), net::FrameDecoder::Status::kError) << c.name;
    EXPECT_EQ(dec.buffered(), 0u) << c.name;
  }
}

TEST(FrameCodec, OversizedLengthPrefixRejectedBeforeAllocation) {
  std::vector<std::uint8_t> wire;
  net::encode_frame(make_data_frame(0, 1, 1, 1), wire);
  // Clobber the length prefix with 256 MiB; the decoder must error out
  // on the header alone instead of reserving the claimed payload.
  const std::uint32_t huge = 256u << 20;
  std::memcpy(wire.data() + 16, &huge, sizeof(huge));
  net::FrameDecoder dec;
  dec.feed(wire.data(), net::kFrameHeaderBytes);
  net::Frame out;
  EXPECT_EQ(dec.next(out), net::FrameDecoder::Status::kError);
}

TEST(FrameCodec, DataBodyMustBeWholeMessages) {
  net::Frame f = make_data_frame(0, 1, 1, 2);
  std::vector<std::uint8_t> wire;
  net::encode_frame(f, wire);
  // A data payload that is not a multiple of the message wire size is a
  // protocol error even if its checksum were fixed up.
  wire[16] = static_cast<std::uint8_t>(net::kMessageWireBytes + 1);
  net::FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  net::Frame out;
  EXPECT_EQ(dec.next(out), net::FrameDecoder::Status::kError);
}

TEST(FrameCodec, EncodeRejectsOverlongPayload) {
  net::Frame f;
  f.type = net::FrameType::kError;
  f.payload.assign(net::kMaxFramePayload + 1, 0);
  std::vector<std::uint8_t> wire;
  EXPECT_THROW(net::encode_frame(f, wire), std::length_error);
}

TEST(ErrorKinds, NamesArePinned) {
  // The CI smoke legs grep stderr for these exact strings.
  EXPECT_STREQ(net::error_kind_name(net::ErrorKind::kTimeout), "timeout");
  EXPECT_STREQ(net::error_kind_name(net::ErrorKind::kPeerDead), "peer-dead");
  EXPECT_STREQ(net::error_kind_name(net::ErrorKind::kLostFrame),
               "lost-frame");
  EXPECT_STREQ(net::error_kind_name(net::ErrorKind::kBadFrame), "bad-frame");
  EXPECT_STREQ(net::error_kind_name(net::ErrorKind::kRetriesExhausted),
               "retries-exhausted");
  EXPECT_STREQ(net::error_kind_name(net::ErrorKind::kAborted), "aborted");
  EXPECT_STREQ(net::error_kind_name(net::ErrorKind::kProtocol), "protocol");
  EXPECT_STREQ(net::error_kind_name(net::ErrorKind::kSystem), "system");
  const net::TransportError err(net::ErrorKind::kPeerDead, "gone");
  EXPECT_EQ(err.kind(), net::ErrorKind::kPeerDead);
  EXPECT_STREQ(err.what(), "peer-dead: gone");
}

TEST(InprocTransport, DeliveryBackpressureAndPhase) {
  net::InprocTransport t(2, /*inbox_capacity=*/1);
  EXPECT_EQ(t.num_endpoints(), 2);

  net::Frame f = make_data_frame(0, 1, 1, 4);
  ASSERT_EQ(t.try_send(f), net::SendStatus::kDelivered);
  net::Frame g = make_data_frame(0, 1, 2, 1);
  // Inbox full: the frame must be left intact for the retry.
  ASSERT_EQ(t.try_send(g), net::SendStatus::kBackpressure);
  EXPECT_EQ(g.messages.size(), 1u);

  net::Frame got;
  ASSERT_TRUE(t.try_recv(1, got));
  EXPECT_EQ(got.seq, 1u);
  EXPECT_EQ(got.messages.size(), 4u);
  ASSERT_EQ(t.try_send(g), net::SendStatus::kDelivered);
  ASSERT_TRUE(t.try_recv(1, got));
  EXPECT_EQ(got.seq, 2u);
  EXPECT_FALSE(t.try_recv(1, got));
  EXPECT_FALSE(t.try_recv(0, got));

  // Two-call phase contract: not done until every endpoint arrives.
  t.finish_phase(0);
  EXPECT_FALSE(t.phase_done(0));
  t.finish_phase(1);
  EXPECT_TRUE(t.phase_done(0));
  EXPECT_TRUE(t.phase_done(1));

  const net::TransportStats stats = t.stats();
  EXPECT_EQ(stats.messages, 5u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.bytes, 5 * sizeof(shard::Message));
}

TEST(InprocTransport, PoisonThrowsTypedErrorEverywhere) {
  net::InprocTransport t(2, 4);
  t.poison(net::ErrorKind::kPeerDead, "shard 1 died");
  net::Frame f = make_data_frame(0, 1, 1, 1);
  try {
    (void)t.try_send(f);
    FAIL() << "poisoned try_send did not throw";
  } catch (const net::TransportError& e) {
    EXPECT_EQ(e.kind(), net::ErrorKind::kPeerDead);
    EXPECT_STREQ(e.what(), "peer-dead: shard 1 died");
  }
  net::Frame out;
  EXPECT_THROW((void)t.try_recv(0, out), net::TransportError);
  EXPECT_THROW((void)t.phase_done(0), net::TransportError);
  // First poison wins: a later kAborted cascade keeps the root cause.
  t.poison(net::ErrorKind::kAborted, "cascade");
  try {
    (void)t.try_recv(1, out);
    FAIL() << "poisoned try_recv did not throw";
  } catch (const net::TransportError& e) {
    EXPECT_EQ(e.kind(), net::ErrorKind::kPeerDead);
  }
}

TEST(FaultyTransport, DropSurfacesAsTransient) {
  net::InprocTransport inner(2, 8);
  net::FaultPlan plan;
  plan.seed = testsupport::mix_seed(0xD09);
  plan.drop_rate = 1.0;  // every send drops
  net::FaultyTransport t(inner, plan);
  net::Frame f = make_data_frame(0, 1, 1, 1);
  EXPECT_EQ(t.try_send(f), net::SendStatus::kTransient);
  // The frame is untouched, exactly as the retry contract requires.
  EXPECT_EQ(f.messages.size(), 1u);
  EXPECT_EQ(t.fault_counts().drops, 1u);
  net::Frame out;
  EXPECT_FALSE(t.try_recv(1, out));
}

TEST(FaultyTransport, DuplicateDeliversSameSequenceTwice) {
  net::InprocTransport inner(2, 8);
  net::FaultPlan plan;
  plan.seed = testsupport::mix_seed(0xD0B);
  plan.dup_rate = 1.0;
  net::FaultyTransport t(inner, plan);
  net::Frame f = make_data_frame(0, 1, 7, 2);
  ASSERT_EQ(t.try_send(f), net::SendStatus::kDelivered);
  net::Frame a, b, c;
  ASSERT_TRUE(t.try_recv(1, a));
  ASSERT_TRUE(t.try_recv(1, b));
  EXPECT_EQ(a.seq, 7u);
  EXPECT_EQ(b.seq, 7u);
  EXPECT_EQ(a.messages.size(), b.messages.size());
  EXPECT_FALSE(t.try_recv(1, c));
  EXPECT_EQ(t.fault_counts().dups, 1u);
}

TEST(FaultyTransport, DelayPreservesPerLinkOrder) {
  net::InprocTransport inner(2, 64);
  net::FaultPlan plan;
  plan.seed = testsupport::mix_seed(0xDE1);
  plan.delay_rate = 1.0;  // first send is held; later sends queue behind
  plan.delay_max_ops = 3;
  net::FaultyTransport t(inner, plan);
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    net::Frame f = make_data_frame(0, 1, seq, 1);
    ASSERT_EQ(t.try_send(f), net::SendStatus::kDelivered) << seq;
  }
  t.finish_phase(0);
  t.finish_phase(1);
  // Poll both endpoints the way the engine does: the sender's polls
  // drive its held frames out before it arrives at the inner barrier.
  bool d0 = false;
  bool d1 = false;
  while (!d0 || !d1) {
    if (!d0) d0 = t.phase_done(0);
    if (!d1) d1 = t.phase_done(1);
  }
  // Everything released by the phase end, still in sequence order.
  net::Frame out;
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    ASSERT_TRUE(t.try_recv(1, out)) << seq;
    EXPECT_EQ(out.seq, seq);
  }
  EXPECT_FALSE(t.try_recv(1, out));
  EXPECT_GT(t.fault_counts().delays, 0u);
}

TEST(FaultyTransport, KillThrowsPeerDeadAtScheduledOp) {
  net::InprocTransport inner(2, 8);
  net::FaultPlan plan;
  plan.seed = testsupport::mix_seed(0x1C0);
  plan.kill_endpoint = 0;
  plan.kill_after_ops = 3;
  net::FaultyTransport t(inner, plan);
  net::Frame f = make_data_frame(0, 1, 1, 1);
  ASSERT_EQ(t.try_send(f), net::SendStatus::kDelivered);
  f = make_data_frame(0, 1, 2, 1);
  ASSERT_EQ(t.try_send(f), net::SendStatus::kDelivered);
  f = make_data_frame(0, 1, 3, 1);
  try {
    (void)t.try_send(f);
    FAIL() << "kill schedule did not fire";
  } catch (const net::TransportError& e) {
    EXPECT_EQ(e.kind(), net::ErrorKind::kPeerDead);
  }
}

// The satellite regression: TransportStats totals pinned against a
// hand-computed schedule. Tiny inbox (capacity 1) forces backpressure;
// the delivered-batch count must not double-count the re-queued batch.
TEST(Aggregator, StatsMatchHandComputedSchedule) {
  net::InprocTransport t(2, /*inbox_capacity=*/1);
  shard::MessageAggregator agg(t, /*flush_messages=*/2);

  // Batch 1: two messages 0 -> 1, flushed and delivered.
  EXPECT_FALSE(agg.append(0, 1, make_message(1, 2, 10, 1)));
  EXPECT_TRUE(agg.append(0, 1, make_message(3, 4, 11, 1)));  // threshold
  ASSERT_TRUE(agg.try_flush(0, 1));

  // Batch 2: inbox still holds batch 1 -> backpressure, twice. The
  // outbox must stay intact, and nothing may be counted as delivered.
  EXPECT_FALSE(agg.append(0, 1, make_message(5, 6, 12, 2)));
  EXPECT_TRUE(agg.append(0, 1, make_message(7, 8, 13, 2)));
  ASSERT_FALSE(agg.try_flush(0, 1));
  ASSERT_FALSE(agg.try_flush(0, 1));

  // Receiver drains batch 1; the retried flush then delivers batch 2.
  shard::MessageAggregator::Batch got;
  ASSERT_TRUE(agg.try_pop(1, got));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].slot, 10u);
  ASSERT_TRUE(agg.try_flush(0, 1));
  ASSERT_TRUE(agg.try_pop(1, got));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1].slot, 13u);

  // Empty flushes are free: no batch, no backpressure.
  ASSERT_TRUE(agg.try_flush(0, 1));
  ASSERT_TRUE(agg.outboxes_empty(0));

  const net::TransportStats stats = agg.stats();
  EXPECT_EQ(stats.messages, 4u);      // 4 messages total
  EXPECT_EQ(stats.batches, 2u);       // 2 delivered batches, counted ONCE
  EXPECT_EQ(stats.backpressure, 2u);  // the two refused flushes
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.dups_dropped, 0u);
  EXPECT_EQ(stats.bytes, 4 * sizeof(shard::Message));
}

TEST(Aggregator, OversizedBoxIsChunkedAtTheWireBound) {
  // Sustained backpressure can grow a box past what one frame may carry
  // (encode_frame throws at kMaxFramePayload); the flush must split it
  // into several in-order frames, each with its own sequence number,
  // instead of tripping the wire-bound guard.
  constexpr std::size_t kMaxBatch =
      net::kMaxFramePayload / net::kMessageWireBytes;
  const std::size_t total = kMaxBatch + 7;
  net::InprocTransport t(2, /*inbox_capacity=*/8);
  shard::MessageAggregator agg(t, /*flush_messages=*/total + 1);
  for (std::size_t i = 0; i < total; ++i) {
    agg.append(0, 1, make_message(static_cast<std::uint32_t>(i), 0, i, 1));
  }
  ASSERT_TRUE(agg.try_flush(0, 1));
  ASSERT_TRUE(agg.outboxes_empty(0));

  shard::MessageAggregator::Batch all, batch;
  std::size_t frames = 0;
  while (agg.try_pop(1, batch)) {
    ++frames;
    EXPECT_LE(batch.size(), kMaxBatch);
    all.insert(all.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(frames, 2u);
  ASSERT_EQ(all.size(), total);
  for (std::size_t i = 0; i < total; ++i) {
    ASSERT_EQ(all[i].slot, i) << "message order broken at " << i;
  }
  EXPECT_EQ(agg.stats().batches, 2u);
}

TEST(Aggregator, TransientFaultsRetriedThenExhausted) {
  net::InprocTransport inner(2, 8);
  net::FaultPlan plan;
  plan.seed = testsupport::mix_seed(0x757);
  plan.drop_rate = 1.0;  // every send drops: retries must exhaust
  net::FaultyTransport t(inner, plan);
  net::RetryPolicy retry;
  retry.max_attempts = 3;
  retry.backoff_init_us = 1;
  retry.backoff_max_us = 2;
  shard::MessageAggregator agg(t, /*flush_messages=*/1, retry);
  ASSERT_TRUE(agg.append(0, 1, make_message(1, 2, 3, 4)));
  try {
    (void)agg.try_flush(0, 1);
    FAIL() << "retry budget did not exhaust";
  } catch (const net::TransportError& e) {
    EXPECT_EQ(e.kind(), net::ErrorKind::kRetriesExhausted);
  }
  const net::TransportStats stats = agg.stats();
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.batches, 0u);  // never delivered, never counted
}

TEST(Aggregator, DuplicatesDroppedBySequence) {
  net::InprocTransport inner(2, 16);
  net::FaultPlan plan;
  plan.seed = testsupport::mix_seed(0xDD);
  plan.dup_rate = 1.0;  // every frame arrives twice
  net::FaultyTransport t(inner, plan);
  shard::MessageAggregator agg(t, /*flush_messages=*/1);
  ASSERT_TRUE(agg.append(0, 1, make_message(1, 1, 1, 1)));
  ASSERT_TRUE(agg.try_flush(0, 1));
  ASSERT_TRUE(agg.append(0, 1, make_message(2, 2, 2, 2)));
  ASSERT_TRUE(agg.try_flush(0, 1));

  shard::MessageAggregator::Batch got;
  ASSERT_TRUE(agg.try_pop(1, got));
  EXPECT_EQ(got[0].slot, 1u);
  ASSERT_TRUE(agg.try_pop(1, got));
  EXPECT_EQ(got[0].slot, 2u);
  EXPECT_FALSE(agg.try_pop(1, got));  // both echoes were discarded
  EXPECT_EQ(agg.stats().dups_dropped, 2u);
  // The transport counts every delivered frame, echoes included; the
  // dedup happens above it.
  EXPECT_EQ(agg.stats().messages, 4u);
}

TEST(Aggregator, SequenceGapThrowsLostFrame) {
  net::InprocTransport t(2, 16);
  shard::MessageAggregator agg(t, /*flush_messages=*/1);
  // A frame that skips ahead of the expected per-link sequence — as if
  // the frame before it vanished past the retry layer.
  net::Frame rogue = make_data_frame(0, 1, /*seq=*/5, 1);
  ASSERT_EQ(t.try_send(rogue), net::SendStatus::kDelivered);
  shard::MessageAggregator::Batch got;
  try {
    (void)agg.try_pop(1, got);
    FAIL() << "sequence gap was not detected";
  } catch (const net::TransportError& e) {
    EXPECT_EQ(e.kind(), net::ErrorKind::kLostFrame);
  }
}

}  // namespace
}  // namespace aecnc
