// Tests for the invariant-checking layer: the AECNC_CHECK/AECNC_DCHECK
// macros (death tests) and the deep CSR / count-array validators on both
// valid graphs and deliberately corrupted ones.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "check/check.hpp"
#include "check/invariants.hpp"
#include "core/api.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "util/aligned.hpp"

namespace aecnc {
namespace {

using graph::Csr;

// --- Macros ----------------------------------------------------------------

TEST(CheckMacros, PassingCheckIsSilent) {
  AECNC_CHECK(1 + 1 == 2);
  AECNC_CHECK_EQ(4, 4) << "never rendered";
  AECNC_CHECK_LT(3, 4);
  AECNC_DCHECK(true);
  SUCCEED();
}

TEST(CheckMacros, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  AECNC_CHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckMacrosDeathTest, FailingCheckAbortsWithMessage) {
  EXPECT_DEATH(AECNC_CHECK(2 + 2 == 5) << "arithmetic is broken",
               "AECNC_CHECK failed: 2 \\+ 2 == 5.*arithmetic is broken");
}

TEST(CheckMacrosDeathTest, ComparisonMacroPrintsOperands) {
  const int lhs = 3, rhs = 7;
  EXPECT_DEATH(AECNC_CHECK_EQ(lhs, rhs), "\\(3 vs 7\\)");
}

TEST(CheckMacrosDeathTest, DcheckFollowsBuildType) {
  const bool tripwire = false;
#ifdef NDEBUG
  AECNC_DCHECK(tripwire) << "compiled out in Release";
  SUCCEED();
#else
  EXPECT_DEATH(AECNC_DCHECK(tripwire), "AECNC_CHECK failed: tripwire");
#endif
}

#ifdef NDEBUG
TEST(CheckMacros, DcheckDoesNotEvaluateConditionUnderNdebug) {
  int evaluations = 0;
  AECNC_DCHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 0);
}
#endif

// --- CSR validator ---------------------------------------------------------

TEST(CheckInvariants, ValidGraphsPass) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Csr g =
        Csr::from_edge_list(graph::chung_lu_power_law(200, 1500, 2.2, seed));
    EXPECT_EQ(check::validate_csr(g), std::nullopt);
    // The deep validator accepts everything the shallow one accepts.
    EXPECT_TRUE(g.validate().empty());
  }
  EXPECT_EQ(check::validate_csr(Csr::from_edge_list(graph::clique(8))),
            std::nullopt);
}

Csr raw_graph(std::vector<EdgeId> offsets, std::vector<VertexId> dst) {
  util::AlignedVector<VertexId> aligned(dst.begin(), dst.end());
  return Csr::from_raw(std::move(offsets), std::move(aligned));
}

TEST(CheckInvariants, DetectsUnsortedAdjacency) {
  // Path 0-1, 1-2 with vertex 1's list reversed.
  const Csr g = raw_graph({0, 1, 3, 4}, {1, 2, 0, 1});
  const auto violation = check::validate_csr(g);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("ascending"), std::string::npos) << *violation;
}

TEST(CheckInvariants, DetectsDuplicateNeighbor) {
  const Csr g = raw_graph({0, 2, 4}, {1, 1, 0, 0});
  const auto violation = check::validate_csr(g);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("ascending"), std::string::npos) << *violation;
}

TEST(CheckInvariants, DetectsSelfLoop) {
  const Csr g = raw_graph({0, 2, 3}, {0, 1, 0});
  const auto violation = check::validate_csr(g);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("self loop"), std::string::npos) << *violation;
}

TEST(CheckInvariants, DetectsAsymmetricEdge) {
  // 0 lists 1 but 1 does not list 0.
  const Csr g = raw_graph({0, 1, 1, 2}, {1, 1});
  const auto violation = check::validate_csr(g);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("asymmetric"), std::string::npos) << *violation;
}

TEST(CheckInvariants, DetectsOutOfRangeNeighbor) {
  const Csr g = raw_graph({0, 1, 2}, {9, 0});
  const auto violation = check::validate_csr(g);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("out of range"), std::string::npos) << *violation;
}

TEST(CheckInvariantsDeathTest, CheckCsrAbortsOnCorruption) {
  const Csr g = raw_graph({0, 2, 3}, {0, 1, 0});
  EXPECT_DEATH(check::check_csr(g), "self loop");
}

// --- Count validator -------------------------------------------------------

TEST(CheckInvariants, ValidCountsPass) {
  const Csr g =
      Csr::from_edge_list(graph::chung_lu_power_law(300, 2400, 2.0, 9));
  const auto cnt = core::count_common_neighbors(g);
  EXPECT_EQ(check::validate_counts(g, cnt), std::nullopt);
}

TEST(CheckInvariants, DetectsCountCorruption) {
  const Csr g = Csr::from_edge_list(graph::clique(6));
  auto cnt = core::count_common_neighbors(g);

  auto wrong_size = cnt;
  wrong_size.pop_back();
  EXPECT_TRUE(check::validate_counts(g, wrong_size).has_value());

  auto asymmetric = cnt;
  asymmetric[0] -= 1;  // K6 edges all have count 4; breaking one slot
                       // breaks symmetry before any bound.
  const auto violation = check::validate_counts(g, asymmetric);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("asymmetric"), std::string::npos) << *violation;

  auto overflow = cnt;
  overflow[0] = 100;  // exceeds the min-degree bound of 4.
  const auto bound = check::validate_counts(g, overflow);
  ASSERT_TRUE(bound.has_value());
  EXPECT_NE(bound->find("bound"), std::string::npos) << *bound;
}

}  // namespace
}  // namespace aecnc
