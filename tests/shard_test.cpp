// Tests for the sharded counting engine (src/shard/): partitioner edge
// cases and round-trips, bit-identical differential counts against the
// sequential MPS oracle on every replica generator, backpressure under
// tiny queue bounds, and concurrent readers/runners for the TSan job.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/api.hpp"
#include "core/sequential.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "shard/engine.hpp"
#include "shard/partition.hpp"
#include "test_seed.hpp"

namespace aecnc {
namespace {

graph::Csr star_graph(VertexId leaves) {
  graph::EdgeList edges(leaves + 1);
  for (VertexId v = 1; v <= leaves; ++v) edges.add(0, v);
  return graph::Csr::from_edge_list(std::move(edges));
}

void expect_partition_consistent(const graph::Csr& g,
                                 const shard::Partition2D& part) {
  const auto& bounds = part.boundaries();
  ASSERT_EQ(bounds.size(), static_cast<std::size_t>(part.num_shards()) + 1);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), g.num_vertices());
  EdgeId slots = 0;
  for (int s = 0; s < part.num_shards(); ++s) {
    const shard::ShardBlock& blk = part.shard(s);
    EXPECT_LE(blk.vbegin, blk.vend);
    EXPECT_EQ(blk.num_owned_slots(),
              static_cast<EdgeId>(blk.row_dst.size()));
    EXPECT_EQ(blk.rev.size(), blk.row_dst.size());
    slots += blk.num_owned_slots();
    for (VertexId v = blk.vbegin; v < blk.vend; ++v) {
      EXPECT_EQ(part.owner(v), s) << "vertex " << v;
    }
  }
  EXPECT_EQ(slots, g.num_directed_edges());
}

void expect_roundtrip(const graph::Csr& g, int p) {
  const shard::Partition2D part(g, p);
  expect_partition_consistent(g, part);
  const graph::Csr back = part.reassemble();
  EXPECT_EQ(back.offsets(), g.offsets()) << "p=" << p;
  EXPECT_TRUE(back.dst() == g.dst()) << "p=" << p;
}

TEST(ShardPartition, RoundTripOnGeneratedGraphs) {
  const auto g1 = graph::Csr::from_edge_list(graph::chung_lu_power_law(
      500, 3000, 2.2, testsupport::mix_seed(0xA11CE)));
  const auto g2 = graph::Csr::from_edge_list(
      graph::erdos_renyi(300, 1500, testsupport::mix_seed(0xB0B)));
  for (const graph::Csr* g : {&g1, &g2}) {
    for (const int p : {1, 2, 3, 5, 8}) expect_roundtrip(*g, p);
  }
}

TEST(ShardPartition, EmptyGraphAndShardCountClamping) {
  const graph::Csr empty;
  const shard::Partition2D part(empty, 8);
  EXPECT_EQ(part.num_shards(), 1);  // clamped to the vertex count
  EXPECT_EQ(part.shard(0).num_owned_slots(), 0u);
  const graph::Csr rebuilt = part.reassemble();
  EXPECT_EQ(rebuilt.num_vertices(), 0u);

  // p greater than |V| still produces a valid (partly empty) split.
  const auto tiny = graph::Csr::from_edge_list(
      graph::erdos_renyi(6, 8, testsupport::mix_seed(0x71)));
  expect_roundtrip(tiny, 6);
}

TEST(ShardPartition, IsolatedVerticesAndEmptyShards) {
  // Vertices 10..19 are isolated: a run of repeated offsets that cuts
  // can land inside; some shards end up with zero slots.
  graph::EdgeList edges(20);
  for (VertexId v = 1; v < 10; ++v) edges.add(0, v);
  const auto g = graph::Csr::from_edge_list(std::move(edges));
  for (const int p : {2, 4, 8}) {
    expect_roundtrip(g, p);
    const shard::Partition2D part(g, p);
    for (VertexId v = 10; v < 20; ++v) {
      const int s = part.owner(v);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, part.num_shards());
    }
  }
}

TEST(ShardPartition, AllEdgesInOneBlockSkew) {
  // A star concentrates every slot on the hub's row: the slot-balanced
  // cut makes most shards own vertices but no meaningful edge work.
  const auto g = star_graph(64);
  for (const int p : {2, 4, 8}) {
    expect_roundtrip(g, p);
    const auto oracle = core::count_sequential_mps(g, {});
    shard::ShardConfig cfg;
    cfg.num_shards = p;
    EXPECT_EQ(shard::count_sharded(g, cfg), oracle) << "p=" << p;
  }
}

TEST(ShardEngine, BitIdenticalToOracleOnEveryReplica) {
  for (const graph::DatasetId id : graph::kAllDatasets) {
    const graph::Csr g = graph::make_dataset(id, 5e-5);
    const auto oracle = core::count_sequential_mps(g, {});
    for (const int p : {1, 2, 4, 8}) {
      shard::ShardConfig cfg;
      cfg.num_shards = p;
      EXPECT_EQ(shard::count_sharded(g, cfg), oracle)
          << graph::dataset_name(id) << " p=" << p;
    }
  }
}

TEST(ShardEngine, AllKernelsAgreeAtFourShards) {
  const graph::Csr g = graph::make_dataset(graph::DatasetId::kTwitter, 5e-5);
  const auto oracle = core::count_sequential_mps(g, {});
  for (const core::Algorithm algo :
       {core::Algorithm::kMergeBaseline, core::Algorithm::kMps,
        core::Algorithm::kBmp}) {
    shard::ShardConfig cfg;
    cfg.num_shards = 4;
    cfg.algorithm = algo;
    EXPECT_EQ(shard::count_sharded(g, cfg), oracle)
        << core::algorithm_name(algo);
  }
}

TEST(ShardEngine, TinyQueueBoundsForceBackpressure) {
  const graph::Csr g = graph::make_dataset(graph::DatasetId::kLiveJournal, 1e-4);
  const auto oracle = core::count_sequential_mps(g, {});
  shard::ShardConfig cfg;
  cfg.num_shards = 4;
  cfg.flush_messages = 1;  // every message its own batch
  cfg.inbox_capacity = 1;  // one pending batch per inbox
  shard::ShardedEngine engine(g, cfg);
  EXPECT_EQ(engine.run(), oracle);
  const net::TransportStats stats = engine.transport_stats();
  EXPECT_GT(stats.messages, 0u);
  // Threshold 1 forces a flush attempt per send, but replies appended
  // inside backpressure drains still coalesce, so batches may exceed 1.
  EXPECT_GT(stats.batches, 0u);
  EXPECT_LE(stats.batches, stats.messages);
  EXPECT_EQ(stats.bytes, stats.messages * sizeof(shard::Message));
  EXPECT_GT(stats.backpressure, 0u);  // the tiny bounds actually bit
}

TEST(ShardEngine, RepeatedRunsAreStable) {
  const graph::Csr g = graph::make_dataset(graph::DatasetId::kOrkut, 5e-5);
  shard::ShardConfig cfg;
  cfg.num_shards = 4;
  shard::ShardedEngine engine(g, cfg);
  const auto first = engine.run();
  EXPECT_EQ(engine.run(), first);
  EXPECT_EQ(first, core::count_sequential_mps(g, {}));
}

TEST(ShardEngine, ReadersDuringRunAreRaceFree) {
  // TSan coverage: while shard workers exchange batches, other threads
  // poll the transport stats (inbox leaf locks) and read the immutable
  // partition. Neither may race with the run.
  const graph::Csr g = graph::make_dataset(graph::DatasetId::kWebIt, 1e-4);
  shard::ShardConfig cfg;
  cfg.num_shards = 4;
  cfg.flush_messages = 8;
  shard::ShardedEngine engine(g, cfg);
  const auto oracle = core::count_sequential_mps(g, {});

  std::atomic<bool> done{false};
  std::uint64_t observed = 0;
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      observed += engine.transport_stats().messages;
      const shard::Partition2D& part = engine.partition();
      for (int s = 0; s < part.num_shards(); ++s) {
        observed += part.shard(s).num_owned_slots();
      }
      std::this_thread::yield();
    }
  });
  EXPECT_EQ(engine.run(), oracle);
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(observed, 0u);
}

TEST(ShardEngine, ConcurrentRunsSerializeAndAgree) {
  const graph::Csr g = graph::make_dataset(graph::DatasetId::kLiveJournal, 5e-5);
  shard::ShardConfig cfg;
  cfg.num_shards = 2;
  shard::ShardedEngine engine(g, cfg);
  const auto oracle = core::count_sequential_mps(g, {});
  core::CountArray a, b;
  std::thread t([&] { a = engine.run(); });
  b = engine.run();
  t.join();
  EXPECT_EQ(a, oracle);
  EXPECT_EQ(b, oracle);
}

}  // namespace
}  // namespace aecnc
