// The transport fault-injection harness (docs/sharding.md §7): the
// sharded engine over FaultyTransport must stay bit-identical to the
// sequential MPS oracle under every absorbed fault schedule (drops,
// duplicates, delays — seeded through AECNC_TEST_SEED), across
// p ∈ {1, 2, 4} and all three kernels; an unabsorbable fault (peer
// death mid-phase) must surface as a typed TransportError within the
// timeout budget — never a hang, never partial counts. The same
// differential runs over the real TCP loopback mesh put the full
// socket stack (framing, checksums, short writes) under the unchanged
// engine.
#include <gtest/gtest.h>

#include <vector>

#include "core/sequential.hpp"
#include "graph/datasets.hpp"
#include "net/faulty.hpp"
#include "net/inproc.hpp"
#include "net/socket.hpp"
#include "shard/engine.hpp"
#include "test_seed.hpp"
#include "util/timer.hpp"

namespace aecnc {
namespace {

const std::vector<core::Algorithm> kKernels{core::Algorithm::kMergeBaseline,
                                            core::Algorithm::kMps,
                                            core::Algorithm::kBmp};

shard::ShardConfig shard_config(int p, core::Algorithm algo) {
  shard::ShardConfig cfg;
  cfg.num_shards = p;
  cfg.algorithm = algo;
  // Small batches + tight inboxes so even the small test graphs push
  // real traffic (and real backpressure) through the faulty transport.
  cfg.flush_messages = 8;
  cfg.inbox_capacity = 4;
  return cfg;
}

core::CountArray run_over_faults(const graph::Csr& g, int p,
                                 core::Algorithm algo,
                                 const net::FaultPlan& plan,
                                 net::FaultCounts* counts_out = nullptr,
                                 net::TransportStats* stats_out = nullptr) {
  const shard::ShardConfig cfg = shard_config(p, algo);
  net::InprocTransport inner(shard::Partition2D(g, p).num_shards(),
                             cfg.inbox_capacity);
  net::FaultyTransport faulty(inner, plan);
  shard::ShardedEngine engine(g, cfg, faulty);
  core::CountArray counts = engine.run();
  if (counts_out != nullptr) *counts_out = faulty.fault_counts();
  if (stats_out != nullptr) *stats_out = engine.transport_stats();
  return counts;
}

TEST(FaultHarness, BitIdenticalUnderAbsorbedSchedules) {
  struct Schedule {
    const char* name;
    double drop, dup, delay;
  };
  // Drop rates stay <= 0.1: the retry budget is 8 attempts, so a batch
  // only fails loudly if all 8 sends drop (p = rate^8). At 0.1 that is
  // 1e-8 per batch — absorbed for any realistic seed; cranking the rate
  // past ~0.2 would turn this into a (correctly loud) retries-exhausted
  // schedule instead of an absorbed one.
  const Schedule schedules[] = {
      {"drop", 0.1, 0.0, 0.0},
      {"dup-heavy", 0.0, 0.25, 0.0},
      {"delay", 0.0, 0.0, 0.15},
      {"mixed", 0.05, 0.1, 0.1},
  };
  const graph::Csr g = graph::make_dataset(graph::DatasetId::kTwitter, 5e-5);
  const auto oracle = core::count_sequential_mps(g, {});
  for (const core::Algorithm algo : kKernels) {
    for (const int p : {1, 2, 4}) {
      for (const Schedule& s : schedules) {
        net::FaultPlan plan;
        plan.seed = testsupport::mix_seed(
            0xFA17ull * static_cast<std::uint64_t>(p) +
            static_cast<std::uint64_t>(algo));
        plan.drop_rate = s.drop;
        plan.dup_rate = s.dup;
        plan.delay_rate = s.delay;
        EXPECT_EQ(run_over_faults(g, p, algo, plan), oracle)
            << core::algorithm_name(algo) << " p=" << p << " " << s.name;
      }
    }
  }
}

TEST(FaultHarness, AbsorbedFaultsActuallyFiredAndWereAbsorbed) {
  const graph::Csr g =
      graph::make_dataset(graph::DatasetId::kLiveJournal, 1e-4);
  const auto oracle = core::count_sequential_mps(g, {});

  net::FaultPlan drops;
  drops.seed = testsupport::mix_seed(0xA001);
  drops.drop_rate = 0.1;
  net::FaultCounts counts;
  net::TransportStats stats;
  EXPECT_EQ(run_over_faults(g, 4, core::Algorithm::kMps, drops, &counts,
                            &stats),
            oracle);
  EXPECT_GT(counts.drops, 0u);   // the schedule actually bit...
  EXPECT_GT(stats.retries, 0u);  // ...and the retry layer absorbed it

  net::FaultPlan dups;
  dups.seed = testsupport::mix_seed(0xA002);
  dups.dup_rate = 0.25;
  EXPECT_EQ(run_over_faults(g, 4, core::Algorithm::kMps, dups, &counts,
                            &stats),
            oracle);
  EXPECT_GT(counts.dups, 0u);
  EXPECT_GT(stats.dups_dropped, 0u);  // every echo was discarded by seq

  net::FaultPlan delays;
  delays.seed = testsupport::mix_seed(0xA003);
  delays.delay_rate = 0.15;
  EXPECT_EQ(run_over_faults(g, 4, core::Algorithm::kMps, delays, &counts,
                            &stats),
            oracle);
  EXPECT_GT(counts.delays, 0u);
}

TEST(FaultHarness, SameSeedSameResultWithFaultsFiring) {
  // The schedule is seeded per endpoint, but how much of each rng
  // stream a run consumes depends on backpressure/retry interleaving —
  // so exact fault tallies may differ run to run. What IS pinned: the
  // counted result (bit-identical both times) and that the schedule
  // keeps firing under the same seed.
  const graph::Csr g = graph::make_dataset(graph::DatasetId::kOrkut, 5e-5);
  net::FaultPlan plan;
  plan.seed = testsupport::mix_seed(0x5EED);
  plan.drop_rate = 0.1;
  plan.dup_rate = 0.1;
  net::FaultCounts a, b;
  const auto first = run_over_faults(g, 2, core::Algorithm::kMps, plan, &a);
  const auto second = run_over_faults(g, 2, core::Algorithm::kMps, plan, &b);
  EXPECT_EQ(first, second);
  EXPECT_GT(a.drops + a.dups, 0u);
  EXPECT_GT(b.drops + b.dups, 0u);
}

TEST(FaultHarness, PeerKillMidPhaseFailsTypedWithinBudget) {
  const graph::Csr g = graph::make_dataset(graph::DatasetId::kWebIt, 1e-4);
  net::FaultPlan plan;
  plan.seed = testsupport::mix_seed(0xDEAD);
  plan.kill_endpoint = 1;
  plan.kill_after_ops = 40;  // well inside the run: dies mid-phase

  const shard::ShardConfig cfg = shard_config(2, core::Algorithm::kMps);
  net::InprocTransport inner(2, cfg.inbox_capacity);
  net::FaultyTransport faulty(inner, plan);
  shard::ShardedEngine engine(g, cfg, faulty);

  util::WallTimer timer;
  try {
    const core::CountArray counts = engine.run();
    FAIL() << "peer death produced counts (" << counts.size()
           << " slots) instead of a typed error";
  } catch (const net::TransportError& e) {
    // The victim's kPeerDead is the root cause; the poison cascade the
    // other shards unwind with must not mask it.
    EXPECT_EQ(e.kind(), net::ErrorKind::kPeerDead) << e.what();
  }
  // "Within the timeout budget": tearing down must not burn the io
  // timeout, let alone hang. Seconds, not minutes, with huge margin for
  // loaded CI runners.
  EXPECT_LT(timer.millis(), 15000.0);

  // The transport stays poisoned: later traffic observes the failure
  // immediately instead of waiting on the dead peer.
  net::Frame out;
  EXPECT_THROW((void)faulty.try_recv(0, out), net::TransportError);
}

TEST(SocketMesh, BitIdenticalAcrossShardCounts) {
  const graph::Csr g = graph::make_dataset(graph::DatasetId::kTwitter, 5e-5);
  const auto oracle = core::count_sequential_mps(g, {});
  for (const int p : {1, 2, 4}) {
    const auto mesh = net::SocketTransport::connect_local_mesh(p, {});
    shard::ShardedEngine engine(g, shard_config(p, core::Algorithm::kMps),
                                *mesh);
    EXPECT_EQ(engine.run(), oracle) << "p=" << p;
    const net::TransportStats stats = engine.transport_stats();
    if (p > 1) {
      EXPECT_GT(stats.messages, 0u);
      EXPECT_GT(stats.bytes, 0u);  // wire bytes, counted on receive
    }
  }
}

TEST(SocketMesh, AllKernelsAgreeOverSockets) {
  const graph::Csr g =
      graph::make_dataset(graph::DatasetId::kLiveJournal, 5e-5);
  const auto oracle = core::count_sequential_mps(g, {});
  for (const core::Algorithm algo : kKernels) {
    const auto mesh = net::SocketTransport::connect_local_mesh(2, {});
    shard::ShardedEngine engine(g, shard_config(2, algo), *mesh);
    EXPECT_EQ(engine.run(), oracle) << core::algorithm_name(algo);
  }
}

TEST(SocketMesh, RepeatedRunsOnOneMeshAreStable) {
  const graph::Csr g = graph::make_dataset(graph::DatasetId::kOrkut, 5e-5);
  const auto oracle = core::count_sequential_mps(g, {});
  const auto mesh = net::SocketTransport::connect_local_mesh(4, {});
  shard::ShardedEngine engine(g, shard_config(4, core::Algorithm::kMps),
                              *mesh);
  EXPECT_EQ(engine.run(), oracle);
  EXPECT_EQ(engine.run(), oracle);
}

TEST(SocketMesh, ShortWritesAreReassembled) {
  // Cap every write() at 7 bytes: frames cross the wire in slivers and
  // the decoder must stitch them back together bit-identically.
  const graph::Csr g = graph::make_dataset(graph::DatasetId::kWebIt, 5e-5);
  const auto oracle = core::count_sequential_mps(g, {});
  net::SocketTransport::Tuning tuning;
  tuning.max_write_bytes = 7;
  const auto mesh = net::SocketTransport::connect_local_mesh(2, {}, tuning);
  shard::ShardedEngine engine(g, shard_config(2, core::Algorithm::kMps),
                              *mesh);
  EXPECT_EQ(engine.run(), oracle);
}

TEST(SocketMesh, EndpointCountMustMatchPartition) {
  const graph::Csr g = graph::make_dataset(graph::DatasetId::kTwitter, 5e-5);
  const auto mesh = net::SocketTransport::connect_local_mesh(2, {});
  EXPECT_THROW(
      shard::ShardedEngine(g, shard_config(4, core::Algorithm::kMps), *mesh),
      std::invalid_argument);
}

}  // namespace
}  // namespace aecnc
