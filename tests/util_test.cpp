// Unit tests for src/util: PRNG determinism and distribution, alias
// sampling, aligned allocation, table formatting, CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>

#include "util/aligned.hpp"
#include "util/alias.hpp"
#include "util/chart.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace aecnc::util {
namespace {

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 0 from the published splitmix64 code.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int histogram[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.below(kBuckets)];
  for (const int h : histogram) {
    EXPECT_NEAR(h, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Xoshiro256, UniformIsInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(DiscreteSampler, RespectsWeights) {
  const std::vector<double> weights = {1.0, 2.0, 4.0, 8.0};
  DiscreteSampler sampler(weights);
  Xoshiro256 rng(5);
  std::vector<int> histogram(4, 0);
  constexpr int kDraws = 150000;
  for (int i = 0; i < kDraws; ++i) ++histogram[sampler.sample(rng)];
  const double total = 15.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = kDraws * weights[i] / total;
    EXPECT_NEAR(histogram[i], expected, expected * 0.1) << "bucket " << i;
  }
}

TEST(DiscreteSampler, SingleElement) {
  DiscreteSampler sampler({3.0});
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(DiscreteSampler, ZeroWeightNeverSampled) {
  DiscreteSampler sampler({0.0, 1.0, 0.0, 1.0});
  Xoshiro256 rng(9);
  for (int i = 0; i < 20000; ++i) {
    const auto s = sampler.sample(rng);
    EXPECT_TRUE(s == 1 || s == 3) << s;
  }
}

TEST(AlignedAllocator, VectorBufferIs64ByteAligned) {
  AlignedVector<std::uint32_t> v(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
}

TEST(AlignedAllocator, GrowthPreservesAlignment) {
  AlignedVector<std::uint32_t> v;
  for (int i = 0; i < 10000; ++i) v.push_back(i);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
  EXPECT_EQ(v[9999], 9999u);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "23456"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| name        | value |"), std::string::npos) << s;
  EXPECT_NE(s.find("| longer-name | 23456 |"), std::string::npos) << s;
}

TEST(TablePrinter, CsvEscapesSpecials) {
  TablePrinter t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "says \"hi\""});
  const std::string csv = t.csv();
  EXPECT_EQ(csv,
            "name,value\n"
            "plain,1\n"
            "\"with,comma\",\"says \"\"hi\"\"\"\n");
}

TEST(Chart, BarChartScalesToMax) {
  const std::string chart =
      bar_chart({{"a", 1.0}, {"bb", 2.0}, {"c", 0.0}}, 10);
  // Longest bar belongs to bb and has exactly `width` hashes.
  EXPECT_NE(chart.find("bb |##########"), std::string::npos) << chart;
  // Zero value renders an empty bar.
  EXPECT_NE(chart.find("c  | "), std::string::npos) << chart;
  // Labels are aligned to the widest.
  EXPECT_NE(chart.find("a  |#####"), std::string::npos) << chart;
}

TEST(Chart, BarChartHandlesAllZero) {
  const std::string chart = bar_chart({{"x", 0.0}}, 10);
  EXPECT_NE(chart.find("x |"), std::string::npos);
}

TEST(Chart, SparklinesNormalizeAcrossSeries) {
  const std::string s = sparklines(
      {{"hi", {0.0, 4.0, 8.0}}, {"lo", {0.0, 1.0, 2.0}}});
  // The max of the 'hi' series reaches the full block.
  EXPECT_NE(s.find("█"), std::string::npos) << s;
  // Two lines, names aligned.
  EXPECT_NE(s.find("hi "), std::string::npos);
  EXPECT_NE(s.find("lo "), std::string::npos);
}

TEST(Format, Seconds) {
  EXPECT_EQ(format_seconds(12.34), "12.34 s");
  EXPECT_EQ(format_seconds(0.01234), "12.34 ms");
  EXPECT_EQ(format_seconds(0.0000123), "12.3 us");
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KB");
  EXPECT_EQ(format_bytes(1.5 * 1024 * 1024 * 1024), "1.50 GB");
}

TEST(Format, CountWithSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1806067135), "1,806,067,135");
}

TEST(Format, Speedup) { EXPECT_EQ(format_speedup(12.34), "12.3x"); }

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--alpha=3", "--name=tw", "--verbose"};
  CliArgs args(4, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get("name", ""), "tw");
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
}

TEST(Cli, FirstUnknownFindsMisplacedFlags) {
  const char* argv[] = {"prog", "--alpha=3", "--name=tw", "--verbose"};
  CliArgs args(4, const_cast<char**>(argv));
  // All keys allowed: no complaint, extra allowed keys are fine.
  EXPECT_FALSE(
      args.first_unknown({"alpha", "name", "verbose", "unused"}).has_value());
  // One key missing from the allowlist: exactly that key comes back.
  const auto bad = args.first_unknown({"alpha", "name"});
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(*bad, "verbose");
  // Keys are checked by full spelling: a prefix of a real flag is still
  // unknown (--name vs --names), which is what catches CLI typos.
  const auto typo = args.first_unknown({"alpha", "names", "verbose"});
  ASSERT_TRUE(typo.has_value());
  EXPECT_EQ(*typo, "name");
}

TEST(Cli, FirstUnknownEmptyArgs) {
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  EXPECT_FALSE(args.first_unknown({}).has_value());
  EXPECT_FALSE(args.first_unknown({"anything"}).has_value());
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer t;
  // Busy-wait a tiny amount; just checks monotonicity and non-negativity.
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  (void)sink;
  EXPECT_GE(t.seconds(), 0.0);
  const double first = t.seconds();
  EXPECT_GE(t.seconds(), first);
  t.reset();
  EXPECT_LT(t.seconds(), first + 1.0);
}

}  // namespace
}  // namespace aecnc::util
