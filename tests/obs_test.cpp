// Observability-layer tests (src/obs + the instrumentation wired through
// intersect/bitmap/core/parallel/serve).
//
// Three layers of coverage:
//  1. Registry semantics: get-or-create identity, type-collision errors,
//     histogram bucket boundaries and quantiles, CounterScope
//     flush-on-exit, concurrent increments (the TSan job runs this
//     binary), and byte-exact JSON/Prometheus dump goldens
//     (tests/data/obs_dump.golden; AECNC_REGEN_GOLDEN=1 rewrites it).
//  2. Semantic instrumentation: M/MPS/BMP on fixed small graphs must
//     produce counter values derivable by hand from the algorithms —
//     routing decisions at the skew threshold, RF words skipped on an
//     all-zero range, bitmap build/probe/match totals.
//  3. Serve negative paths: shed on a full admission queue,
//     backpressure accounting, and epoch-tagged cache metrics staying
//     consistent across a snapshot swap.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bitmap/bitmap.hpp"
#include "bitmap/range_filter.hpp"
#include "core/api.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "intersect/dispatch.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"

#ifndef AECNC_TEST_DATA_DIR
#define AECNC_TEST_DATA_DIR "tests/data"
#endif

namespace aecnc {
namespace {

using graph::Csr;
using graph::EdgeList;

// --- Registry semantics -----------------------------------------------

TEST(ObsRegistry, GetOrCreateReturnsSameMetric) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x.calls");
  obs::Counter& b = reg.counter("x.calls");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &reg.counter("y.calls"));

  obs::Gauge& g1 = reg.gauge("x.depth");
  EXPECT_EQ(&g1, &reg.gauge("x.depth"));
  obs::Histogram& h1 = reg.histogram("x.ns");
  EXPECT_EQ(&h1, &reg.histogram("x.ns"));
}

TEST(ObsRegistry, TypeCollisionThrows) {
  obs::Registry reg;
  (void)reg.counter("metric");
  EXPECT_THROW((void)reg.gauge("metric"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("metric"), std::logic_error);
  (void)reg.histogram("other");
  EXPECT_THROW((void)reg.counter("other"), std::logic_error);
}

TEST(ObsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("c");
  obs::Gauge& g = reg.gauge("g");
  obs::Histogram& h = reg.histogram("h");
  c.add(5);
  g.set(-3);
  h.observe(100);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  // Same storage, not a re-registration.
  EXPECT_EQ(&c, &reg.counter("c"));
}

TEST(ObsCounter, AddAccumulatesAndResets) {
  obs::Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, SetAddSub) {
  obs::Gauge g;
  g.set(10);
  g.add(5);
  g.sub(20);
  EXPECT_EQ(g.value(), -5);
}

// --- Histogram buckets and quantiles ----------------------------------

TEST(ObsHistogram, BucketBoundariesAreBitWidths) {
  // Bucket i holds samples of bit width i: bucket 0 = {0},
  // bucket i = [2^(i-1), 2^i).
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3);
  EXPECT_EQ(obs::Histogram::bucket_of(7), 3);
  EXPECT_EQ(obs::Histogram::bucket_of(8), 4);
  EXPECT_EQ(obs::Histogram::bucket_of((1ull << 20) - 1), 20);
  EXPECT_EQ(obs::Histogram::bucket_of(1ull << 20), 21);
  EXPECT_EQ(obs::Histogram::bucket_of(~0ull), 64);

  EXPECT_EQ(obs::Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_upper(3), 7u);
  EXPECT_EQ(obs::Histogram::bucket_upper(13), 8191u);
  EXPECT_EQ(obs::Histogram::bucket_upper(64), ~0ull);
}

TEST(ObsHistogram, ObserveFillsTheRightBucket) {
  obs::Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(5);
  h.observe(5);
  EXPECT_EQ(h.bucket_count(0), 1u);  // {0}
  EXPECT_EQ(h.bucket_count(1), 1u);  // [1, 2)
  EXPECT_EQ(h.bucket_count(3), 2u);  // [4, 8)
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 11u);
}

TEST(ObsHistogram, QuantilesReportBucketUppers) {
  obs::Histogram h;
  // 90 samples in [8, 16) -> bucket 4 (upper 15), 9 samples in
  // [512, 1024) -> bucket 10 (upper 1023), 1 sample in bucket 20
  // (upper 1048575). Ranks: p50 -> 50th sample, p95 -> 95th, p99 -> 99th.
  for (int i = 0; i < 90; ++i) h.observe(10);
  for (int i = 0; i < 9; ++i) h.observe(1000);
  h.observe(1000000);
  ASSERT_EQ(h.count(), 100u);
  EXPECT_EQ(h.quantile(0.50), 15u);
  EXPECT_EQ(h.quantile(0.95), 1023u);
  EXPECT_EQ(h.quantile(0.99), 1023u);
  EXPECT_EQ(h.quantile(1.00), 1048575u);
}

TEST(ObsHistogram, EmptyQuantileIsZero) {
  obs::Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(0.99), 0u);
}

// --- CounterScope ------------------------------------------------------

TEST(ObsCounterScope, FlushesOnScopeExit) {
  obs::Counter parent;
  {
    obs::CounterScope scope(parent);
    scope.add();
    scope.add(9);
    EXPECT_EQ(scope.pending(), 10u);
    // Shard not yet visible in the parent.
    EXPECT_EQ(parent.value(), 0u);
  }
  EXPECT_EQ(parent.value(), 10u);
}

TEST(ObsCounterScope, ExplicitFlushIsIdempotent) {
  obs::Counter parent;
  obs::CounterScope scope(parent);
  scope.add(7);
  scope.flush();
  scope.flush();
  EXPECT_EQ(parent.value(), 7u);
  EXPECT_EQ(scope.pending(), 0u);
}

TEST(ObsCounterScope, ConcurrentShardsSumExactly) {
  // Four threads, each with its own shard: plain increments per thread,
  // one atomic flush each. The TSan CI job runs this test.
  obs::Counter parent;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&parent] {
      obs::CounterScope scope(parent);
      for (std::uint64_t i = 0; i < kPerThread; ++i) scope.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(parent.value(), kThreads * kPerThread);
}

TEST(ObsCounter, ConcurrentDirectAddsSumExactly) {
  obs::Counter c;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

// --- Clock and ScopedTimer ---------------------------------------------

class ObsClockTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::set_fake_clock(0);
    obs::set_enabled(false);
  }
};

TEST_F(ObsClockTest, FakeClockTicksDeterministically) {
  obs::set_fake_clock(100);
  const std::uint64_t a = obs::now_ns();
  const std::uint64_t b = obs::now_ns();
  EXPECT_EQ(b - a, 100u);
}

TEST_F(ObsClockTest, ScopedTimerObservesExactlyOneTick) {
  obs::set_enabled(true);
  obs::set_fake_clock(4096);
  obs::Histogram h;
  { obs::ScopedTimer timer(h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 4096u);
  // 4096 has bit width 13; bucket 13 spans [4096, 8192).
  EXPECT_EQ(h.bucket_count(13), 1u);
  EXPECT_EQ(h.quantile(0.5), 8191u);
}

TEST_F(ObsClockTest, ScopedTimerIsInertWhenDisabled) {
  obs::set_enabled(false);
  obs::set_fake_clock(4096);
  obs::Histogram h;
  { obs::ScopedTimer timer(h); }
  EXPECT_EQ(h.count(), 0u);
}

TEST_F(ObsClockTest, RealClockAdvances) {
  const std::uint64_t a = obs::now_ns();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GT(obs::now_ns(), a);
}

// --- Dump goldens ------------------------------------------------------

std::string golden_path() {
  return std::string(AECNC_TEST_DATA_DIR) + "/obs_dump.golden";
}

TEST(ObsDump, JsonAndPrometheusMatchGolden) {
  // A fixed registry with every metric type, a negative gauge, a
  // sanitizer-exercising name, and histogram samples spanning buckets.
  obs::Registry reg;
  reg.counter("demo.requests").add(3);
  reg.counter("demo.hy-phen.total").add(1);
  reg.gauge("demo.depth").set(-2);
  obs::Histogram& h = reg.histogram("demo.latency_ns");
  h.observe(0);
  h.observe(1);
  h.observe(5);
  h.observe(5);
  h.observe(300);
  h.observe(1ull << 40);

  const std::string got = reg.dump_json() + reg.dump_prometheus();
  if (std::getenv("AECNC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out.good()) << golden_path();
    out << got;
    GTEST_SKIP() << "regenerated " << golden_path();
  }
  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good()) << "missing golden: " << golden_path()
                         << " (run with AECNC_REGEN_GOLDEN=1 to create)";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str());
}

TEST(ObsDump, EmptyRegistryDumps) {
  obs::Registry reg;
  EXPECT_EQ(reg.dump_json(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {}\n}\n");
  EXPECT_EQ(reg.dump_prometheus(), "");
}

// --- Semantic instrumentation: counters match hand-derived values ------

// Triangle 0-1-2 plus pendant 3 attached to 2:
//   N(0) = {1,2}  N(1) = {0,2}  N(2) = {0,1,3}  N(3) = {2}
Csr triangle_with_tail() {
  EdgeList e(4);
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 0);
  e.add(2, 3);
  return Csr::from_edge_list(std::move(e));
}

class ObsSemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::register_all();
    obs::Registry::global().reset();
  }
  void TearDown() override {
    obs::set_fake_clock(0);
    obs::set_enabled(false);
  }
};

TEST_F(ObsSemanticsTest, MpsRoutesBySkewThreshold) {
  const obs::KernelMetrics& m = obs::KernelMetrics::get();
  intersect::MpsConfig config;
  config.skew_threshold = 2.0;
  config.kind = intersect::MergeKind::kScalar;

  // |a| = 5 > 2 * |b| = 4: strictly above the threshold -> pivot-skip.
  const std::vector<VertexId> a{1, 3, 5, 7, 9};
  const std::vector<VertexId> b{3, 9};
  EXPECT_EQ(intersect::mps_count(a, b, config), 2u);
  EXPECT_EQ(m.mps_calls.value(), 1u);
  EXPECT_EQ(m.route_pivot_skip.value(), 1u);
  EXPECT_EQ(m.route_vb.value(), 0u);
  EXPECT_GT(m.gallop_probes.value(), 0u);

  // |a| = 4 == 2 * |b|: not strictly above -> VB with the pinned kernel.
  const std::vector<VertexId> c{1, 3, 5, 7};
  EXPECT_EQ(intersect::mps_count(c, b, config), 1u);
  EXPECT_EQ(m.mps_calls.value(), 2u);
  EXPECT_EQ(m.route_pivot_skip.value(), 1u);
  EXPECT_EQ(m.route_vb.value(), 1u);
  using Kind = intersect::MergeKind;
  EXPECT_EQ(m.vb_calls[static_cast<int>(Kind::kScalar)]->value(), 1u);
  EXPECT_EQ(m.vb_calls[static_cast<int>(Kind::kBlockScalar)]->value(), 0u);
}

TEST_F(ObsSemanticsTest, ObservedMpsCountsMatchUnobserved) {
  // Instrumentation must never change results: compare enabled vs
  // disabled on a skewed and a balanced pair.
  intersect::MpsConfig config;
  std::vector<VertexId> big(400);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<VertexId>(3 * i);
  }
  const std::vector<VertexId> small{6, 300, 601};
  const std::vector<VertexId> mid{0, 3, 7, 9, 12};

  const CnCount skewed_on = intersect::mps_count(big, small, config);
  const CnCount mid_on = intersect::mps_count(big, mid, config);
  obs::set_enabled(false);
  EXPECT_EQ(intersect::mps_count(big, small, config), skewed_on);
  EXPECT_EQ(intersect::mps_count(big, mid, config), mid_on);
}

TEST_F(ObsSemanticsTest, RfSkipsEveryProbeOfAnAllZeroRange) {
  const obs::KernelMetrics& m = obs::KernelMetrics::get();
  // Universe of 8192 ids at the default 4096 scale: two summary ranges.
  // Only range 0 has set bits, so every probe of range 1 is an RF skip
  // and never touches the big bitmap.
  bitmap::RangeFilteredBitmap fb(8192);
  fb.set_all(std::vector<VertexId>{1, 5, 9});

  const std::vector<VertexId> upper{4096, 4097, 5000, 8191};
  EXPECT_EQ(bitmap::rf_intersect_count(fb, upper), 0u);
  EXPECT_EQ(m.rf_probes.value(), 4u);
  EXPECT_EQ(m.rf_skips.value(), 4u);
  EXPECT_EQ(m.bitmap_probes.value(), 0u);
  EXPECT_EQ(m.bitmap_matches.value(), 0u);

  // Probes of the populated range pass the filter: 3 big-bitmap reads,
  // 2 of them matches ({1, 5}).
  const std::vector<VertexId> lower{1, 2, 5};
  EXPECT_EQ(bitmap::rf_intersect_count(fb, lower), 2u);
  EXPECT_EQ(m.rf_probes.value(), 7u);
  EXPECT_EQ(m.rf_skips.value(), 4u);
  EXPECT_EQ(m.bitmap_probes.value(), 3u);
  EXPECT_EQ(m.bitmap_matches.value(), 2u);
}

TEST_F(ObsSemanticsTest, BitmapProbeAndMatchCounts) {
  const obs::KernelMetrics& m = obs::KernelMetrics::get();
  bitmap::Bitmap b(128);
  b.set_all(std::vector<VertexId>{1, 2, 3});
  EXPECT_EQ(bitmap::bitmap_intersect_count(b, std::vector<VertexId>{2, 3, 4, 5}),
            2u);
  EXPECT_EQ(m.bitmap_probes.value(), 4u);
  EXPECT_EQ(m.bitmap_matches.value(), 2u);
}

TEST_F(ObsSemanticsTest, SequentialMpsRunOnFixedGraph) {
  const obs::KernelMetrics& km = obs::KernelMetrics::get();
  const obs::CoreMetrics& cm = obs::CoreMetrics::get();
  obs::set_fake_clock(4096);

  const Csr g = triangle_with_tail();
  core::Options opt;
  opt.algorithm = core::Algorithm::kMps;
  opt.parallel = false;
  const auto cnt = core::count_common_neighbors(g, opt);
  ASSERT_EQ(cnt.size(), 8u);

  // One MPS call per undirected edge; no pair is skewed past t = 50.
  EXPECT_EQ(km.mps_calls.value(), 4u);
  EXPECT_EQ(km.route_vb.value(), 4u);
  EXPECT_EQ(km.route_pivot_skip.value(), 0u);
  using Kind = intersect::MergeKind;
  EXPECT_EQ(km.vb_calls[static_cast<int>(Kind::kBlockScalar)]->value(), 4u);

  EXPECT_EQ(cm.runs.value(), 1u);
  EXPECT_EQ(cm.run_ns.count(), 1u);
  EXPECT_EQ(cm.run_ns.sum(), 4096u);
}

TEST_F(ObsSemanticsTest, SequentialBmpRunOnFixedGraph) {
  const obs::KernelMetrics& m = obs::KernelMetrics::get();
  const Csr g = triangle_with_tail();
  core::Options opt;
  opt.algorithm = core::Algorithm::kBmp;
  opt.parallel = false;
  const auto cnt = core::count_common_neighbors(g, opt);
  ASSERT_EQ(cnt.size(), 8u);

  // Hand-derived (forward edges only; vertex 3 has none, so 3 builds):
  //   u=0: build {1,2}; probe N(1) (2 probes, 1 match: 2),
  //        probe N(2) (3 probes, 1 match: 1); clear.
  //   u=1: build {0,2}; probe N(2) (3 probes, 1 match: 0); clear.
  //   u=2: build {0,1,3}; probe N(3) (1 probe, 0 matches); clear.
  // bitmap_sets counts set + flip passes: 2*(2 + 2 + 3) = 14.
  EXPECT_EQ(m.bitmap_builds.value(), 3u);
  EXPECT_EQ(m.bitmap_sets.value(), 14u);
  EXPECT_EQ(m.bitmap_probes.value(), 9u);
  EXPECT_EQ(m.bitmap_matches.value(), 3u);
  EXPECT_EQ(m.rf_probes.value(), 0u);
  EXPECT_EQ(m.rf_skips.value(), 0u);
}

TEST_F(ObsSemanticsTest, SequentialBmpRfRunOnFixedGraph) {
  const obs::KernelMetrics& m = obs::KernelMetrics::get();
  const Csr g = triangle_with_tail();
  core::Options opt;
  opt.algorithm = core::Algorithm::kBmp;
  opt.bmp_range_filter = true;
  opt.parallel = false;
  (void)core::count_common_neighbors(g, opt);

  // 4 vertices fit one summary range, which is populated whenever the
  // bitmap is, so RF probes all pass: same probe/match totals as plain
  // BMP, rf_probes mirrors bitmap_probes, zero skips.
  EXPECT_EQ(m.bitmap_builds.value(), 3u);
  EXPECT_EQ(m.rf_probes.value(), 9u);
  EXPECT_EQ(m.rf_skips.value(), 0u);
  EXPECT_EQ(m.bitmap_probes.value(), 9u);
  EXPECT_EQ(m.bitmap_matches.value(), 3u);
}

TEST_F(ObsSemanticsTest, MergeBaselineTouchesNoKernelCounters) {
  const obs::KernelMetrics& km = obs::KernelMetrics::get();
  const obs::CoreMetrics& cm = obs::CoreMetrics::get();
  const Csr g = triangle_with_tail();
  core::Options opt;
  opt.algorithm = core::Algorithm::kMergeBaseline;
  opt.parallel = false;
  (void)core::count_common_neighbors(g, opt);
  EXPECT_EQ(cm.runs.value(), 1u);
  EXPECT_EQ(km.mps_calls.value(), 0u);
  EXPECT_EQ(km.bitmap_probes.value(), 0u);
}

TEST_F(ObsSemanticsTest, DisabledRuntimeLeavesCountersUntouched) {
  const obs::KernelMetrics& m = obs::KernelMetrics::get();
  obs::set_enabled(false);
  const Csr g = triangle_with_tail();
  core::Options opt;
  opt.parallel = false;
  (void)core::count_common_neighbors(g, opt);
  EXPECT_EQ(m.mps_calls.value(), 0u);
  EXPECT_EQ(obs::CoreMetrics::get().runs.value(), 0u);
}

TEST_F(ObsSemanticsTest, ParallelDriversCountLeases) {
  const obs::CoreMetrics& m = obs::CoreMetrics::get();
  const Csr g = triangle_with_tail();
  core::Options opt;
  opt.parallel = true;
  opt.num_threads = 2;
  (void)core::count_common_neighbors(g, opt);
  // Every worker that ran acquired exactly one context lease.
  EXPECT_GE(m.lease_shared.value() + m.lease_private.value(), 1u);
  EXPECT_EQ(m.runs.value(), 1u);
}

// --- Serve negative paths ----------------------------------------------

class ObsServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::register_all();
    obs::Registry::global().reset();
  }
  void TearDown() override { obs::set_enabled(false); }

  static serve::ServiceConfig manual_config(std::size_t queue_capacity) {
    serve::ServiceConfig config;
    config.engine.num_workers = 2;
    config.queue_capacity = queue_capacity;
    config.start_dispatcher = false;  // drive the async path via pump()
    return config;
  }
};

TEST_F(ObsServeTest, ShedsWhenAdmissionQueueIsFull) {
  const obs::ServeMetrics& m = obs::ServeMetrics::get();
  serve::Service svc(manual_config(/*queue_capacity=*/2));
  svc.publish(triangle_with_tail());
  obs::Registry::global().reset();  // isolate the submit sequence

  auto f1 = svc.try_submit_edge(0, 1);
  auto f2 = svc.try_submit_edge(0, 2);
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(m.queue_depth.value(), 2);

  // Queue full: the load-shedding submit rejects and counts it.
  auto f3 = svc.try_submit_edge(1, 2);
  EXPECT_FALSE(f3.has_value());
  EXPECT_EQ(m.shed.value(), 1u);
  EXPECT_EQ(svc.stats().async_rejected, 1u);

  EXPECT_EQ(svc.pump(), 2u);
  EXPECT_EQ(m.queue_depth.value(), 0);
  EXPECT_EQ(f1->get().count, 1u);
  EXPECT_EQ(f2->get().count, 1u);
}

TEST_F(ObsServeTest, CountsBackpressureWaits) {
  const obs::ServeMetrics& m = obs::ServeMetrics::get();
  serve::Service svc(manual_config(/*queue_capacity=*/1));
  svc.publish(triangle_with_tail());
  obs::Registry::global().reset();

  auto f1 = svc.submit_edge(0, 1);
  EXPECT_EQ(m.backpressure_waits.value(), 0u);

  // Second distinct (uncached) submit must block on the full queue; the
  // wait is counted before sleeping, so poll the counter, then drain.
  std::future<serve::QueryResult> f2;
  std::thread producer([&svc, &f2] { f2 = svc.submit_edge(0, 2); });
  while (m.backpressure_waits.value() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(m.backpressure_waits.value(), 1u);
  // Drain the first request; the freed slot releases the producer, which
  // enqueues its own and returns.
  EXPECT_EQ(svc.pump(), 1u);
  producer.join();
  EXPECT_EQ(svc.pump(), 1u);
  EXPECT_EQ(f1.get().count, 1u);
  EXPECT_EQ(f2.get().count, 1u);
  EXPECT_EQ(m.queue_depth.value(), 0);
}

TEST_F(ObsServeTest, EpochTaggedCacheMetricsStayConsistentAcrossSwap) {
  const obs::ServeMetrics& m = obs::ServeMetrics::get();
  serve::Service svc(manual_config(/*queue_capacity=*/4));

  svc.publish(triangle_with_tail());
  EXPECT_EQ(m.epoch.value(), 1);
  EXPECT_EQ(m.publishes.value(), 1u);

  // Miss, then hit on the same epoch.
  EXPECT_FALSE(svc.query_edge(0, 1).cached);
  EXPECT_TRUE(svc.query_edge(0, 1).cached);
  EXPECT_EQ(m.cache_misses.value(), 1u);
  EXPECT_EQ(m.cache_hits.value(), 1u);

  // Snapshot swap: cache invalidated, epoch gauge follows the store, and
  // the same pair misses again on the new epoch.
  svc.publish(triangle_with_tail());
  EXPECT_EQ(m.epoch.value(), 2);
  EXPECT_EQ(m.publishes.value(), 2u);
  const auto r = svc.query_edge(0, 1);
  EXPECT_FALSE(r.cached);
  EXPECT_EQ(r.epoch, 2u);
  EXPECT_EQ(m.cache_misses.value(), 2u);
  EXPECT_EQ(m.cache_hits.value(), 1u);
  EXPECT_EQ(m.epoch.value(),
            static_cast<std::int64_t>(svc.current_epoch()));

  // Latency histograms saw every synchronous point query.
  EXPECT_EQ(m.point_ns.count(), 3u);
}

}  // namespace
}  // namespace aecnc
