// Serving under mutation traffic (docs/serving.md): the differential
// harness and stress suite for fine-grained cache invalidation
// (ResultCache::carry_forward fed by UpdatePipeline::take_touched),
// in-flight request coalescing (serve/inflight.hpp), and SLO-aware
// admission control (serve/admission.hpp).
//
// The core contract under test: every reply the service emits — fresh,
// carried-forward across publishes, or STALE-degraded — is bit-identical
// to a from-scratch count_sequential_mps run on the graph of the epoch
// the reply *names*. The mixed-workload tests interleave seeded
// query/add/del/publish streams against a shadow graph and verify every
// single served count against that oracle; the TSan-labeled stress
// tests hammer duplicate pairs across concurrent publishes and assert
// exactly-once computation per coalesced group plus epoch-exactness of
// everything served. AECNC_TEST_SEED perturbs every stream (nightly
// seed sweep).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/sequential.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "serve/admission.hpp"
#include "serve/inflight.hpp"
#include "serve/service.hpp"
#include "test_seed.hpp"
#include "update/pipeline.hpp"

namespace aecnc {
namespace {

std::uint64_t splitmix(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// ---------------------------------------------------------------------------
// Shadow graph + sequential oracle

/// The harness's model of the *staged* graph: mirrors every applied
/// mutation, materializes the expected Csr at each publish.
class ShadowGraph {
 public:
  ShadowGraph(const graph::Csr& g) : n_(g.num_vertices()) {
    for (VertexId u = 0; u < n_; ++u) {
      for (const VertexId v : g.neighbors(u)) {
        if (u < v) add(u, v);
      }
    }
  }

  [[nodiscard]] bool has(VertexId u, VertexId v) const {
    return index_.contains(update::touched_key(u, v));
  }

  /// Mirrors IncrementalCounter admission: self loops and duplicates
  /// are no-ops. Returns whether the shadow changed.
  bool add(VertexId u, VertexId v) {
    if (u == v || u >= n_ || v >= n_ || has(u, v)) return false;
    index_.emplace(update::touched_key(u, v), edges_.size());
    edges_.push_back({std::min(u, v), std::max(u, v)});
    return true;
  }

  bool del(VertexId u, VertexId v) {
    const auto it = index_.find(update::touched_key(u, v));
    if (u == v || it == index_.end()) return false;
    const std::size_t slot = it->second;
    index_.erase(it);
    edges_[slot] = edges_.back();
    edges_.pop_back();
    if (slot < edges_.size()) {
      index_[update::touched_key(edges_[slot].first, edges_[slot].second)] =
          slot;
    }
    return true;
  }

  /// A uniformly random current edge (for del ops and edge-biased
  /// queries); nullopt on an empty graph.
  [[nodiscard]] std::optional<std::pair<VertexId, VertexId>> random_edge(
      std::uint64_t r) const {
    if (edges_.empty()) return std::nullopt;
    return edges_[r % edges_.size()];
  }

  [[nodiscard]] graph::Csr to_csr() const {
    graph::EdgeList list(n_);
    for (const auto& [u, v] : edges_) list.add(u, v);
    list.normalize();
    return graph::Csr::from_edge_list(std::move(list));
  }

  [[nodiscard]] VertexId num_vertices() const { return n_; }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

 private:
  VertexId n_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // key -> slot
};

/// One epoch's ground truth: the graph plus its full all-edge
/// count_sequential_mps run (the reference the paper's kernels are
/// verified against everywhere else in the suite).
struct EpochOracle {
  graph::Csr graph;
  core::CountArray counts;  // aligned with graph's directed edges
};

EpochOracle make_oracle(graph::Csr g) {
  core::CountArray counts = core::count_sequential_mps(g, {});
  return {.graph = std::move(g), .counts = std::move(counts)};
}

/// |N(u) ∩ N(v)| on the oracle's graph. Edge pairs read the
/// count_sequential_mps output bit-for-bit; non-edge pairs (which an
/// all-edge run never emits) fall back to a direct sorted-adjacency
/// intersection on the same graph.
CnCount oracle_count(const EpochOracle& o, VertexId u, VertexId v) {
  const VertexId n = o.graph.num_vertices();
  if (u >= n || v >= n || u == v) return 0;
  const auto e = o.graph.find_edge(u, v);
  if (e != o.graph.num_directed_edges()) return o.counts[e];
  const auto nu = o.graph.neighbors(u);
  const auto nv = o.graph.neighbors(v);
  CnCount c = 0;
  std::size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nu[i] > nv[j]) {
      ++j;
    } else {
      ++c, ++i, ++j;
    }
  }
  return c;
}

bool oracle_is_edge(const EpochOracle& o, VertexId u, VertexId v) {
  const VertexId n = o.graph.num_vertices();
  return u < n && v < n && u != v &&
         o.graph.find_edge(u, v) != o.graph.num_directed_edges();
}

graph::Csr test_graph(std::uint64_t seed, VertexId n = 200,
                      std::uint64_t m = 1200) {
  return graph::Csr::from_edge_list(graph::chung_lu_power_law(n, m, 2.2, seed));
}

// ---------------------------------------------------------------------------
// Differential mixed-workload harness

/// Drive `ops` interleaved query/add/del/publish operations against a
/// service and its shadow, verifying every reply against the oracle of
/// the epoch the reply names. Returns the number of publishes executed.
std::size_t run_mixed_workload(serve::Service& svc, ShadowGraph& shadow,
                               std::uint64_t seed, std::size_t ops,
                               bool slo_active) {
  const VertexId n = shadow.num_vertices();
  std::vector<EpochOracle> oracles;  // index = epoch - 1
  {
    const serve::SnapshotPtr snap = svc.snapshot();
    oracles.push_back(make_oracle(shadow.to_csr()));
    EXPECT_EQ(snap->epoch, 1u);
  }
  serve::Epoch cur_epoch = 1;
  std::size_t publishes = 0;
  bool ever_applied = false;  // publish() requires a seeded pipeline

  std::uint64_t s = seed;
  for (std::size_t i = 0; i < ops; ++i) {
    const std::uint64_t roll = splitmix(s) % 100;
    if (roll < 55) {
      // Query: half biased to current edges (the pairs mutations
      // perturb), half uniform over the universe (misses, non-edges,
      // self loops, carried entries).
      VertexId u, v;
      if (splitmix(s) % 2 == 0) {
        if (const auto e = shadow.random_edge(splitmix(s)); e.has_value()) {
          u = e->first;
          v = e->second;
        } else {
          u = 0, v = 0;
        }
      } else {
        u = static_cast<VertexId>(splitmix(s) % n);
        v = static_cast<VertexId>(splitmix(s) % n);
      }
      const serve::QueryResult r = svc.query_edge(u, v);
      if (r.status == serve::ReplyStatus::kShed) {
        EXPECT_TRUE(slo_active) << "shed reply without SLO configured";
        EXPECT_EQ(r.count, 0u);
        continue;
      }
      if (r.status == serve::ReplyStatus::kStale) {
        EXPECT_TRUE(slo_active) << "stale reply without SLO configured";
        EXPECT_EQ(r.epoch, cur_epoch - 1) << "stale reply must name the "
                                             "immediately superseded epoch";
        EXPECT_TRUE(r.cached);
      } else {
        EXPECT_EQ(r.epoch, cur_epoch)
            << "fresh reply must name the current epoch";
      }
      // The differential heart: whatever epoch the reply names, its
      // count and edge flag must match the sequential oracle on that
      // epoch's graph exactly. (EXPECT + guard: ASSERT_* needs a void
      // function.)
      EXPECT_GE(r.epoch, 1u);
      EXPECT_LE(r.epoch, oracles.size());
      if (r.epoch < 1 || r.epoch > oracles.size()) continue;
      const EpochOracle& oracle = oracles[r.epoch - 1];
      EXPECT_EQ(r.count, oracle_count(oracle, u, v))
          << "epoch " << r.epoch << " pair (" << u << "," << v << ")"
          << (r.cached ? " [cached]" : " [computed]");
      EXPECT_EQ(r.is_edge, oracle_is_edge(oracle, u, v));
    } else if (roll < 75) {
      const auto u = static_cast<VertexId>(splitmix(s) % n);
      const auto v = static_cast<VertexId>(splitmix(s) % n);
      const update::Mutation m{update::kAddEdge, u, v};
      (void)svc.apply_updates({&m, 1});
      ever_applied = true;
      shadow.add(u, v);
    } else if (roll < 95) {
      VertexId u, v;
      if (const auto e = shadow.random_edge(splitmix(s)); e.has_value()) {
        u = e->first;
        v = e->second;
      } else {
        u = static_cast<VertexId>(splitmix(s) % n);
        v = static_cast<VertexId>(splitmix(s) % n);
      }
      const update::Mutation m{update::kDelEdge, u, v};
      (void)svc.apply_updates({&m, 1});
      ever_applied = true;
      shadow.del(u, v);
    } else {
      if (!ever_applied) continue;  // nothing staged yet
      cur_epoch = svc.publish();
      ++publishes;
      oracles.push_back(make_oracle(shadow.to_csr()));
      EXPECT_EQ(cur_epoch, oracles.size());
      // The published snapshot must be the shadow's graph exactly.
      const serve::SnapshotPtr snap = svc.snapshot();
      EXPECT_EQ(snap->graph.num_undirected_edges(), shadow.num_edges());
    }
  }
  return publishes;
}

TEST(ServeMutationDifferential, MixedWorkloadMatchesSequentialOracle) {
  const std::uint64_t seed = testsupport::mix_seed(0x5eed05);
  const graph::Csr g = test_graph(seed ^ 0x1234);
  serve::ServiceConfig cfg;
  cfg.start_dispatcher = false;
  cfg.update.max_vertices = g.num_vertices();
  serve::Service svc(cfg);
  svc.publish(g);
  ShadowGraph shadow(g);

  const std::size_t publishes =
      run_mixed_workload(svc, shadow, seed, 10'000, /*slo_active=*/false);
  const serve::ServiceStats s = svc.stats();
  EXPECT_GT(publishes, 0u);
  // The tentpole must actually engage: a steady mutation stream no
  // longer zeroes the cache on publish.
  EXPECT_GT(s.cache.carried_forward, 0u);
  EXPECT_GT(s.cache.hits, 0u);
  EXPECT_EQ(s.stale_served, 0u);
  EXPECT_EQ(s.slo_shed, 0u);
}

TEST(ServeMutationDifferential, RelabeledServiceMatchesSequentialOracle) {
  const std::uint64_t seed = testsupport::mix_seed(0xab5eed);
  const graph::Csr g = test_graph(seed ^ 0x77, 150, 900);
  serve::ServiceConfig cfg;
  cfg.start_dispatcher = false;
  cfg.relabel = true;  // hub-first internal space behind external replies
  cfg.update.max_vertices = g.num_vertices();
  serve::Service svc(cfg);
  svc.publish(g);
  ShadowGraph shadow(g);

  run_mixed_workload(svc, shadow, seed, 4'000, /*slo_active=*/false);
  EXPECT_GT(svc.stats().cache.carried_forward, 0u);
}

TEST(ServeMutationDifferential, WholesaleBaselineStaysCorrect) {
  // The bench's control arm: identical workload with carry-forward off
  // must stay oracle-exact and must never carry anything.
  const std::uint64_t seed = testsupport::mix_seed(0xba5e11);
  const graph::Csr g = test_graph(seed ^ 0x99, 150, 900);
  serve::ServiceConfig cfg;
  cfg.start_dispatcher = false;
  cfg.fine_grained_invalidation = false;
  cfg.update.max_vertices = g.num_vertices();
  serve::Service svc(cfg);
  svc.publish(g);
  ShadowGraph shadow(g);

  run_mixed_workload(svc, shadow, seed, 4'000, /*slo_active=*/false);
  EXPECT_EQ(svc.stats().cache.carried_forward, 0u);
}

TEST(ServeMutationDifferential, SloDegradedRepliesStayOracleExact) {
  // Admission engages after two fake-4096ns samples against a 1000ns
  // budget; from then on every miss degrades (STALE when the previous
  // epoch still holds the pair, SHED otherwise) while carried entries
  // keep serving fresh. All non-shed replies stay oracle-exact on the
  // epoch they name.
  const std::uint64_t seed = testsupport::mix_seed(0x510bee);
  const graph::Csr g = test_graph(seed ^ 0x42);
  serve::ServiceConfig cfg;
  cfg.start_dispatcher = false;
  cfg.update.max_vertices = g.num_vertices();
  cfg.slo = {.p99_budget_ns = 1000,
             .min_samples = 2,
             .window = 1024,
             .allow_stale = true,
             .fake_sample_ns = 4096};
  serve::Service svc(cfg);
  svc.publish(g);
  ShadowGraph shadow(g);

  run_mixed_workload(svc, shadow, seed, 6'000, /*slo_active=*/true);
  const serve::ServiceStats s = svc.stats();
  EXPECT_GT(s.slo_shed, 0u);
  // Over-budget misses stop reaching the engine: at most the two
  // warm-up samples per... (the admission window never decays because
  // recording stops with the computes).
  EXPECT_LE(s.point_computes, 4u);
}

// ---------------------------------------------------------------------------
// Deterministic SLO degrade sequence (the golden-session script's twin)

TEST(ServeSloAdmission, DegradeSequenceStaleThenShed) {
  // Two triangles: 0-1-2 and 3-4-5. cnt(0,1)=1 (via 2), cnt(3,4)=1
  // (via 5).
  graph::EdgeList list(8);
  list.add(0, 1), list.add(0, 2), list.add(1, 2);
  list.add(3, 4), list.add(3, 5), list.add(4, 5);
  list.normalize();
  graph::Csr g = graph::Csr::from_edge_list(std::move(list));

  serve::ServiceConfig cfg;
  cfg.start_dispatcher = false;
  cfg.update.max_vertices = g.num_vertices();
  cfg.slo = {.p99_budget_ns = 1000,
             .min_samples = 2,
             .window = 1024,
             .allow_stale = true,
             .fake_sample_ns = 4096};
  serve::Service svc(cfg);
  svc.publish(std::move(g));

  // Two admitted computes warm the admission window past min_samples.
  const auto r1 = svc.query_edge(0, 1);
  EXPECT_EQ(r1.status, serve::ReplyStatus::kFresh);
  EXPECT_EQ(r1.count, 1u);
  const auto r2 = svc.query_edge(3, 4);
  EXPECT_EQ(r2.status, serve::ReplyStatus::kFresh);
  EXPECT_EQ(r2.count, 1u);

  // Over budget at epoch 1: no previous epoch to degrade to → SHED.
  const auto r3 = svc.query_edge(0, 2);
  EXPECT_EQ(r3.status, serve::ReplyStatus::kShed);
  EXPECT_EQ(r3.epoch, 1u);

  // Delete (0,1) and publish: (0,1) is touched (stays behind at epoch
  // 1 as the stale candidate), (3,4) is untouched (carries forward).
  const update::Mutation del{update::kDelEdge, 0, 1};
  (void)svc.apply_updates({&del, 1});
  EXPECT_EQ(svc.publish(), 2u);

  // Carried entry: a fresh epoch-2 cache hit, no admission involved.
  const auto r4 = svc.query_edge(3, 4);
  EXPECT_EQ(r4.status, serve::ReplyStatus::kFresh);
  EXPECT_EQ(r4.epoch, 2u);
  EXPECT_TRUE(r4.cached);
  EXPECT_EQ(r4.count, 1u);

  // Touched pair: epoch-2 miss, over budget → STALE epoch-1 reply with
  // the epoch-1 count (still 1; on epoch 2 the pair is a non-edge with
  // count 1 too, but the reply must *name* epoch 1).
  const auto r5 = svc.query_edge(0, 1);
  EXPECT_EQ(r5.status, serve::ReplyStatus::kStale);
  EXPECT_EQ(r5.epoch, 1u);
  EXPECT_TRUE(r5.cached);
  EXPECT_EQ(r5.count, 1u);
  EXPECT_TRUE(r5.is_edge);  // it *was* an edge of epoch 1

  // Never-cached pair over budget → SHED.
  const auto r6 = svc.query_edge(2, 5);
  EXPECT_EQ(r6.status, serve::ReplyStatus::kShed);
  EXPECT_EQ(r6.epoch, 2u);

  const serve::ServiceStats s = svc.stats();
  EXPECT_EQ(s.stale_served, 1u);
  EXPECT_EQ(s.slo_shed, 2u);
  EXPECT_GE(s.cache.carried_forward, 1u);
  EXPECT_EQ(s.point_computes, 2u);
}

TEST(ServeSloAdmission, ShedsImmediatelyWhenStaleDisallowed) {
  graph::Csr g = test_graph(7, 50, 200);
  serve::ServiceConfig cfg;
  cfg.start_dispatcher = false;
  cfg.update.max_vertices = g.num_vertices();
  cfg.slo = {.p99_budget_ns = 1000,
             .min_samples = 1,
             .window = 1024,
             .allow_stale = false,
             .fake_sample_ns = 4096};
  serve::Service svc(cfg);
  svc.publish(std::move(g));

  (void)svc.query_edge(0, 1);  // engage
  const update::Mutation del{update::kDelEdge, 0, 1};
  (void)svc.apply_updates({&del, 1});
  (void)svc.publish();
  // (0,1) is stale-available at epoch 1, but allow_stale=false sheds.
  const auto r = svc.query_edge(0, 1);
  EXPECT_EQ(r.status, serve::ReplyStatus::kShed);
  EXPECT_EQ(svc.stats().stale_served, 0u);
}

// ---------------------------------------------------------------------------
// AdmissionController unit behavior

TEST(AdmissionControllerTest, DisabledAdmitsEverything) {
  serve::AdmissionController ac({.p99_budget_ns = 0});
  ac.record(1, 1'000'000);
  EXPECT_TRUE(ac.admit(1));
  EXPECT_EQ(ac.p99_ns(1), 0u);
}

TEST(AdmissionControllerTest, EngagesOnlyPastMinSamples) {
  serve::AdmissionController ac(
      {.p99_budget_ns = 1000, .min_samples = 3, .window = 1024});
  ac.record(5, 4096);
  ac.record(5, 4096);
  EXPECT_TRUE(ac.admit(5)) << "under-sampled window must admit";
  ac.record(5, 4096);
  EXPECT_FALSE(ac.admit(5));
  // bit_width(4096) = 13 → inclusive bucket upper bound 2^13 - 1.
  EXPECT_EQ(ac.p99_ns(5), 8191u);
}

TEST(AdmissionControllerTest, ClientsAreIsolated) {
  serve::AdmissionController ac(
      {.p99_budget_ns = 1000, .min_samples = 1, .window = 1024});
  ac.record(1, 4096);
  EXPECT_FALSE(ac.admit(1));
  EXPECT_TRUE(ac.admit(2)) << "client 2 never exceeded its own budget";
  ac.record(2, 100);
  EXPECT_TRUE(ac.admit(2));
}

TEST(AdmissionControllerTest, P99TracksTheTailNotTheMedian) {
  serve::AdmissionController ac(
      {.p99_budget_ns = 1 << 20, .min_samples = 1, .window = 1 << 20});
  for (int i = 0; i < 990; ++i) ac.record(9, 100);
  for (int i = 0; i < 10; ++i) ac.record(9, 1 << 19);
  // 1000 samples: rank ceil(0.99*1000)=990 lands in the 100ns bucket;
  // one more slow sample pushes the p99 into the tail bucket.
  EXPECT_EQ(ac.p99_ns(9), 127u);
  for (int i = 0; i < 15; ++i) ac.record(9, 1 << 19);
  EXPECT_EQ(ac.p99_ns(9), (1u << 20) - 1);
}

TEST(AdmissionControllerTest, WindowDecayForgivesOldBursts) {
  serve::AdmissionController ac(
      {.p99_budget_ns = 1000, .min_samples = 4, .window = 8});
  for (int i = 0; i < 7; ++i) ac.record(3, 4096);
  EXPECT_FALSE(ac.admit(3));
  // Healthy traffic: each record past the window halves the old burst.
  for (int i = 0; i < 60; ++i) ac.record(3, 64);
  EXPECT_TRUE(ac.admit(3));
  EXPECT_EQ(ac.p99_ns(3), 127u);
}

// ---------------------------------------------------------------------------
// InflightTable unit behavior

TEST(InflightTableTest, FirstArrivalLeadsJoinersGetTheValue) {
  serve::InflightTable table;
  const auto lead = table.join(1, 42);
  ASSERT_TRUE(lead.leader);

  constexpr int kJoiners = 4;
  std::vector<std::thread> threads;
  std::atomic<int> got_value{0};
  std::atomic<int> late_leaders{0};
  std::atomic<int> arrived{0};
  for (int t = 0; t < kJoiners; ++t) {
    threads.emplace_back([&] {
      arrived.fetch_add(1);
      const auto r = table.join(1, 42);
      if (r.leader) {
        // Arrived after complete() retired the entry: a fresh leader,
        // responsible for resolving its own (trivial) group.
        table.complete(1, 42, {.count = 7, .is_edge = false});
        late_leaders.fetch_add(1);
      } else if (r.value.has_value()) {
        EXPECT_EQ(r.value->count, 7u);
        got_value.fetch_add(1);
      } else {
        ADD_FAILURE() << "joiner saw abandon, but the leader completed";
      }
    });
  }
  while (arrived.load() < kJoiners) std::this_thread::yield();
  table.complete(1, 42, {.count = 7, .is_edge = false});
  for (auto& t : threads) t.join();
  EXPECT_EQ(got_value.load() + late_leaders.load(), kJoiners);
}

TEST(InflightTableTest, AbandonReleasesJoinersWithoutAValue) {
  serve::InflightTable table;
  ASSERT_TRUE(table.join(2, 9).leader);
  std::atomic<bool> saw_fallback{false};
  std::thread joiner([&] {
    const auto r = table.join(2, 9);
    if (!r.leader) saw_fallback.store(!r.value.has_value());
  });
  // The joiner either blocks (then abandon wakes it valueless) or
  // arrives after the abandon (then it leads and must clean up).
  table.abandon(2, 9);
  joiner.join();
  if (!saw_fallback.load()) {
    // The joiner became a leader; resolve its entry.
    table.abandon(2, 9);
  }
}

TEST(InflightTableTest, DistinctEpochsAndPairsDoNotCoalesce) {
  serve::InflightTable table;
  EXPECT_TRUE(table.join(1, 5).leader);
  EXPECT_TRUE(table.join(2, 5).leader) << "same pair, new epoch";
  EXPECT_TRUE(table.join(1, 6).leader) << "same epoch, new pair";
  table.complete(1, 5, {});
  table.complete(2, 5, {});
  table.abandon(1, 6);
  // All retired: the next arrival leads again.
  EXPECT_TRUE(table.join(1, 5).leader);
  table.abandon(1, 5);
}

// ---------------------------------------------------------------------------
// ResultCache carry-forward unit behavior

TEST(ResultCacheCarryForward, CarriesUntouchedKeepsTouchedDropsAncient) {
  serve::ResultCache cache(64);
  cache.insert(1, 0, 1, {.count = 10, .is_edge = true});   // will be touched
  cache.insert(1, 2, 3, {.count = 20, .is_edge = true});   // untouched
  cache.insert(2, 4, 5, {.count = 30, .is_edge = false});  // already new

  const std::uint64_t touched[] = {update::touched_key(0, 1)};
  EXPECT_EQ(cache.carry_forward(2, touched), 1u);

  // Untouched entry advanced to epoch 2; its epoch-1 incarnation is gone.
  EXPECT_EQ(cache.lookup(2, 2, 3)->count, 20u);
  EXPECT_FALSE(cache.lookup(1, 2, 3).has_value());
  // Touched entry stays behind at epoch 1 (the stale-degrade candidate).
  EXPECT_EQ(cache.lookup(1, 0, 1)->count, 10u);
  EXPECT_FALSE(cache.lookup(2, 0, 1).has_value());
  // Entries already at the new epoch pass through untouched.
  EXPECT_EQ(cache.lookup(2, 4, 5)->count, 30u);

  // Next publish: the epoch-1 stale entry is now two epochs old → drop.
  EXPECT_EQ(cache.carry_forward(3, {}), 2u);  // (2,3) and (4,5) advance
  EXPECT_FALSE(cache.lookup(1, 0, 1).has_value());
  EXPECT_FALSE(cache.lookup(2, 0, 1).has_value());
  EXPECT_FALSE(cache.lookup(3, 0, 1).has_value());
  const serve::CacheStats s = cache.stats();
  EXPECT_EQ(s.carried_forward, 3u);
  EXPECT_EQ(s.invalidations, 1u);  // only the aged-out (0,1)
  EXPECT_EQ(s.size, 2u);
}

TEST(ResultCacheCarryForward, StatsAreCumulativeAcrossPublishes) {
  // The bench's before/after hit-rate arithmetic relies on counters
  // never resetting — only `size` may move down on a publish.
  serve::ResultCache cache(16);
  cache.insert(1, 0, 1, {.count = 1, .is_edge = true});
  (void)cache.lookup(1, 0, 1);  // hit
  (void)cache.lookup(1, 8, 9);  // miss
  const serve::CacheStats before = cache.stats();
  EXPECT_EQ(before.hits, 1u);
  EXPECT_EQ(before.misses, 1u);

  (void)cache.carry_forward(2, {});
  cache.invalidate_all();
  const serve::CacheStats after = cache.stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.carried_forward, 1u);
  EXPECT_EQ(after.size, 0u);
}

TEST(ResultCacheCarryForward, SetOrderSurvivesCompaction) {
  // Pack one set past the drop: LRU order among survivors must be
  // preserved so the next insert still evicts the true LRU. All pairs
  // share a set iff they hash together — use one pair under several
  // epochs, which by construction shares the (pair-only) set hash.
  serve::ResultCache cache(8);
  cache.insert(1, 0, 1, {.count = 1, .is_edge = true});
  cache.insert(2, 0, 1, {.count = 2, .is_edge = true});
  cache.insert(3, 0, 1, {.count = 3, .is_edge = true});
  // carry to epoch 4: epoch-3 entry is prev (untouched → advance to 4),
  // epochs 1 and 2 are ancient → dropped.
  EXPECT_EQ(cache.carry_forward(4, {}), 1u);
  EXPECT_EQ(cache.lookup(4, 0, 1)->count, 3u);
  EXPECT_FALSE(cache.lookup(1, 0, 1).has_value());
  EXPECT_FALSE(cache.lookup(2, 0, 1).has_value());
  EXPECT_EQ(cache.stats().size, 1u);
}

TEST(ResultCacheCarryForward, DisabledAndEpochZeroAreNoops) {
  serve::ResultCache disabled(0);
  EXPECT_EQ(disabled.carry_forward(2, {}), 0u);
  serve::ResultCache cache(8);
  cache.insert(1, 0, 1, {.count = 1, .is_edge = true});
  EXPECT_EQ(cache.carry_forward(0, {}), 0u);
  EXPECT_TRUE(cache.lookup(1, 0, 1).has_value());
}

// ---------------------------------------------------------------------------
// UpdatePipeline touched-set export

TEST(UpdatePipelineTouchedSet, RecordsPairAndIncidentPairs) {
  // Path 0-1-2 plus vertex 3. Inserting (1,3): pair (1,3) itself, plus
  // (3,w) for w ∈ N(1) = {0,2}. N(3) is empty pre-op, so no (1,w).
  graph::EdgeList list(4);
  list.add(0, 1), list.add(1, 2);
  list.normalize();
  update::UpdatePipeline pipe(graph::Csr::from_edge_list(std::move(list)));

  const update::Mutation m{update::kAddEdge, 1, 3};
  const update::ApplyReport report = pipe.apply({&m, 1});
  EXPECT_EQ(report.inserted, 1u);
  EXPECT_EQ(report.touched_pairs, 3u);

  const update::TouchedSet touched = pipe.take_touched();
  EXPECT_FALSE(touched.wholesale);
  const std::vector<std::uint64_t> expected = {update::touched_key(0, 3),
                                               update::touched_key(1, 3),
                                               update::touched_key(2, 3)};
  std::vector<std::uint64_t> sorted_expected = expected;
  std::sort(sorted_expected.begin(), sorted_expected.end());
  EXPECT_EQ(touched.pairs, sorted_expected);
}

TEST(UpdatePipelineTouchedSet, NoopsRecordNothing) {
  graph::EdgeList list(4);
  list.add(0, 1);
  list.normalize();
  update::UpdatePipeline pipe(graph::Csr::from_edge_list(std::move(list)));

  const update::Mutation noops[] = {
      {update::kAddEdge, 0, 1},  // duplicate insert
      {update::kAddEdge, 2, 2},  // self loop
      {update::kDelEdge, 2, 3},  // non-edge erase
  };
  const update::ApplyReport report = pipe.apply(noops);
  EXPECT_EQ(report.noops, 3u);
  EXPECT_EQ(report.touched_pairs, 0u);
  const update::TouchedSet touched = pipe.take_touched();
  EXPECT_FALSE(touched.wholesale);
  EXPECT_TRUE(touched.pairs.empty());
}

TEST(UpdatePipelineTouchedSet, TakeTouchedDrainsTheAccumulator) {
  update::UpdatePipeline pipe;
  const update::Mutation m{update::kAddEdge, 0, 1};
  (void)pipe.apply({&m, 1});
  EXPECT_FALSE(pipe.take_touched().pairs.empty());
  const update::TouchedSet second = pipe.take_touched();
  EXPECT_TRUE(second.pairs.empty());
  EXPECT_FALSE(second.wholesale);
}

TEST(UpdatePipelineTouchedSet, OverflowDegradesToWholesale) {
  update::PipelineConfig config;
  config.max_touched = 4;
  update::UpdatePipeline pipe(test_graph(11, 50, 300), config);
  // A hub-heavy batch overflows four touched slots immediately.
  std::vector<update::Mutation> muts;
  for (VertexId v = 0; v < 10; ++v) {
    muts.push_back({update::kDelEdge, 0, v});
    muts.push_back({update::kAddEdge, 0, v});
  }
  (void)pipe.apply(muts);
  const update::TouchedSet touched = pipe.take_touched();
  EXPECT_TRUE(touched.wholesale);
  EXPECT_TRUE(touched.pairs.empty());
  // The degrade is per-take: the next batch tracks exactly again.
  const update::Mutation m{update::kAddEdge, 1, 2};
  (void)pipe.apply({&m, 1});
  EXPECT_FALSE(pipe.take_touched().wholesale);
}

TEST(UpdatePipelineTouchedSet, RecountRouteGoesWholesale) {
  update::PipelineConfig config;
  config.policy.recount_advantage = 1e9;  // recount always "wins"
  config.policy.min_recount_batch = 1;
  const graph::Csr g = test_graph(13, 50, 300);
  // A guaranteed non-edge, so the insert really applies (a no-op batch
  // skips the recount and must NOT degrade the touched set).
  VertexId au = 0, av = 0;
  for (VertexId u = 0; u < 50 && au == av; ++u) {
    for (VertexId v = u + 1; v < 50; ++v) {
      if (g.find_edge(u, v) == g.num_directed_edges()) {
        au = u, av = v;
        break;
      }
    }
  }
  ASSERT_NE(au, av);
  update::UpdatePipeline pipe(g, config);
  const update::Mutation m{update::kAddEdge, au, av};
  const update::ApplyReport report = pipe.apply({&m, 1});
  EXPECT_EQ(report.recount_batches, 1u);
  EXPECT_EQ(report.inserted, 1u);
  EXPECT_TRUE(pipe.take_touched().wholesale);
}

TEST(UpdatePipelineTouchedSet, CoversEveryBruteForcePairDiff) {
  // Soundness, the property carry-forward correctness rests on: every
  // pair whose count OR edge flag differs between two takes must be in
  // the touched set. (The set may over-approximate; it must never
  // under-approximate.)
  const std::uint64_t seed = testsupport::mix_seed(0xd1ff5);
  const graph::Csr before = test_graph(seed ^ 0x5a5a, 60, 250);
  update::UpdatePipeline pipe(before);

  std::uint64_t s = seed;
  std::vector<update::Mutation> muts;
  for (int i = 0; i < 30; ++i) {
    const auto u = static_cast<VertexId>(splitmix(s) % 60);
    const auto v = static_cast<VertexId>(splitmix(s) % 60);
    muts.push_back(
        {splitmix(s) % 2 == 0 ? update::kAddEdge : update::kDelEdge, u, v});
  }
  (void)pipe.apply(muts);
  const update::TouchedSet touched = pipe.take_touched();
  ASSERT_FALSE(touched.wholesale);
  const graph::Csr after = pipe.materialize();

  const EpochOracle ob = make_oracle(before);
  const EpochOracle oa = make_oracle(after);
  const VertexId n = std::max(before.num_vertices(), after.num_vertices());
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      const bool differs = oracle_count(ob, u, v) != oracle_count(oa, u, v) ||
                           oracle_is_edge(ob, u, v) != oracle_is_edge(oa, u, v);
      if (differs) {
        EXPECT_TRUE(std::binary_search(touched.pairs.begin(),
                                       touched.pairs.end(),
                                       update::touched_key(u, v)))
            << "pair (" << u << "," << v << ") changed but is not touched";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Async-path coalescing

TEST(ServeAsyncCoalescing, PumpDeduplicatesPairsWithinABatch) {
  graph::Csr g = test_graph(17, 100, 500);
  serve::ServiceConfig cfg;
  cfg.start_dispatcher = false;
  serve::Service svc(cfg);
  svc.publish(g);
  const EpochOracle oracle = make_oracle(std::move(g));

  std::vector<std::future<serve::QueryResult>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(svc.submit_edge(2, 3));
  futures.push_back(svc.submit_edge(3, 2));  // reversed duplicate
  futures.push_back(svc.submit_edge(4, 5));
  const std::uint64_t before = svc.stats().engine_queries;
  EXPECT_EQ(svc.pump(), 12u);
  // 12 queued requests, 2 distinct canonical pairs → 2 engine queries.
  EXPECT_EQ(svc.stats().engine_queries - before, 2u);
  for (auto& f : futures) {
    const serve::QueryResult r = f.get();
    EXPECT_EQ(r.count, oracle_count(oracle, r.u, r.v));
  }
}

// ---------------------------------------------------------------------------
// TSan stress: coalescing exactly-once + epoch exactness under publishes

TEST(ServeMutationStress, CoalescedHammerComputesEachPairOnce) {
  const std::uint64_t seed = testsupport::mix_seed(0xc0a1e5);
  graph::Csr g = test_graph(seed ^ 0x31, 300, 2000);
  serve::ServiceConfig cfg;
  cfg.start_dispatcher = false;
  serve::Service svc(cfg);
  const EpochOracle oracle = make_oracle(g);
  svc.publish(std::move(g));

  // A small hot set so every pair is hammered by every thread.
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 300;
  constexpr int kHotPairs = 16;
  std::vector<std::pair<VertexId, VertexId>> hot;
  std::uint64_t s = seed;
  for (int i = 0; i < kHotPairs; ++i) {
    hot.push_back({static_cast<VertexId>(splitmix(s) % 300),
                   static_cast<VertexId>(splitmix(s) % 300)});
  }

  struct Reply {
    std::uint64_t key;
    bool cached;
  };
  std::vector<std::vector<Reply>> replies(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t rs = seed + static_cast<std::uint64_t>(t) * 7919;
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const auto [u, v] = hot[splitmix(rs) % kHotPairs];
        const serve::QueryResult r = svc.query_edge(u, v);
        EXPECT_EQ(r.status, serve::ReplyStatus::kFresh);
        EXPECT_EQ(r.epoch, 1u);
        EXPECT_EQ(r.count, oracle_count(oracle, u, v));
        replies[t].push_back({update::touched_key(u, v), !r.cached});
      }
    });
  }
  for (auto& t : threads) t.join();

  // Exactly-once: per canonical pair, exactly ONE reply across all
  // threads was an actual computation; everyone else hit the cache or
  // latched onto the in-flight compute.
  std::unordered_map<std::uint64_t, int> computes;
  for (const auto& per_thread : replies) {
    for (const Reply& r : per_thread) computes[r.key] += r.cached ? 1 : 0;
  }
  for (const auto& [key, count] : computes) {
    EXPECT_EQ(count, 1) << "pair key " << key << " recomputed " << count
                        << " times";
  }
  EXPECT_EQ(svc.stats().point_computes, computes.size());
}

TEST(ServeMutationStress, PublishStormRepliesExactOnTheirEpoch) {
  // Queries race a mutation/publish storm. Every reply names an epoch;
  // after the fact each one is checked against that epoch's oracle — a
  // carried-forward entry served under a wrong epoch, or a stale entry
  // leaking without its marker, shows up as a count mismatch here.
  const std::uint64_t seed = testsupport::mix_seed(0x5700a1);
  const graph::Csr g = test_graph(seed ^ 0x17, 150, 900);
  const VertexId n = g.num_vertices();
  serve::ServiceConfig cfg;
  cfg.start_dispatcher = false;
  cfg.update.max_vertices = n;
  serve::Service svc(cfg);
  svc.publish(g);

  constexpr std::size_t kPublishes = 24;
  std::vector<graph::Csr> epoch_graphs;  // index = epoch - 1
  epoch_graphs.reserve(kPublishes + 1);
  epoch_graphs.push_back(g);

  std::atomic<bool> done{false};
  constexpr int kThreads = 6;
  struct Reply {
    serve::Epoch epoch;
    VertexId u, v;
    CnCount count;
    bool is_edge;
  };
  std::vector<std::vector<Reply>> replies(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t rs = seed + static_cast<std::uint64_t>(t) * 104729;
      while (!done.load(std::memory_order_acquire)) {
        const auto u = static_cast<VertexId>(splitmix(rs) % n);
        const auto v = static_cast<VertexId>(splitmix(rs) % n);
        const serve::QueryResult r = svc.query_edge(u, v);
        EXPECT_EQ(r.status, serve::ReplyStatus::kFresh);
        replies[t].push_back({r.epoch, u, v, r.count, r.is_edge});
      }
    });
  }

  // Mutator: small touched batches, one publish each, shadow mirrored.
  ShadowGraph shadow(g);
  std::uint64_t ms = seed ^ 0xfeed;
  for (std::size_t p = 0; p < kPublishes; ++p) {
    for (int i = 0; i < 6; ++i) {
      const auto u = static_cast<VertexId>(splitmix(ms) % n);
      const auto v = static_cast<VertexId>(splitmix(ms) % n);
      const bool add = splitmix(ms) % 2 == 0;
      const update::Mutation m{add ? update::kAddEdge : update::kDelEdge, u,
                               v};
      (void)svc.apply_updates({&m, 1});
      add ? shadow.add(u, v) : shadow.del(u, v);
    }
    // Record the epoch's graph BEFORE it becomes visible to queriers.
    epoch_graphs.push_back(shadow.to_csr());
    (void)svc.publish();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  std::vector<EpochOracle> oracles;
  oracles.reserve(epoch_graphs.size());
  for (graph::Csr& eg : epoch_graphs) oracles.push_back(make_oracle(std::move(eg)));
  std::size_t checked = 0;
  for (const auto& per_thread : replies) {
    for (const Reply& r : per_thread) {
      ASSERT_GE(r.epoch, 1u);
      ASSERT_LE(r.epoch, oracles.size());
      const EpochOracle& oracle = oracles[r.epoch - 1];
      ASSERT_EQ(r.count, oracle_count(oracle, r.u, r.v))
          << "epoch " << r.epoch << " pair (" << r.u << "," << r.v << ")";
      ASSERT_EQ(r.is_edge, oracle_is_edge(oracle, r.u, r.v));
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);

  // Deterministic carry epilogue (the storm's own carries depend on
  // thread timing): cache (100,101) at the current epoch, mutate only
  // around (0,1) — whose touched set is confined to pairs incident to
  // 0 or 1 — and publish. The untouched entry must ride across.
  const std::uint64_t carried_before = svc.stats().cache.carried_forward;
  (void)svc.query_edge(100, 101);
  const bool was_edge = shadow.has(0, 1);
  const update::Mutation flip{was_edge ? update::kDelEdge : update::kAddEdge,
                              0, 1};
  (void)svc.apply_updates({&flip, 1});
  (void)svc.publish();
  EXPECT_GT(svc.stats().cache.carried_forward, carried_before);
  const serve::QueryResult carried = svc.query_edge(100, 101);
  EXPECT_TRUE(carried.cached);
  EXPECT_EQ(carried.status, serve::ReplyStatus::kFresh);
}

TEST(ServeMutationStress, SloStormMarksEveryDegrade) {
  // Same storm with admission clamped shut after two samples: every
  // reply must be kFresh-and-exact, kStale-and-exact-on-its-epoch, or
  // kShed. No unmarked stale value may ever surface.
  const std::uint64_t seed = testsupport::mix_seed(0x510510);
  const graph::Csr g = test_graph(seed ^ 0x23, 120, 700);
  const VertexId n = g.num_vertices();
  serve::ServiceConfig cfg;
  cfg.start_dispatcher = false;
  cfg.update.max_vertices = n;
  cfg.slo = {.p99_budget_ns = 1000,
             .min_samples = 2,
             .window = 1 << 20,
             .allow_stale = true,
             .fake_sample_ns = 4096};
  serve::Service svc(cfg);
  svc.publish(g);

  constexpr std::size_t kPublishes = 16;
  std::vector<graph::Csr> epoch_graphs;
  epoch_graphs.push_back(g);

  std::atomic<bool> done{false};
  constexpr int kThreads = 4;
  struct Reply {
    serve::Epoch epoch;
    VertexId u, v;
    CnCount count;
    serve::ReplyStatus status;
  };
  std::vector<std::vector<Reply>> replies(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t rs = seed + static_cast<std::uint64_t>(t) * 6151;
      while (!done.load(std::memory_order_acquire)) {
        const auto u = static_cast<VertexId>(splitmix(rs) % n);
        const auto v = static_cast<VertexId>(splitmix(rs) % n);
        const serve::QueryResult r = svc.query_edge(u, v);
        replies[t].push_back({r.epoch, u, v, r.count, r.status});
      }
    });
  }

  ShadowGraph shadow(g);
  std::uint64_t ms = seed ^ 0xfade;
  for (std::size_t p = 0; p < kPublishes; ++p) {
    for (int i = 0; i < 4; ++i) {
      const auto u = static_cast<VertexId>(splitmix(ms) % n);
      const auto v = static_cast<VertexId>(splitmix(ms) % n);
      const bool add = splitmix(ms) % 2 == 0;
      const update::Mutation m{add ? update::kAddEdge : update::kDelEdge, u,
                               v};
      (void)svc.apply_updates({&m, 1});
      add ? shadow.add(u, v) : shadow.del(u, v);
    }
    epoch_graphs.push_back(shadow.to_csr());
    (void)svc.publish();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  std::vector<EpochOracle> oracles;
  oracles.reserve(epoch_graphs.size());
  for (graph::Csr& eg : epoch_graphs) oracles.push_back(make_oracle(std::move(eg)));
  for (const auto& per_thread : replies) {
    for (const Reply& r : per_thread) {
      if (r.status == serve::ReplyStatus::kShed) continue;
      ASSERT_GE(r.epoch, 1u);
      ASSERT_LE(r.epoch, oracles.size());
      ASSERT_EQ(r.count, oracle_count(oracles[r.epoch - 1], r.u, r.v))
          << (r.status == serve::ReplyStatus::kStale ? "STALE" : "fresh")
          << " reply wrong on its named epoch " << r.epoch;
    }
  }
}

}  // namespace
}  // namespace aecnc
